#include "workload/event_stream.h"

#include <algorithm>

namespace titan::workload {

std::vector<CallEvent> build_event_stream(const Trace& trace, int convergence_delay_slots) {
  std::vector<CallEvent> events;
  events.reserve(trace.calls().size() * 3);
  for (std::size_t i = 0; i < trace.calls().size(); ++i) {
    const auto& call = trace.calls()[i];
    const auto idx = static_cast<std::uint32_t>(i);
    events.push_back({call.start_slot, CallEventKind::kArrival, idx});
    const core::SlotIndex converge = std::min<core::SlotIndex>(
        call.start_slot + convergence_delay_slots, trace.num_slots());
    events.push_back({converge, CallEventKind::kConvergence, idx});
    const core::SlotIndex end =
        std::min<core::SlotIndex>(call.start_slot + call.duration_slots, trace.num_slots());
    events.push_back({end, CallEventKind::kEnd, idx});
  }
  std::sort(events.begin(), events.end());
  return events;
}

}  // namespace titan::workload
