#include "workload/call_config.h"

#include <algorithm>
#include <numeric>

namespace titan::workload {

int CallConfig::total_participants() const {
  int n = 0;
  for (const auto& [country, count] : participants) n += count;
  return n;
}

std::string CallConfig::key(const geo::World& world) const {
  std::string out;
  for (const auto& [country, count] : participants) {
    if (!out.empty()) out += '|';
    out += world.country(country).iso + ":" + std::to_string(count);
  }
  out += '|';
  out += media::media_type_name(media);
  return out;
}

core::Cores CallConfig::compute_cores() const {
  return media::compute_per_participant(media) * total_participants();
}

core::Mbps CallConfig::network_mbps() const {
  return media::bandwidth_per_participant(media) * total_participants();
}

core::Mbps CallConfig::network_mbps_from(core::CountryId country) const {
  for (const auto& [c, count] : participants)
    if (c == country) return media::bandwidth_per_participant(media) * count;
  return 0.0;
}

void CallConfig::canonicalize() {
  std::sort(participants.begin(), participants.end());
  std::vector<std::pair<core::CountryId, int>> merged;
  for (const auto& [country, count] : participants) {
    if (!merged.empty() && merged.back().first == country)
      merged.back().second += count;
    else
      merged.emplace_back(country, count);
  }
  participants = std::move(merged);
}

ReducedCallConfig reduce(const CallConfig& config) {
  ReducedCallConfig out;
  out.config = config;
  if (config.participants.empty()) return out;
  if (config.intra_country()) {
    // Intra-country: collapse to a single participant.
    out.multiplier = config.participants.front().second;
    out.config.participants.front().second = 1;
    return out;
  }
  int g = 0;
  for (const auto& [country, count] : config.participants) g = std::gcd(g, count);
  if (g <= 1) return out;
  for (auto& [country, count] : out.config.participants) count /= g;
  out.multiplier = g;
  return out;
}

std::size_t ConfigRegistry::Hash::operator()(const CallConfig& c) const {
  std::size_t h = static_cast<std::size_t>(c.media) * 0x9e3779b97f4a7c15ULL;
  for (const auto& [country, count] : c.participants) {
    h ^= (static_cast<std::size_t>(country.value()) * 0xbf58476d1ce4e5b9ULL +
          static_cast<std::size_t>(count)) +
         0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

core::ConfigId ConfigRegistry::intern(const CallConfig& config) {
  const auto it = index_.find(config);
  if (it != index_.end()) return it->second;
  const core::ConfigId id(static_cast<int>(configs_.size()));
  configs_.push_back(config);
  index_.emplace(config, id);
  return id;
}

const CallConfig& ConfigRegistry::get(core::ConfigId id) const {
  return configs_.at(static_cast<std::size_t>(id.value()));
}

}  // namespace titan::workload
