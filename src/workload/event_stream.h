// Typed call-event stream derived from a trace.
//
// The closed-loop simulator (src/sim/) consumes the workload as discrete
// events rather than as a static call table: a call *arrives* in its start
// slot (only the first joiner's country is known), *converges* a few
// minutes later within the same 30-minute slot (the true call config
// becomes visible and the call may migrate), and *ends* after its duration.
// End events order before arrivals of the same slot — a call occupying
// [start, start + duration) stops consuming resources at the boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "core/timegrid.h"
#include "workload/callgen.h"

namespace titan::workload {

enum class CallEventKind : std::uint8_t {
  kEnd = 0,         // call leaves at the slot boundary
  kArrival = 1,     // first joiner joins; initial assignment
  kConvergence = 2, // true config known; migration check
};

struct CallEvent {
  core::SlotIndex slot = 0;
  CallEventKind kind = CallEventKind::kArrival;
  std::uint32_t call_index = 0;  // into Trace::calls()

  friend bool operator<(const CallEvent& a, const CallEvent& b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.call_index < b.call_index;
  }
  friend bool operator==(const CallEvent& a, const CallEvent& b) {
    return a.slot == b.slot && a.kind == b.kind && a.call_index == b.call_index;
  }
};

// All events of the trace, sorted by (slot, kind, call index). End events
// past the trace's last slot are clamped to `trace.num_slots()` so every
// call ends inside [0, num_slots]. `convergence_delay_slots` defers each
// call's convergence past its arrival slot (default 0: same slot, the
// paper's "a few minutes in" collapsed onto the 30-minute grid); the sim
// uses it to model slower convergence, during which a call sits in the
// pending state with only its initial assignment. A convergence landing at
// or after the call's end slot is dropped by the engine (the call ended
// before its true config was ever acted on).
[[nodiscard]] std::vector<CallEvent> build_event_stream(const Trace& trace,
                                                        int convergence_delay_slots = 0);

}  // namespace titan::workload
