#include "workload/callgen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/hash.h"

namespace titan::workload {

double TraceGenerator::diurnal_factor(core::SlotIndex slot, double weekend_factor) {
  const double hour = core::hour_of(slot) + (slot % core::kSlotsPerHour) * 0.5;
  // Double-hump business day: peaks near 10:30 and 15:00, deep night trough.
  const double morning = std::exp(-std::pow(hour - 10.5, 2.0) / (2.0 * 2.2 * 2.2));
  const double afternoon = 0.9 * std::exp(-std::pow(hour - 15.0, 2.0) / (2.0 * 2.5 * 2.5));
  double factor = 0.03 + morning + afternoon;
  if (core::is_weekend(slot)) factor *= weekend_factor;
  return factor;
}

Trace TraceGenerator::generate(const TraceOptions& options) const {
  Trace trace;
  trace.num_slots_ = options.weeks * core::kSlotsPerWeek;
  trace.by_slot_.resize(static_cast<std::size_t>(trace.num_slots_));
  core::Rng rng(options.seed);

  // Countries eligible as participants.
  options.regions.validate();
  if (options.cross_region_fraction < 0.0 || options.cross_region_fraction > 1.0)
    throw std::invalid_argument("cross_region_fraction must be in [0, 1]");
  const auto countries = geo::countries_in(*world_, options.regions);

  // Neighbour table for international calls: a country's partners are drawn
  // from its own continent weighted by call volume (gravity-ish). For a
  // single-region scope that is the whole weight table — the pre-region-set
  // behaviour, draw for draw. Multi-region scopes additionally keep an
  // away-pool per continent for cross-region calls.
  std::vector<double> volume_weights(world_->countries().size(), 0.0);
  for (const auto c : countries)
    volume_weights[static_cast<std::size_t>(c.value())] = world_->country(c).call_volume;
  const bool multi = options.regions.size() > 1;
  std::vector<std::vector<double>> home_weights;  // [continent]: partners on it
  std::vector<std::vector<double>> away_weights;  // [continent]: partners off it
  if (multi) {
    home_weights.assign(static_cast<std::size_t>(geo::kNumContinents),
                        std::vector<double>(world_->countries().size(), 0.0));
    away_weights = home_weights;
    for (const auto c : countries) {
      const auto& country = world_->country(c);
      for (int r = 0; r < geo::kNumContinents; ++r) {
        auto& pool = r == static_cast<int>(country.continent) ? home_weights : away_weights;
        pool[static_cast<std::size_t>(r)][static_cast<std::size_t>(c.value())] =
            country.call_volume;
      }
    }
  }

  std::int64_t next_call_id = 0;
  for (core::SlotIndex slot = 0; slot < trace.num_slots_; ++slot) {
    const double rate = options.peak_slot_calls *
                        diurnal_factor(slot, options.weekend_factor) /
                        1.03;  // normalize peak of the diurnal curve to ~1
    const int n_calls = rng.poisson(rate);
    for (int k = 0; k < n_calls; ++k) {
      CallRecord rec;
      rec.id = core::CallId(next_call_id++);
      rec.start_slot = slot;
      rec.duration_slots = rng.chance(0.25) ? 2 : 1;

      // Participants.
      CallConfig config;
      const core::CountryId home =
          core::CountryId(static_cast<int>(rng.weighted_pick(volume_weights)));
      int n_participants = 1;
      while (n_participants < options.max_participants &&
             rng.chance(options.participant_decay))
        ++n_participants;

      const auto home_region = static_cast<std::size_t>(world_->country(home).continent);
      const auto& intl_weights = multi ? home_weights[home_region] : volume_weights;
      const bool cross = multi && n_participants >= 2 && options.cross_region_fraction > 0.0 &&
                         rng.chance(options.cross_region_fraction);
      if (cross) {
        // Cross-region call: the far side sits on another continent of the
        // scope (the NA–EU / EU–Asia corridor traffic the paper's global
        // world implies).
        const core::CountryId other =
            core::CountryId(static_cast<int>(rng.weighted_pick(away_weights[home_region])));
        const int first = std::max(1, n_participants / 2);
        config.participants = {{home, first}, {other, n_participants - first}};
        config.canonicalize();
      } else if (rng.chance(options.intra_country_fraction) || n_participants == 1) {
        config.participants = {{home, n_participants}};
      } else {
        // International: split across 2 (sometimes 3) countries.
        core::CountryId other = home;
        while (other == home)
          other = core::CountryId(static_cast<int>(rng.weighted_pick(intl_weights)));
        const int first = std::max(1, n_participants / 2);
        config.participants = {{home, first}, {other, n_participants - first}};
        if (n_participants >= 3 && rng.chance(0.2)) {
          core::CountryId third = home;
          while (third == home || third == other)
            third = core::CountryId(static_cast<int>(rng.weighted_pick(intl_weights)));
          // Move one participant to the third country.
          if (config.participants[1].second > 1) {
            --config.participants[1].second;
            config.participants.push_back({third, 1});
          }
        }
        config.canonicalize();
      }

      // Media type: the config records the dominant media (§6: "we assign
      // call config using the most resource-hungry media type").
      const double u = rng.uniform();
      config.media = u < options.audio_share ? media::MediaType::kAudio
                     : u < options.audio_share + options.video_share
                         ? media::MediaType::kVideo
                         : media::MediaType::kScreenShare;

      rec.config = trace.registry_.intern(config);
      rec.first_joiner = home;
      trace.by_slot_[static_cast<std::size_t>(slot)].push_back(trace.calls_.size());
      trace.calls_.push_back(rec);
    }
  }
  return trace;
}

const std::vector<std::size_t>& Trace::calls_starting_in(core::SlotIndex slot) const {
  return by_slot_.at(static_cast<std::size_t>(slot));
}

std::vector<std::vector<double>> Trace::config_counts() const {
  std::vector<std::vector<double>> counts(
      registry_.size(), std::vector<double>(static_cast<std::size_t>(num_slots_), 0.0));
  for (const auto& call : calls_)
    counts[static_cast<std::size_t>(call.config.value())]
          [static_cast<std::size_t>(call.start_slot)] += 1.0;
  return counts;
}

std::vector<std::vector<double>> Trace::config_active_counts() const {
  std::vector<std::vector<double>> counts(
      registry_.size(), std::vector<double>(static_cast<std::size_t>(num_slots_), 0.0));
  for (const auto& call : calls_) {
    const int end = std::min(num_slots_, call.start_slot + call.duration_slots);
    for (int s = call.start_slot; s < end; ++s)
      counts[static_cast<std::size_t>(call.config.value())][static_cast<std::size_t>(s)] +=
          1.0;
  }
  return counts;
}

std::vector<core::ConfigId> Trace::configs_by_volume() const {
  std::vector<double> totals(registry_.size(), 0.0);
  for (const auto& call : calls_) totals[static_cast<std::size_t>(call.config.value())] += 1.0;
  std::vector<core::ConfigId> ids;
  ids.reserve(registry_.size());
  for (std::size_t i = 0; i < registry_.size(); ++i)
    ids.push_back(core::ConfigId(static_cast<int>(i)));
  std::sort(ids.begin(), ids.end(), [&](core::ConfigId a, core::ConfigId b) {
    return totals[static_cast<std::size_t>(a.value())] >
           totals[static_cast<std::size_t>(b.value())];
  });
  return ids;
}

Trace Trace::assemble(std::vector<CallRecord> calls, ConfigRegistry registry, int num_slots) {
  Trace out;
  out.registry_ = std::move(registry);
  out.num_slots_ = num_slots;
  std::sort(calls.begin(), calls.end(), [](const CallRecord& a, const CallRecord& b) {
    return a.start_slot != b.start_slot ? a.start_slot < b.start_slot : a.id < b.id;
  });
  out.by_slot_.resize(static_cast<std::size_t>(num_slots));
  for (auto& call : calls) {
    if (call.start_slot < 0 || call.start_slot >= num_slots)
      throw std::out_of_range("Trace::assemble: call starts outside [0, num_slots)");
    out.by_slot_[static_cast<std::size_t>(call.start_slot)].push_back(out.calls_.size());
    out.calls_.push_back(call);
  }
  return out;
}

Trace amplify_window(const Trace& trace, int begin_slot, int end_slot, double factor,
                     std::uint64_t seed) {
  if (factor <= 1.0) return trace;
  std::vector<CallRecord> calls = trace.calls();
  std::int64_t next_id = 0;
  for (const auto& call : calls) next_id = std::max<std::int64_t>(next_id, call.id.value() + 1);
  const std::size_t original_count = calls.size();
  const double extra = factor - 1.0;
  const int whole = static_cast<int>(std::floor(extra));
  for (std::size_t i = 0; i < original_count; ++i) {
    const CallRecord call = calls[i];
    if (call.start_slot < begin_slot || call.start_slot >= end_slot) continue;
    int clones = whole;
    core::Rng rng = core::rng_at(seed, 0x0F7D, call.id.value());
    if (rng.chance(extra - whole)) ++clones;
    for (int k = 0; k < clones; ++k) {
      CallRecord clone = call;
      clone.id = core::CallId(next_id++);
      calls.push_back(clone);
    }
  }
  return Trace::assemble(std::move(calls), trace.configs(), trace.num_slots());
}

Trace Trace::window(core::SlotIndex begin, core::SlotIndex end) const {
  Trace out;
  out.registry_ = registry_;
  out.num_slots_ = end - begin;
  out.by_slot_.resize(static_cast<std::size_t>(out.num_slots_));
  for (const auto& call : calls_) {
    if (call.start_slot < begin || call.start_slot >= end) continue;
    CallRecord rec = call;
    rec.start_slot -= begin;
    out.by_slot_[static_cast<std::size_t>(rec.start_slot)].push_back(out.calls_.size());
    out.calls_.push_back(rec);
  }
  return out;
}

}  // namespace titan::workload
