// Call configurations and reduced call configurations (§6, §6.2).
//
// A call config captures the resource requirements of a call: the countries
// of its participants, the participant count per country, and the dominant
// media type (audio < screen-share < video). All calls with the same config
// are fungible. Example: ((France-2, UK-1), Audio).
//
// A *reduced* call config factors scale out of the distribution (§6.2): the
// per-country counts are divided by their GCD, and intra-country calls
// collapse to a single participant — (Germany-2, Audio) and (Germany-3,
// Audio) both reduce to (Germany-1, Audio), so the LP makes one decision
// for both and first-joiner assignment rarely needs a migration. The
// `multiplier` preserves total resource demand: 100 calls of (Germany-2,
// Audio) become 200 reduced-units of (Germany-1, Audio).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/units.h"
#include "geo/world.h"
#include "media/media_types.h"

namespace titan::workload {

struct CallConfig {
  // Sorted by country id; counts > 0.
  std::vector<std::pair<core::CountryId, int>> participants;
  media::MediaType media = media::MediaType::kAudio;

  auto operator<=>(const CallConfig&) const = default;

  [[nodiscard]] int total_participants() const;
  [[nodiscard]] bool intra_country() const { return participants.size() == 1; }
  // Canonical string key, e.g. "FR:2|GB:1|video".
  [[nodiscard]] std::string key(const geo::World& world) const;

  // Resource footprints (the LP's computeUsed / networkUsed helpers).
  [[nodiscard]] core::Cores compute_cores() const;
  [[nodiscard]] core::Mbps network_mbps() const;
  // Bandwidth contributed by participants of one specific country.
  [[nodiscard]] core::Mbps network_mbps_from(core::CountryId country) const;

  // Normalizes: sorts by country and merges duplicates. Call after building.
  void canonicalize();
};

struct ReducedCallConfig {
  CallConfig config;  // the reduced shape
  int multiplier = 1; // reduced-units per original call
};

// §6.2 reduction: GCD factor-out; intra-country collapses to 1 participant.
[[nodiscard]] ReducedCallConfig reduce(const CallConfig& config);

// Registry interning configs to dense ids (used for counting and the LP).
class ConfigRegistry {
 public:
  core::ConfigId intern(const CallConfig& config);
  [[nodiscard]] const CallConfig& get(core::ConfigId id) const;
  [[nodiscard]] std::size_t size() const { return configs_.size(); }

 private:
  struct Hash {
    std::size_t operator()(const CallConfig& c) const;
  };
  std::vector<CallConfig> configs_;
  std::unordered_map<CallConfig, core::ConfigId, Hash> index_;
};

}  // namespace titan::workload
