// Synthetic call-trace generation (§7.3, §8: 4 weeks training + 1 week
// evaluation of Europe-contained calls).
//
// The generator reproduces the statistical structure Titan-Next depends on:
// strong daily and weekly seasonality (weekday double-hump business hours,
// quiet weekends), a heavy-tailed config popularity (most calls are small
// intra-country calls; the top ~3,000 configs cover 90+% of volume), a
// media mix, and mostly-intra-country participation. Each call records its
// first joiner's country — the only information the online controller has
// at assignment time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "core/timegrid.h"
#include "geo/region.h"
#include "geo/world.h"
#include "workload/call_config.h"

namespace titan::workload {

struct CallRecord {
  core::CallId id;
  core::SlotIndex start_slot = 0;
  int duration_slots = 1;
  core::ConfigId config;
  core::CountryId first_joiner;
};

struct TraceOptions {
  std::uint64_t seed = 2024;
  int weeks = 5;  // 4 training + 1 evaluation by convention
  // Expected calls in the busiest weekday slot. The paper sees O(10M) calls
  // per weekday; we scale down while keeping the shape.
  double peak_slot_calls = 1200.0;
  double weekend_factor = 0.25;
  double intra_country_fraction = 0.82;
  // Participant-count distribution: P(n) ~ geometric-ish over [1, max].
  int max_participants = 10;
  double participant_decay = 0.45;
  // Media mix.
  double audio_share = 0.45;
  double video_share = 0.40;  // remainder is screen-share
  // Restrict participants to these continents (the §7/§8 evaluation uses
  // Europe-contained calls; multi-region scopes span several).
  geo::RegionSet regions = geo::Continent::kEurope;
  // Fraction of multi-participant calls whose participants span *two*
  // continents of the region set (NA–EU, EU–Asia corridor calls). Only
  // meaningful for multi-region scopes; a single-region trace is generated
  // by exactly the pre-region-set code path, byte for byte.
  double cross_region_fraction = 0.0;
};

class Trace {
 public:
  [[nodiscard]] const std::vector<CallRecord>& calls() const { return calls_; }
  [[nodiscard]] const ConfigRegistry& configs() const { return registry_; }
  [[nodiscard]] ConfigRegistry& configs() { return registry_; }
  [[nodiscard]] int num_slots() const { return num_slots_; }

  // Calls starting in a slot.
  [[nodiscard]] const std::vector<std::size_t>& calls_starting_in(core::SlotIndex slot) const;

  // counts[config][slot] — calls *starting* in the slot; the series
  // Holt-Winters trains on.
  [[nodiscard]] std::vector<std::vector<double>> config_counts() const;

  // counts[config][slot] — calls *active* in the slot (a call occupies
  // [start, start + duration)). This is what the LP's per-slot capacity and
  // peak constraints should see.
  [[nodiscard]] std::vector<std::vector<double>> config_active_counts() const;

  // Config ids ordered by descending total call count (the paper predicts
  // the top 3,000 covering 90+% of calls).
  [[nodiscard]] std::vector<core::ConfigId> configs_by_volume() const;

  // Restricts to a window of slots [begin, end) re-based at slot 0.
  [[nodiscard]] Trace window(core::SlotIndex begin, core::SlotIndex end) const;

  // Builds a trace from explicit parts (scenario tooling: e.g. flash-crowd
  // injection clones calls into an existing trace). Calls are re-sorted by
  // (start slot, id); the per-slot index is rebuilt.
  [[nodiscard]] static Trace assemble(std::vector<CallRecord> calls, ConfigRegistry registry,
                                      int num_slots);

  friend class TraceGenerator;

 private:
  std::vector<CallRecord> calls_;
  ConfigRegistry registry_;
  std::vector<std::vector<std::size_t>> by_slot_;
  int num_slots_ = 0;
};

// Overload amplification (the sim's overload regime): every call starting in
// [begin_slot, end_slot) is cloned (factor - 1) whole times plus a
// fractional-remainder coin per call, with fresh ids past the trace's id
// range and the config registry shared. Unlike a flash-crowd surge this is
// region-wide — every country in the trace scales — which is what pushes
// *aggregate* demand past anchored DC capacity rather than shifting load
// between DCs. Deterministic: the remainder coin is a pure hash of
// (seed, source call id). factor <= 1 returns the trace unchanged.
[[nodiscard]] Trace amplify_window(const Trace& trace, int begin_slot, int end_slot,
                                   double factor, std::uint64_t seed);

class TraceGenerator {
 public:
  explicit TraceGenerator(const geo::World& world) : world_(&world) {}

  [[nodiscard]] Trace generate(const TraceOptions& options) const;

  // Diurnal intensity multiplier for a slot (exposed for tests).
  [[nodiscard]] static double diurnal_factor(core::SlotIndex slot, double weekend_factor);

 private:
  const geo::World* world_;
};

}  // namespace titan::workload
