#include "core/timegrid.h"

#include <array>
#include <cstdio>

namespace titan::core {

namespace {
constexpr std::array<const char*, 7> kNames = {
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"};
constexpr std::array<const char*, 7> kShort = {"Mon", "Tue", "Wed", "Thu",
                                               "Fri", "Sat", "Sun"};
}  // namespace

std::string weekday_name(Weekday w) { return kNames[static_cast<int>(w)]; }
std::string weekday_short_name(Weekday w) { return kShort[static_cast<int>(w)]; }

std::string slot_label(SlotIndex slot) {
  char buf[32];
  const int minutes = (slot % kSlotsPerHour) * 30;
  std::snprintf(buf, sizeof(buf), "d%02d %02d:%02d", day_of(slot), hour_of(slot), minutes);
  return buf;
}

}  // namespace titan::core
