// Discrete time grid.
//
// Titan-Next plans in 30-minute timeslots over a 24-hour horizon (48 slots),
// re-planned every slot; measurements aggregate hourly; traces span weeks.
// `TimeGrid` converts between absolute slot indices and (day, hour, slot)
// coordinates and knows which days are weekends.
#pragma once

#include <cstdint>
#include <string>

namespace titan::core {

// Index of a 30-minute slot counted from the start of the trace. The trace
// conventionally starts on a Monday at 00:00.
using SlotIndex = std::int32_t;

constexpr int kSlotsPerHour = 2;
constexpr int kHoursPerDay = 24;
constexpr int kSlotsPerDay = kSlotsPerHour * kHoursPerDay;  // 48
constexpr int kDaysPerWeek = 7;
constexpr int kSlotsPerWeek = kSlotsPerDay * kDaysPerWeek;  // 336
constexpr double kSlotMinutes = 30.0;
constexpr double kSlotSeconds = kSlotMinutes * 60.0;

enum class Weekday { kMonday = 0, kTuesday, kWednesday, kThursday, kFriday, kSaturday, kSunday };

[[nodiscard]] constexpr int day_of(SlotIndex slot) { return slot / kSlotsPerDay; }
[[nodiscard]] constexpr int slot_in_day(SlotIndex slot) { return slot % kSlotsPerDay; }
[[nodiscard]] constexpr int hour_of(SlotIndex slot) { return slot_in_day(slot) / kSlotsPerHour; }
[[nodiscard]] constexpr Weekday weekday_of(SlotIndex slot) {
  return static_cast<Weekday>(day_of(slot) % kDaysPerWeek);
}
[[nodiscard]] constexpr bool is_weekend(SlotIndex slot) {
  const Weekday w = weekday_of(slot);
  return w == Weekday::kSaturday || w == Weekday::kSunday;
}
[[nodiscard]] constexpr SlotIndex slot_at(int day, int hour, int half) {
  return day * kSlotsPerDay + hour * kSlotsPerHour + half;
}

[[nodiscard]] std::string weekday_name(Weekday w);
[[nodiscard]] std::string weekday_short_name(Weekday w);
// "d02 13:30" style label for log output.
[[nodiscard]] std::string slot_label(SlotIndex slot);

}  // namespace titan::core
