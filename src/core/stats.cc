#include "core/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace titan::core {

namespace {
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}
}  // namespace

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

std::vector<double> quantiles(std::vector<double> values, const std::vector<double>& qs) {
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(values, q));
  return out;
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double mean(const std::vector<double>& values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double rmse(const std::vector<double>& actual, const std::vector<double>& predicted) {
  if (actual.size() != predicted.size())
    throw std::invalid_argument("rmse: size mismatch");
  if (actual.empty()) return std::numeric_limits<double>::quiet_NaN();
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(actual.size()));
}

double mae(const std::vector<double>& actual, const std::vector<double>& predicted) {
  if (actual.size() != predicted.size())
    throw std::invalid_argument("mae: size mismatch");
  if (actual.empty()) return std::numeric_limits<double>::quiet_NaN();
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) acc += std::abs(actual[i] - predicted[i]);
  return acc / static_cast<double>(actual.size());
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const { return quantile_sorted(sorted_, q); }

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(std::size_t points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1 ? 1.0
                                 : static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({quantile_sorted(sorted_, q), q});
  }
  return out;
}

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Accumulator::mean() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : mean_;
}

double Accumulator::variance() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                     : m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double Accumulator::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

}  // namespace titan::core
