// Summary statistics used by the measurement analyses and the evaluation.
//
// The paper reports hourly medians, CDFs, P50/P90/P95 quantiles, means, and
// normalized errors; this header provides those primitives over plain
// vectors of doubles plus a small streaming accumulator.
#pragma once

#include <cstddef>
#include <vector>

namespace titan::core {

// Quantile of a sample using linear interpolation between order statistics
// (the common "type 7" definition). `q` in [0, 1]. Returns NaN for empty
// input. The input is copied; use quantiles() for several cuts at once.
[[nodiscard]] double quantile(std::vector<double> values, double q);

// Several quantiles with a single sort.
[[nodiscard]] std::vector<double> quantiles(std::vector<double> values,
                                            const std::vector<double>& qs);

[[nodiscard]] double median(std::vector<double> values);
[[nodiscard]] double mean(const std::vector<double>& values);
[[nodiscard]] double stddev(const std::vector<double>& values);

// Root-mean-square error and mean absolute error between two equal-length
// series. Used to score Holt-Winters forecasts (Fig. 20).
[[nodiscard]] double rmse(const std::vector<double>& actual,
                          const std::vector<double>& predicted);
[[nodiscard]] double mae(const std::vector<double>& actual,
                         const std::vector<double>& predicted);

// Empirical CDF: sorted support points with cumulative probabilities.
// Evaluation at arbitrary x uses a step function (fraction of samples <= x).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  // P(X <= x).
  [[nodiscard]] double at(double x) const;

  // Inverse CDF (quantile) with linear interpolation.
  [[nodiscard]] double quantile(double q) const;

  // Evenly spaced (x, cdf) points suitable for printing a CDF series.
  struct Point {
    double x;
    double p;
  };
  [[nodiscard]] std::vector<Point> curve(std::size_t points) const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

// Streaming accumulator for count/mean/min/max/variance (Welford).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bin histogram over [lo, hi); values outside clamp to the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double bin_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace titan::core
