// Deterministic random number generation.
//
// All stochastic components of the reproduction (world synthesis, latency
// noise, loss episodes, call arrivals) draw from this generator so that every
// test, example, and benchmark is reproducible from an explicit seed. We
// implement xoshiro256++ seeded via splitmix64 rather than using
// std::mt19937 so the stream is identical across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace titan::core {

// splitmix64: used to expand a single 64-bit seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

// xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5a17a9d5c0ffee01ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev);

  // Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  // Exponential with the given rate (mean = 1/rate).
  double exponential(double rate);

  // Bernoulli trial.
  bool chance(double p);

  // Poisson-distributed count (Knuth for small means, normal approx above 64).
  int poisson(double mean);

  // Zipf-like rank sampling over [0, n): probability of rank r proportional
  // to 1 / (r + 1)^s. Used for call-config popularity.
  int zipf(int n, double s);

  // Pick an index in [0, weights.size()) proportionally to weights.
  // Zero-weight entries are never picked; total weight must be positive.
  std::size_t weighted_pick(const std::vector<double>& weights);

  // Derive an independent child generator (stable function of parent seed
  // and `stream`), for giving each subsystem its own stream.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace titan::core
