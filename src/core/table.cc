#include "core/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace titan::core {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) out << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace titan::core
