// Plain-text table rendering for benchmark and example output.
//
// The bench binaries print the same rows/series the paper's tables and
// figures report; this tiny renderer right-pads columns so the output is
// legible in a terminal and diff-friendly in CI.
#pragma once

#include <string>
#include <vector>

namespace titan::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);  // 0.25 -> "25.0%"

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace titan::core
