#include "core/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace titan::core {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::chance(double p) { return uniform() < p; }

int Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction, clipped at zero.
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.5 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = uniform();
  int count = 0;
  while (product > limit) {
    product *= uniform();
    ++count;
  }
  return count;
}

int Rng::zipf(int n, double s) {
  assert(n > 0);
  // Inverse-CDF over precomputation would be faster, but configs are small;
  // a linear walk over the normalized harmonic weights is adequate and exact.
  double total = 0.0;
  for (int r = 0; r < n; ++r) total += 1.0 / std::pow(r + 1, s);
  double target = uniform() * total;
  for (int r = 0; r < n; ++r) {
    target -= 1.0 / std::pow(r + 1, s);
    if (target <= 0.0) return r;
  }
  return n - 1;
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("weighted_pick: total weight must be > 0");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0 && weights[i] > 0.0) return i;
  }
  // Floating-point slack: return the last positive-weight entry.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  throw std::logic_error("weighted_pick: unreachable");
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the parent's seed with the stream id through splitmix so that
  // distinct streams are decorrelated regardless of draw order.
  std::uint64_t mix = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  const std::uint64_t child_seed = splitmix64(mix);
  return Rng(child_seed);
}

}  // namespace titan::core
