// Deterministic key hashing.
//
// The network ground-truth models answer queries like "what was the loss on
// the Internet path from France to the Netherlands DC in slot 137?" without
// storing per-slot state: each answer is drawn from an Rng seeded by a hash
// of the query key. The same key always yields the same value, time series
// are stable regardless of query order, and memory stays O(1).
#pragma once

#include <cstdint>

#include "core/rng.h"

namespace titan::core {

// Mixes a value into a running 64-bit hash (splitmix-style finalizer).
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  std::uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

template <typename... Parts>
[[nodiscard]] constexpr std::uint64_t hash_key(std::uint64_t seed, Parts... parts) {
  std::uint64_t h = seed;
  ((h = hash_mix(h, static_cast<std::uint64_t>(parts))), ...);
  return h;
}

// An Rng whose stream is a pure function of the key parts.
template <typename... Parts>
[[nodiscard]] Rng rng_at(std::uint64_t seed, Parts... parts) {
  return Rng(hash_key(seed, parts...));
}

}  // namespace titan::core
