// Lightweight unit wrappers used throughout the reproduction.
//
// Latency is carried in milliseconds, bandwidth in megabits/second, loss as a
// fraction in [0, 1]. These are plain doubles with named accessors rather
// than full dimensional types: the codebase converts between units rarely,
// and the paper reports everything in msec / Gbps / percent.
#pragma once

namespace titan::core {

// Milliseconds of one-way or round-trip delay depending on context; all
// public APIs document which they mean.
using Millis = double;

// Megabits per second. WAN link peaks in the paper are Tbps; we keep Mbps as
// the base unit and convert at the reporting layer.
using Mbps = double;

// Loss fraction in [0, 1] (0.001 == 0.1%).
using LossFraction = double;

// Cores of MP compute.
using Cores = double;

constexpr double kMbpsPerGbps = 1000.0;
constexpr double kMbpsPerTbps = 1000.0 * 1000.0;

[[nodiscard]] constexpr double mbps_to_gbps(Mbps v) { return v / kMbpsPerGbps; }
[[nodiscard]] constexpr double mbps_to_tbps(Mbps v) { return v / kMbpsPerTbps; }
[[nodiscard]] constexpr double loss_to_percent(LossFraction f) { return f * 100.0; }
[[nodiscard]] constexpr LossFraction percent_to_loss(double pct) { return pct / 100.0; }

}  // namespace titan::core
