// Strong identifier types shared across the Titan / Titan-Next reproduction.
//
// Every entity in the system (country, city, ASN, data center, WAN link,
// transit ISP, call, participant) is referred to by a small integer id that
// indexes into the owning registry. Wrapping the integer in a distinct type
// prevents the classic bug of passing a city index where a country index was
// expected; comparisons and hashing are provided so ids can key maps.
#pragma once

#include <cstdint>
#include <functional>

namespace titan::core {

// CRTP-free strong id: distinct `Tag` types make distinct, non-convertible
// id types while sharing all the boilerplate.
template <typename Tag, typename Rep = std::int32_t>
class Id {
 public:
  using rep_type = Rep;

  constexpr Id() = default;
  constexpr explicit Id(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

  static constexpr Id invalid() { return Id(Rep{-1}); }

 private:
  Rep value_ = -1;
};

struct CountryTag {};
struct CityTag {};
struct AsnTag {};
struct DcTag {};
struct PopTag {};      // WAN point-of-presence.
struct LinkTag {};     // WAN backbone link.
struct TransitTag {};  // Transit ISP peering at a DC.
struct CallTag {};
struct ParticipantTag {};
struct ConfigTag {};  // Call config (and reduced call config) ids.

using CountryId = Id<CountryTag>;
using CityId = Id<CityTag>;
using AsnId = Id<AsnTag>;
using DcId = Id<DcTag>;
using PopId = Id<PopTag>;
using LinkId = Id<LinkTag>;
using TransitId = Id<TransitTag>;
using CallId = Id<CallTag, std::int64_t>;
using ParticipantId = Id<ParticipantTag, std::int64_t>;
using ConfigId = Id<ConfigTag>;

}  // namespace titan::core

namespace std {
template <typename Tag, typename Rep>
struct hash<titan::core::Id<Tag, Rep>> {
  size_t operator()(titan::core::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
