#include "titannext/plan.h"

namespace titan::titannext {

OfflinePlan::OfflinePlan(const PlanInputs* inputs, LpPlanResult result)
    : inputs_(inputs), result_(std::move(result)) {
  if (inputs_ == nullptr) return;
  dc_pos_.assign(inputs_->net().world().dcs().size(), -1);
  const auto& dcs = inputs_->dcs();
  for (std::size_t i = 0; i < dcs.size(); ++i)
    dc_pos_[static_cast<std::size_t>(dcs[i].value())] = static_cast<int>(i);
  credits_.resize(inputs_->demands().size());
}

std::size_t OfflinePlan::credit_slots() const {
  return inputs_->dcs().size() * static_cast<std::size_t>(net::kNumPathTypes);
}

const AssignmentWeights* OfflinePlan::weights_for(int demand_idx, core::SlotIndex t) const {
  if (!valid()) return nullptr;
  if (t < 0 || t >= static_cast<int>(result_.weights.size())) return nullptr;
  const auto& row = result_.weights[static_cast<std::size_t>(t)];
  if (demand_idx < 0 || demand_idx >= static_cast<int>(row.size())) return nullptr;
  const auto& w = row[static_cast<std::size_t>(demand_idx)];
  return w.entries.empty() ? nullptr : &w;
}

std::optional<Assignment> OfflinePlan::pick(int demand_idx, core::SlotIndex t,
                                            core::Rng& rng) const {
  const AssignmentWeights* w = weights_for(demand_idx, t);
  if (w == nullptr) return std::nullopt;

  double total = 0.0;
  for (const auto& e : w->entries) total += e.units;
  // All-zero (or non-finite) units: treat as out of plan. The LP can emit
  // ~0-weight entries; dividing by their zero sum would install NaN
  // credits that poison every later pick of this demand.
  if (!(total > 0.0)) return std::nullopt;

  auto& credits = credits_[static_cast<std::size_t>(demand_idx)];
  if (credits.empty()) credits.assign(credit_slots(), 0.0);

  // Smooth weighted round-robin: every entry earns credit proportional to
  // its plan share at this slot; the richest entry serves this call and
  // pays one unit. Credits persist across slots for the demand.
  const auto slot_of = [&](const AssignmentWeights::Entry& e) {
    return static_cast<std::size_t>(dc_pos_[static_cast<std::size_t>(e.dc.value())]) *
               static_cast<std::size_t>(net::kNumPathTypes) +
           static_cast<std::size_t>(e.path);
  };
  std::size_t best = 0;
  double best_credit = -1e300;
  for (std::size_t i = 0; i < w->entries.size(); ++i) {
    double& c = credits[slot_of(w->entries[i])];
    c += w->entries[i].units / total;
    const double jitter = 1e-12 * rng.uniform();  // break exact ties
    if (c + jitter > best_credit) {
      best_credit = c + jitter;
      best = i;
    }
  }
  credits[slot_of(w->entries[best])] -= 1.0;
  const auto& e = w->entries[best];
  return Assignment{e.dc, e.path};
}

std::optional<Assignment> OfflinePlan::pick(const workload::CallConfig& reduced_shape,
                                            core::SlotIndex t, core::Rng& rng) const {
  if (!valid()) return std::nullopt;
  return pick(inputs_->demand_index(reduced_shape), t, rng);
}

bool OfflinePlan::supports(int demand_idx, core::SlotIndex t, core::DcId dc) const {
  const AssignmentWeights* w = weights_for(demand_idx, t);
  if (w == nullptr) return false;
  for (const auto& e : w->entries)
    if (e.dc == dc) return true;
  return false;
}

bool OfflinePlan::supports(const workload::CallConfig& reduced_shape, core::SlotIndex t,
                           core::DcId dc) const {
  if (!valid()) return false;
  return supports(inputs_->demand_index(reduced_shape), t, dc);
}

void OfflinePlan::carry_credits_from(const OfflinePlan& prev) {
  if (!valid() || prev.inputs_ == nullptr || prev.credits_.empty()) return;
  const auto& demands = inputs_->demands();
  const auto& dcs = inputs_->dcs();
  for (std::size_t d = 0; d < demands.size() && d < credits_.size(); ++d) {
    // Demands match by shape: the top-K cut and its ordering move between
    // generations, the shapes themselves are the stable identity.
    const int pidx = prev.inputs_->demand_index(demands[d].config);
    if (pidx < 0 || static_cast<std::size_t>(pidx) >= prev.credits_.size()) continue;
    const auto& prow = prev.credits_[static_cast<std::size_t>(pidx)];
    if (prow.empty()) continue;
    auto& row = credits_[d];
    row.assign(credit_slots(), 0.0);
    for (std::size_t i = 0; i < dcs.size(); ++i) {
      const std::size_t id = static_cast<std::size_t>(dcs[i].value());
      const int ppos = id < prev.dc_pos_.size() ? prev.dc_pos_[id] : -1;
      if (ppos < 0) continue;
      for (int p = 0; p < net::kNumPathTypes; ++p)
        row[i * static_cast<std::size_t>(net::kNumPathTypes) + static_cast<std::size_t>(p)] =
            prow[static_cast<std::size_t>(ppos) * static_cast<std::size_t>(net::kNumPathTypes) +
                 static_cast<std::size_t>(p)];
    }
  }
}

}  // namespace titan::titannext
