#include "titannext/plan.h"

namespace titan::titannext {

const AssignmentWeights* OfflinePlan::weights_for(const workload::CallConfig& shape,
                                                  core::SlotIndex t) const {
  if (!valid()) return nullptr;
  if (t < 0 || t >= static_cast<int>(result_.weights.size())) return nullptr;
  const int idx = inputs_->demand_index(shape);
  if (idx < 0) return nullptr;
  const auto& w =
      result_.weights[static_cast<std::size_t>(t)][static_cast<std::size_t>(idx)];
  return w.entries.empty() ? nullptr : &w;
}

std::optional<Assignment> OfflinePlan::pick(const workload::CallConfig& reduced_shape,
                                            core::SlotIndex t, core::Rng& rng) const {
  const AssignmentWeights* w = weights_for(reduced_shape, t);
  if (w == nullptr) return std::nullopt;

  const int idx = inputs_->demand_index(reduced_shape);
  auto& credits = credits_[idx];

  double total = 0.0;
  for (const auto& e : w->entries) total += e.units;

  // Smooth weighted round-robin: every entry earns credit proportional to
  // its plan share at this slot; the richest entry serves this call and
  // pays one unit. Credits persist across slots for the config.
  std::size_t best = 0;
  double best_credit = -1e300;
  for (std::size_t i = 0; i < w->entries.size(); ++i) {
    const auto key = std::make_pair(w->entries[i].dc.value(),
                                    static_cast<int>(w->entries[i].path));
    double& c = credits[key];
    c += w->entries[i].units / total;
    const double jitter = 1e-12 * rng.uniform();  // break exact ties
    if (c + jitter > best_credit) {
      best_credit = c + jitter;
      best = i;
    }
  }
  credits[{w->entries[best].dc.value(), static_cast<int>(w->entries[best].path)}] -= 1.0;
  const auto& e = w->entries[best];
  return Assignment{e.dc, e.path};
}

bool OfflinePlan::supports(const workload::CallConfig& reduced_shape, core::SlotIndex t,
                           core::DcId dc) const {
  const AssignmentWeights* w = weights_for(reduced_shape, t);
  if (w == nullptr) return false;
  for (const auto& e : w->entries)
    if (e.dc == dc) return true;
  return false;
}

}  // namespace titan::titannext
