// Offline precomputed assignment plan (§6.1 building block 4).
//
// Wraps the LP solution into the runtime lookup structure the online
// controller uses: for a (timeslot, reduced config) it exposes the
// fractional assignment weights over (MP DC, routing option) and supports
// weighted-random picks (§6.4: "use all the counts ... as weights and use
// weighted random to pick the assignment").
#pragma once

#include <optional>

#include "core/rng.h"
#include "titannext/lp_builder.h"

namespace titan::titannext {

struct Assignment {
  core::DcId dc;
  net::PathType path = net::PathType::kWan;
};

class OfflinePlan {
 public:
  OfflinePlan() = default;
  OfflinePlan(const PlanInputs* inputs, LpPlanResult result)
      : inputs_(inputs), result_(std::move(result)) {}

  [[nodiscard]] bool valid() const {
    return inputs_ != nullptr && result_.status == lp::SolveStatus::kOptimal;
  }
  [[nodiscard]] const LpPlanResult& result() const { return result_; }

  // Assignment draw for the reduced shape at slot t; nullopt when the shape
  // is out of plan scope or the plan has no units for it at t.
  //
  // The paper's controller uses the plan counts as weights for a weighted-
  // random pick (§6.4); at production scale (millions of calls) the law of
  // large numbers makes the realized split match the plan. Our scaled-down
  // traces have thousands of calls, where independent random draws would
  // inflate the realized per-link peaks well above the fractional optimum,
  // so we realize the same distribution deterministically with smooth
  // weighted round-robin (per-entry credit counters). `rng` only breaks
  // exact credit ties.
  [[nodiscard]] std::optional<Assignment> pick(const workload::CallConfig& reduced_shape,
                                               core::SlotIndex t, core::Rng& rng) const;

  // True when `dc` carries positive weight for the shape at slot t — the
  // controller keeps a call where it is if its current DC is in the plan's
  // support, avoiding gratuitous migrations.
  [[nodiscard]] bool supports(const workload::CallConfig& reduced_shape, core::SlotIndex t,
                              core::DcId dc) const;

 private:
  [[nodiscard]] const AssignmentWeights* weights_for(const workload::CallConfig& shape,
                                                     core::SlotIndex t) const;

  const PlanInputs* inputs_ = nullptr;
  LpPlanResult result_;
  // Smooth-WRR credit state per demand index, keyed by (dc, path) so the
  // smoothing carries across timeslots: with only a handful of calls per
  // (slot, config) cell, per-slot exactness is impossible and cross-slot
  // smoothing realizes the plan's mix over the day instead.
  mutable std::map<int, std::map<std::pair<int, int>, double>> credits_;
};

}  // namespace titan::titannext
