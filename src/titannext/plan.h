// Offline precomputed assignment plan (§6.1 building block 4).
//
// Wraps the LP solution into the runtime lookup structure the online
// controller uses: for a (timeslot, reduced config) it exposes the
// fractional assignment weights over (MP DC, routing option) and supports
// weighted-random picks (§6.4: "use all the counts ... as weights and use
// weighted random to pick the assignment").
//
// The hot-path API is id-based: callers resolve a shape to its demand
// index ONCE per call (PlanInputs::demand_index or the controller's
// cached/flat-table ids) and then pick/supports are pure array walks. The
// shape-based overloads remain for cold paths (policies, evacuation
// retargeting) and simply resolve-then-delegate.
#pragma once

#include <optional>

#include "core/rng.h"
#include "titannext/lp_builder.h"

namespace titan::titannext {

struct Assignment {
  core::DcId dc;
  net::PathType path = net::PathType::kWan;
  // An assignment with no live DC to land on — the controller's explicit
  // reject result when every in-scope DC is fully drained.
  [[nodiscard]] bool valid() const { return dc.valid(); }
};

class OfflinePlan {
 public:
  OfflinePlan() = default;
  OfflinePlan(const PlanInputs* inputs, LpPlanResult result);

  [[nodiscard]] bool valid() const {
    return inputs_ != nullptr && result_.status == lp::SolveStatus::kOptimal;
  }
  [[nodiscard]] const LpPlanResult& result() const { return result_; }

  // Assignment draw for the demand at slot t; nullopt when the demand is
  // out of plan scope or the plan has no units for it at t (an all-zero
  // weight row counts as "no units": dividing by a zero total would poison
  // the credit state with NaNs).
  //
  // The paper's controller uses the plan counts as weights for a weighted-
  // random pick (§6.4); at production scale (millions of calls) the law of
  // large numbers makes the realized split match the plan. Our scaled-down
  // traces have thousands of calls, where independent random draws would
  // inflate the realized per-link peaks well above the fractional optimum,
  // so we realize the same distribution deterministically with smooth
  // weighted round-robin (per-entry credit counters). `rng` only breaks
  // exact credit ties.
  [[nodiscard]] std::optional<Assignment> pick(int demand_idx, core::SlotIndex t,
                                               core::Rng& rng) const;
  [[nodiscard]] std::optional<Assignment> pick(const workload::CallConfig& reduced_shape,
                                               core::SlotIndex t, core::Rng& rng) const;

  // True when `dc` carries positive weight for the demand at slot t — the
  // controller keeps a call where it is if its current DC is in the plan's
  // support, avoiding gratuitous migrations.
  [[nodiscard]] bool supports(int demand_idx, core::SlotIndex t, core::DcId dc) const;
  [[nodiscard]] bool supports(const workload::CallConfig& reduced_shape, core::SlotIndex t,
                              core::DcId dc) const;

  // Carries `prev`'s smooth-WRR credit state into this (freshly
  // constructed) plan, matching demands by shape and credit entries by
  // (dc, path) — the keying credits always had. The replan loop calls this
  // at every plan swap so smoothing spans plan generations instead of
  // restarting: at a rolling cadence a restart every interval lets the
  // realized mix drift toward round-robin and away from the plan's
  // weights. `prev`'s inputs must still be alive (call before releasing
  // the previous generation). A default-constructed or invalid `prev` is a
  // no-op.
  void carry_credits_from(const OfflinePlan& prev);

 private:
  [[nodiscard]] const AssignmentWeights* weights_for(int demand_idx, core::SlotIndex t) const;
  [[nodiscard]] std::size_t credit_slots() const;

  const PlanInputs* inputs_ = nullptr;
  LpPlanResult result_;
  // dc id value -> dense position in inputs_->dcs(); -1 out of scope.
  std::vector<int> dc_pos_;
  // Smooth-WRR credit state, [demand][dc_pos * net::kNumPathTypes + path],
  // rows allocated on first pick of the demand. Keyed by (dc, path) so the
  // smoothing carries across timeslots: with only a handful of calls per
  // (slot, config) cell, per-slot exactness is impossible and cross-slot
  // smoothing realizes the plan's mix over the day instead.
  mutable std::vector<std::vector<double>> credits_;
};

}  // namespace titan::titannext
