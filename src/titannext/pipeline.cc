#include "titannext/pipeline.h"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace titan::titannext {

ForecastOutput forecast_counts(const std::vector<std::vector<double>>& history,
                               int history_end, int horizon, int top_k) {
  const auto t0 = std::chrono::steady_clock::now();
  ForecastOutput out;
  out.counts.assign(history.size(), std::vector<double>(static_cast<std::size_t>(horizon), 0.0));

  // Rank configs by training volume.
  std::vector<std::size_t> order(history.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> totals(history.size(), 0.0);
  for (std::size_t c = 0; c < history.size(); ++c)
    for (int t = 0; t < history_end && t < static_cast<int>(history[c].size()); ++t)
      totals[c] += history[c][static_cast<std::size_t>(t)];
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return totals[a] > totals[b]; });

  const int season = core::kSlotsPerWeek;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t c = order[rank];
    const std::vector<double> series(history[c].begin(),
                                     history[c].begin() + history_end);
    if (static_cast<int>(rank) < top_k && history_end >= 2 * season && totals[c] > 0.0) {
      const auto fit = forecast::HoltWinters::fit_auto(series, season);
      out.counts[c] = forecast::HoltWinters::forecast(fit, horizon);
      ++out.hw_configs;
    } else {
      // Persistence: same slot one week earlier (zeros when history short).
      for (int h = 0; h < horizon; ++h) {
        const int src = history_end + h - season;
        out.counts[c][static_cast<std::size_t>(h)] =
            (src >= 0 && src < history_end) ? series[static_cast<std::size_t>(src)] : 0.0;
      }
    }
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

TitanNextPipeline::TitanNextPipeline(const net::NetworkDb& net,
                                     std::map<std::pair<int, int>, double> internet_fractions,
                                     const PipelineOptions& options)
    : net_(&net), fractions_(std::move(internet_fractions)), options_(options) {}

DayPlan TitanNextPipeline::plan_from_counts(const workload::Trace& trace,
                                            const std::vector<std::vector<double>>& counts,
                                            double forecast_seconds,
                                            WarmStartCache* warm) const {
  DayPlan day;
  day.forecast_seconds = forecast_seconds;

  // Tight provisioning plus forecast error can make the plan infeasible
  // (compute cap or E2E bound); production would scale MP servers for a
  // surge (§6.4 "handling surge in calls"). Mirror that: retry with
  // progressively relaxed compute headroom and E2E bound.
  PlanScope scope = options_.scope;
  LpBuildOptions lp = options_.lp;
  for (int attempt = 0; attempt < 3; ++attempt) {
    day.inputs = std::make_unique<PlanInputs>(*net_, scope, fractions_);
    day.inputs->set_demand(trace.configs(), counts, options_.use_reduction);
    LpPlanResult result = solve_plan(*day.inputs, lp, warm);
    day.lp_seconds += result.solve_seconds;
    day.lp_build_seconds += result.build_seconds;
    day.lp_phase1_seconds += result.phase1_seconds;
    day.lp_phase2_seconds += result.phase2_seconds;
    day.lp_refactor_seconds += result.refactor_seconds;
    day.lp_refactorizations = result.refactorizations;
    day.lp_iterations = result.iterations;
    day.lp_phase1_iterations = result.phase1_iterations;
    day.lp_dual_iterations = result.dual_iterations;
    day.lp_blocks_solved = result.blocks_solved;
    day.lp_pruned_columns = result.pruned_columns;
    day.lp_warm_started = result.warm_started;
    day.lp_attempts = attempt + 1;
    if (result.status != lp::SolveStatus::kInfeasible) {
      day.plan = OfflinePlan(day.inputs.get(), std::move(result));
      return day;
    }
    scope.compute_headroom *= 1.3;
    if (lp.e2e_bound_ms > 0.0) lp.e2e_bound_ms *= 1.3;
  }
  day.plan = OfflinePlan(day.inputs.get(), LpPlanResult{});
  return day;
}

DayPlan TitanNextPipeline::plan_day_oracle(const workload::Trace& trace,
                                           core::SlotIndex day_begin) const {
  const int horizon = options_.scope.timeslots;
  const auto all_counts = trace.config_active_counts();
  std::vector<std::vector<double>> window(all_counts.size(),
                                          std::vector<double>(static_cast<std::size_t>(horizon), 0.0));
  for (std::size_t c = 0; c < all_counts.size(); ++c)
    for (int h = 0; h < horizon; ++h) {
      const int t = day_begin + h;
      if (t < static_cast<int>(all_counts[c].size()))
        window[c][static_cast<std::size_t>(h)] = all_counts[c][static_cast<std::size_t>(t)];
    }
  return plan_from_counts(trace, window, 0.0);
}

DayPlan TitanNextPipeline::plan_day_forecast(const workload::Trace& trace,
                                             core::SlotIndex day_begin) const {
  const int horizon = options_.scope.timeslots;
  const auto all_counts = trace.config_active_counts();
  const ForecastOutput fc =
      forecast_counts(all_counts, day_begin, horizon, options_.top_k_forecast);
  return plan_from_counts(trace, fc.counts, fc.seconds);
}

}  // namespace titan::titannext
