#include "titannext/controller.h"

#include <algorithm>
#include <limits>

#include "core/hash.h"

namespace titan::titannext {

OnlineController::OnlineController(const PlanInputs& inputs, const OfflinePlan& plan,
                                   const ControllerOptions& options)
    : inputs_(&inputs), plan_(&plan), options_(options) {
  recent_.resize(inputs.net().world().countries().size() *
                 static_cast<std::size_t>(media::kMediaTypeCount));
}

void OnlineController::rebind(const PlanInputs& inputs, const OfflinePlan& plan) {
  inputs_ = &inputs;
  plan_ = &plan;
  reindex();
}

void OnlineController::reindex() {
  // The remembered shapes outlive plan generations but their cached demand
  // ids do not: the new generation's top-K cut and ordering differ.
  for (auto& r : recent_)
    if (r.valid) r.demand_idx = inputs_->demand_index(r.config);
}

Assignment OnlineController::fallback(core::CountryId country) const {
  return fallback(country, core::DcId::invalid());
}

Assignment OnlineController::fallback(core::CountryId country, core::DcId exclude) const {
  core::DcId best = core::DcId::invalid();
  double best_rtt = std::numeric_limits<double>::infinity();
  // Preference order: a live DC other than `exclude`; then the (live)
  // excluded DC — a partially drained DC beats a fully drained one. There
  // is deliberately no third pass: when every in-scope DC is fully drained
  // the result keeps an invalid DC — an explicit reject — rather than
  // silently assigning to capacity that does not exist.
  for (int pass = 0; pass < 2 && !best.valid(); ++pass) {
    for (const auto dc : inputs_->dcs()) {
      if (inputs_->net().dc_compute_scale(dc) <= 0.0) continue;
      if (pass < 1 && dc == exclude) continue;
      const double rtt = inputs_->net().latency().base_rtt_ms(country, dc, net::PathType::kWan);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = dc;
      }
    }
  }
  return Assignment{best, net::PathType::kWan};
}

void OnlineController::set_admission_state(const std::vector<double>& region_load_ratio) {
  region_load_ = region_load_ratio;
}

AdmissionDecision OnlineController::admit(geo::Continent region, core::CallId call,
                                          media::MediaType media) const {
  AdmissionDecision out;
  const AdmissionPolicy& pol = options_.admission;
  if (!pol.enabled) return out;
  const auto idx = static_cast<std::size_t>(region);
  const double rho = idx < region_load_.size() ? region_load_[idx] : 0.0;
  if (rho <= pol.degrade_threshold) return out;
  if (rho > pol.reject_threshold) {
    // Admitting a 1/rho fraction of offered calls brings realized load back
    // to capacity, so shed the complement — each region sheds only in
    // proportion to its own overshoot (per-region fairness), capped at
    // max_shed so no region is starved outright.
    const double p = std::min(pol.max_shed, (rho - pol.reject_threshold) / rho);
    if (core::rng_at(pol.seed, 0xADC0, static_cast<std::uint64_t>(call.value())).chance(p)) {
      out.admit = false;
      return out;
    }
  }
  // Degrade band, and survivors of the shed coin: step the media shape down
  // one rung, two once past the middle of the band, capped at the audio
  // floor. Degradation always engages before rejection because
  // degrade_threshold < reject_threshold.
  const double band_mid =
      pol.degrade_threshold + 0.5 * (pol.reject_threshold - pol.degrade_threshold);
  const int steps = rho > band_mid ? 2 : 1;
  out.degrade_steps = std::min(steps, media::degrade_headroom(media));
  return out;
}

InitialAssignment OnlineController::assign_initial(core::CountryId first_joiner,
                                                   media::MediaType media, core::SlotIndex t,
                                                   core::Rng& rng) {
  InitialAssignment out;
  out.first_joiner = first_joiner;
  // Most recently used reduced config for the country+media; default to the
  // intra-country singleton (the majority shape). Both guesses reach the
  // plan by demand id — the cached one for a remembered shape, the
  // precomputed singleton table for the default — so the hot path does no
  // CallConfig construction or map lookup.
  std::optional<Assignment> picked;
  const RecentConfig* recent = nullptr;
  if (first_joiner.valid()) {
    const auto& r = recent_[recent_slot(first_joiner, media)];
    if (r.valid) recent = &r;
  }
  if (recent != nullptr) {
    out.guessed_config = recent->config;
    picked = plan_->pick(recent->demand_idx, t, rng);
  } else {
    out.guessed_config.participants = {{first_joiner, 1}};
    out.guessed_config.media = media;
    picked = plan_->pick(inputs_->singleton_demand_index(first_joiner, media), t, rng);
  }
  if (!picked) {
    // The guessed shape has no planned units in this slot (e.g. the
    // forecast expected none for this country+media). Any planned media
    // variant of the intra-country shape is a better guide than blind
    // nearest-DC fallback — it reflects where the LP wants this country.
    // The candidate ids come straight from the singleton table (media
    // order, -1 rows skipped), so a miss costs three array reads.
    for (int m = 0; m < media::kMediaTypeCount && !picked; ++m) {
      const int idx =
          inputs_->singleton_demand_index(first_joiner, static_cast<media::MediaType>(m));
      if (idx >= 0) picked = plan_->pick(idx, t, rng);
    }
  }
  if (picked) {
    out.assignment = *picked;
    out.from_plan = true;
  } else {
    out.assignment = fallback(first_joiner);
    out.from_plan = false;
  }
  return out;
}

ConvergenceResult OnlineController::converge(const InitialAssignment& initial,
                                             const workload::CallConfig& true_config,
                                             core::SlotIndex t, core::Rng& rng) {
  ConvergenceResult out;
  const workload::CallConfig reduced =
      options_.use_reduction ? workload::reduce(true_config).config : true_config;
  // One shape resolution serves the memory update, the supports probe, and
  // the pick below (this lookup used to run three times per convergence).
  const int demand_idx = inputs_->demand_index(reduced);

  // Remember the converged reduced config for future first-joiner guesses
  // (§6.4: the memory is per the *first joiner's* country — known at
  // assignment time — not per the config's lowest-id participant).
  if (initial.first_joiner.valid()) {
    auto& r = recent_[recent_slot(initial.first_joiner, true_config.media)];
    r.config = reduced;
    r.demand_idx = demand_idx;
    r.valid = true;
  }

  // Stay put when the plan supports the current DC for the true config.
  if (plan_->supports(demand_idx, t, initial.assignment.dc)) {
    out.final_assignment = initial.assignment;
    return out;
  }

  const auto target = plan_->pick(demand_idx, t, rng);
  if (!target) {
    // True config is out of plan: keep the call where it is.
    out.final_assignment = initial.assignment;
    out.out_of_plan = true;
    return out;
  }
  out.final_assignment = *target;
  out.dc_migration = target->dc != initial.assignment.dc;
  out.route_change = !out.dc_migration && target->path != initial.assignment.path;
  return out;
}

bool OnlineController::should_route_failover(core::CountryId country, core::DcId dc,
                                             double observed_loss,
                                             core::Millis observed_rtt_ms) const {
  if (observed_loss >= options_.route_failover_loss) return true;
  const double wan_rtt = inputs_->net().latency().base_rtt_ms(country, dc, net::PathType::kWan);
  return observed_rtt_ms > wan_rtt * options_.route_failover_rtt_factor;
}

}  // namespace titan::titannext
