#include "titannext/controller.h"

#include <limits>

namespace titan::titannext {

OnlineController::OnlineController(const PlanInputs& inputs, const OfflinePlan& plan,
                                   const ControllerOptions& options)
    : inputs_(&inputs), plan_(&plan), options_(options) {}

void OnlineController::rebind(const PlanInputs& inputs, const OfflinePlan& plan) {
  inputs_ = &inputs;
  plan_ = &plan;
}

Assignment OnlineController::fallback(core::CountryId country) const {
  return fallback(country, core::DcId::invalid());
}

Assignment OnlineController::fallback(core::CountryId country, core::DcId exclude) const {
  core::DcId best = core::DcId::invalid();
  double best_rtt = std::numeric_limits<double>::infinity();
  // Preference order: a live DC other than `exclude`; then the (live)
  // excluded DC — a partially drained DC beats a fully drained one; only
  // when everything is drained does the call land anywhere at all.
  for (int pass = 0; pass < 3 && !best.valid(); ++pass) {
    for (const auto dc : inputs_->dcs()) {
      if (pass < 2 && inputs_->net().dc_compute_scale(dc) <= 0.0) continue;
      if (pass < 1 && dc == exclude) continue;
      const double rtt = inputs_->net().latency().base_rtt_ms(country, dc, net::PathType::kWan);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = dc;
      }
    }
  }
  return Assignment{best, net::PathType::kWan};
}

InitialAssignment OnlineController::assign_initial(core::CountryId first_joiner,
                                                   media::MediaType media, core::SlotIndex t,
                                                   core::Rng& rng) {
  InitialAssignment out;
  out.first_joiner = first_joiner;
  // Most recently used reduced config for the country+media; default to the
  // intra-country singleton (the majority shape).
  const auto key = std::make_pair(first_joiner.value(), static_cast<int>(media));
  const auto it = recent_.find(key);
  if (it != recent_.end()) {
    out.guessed_config = it->second;
  } else {
    out.guessed_config.participants = {{first_joiner, 1}};
    out.guessed_config.media = media;
  }

  auto picked = plan_->pick(out.guessed_config, t, rng);
  if (!picked) {
    // The guessed shape has no planned units in this slot (e.g. the
    // forecast expected none for this country+media). Any planned media
    // variant of the intra-country shape is a better guide than blind
    // nearest-DC fallback — it reflects where the LP wants this country.
    for (int m = 0; m < media::kMediaTypeCount && !picked; ++m) {
      workload::CallConfig variant;
      variant.participants = {{first_joiner, 1}};
      variant.media = static_cast<media::MediaType>(m);
      picked = plan_->pick(variant, t, rng);
    }
  }
  if (picked) {
    out.assignment = *picked;
    out.from_plan = true;
  } else {
    out.assignment = fallback(first_joiner);
    out.from_plan = false;
  }
  return out;
}

ConvergenceResult OnlineController::converge(const InitialAssignment& initial,
                                             const workload::CallConfig& true_config,
                                             core::SlotIndex t, core::Rng& rng) {
  ConvergenceResult out;
  const workload::CallConfig reduced =
      options_.use_reduction ? workload::reduce(true_config).config : true_config;

  // Remember the converged reduced config for future first-joiner guesses
  // (§6.4: the memory is per the *first joiner's* country — known at
  // assignment time — not per the config's lowest-id participant).
  if (initial.first_joiner.valid()) {
    const auto key = std::make_pair(initial.first_joiner.value(),
                                    static_cast<int>(true_config.media));
    recent_[key] = reduced;
  }

  // Stay put when the plan supports the current DC for the true config.
  if (plan_->supports(reduced, t, initial.assignment.dc)) {
    out.final_assignment = initial.assignment;
    return out;
  }

  const auto target = plan_->pick(reduced, t, rng);
  if (!target) {
    // True config is out of plan: keep the call where it is.
    out.final_assignment = initial.assignment;
    out.out_of_plan = true;
    return out;
  }
  out.final_assignment = *target;
  out.dc_migration = target->dc != initial.assignment.dc;
  out.route_change = !out.dc_migration && target->path != initial.assignment.path;
  return out;
}

bool OnlineController::should_route_failover(core::CountryId country, core::DcId dc,
                                             double observed_loss,
                                             core::Millis observed_rtt_ms) const {
  if (observed_loss >= options_.route_failover_loss) return true;
  const double wan_rtt = inputs_->net().latency().base_rtt_ms(country, dc, net::PathType::kWan);
  return observed_rtt_ms > wan_rtt * options_.route_failover_rtt_factor;
}

}  // namespace titan::titannext
