#include "titannext/inputs.h"

#include <algorithm>
#include <set>

namespace titan::titannext {

PlanInputs::PlanInputs(const net::NetworkDb& net, const PlanScope& scope,
                       const std::map<std::pair<int, int>, double>& fractions)
    : net_(&net), scope_(scope), fractions_(fractions) {
  scope_.regions.validate();
  dcs_ = geo::dcs_in(net.world(), scope_.regions);
}

void PlanInputs::set_demand(const workload::ConfigRegistry& registry,
                            const std::vector<std::vector<double>>& counts_per_config,
                            bool use_reduction) {
  demands_.clear();
  demand_index_.clear();

  // Group original configs into (possibly reduced) shapes, accumulating
  // reduced units = count * multiplier so resources are preserved (§6.2).
  std::map<workload::CallConfig, ReducedDemand> grouped;
  const int slots = scope_.timeslots;
  for (std::size_t cfg = 0; cfg < registry.size(); ++cfg) {
    const auto& counts = counts_per_config[cfg];
    const workload::CallConfig& original = registry.get(core::ConfigId(static_cast<int>(cfg)));
    workload::CallConfig shape = original;
    int multiplier = 1;
    if (use_reduction) {
      const auto reduced = workload::reduce(original);
      shape = reduced.config;
      multiplier = reduced.multiplier;
    }
    auto& d = grouped[shape];
    if (d.units_per_slot.empty()) {
      d.config = shape;
      d.units_per_slot.assign(static_cast<std::size_t>(slots), 0.0);
    }
    const int n = std::min<int>(slots, static_cast<int>(counts.size()));
    for (int t = 0; t < n; ++t) {
      const double units = counts[static_cast<std::size_t>(t)] * multiplier;
      d.units_per_slot[static_cast<std::size_t>(t)] += units;
      d.total_units += units;
    }
  }

  demands_.reserve(grouped.size());
  for (auto& [shape, d] : grouped) demands_.push_back(std::move(d));
  std::sort(demands_.begin(), demands_.end(),
            [](const ReducedDemand& a, const ReducedDemand& b) {
              return a.total_units > b.total_units;
            });
  if (static_cast<int>(demands_.size()) > scope_.max_reduced_configs)
    demands_.resize(static_cast<std::size_t>(scope_.max_reduced_configs));
  for (std::size_t i = 0; i < demands_.size(); ++i)
    demand_index_[demands_[i].config] = static_cast<int>(i);

  // Links in scope: union over WAN paths of in-scope (country, dc) pairs.
  std::set<int> link_set;
  for (const auto& d : demands_)
    for (const auto& [country, count] : d.config.participants)
      for (const auto dc : dcs_)
        for (const auto l : net_->topology().path(country, dc).links)
          link_set.insert(l.value());
  links_.clear();
  for (const int l : link_set) links_.push_back(core::LinkId(l));

  build_singleton_index();
  finalize_capacities();
}

void PlanInputs::build_singleton_index() {
  singleton_demand_.assign(net_->world().countries().size() *
                               static_cast<std::size_t>(media::kMediaTypeCount),
                           -1);
  for (std::size_t i = 0; i < demands_.size(); ++i) {
    const auto& shape = demands_[i].config;
    if (shape.participants.size() != 1 || shape.participants[0].second != 1) continue;
    const int country = shape.participants[0].first.value();
    if (country < 0) continue;
    const std::size_t slot = static_cast<std::size_t>(country) *
                                 static_cast<std::size_t>(media::kMediaTypeCount) +
                             static_cast<std::size_t>(shape.media);
    if (slot < singleton_demand_.size()) singleton_demand_[slot] = static_cast<int>(i);
  }
}

int PlanInputs::singleton_demand_index(core::CountryId country, media::MediaType media) const {
  if (!country.valid()) return -1;
  const std::size_t slot = static_cast<std::size_t>(country.value()) *
                               static_cast<std::size_t>(media::kMediaTypeCount) +
                           static_cast<std::size_t>(media);
  return slot < singleton_demand_.size() ? singleton_demand_[slot] : -1;
}

void PlanInputs::finalize_capacities() {
  // Compute: peak per-slot demand across the horizon times the headroom,
  // split across DCs by their provisioned share. With a capacity anchor the
  // provisioned total is fixed (overload regime: demand may exceed it);
  // without one it floats with the horizon's peak demand (legacy).
  double peak_cores = 0.0;
  for (int t = 0; t < scope_.timeslots; ++t) {
    double total = 0.0;
    for (const auto& d : demands_)
      total += d.units_per_slot[static_cast<std::size_t>(t)] * d.config.compute_cores();
    peak_cores = std::max(peak_cores, total);
  }
  const double base_cores =
      scope_.capacity_anchor_cores > 0.0 ? scope_.capacity_anchor_cores : peak_cores;
  double share_total = 0.0;
  for (const auto dc : dcs_) share_total += net_->world().dc(dc).cores;
  dc_capacity_.assign(dcs_.size(), 0.0);
  // A drained DC (scenario maintenance events) keeps its provisioned share
  // in the split but only its drain-scaled remainder is usable by the plan.
  for (std::size_t i = 0; i < dcs_.size(); ++i)
    dc_capacity_[i] = base_cores * scope_.compute_headroom *
                      (net_->world().dc(dcs_[i]).cores / share_total) *
                      net_->dc_compute_scale(dcs_[i]);

  // Internet capacity per DC path: sum of Titan's per-(country, dc)
  // fractions applied to each country's share of the in-scope demand.
  internet_capacity_.assign(dcs_.size(), 0.0);
  // Peak per-country bandwidth demand across the horizon.
  std::map<int, double> peak_bw_by_country;
  for (int t = 0; t < scope_.timeslots; ++t) {
    std::map<int, double> bw;
    for (const auto& d : demands_)
      for (const auto& [country, count] : d.config.participants)
        bw[country.value()] += d.units_per_slot[static_cast<std::size_t>(t)] *
                               d.config.network_mbps_from(country);
    for (const auto& [c, v] : bw)
      peak_bw_by_country[c] = std::max(peak_bw_by_country[c], v);
  }
  // Titan learns the safe fraction per (country, DC) pair with the MP
  // assignment fixed, i.e. against the country's traffic *toward that DC*
  // (roughly 1/|DCs| of its total). Summing fraction x per-DC share across
  // countries caps each DC's Internet path so that the aggregate offload
  // stays at the average learnt fraction — the paper's "savings dominated
  // by the current limit on Internet offload (max. 20%)".
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    double cap = 0.0;
    for (const auto& [c, peak_bw] : peak_bw_by_country) {
      const auto it = fractions_.find({c, dcs_[i].value()});
      const double fraction = it == fractions_.end() ? 0.0 : it->second;
      cap += fraction * peak_bw / static_cast<double>(dcs_.size());
    }
    internet_capacity_[i] = cap * scope_.internet_capacity_scale;
  }
}

core::Cores PlanInputs::dc_capacity(core::DcId dc) const {
  for (std::size_t i = 0; i < dcs_.size(); ++i)
    if (dcs_[i] == dc) return dc_capacity_[i];
  return 0.0;
}

core::Mbps PlanInputs::internet_capacity(core::DcId dc) const {
  for (std::size_t i = 0; i < dcs_.size(); ++i)
    if (dcs_[i] == dc) return internet_capacity_[i];
  return 0.0;
}

core::Millis PlanInputs::max_e2e_ms(const workload::CallConfig& config, core::DcId dc,
                                    net::PathType path) const {
  // Worst pair = top-two one-way legs through the MP; with one participant,
  // the round trip to the MP.
  double top1 = 0.0, top2 = 0.0;
  int total = 0;
  for (const auto& [country, count] : config.participants) {
    const double one_way = net_->latency().base_rtt_ms(country, dc, path) / 2.0;
    total += count;
    // A country with 2+ participants can form a pair with itself.
    const int reps = std::min(count, 2);
    for (int r = 0; r < reps; ++r) {
      if (one_way > top1) {
        top2 = top1;
        top1 = one_way;
      } else if (one_way > top2) {
        top2 = one_way;
      }
    }
  }
  if (total >= 2) return top1 + top2;
  return 2.0 * top1;
}

core::Millis PlanInputs::total_latency_ms(const workload::CallConfig& config, core::DcId dc,
                                          net::PathType path) const {
  double sum = 0.0;
  for (const auto& [country, count] : config.participants)
    sum += count * net_->latency().base_rtt_ms(country, dc, path);
  return sum;
}

int PlanInputs::demand_index(const workload::CallConfig& reduced_shape) const {
  const auto it = demand_index_.find(reduced_shape);
  return it == demand_index_.end() ? -1 : it->second;
}

PlanInputs PlanInputs::restricted(const std::vector<int>& dc_indices,
                                  const std::vector<int>& demand_indices) const {
  PlanInputs out = *this;
  out.dcs_.clear();
  out.dc_capacity_.clear();
  out.internet_capacity_.clear();
  for (const int i : dc_indices) {
    out.dcs_.push_back(dcs_[static_cast<std::size_t>(i)]);
    // Parent capacities verbatim — never finalize_capacities on a slice.
    out.dc_capacity_.push_back(dc_capacity_[static_cast<std::size_t>(i)]);
    out.internet_capacity_.push_back(internet_capacity_[static_cast<std::size_t>(i)]);
  }
  out.demands_.clear();
  out.demand_index_.clear();
  for (const int c : demand_indices) out.demands_.push_back(demands_[static_cast<std::size_t>(c)]);
  for (std::size_t i = 0; i < out.demands_.size(); ++i)
    out.demand_index_[out.demands_[i].config] = static_cast<int>(i);

  std::set<int> link_set;
  for (const auto& d : out.demands_)
    for (const auto& [country, count] : d.config.participants)
      for (const auto dc : out.dcs_)
        for (const auto l : net_->topology().path(country, dc).links)
          link_set.insert(l.value());
  out.links_.clear();
  for (const int l : link_set) out.links_.push_back(core::LinkId(l));
  out.build_singleton_index();
  return out;
}

}  // namespace titan::titannext
