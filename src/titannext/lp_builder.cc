#include "titannext/lp_builder.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>

namespace titan::titannext {

namespace {

// Variable layout: X vars first, y vars after.
//   x_index(t, c, m, p) = ((t * C + c) * M + m) * 2 + p
// with p: 0 = WAN, 1 = Internet.
struct Layout {
  int timeslots, configs, dcs;
  [[nodiscard]] int x(int t, int c, int m, int p) const {
    return ((t * configs + c) * dcs + m) * 2 + p;
  }
  [[nodiscard]] int num_x() const { return timeslots * configs * dcs * 2; }
};

// Per (config, dc): WAN bandwidth contributed to each in-scope link by one
// assigned unit.
using LinkLoads = std::vector<std::pair<int, double>>;  // (link index, Mbps)

// Row layout mirror of build_model's construction order: C1 demand rows
// (slot-major, config inner), C2 compute rows, C3 Internet rows, the single
// optional C4 e2e row, then C5 per-(slot, link) peak rows. remap_basis
// depends on this matching build_model exactly — extend both together.
struct RowLayout {
  int timeslots, configs, dcs, links;
  bool e2e;
  [[nodiscard]] int c1(int t, int c) const { return t * configs + c; }
  [[nodiscard]] int c2(int t, int m) const { return timeslots * configs + t * dcs + m; }
  [[nodiscard]] int c3(int t, int m) const {
    return timeslots * (configs + dcs) + t * dcs + m;
  }
  [[nodiscard]] int e2e_row() const { return timeslots * (configs + 2 * dcs); }
  [[nodiscard]] int c5(int t, int l) const {
    return timeslots * (configs + 2 * dcs) + (e2e ? 1 : 0) + t * links + l;
  }
  [[nodiscard]] int rows() const {
    return timeslots * (configs + 2 * dcs) + (e2e ? 1 : 0) + timeslots * links;
  }
};

// Whether build_model will emit the C4 row for these inputs.
bool has_e2e_row(const PlanInputs& inputs, const LpBuildOptions& options) {
  if (options.e2e_bound_ms <= 0.0) return false;
  double total_units = 0.0;
  for (const auto& d : inputs.demands()) total_units += d.total_units;
  return total_units > 0.0;
}

}  // namespace

lp::LpModel build_model(const PlanInputs& inputs, const LpBuildOptions& options) {
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const auto& links = inputs.links();
  const Layout lay{inputs.scope().timeslots, static_cast<int>(demands.size()),
                   static_cast<int>(dcs.size())};

  lp::LpModel model;
  // X variables (objective coefficients depend on the variant).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c)
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) {
          double cost = 0.0;
          const auto path = p == 0 ? net::PathType::kWan : net::PathType::kInternet;
          if (options.objective == Objective::kMinimizeTotalLatency)
            cost = inputs.total_latency_ms(demands[static_cast<std::size_t>(c)].config,
                                           dcs[static_cast<std::size_t>(m)], path);
          else if (options.objective == Objective::kMinimizeTotalMaxE2e)
            cost = inputs.max_e2e_ms(demands[static_cast<std::size_t>(c)].config,
                                     dcs[static_cast<std::size_t>(m)], path);
          model.add_variable(cost);
        }
  // y variables (peak per link) — only part of the objective for the
  // Titan-Next variant; harmless otherwise (cost 0 keeps them defined).
  std::vector<int> yvar(links.size());
  for (std::size_t l = 0; l < links.size(); ++l)
    yvar[l] = model.add_variable(
        options.objective == Objective::kMinimizeWanPeaks ? 1.0 : 0.0,
        "y_link" + std::to_string(links[l].value()));

  // Precompute per (config, dc) link loads and resource coefficients.
  std::map<int, int> link_index;
  for (std::size_t l = 0; l < links.size(); ++l) link_index[links[l].value()] = static_cast<int>(l);
  std::vector<std::vector<LinkLoads>> loads(demands.size(),
                                            std::vector<LinkLoads>(dcs.size()));
  for (std::size_t c = 0; c < demands.size(); ++c) {
    for (std::size_t m = 0; m < dcs.size(); ++m) {
      std::map<int, double> acc;
      for (const auto& [country, count] : demands[c].config.participants) {
        const double bw = demands[c].config.network_mbps_from(country);
        for (const auto lid : inputs.net().topology().path(country, dcs[m]).links) {
          const auto it = link_index.find(lid.value());
          if (it != link_index.end()) acc[it->second] += bw;
        }
      }
      for (const auto& [l, bw] : acc) loads[c][m].push_back({l, bw});
    }
  }

  // C1: all calls of each (t, c) assigned.
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c) {
      const double n =
          demands[static_cast<std::size_t>(c)].units_per_slot[static_cast<std::size_t>(t)];
      const int row = model.add_constraint(lp::Sense::kEq, n);
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) model.add_coefficient(row, lay.x(t, c, m, p), 1.0);
    }

  // C2: MP compute per (t, m).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int m = 0; m < lay.dcs; ++m) {
      const int row = model.add_constraint(lp::Sense::kLe,
                                           inputs.dc_capacity(dcs[static_cast<std::size_t>(m)]));
      for (int c = 0; c < lay.configs; ++c) {
        const double cores = demands[static_cast<std::size_t>(c)].config.compute_cores();
        for (int p = 0; p < 2; ++p)
          model.add_coefficient(row, lay.x(t, c, m, p), cores);
      }
    }

  // C3: Internet path capacity per (t, m).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int m = 0; m < lay.dcs; ++m) {
      const int row = model.add_constraint(
          lp::Sense::kLe, inputs.internet_capacity(dcs[static_cast<std::size_t>(m)]));
      for (int c = 0; c < lay.configs; ++c)
        model.add_coefficient(row, lay.x(t, c, m, 1),
                              demands[static_cast<std::size_t>(c)].config.network_mbps());
    }

  // C4: bound on the demand-weighted average of max-E2E latency. The
  // presence condition is shared with remap_basis through has_e2e_row so
  // the row layouts cannot drift apart.
  if (has_e2e_row(inputs, options)) {
    double total_units = 0.0;
    for (const auto& d : demands) total_units += d.total_units;
    const int row = model.add_constraint(lp::Sense::kLe, options.e2e_bound_ms * total_units);
    for (int t = 0; t < lay.timeslots; ++t)
      for (int c = 0; c < lay.configs; ++c)
        for (int m = 0; m < lay.dcs; ++m)
          for (int p = 0; p < 2; ++p) {
            const auto path = p == 0 ? net::PathType::kWan : net::PathType::kInternet;
            model.add_coefficient(
                row, lay.x(t, c, m, p),
                inputs.max_e2e_ms(demands[static_cast<std::size_t>(c)].config,
                                  dcs[static_cast<std::size_t>(m)], path));
          }
  }

  // C5: per-link peak definition, y_l >= slot WAN usage.
  for (int t = 0; t < lay.timeslots; ++t)
    for (std::size_t l = 0; l < links.size(); ++l) {
      const int row = model.add_constraint(lp::Sense::kLe, 0.0);
      bool any = false;
      for (int c = 0; c < lay.configs; ++c)
        for (int m = 0; m < lay.dcs; ++m)
          for (const auto& [li, bw] : loads[static_cast<std::size_t>(c)][static_cast<std::size_t>(m)])
            if (li == static_cast<int>(l)) {
              model.add_coefficient(row, lay.x(t, c, m, 0), bw);
              any = true;
            }
      model.add_coefficient(row, yvar[l], -1.0);
      (void)any;
    }

  return model;
}

std::optional<lp::Basis> remap_basis(const PlanBasisContext& prev, const PlanInputs& inputs,
                                     const LpBuildOptions& options, int shift_slots) {
  if (!prev.valid() || prev.timeslots != inputs.scope().timeslots) return std::nullopt;
  // The windows must overlap: slot t of the old horizon is slot t - shift
  // of the new one, so shift >= T means nothing transfers (and a negative
  // shift would mean time ran backwards — a caller bug; refuse).
  if (shift_slots < 0 || shift_slots >= prev.timeslots) return std::nullopt;
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const auto& links = inputs.links();
  const int T = prev.timeslots;
  const int c_old = static_cast<int>(prev.shapes.size());
  const int m_old = static_cast<int>(prev.dcs.size());
  const int l_old = static_cast<int>(prev.links.size());
  if (c_old == 0 || m_old == 0) return std::nullopt;

  const Layout old_lay{T, c_old, m_old};
  const Layout new_lay{T, static_cast<int>(demands.size()), static_cast<int>(dcs.size())};
  const RowLayout old_rows{T, c_old, m_old, l_old, prev.e2e_row};
  const RowLayout new_rows{T, new_lay.configs, new_lay.dcs, static_cast<int>(links.size()),
                           has_e2e_row(inputs, options)};
  if (static_cast<int>(prev.basis.entries.size()) != old_rows.rows()) return std::nullopt;

  // Label translation tables old index -> new index (-1 = label vanished).
  std::vector<int> shape_map(static_cast<std::size_t>(c_old), -1);
  for (int c = 0; c < c_old; ++c)
    shape_map[static_cast<std::size_t>(c)] =
        inputs.demand_index(prev.shapes[static_cast<std::size_t>(c)]);
  std::vector<int> dc_map(static_cast<std::size_t>(m_old), -1);
  for (int m = 0; m < m_old; ++m)
    for (std::size_t i = 0; i < dcs.size(); ++i)
      if (dcs[i] == prev.dcs[static_cast<std::size_t>(m)]) {
        dc_map[static_cast<std::size_t>(m)] = static_cast<int>(i);
        break;
      }
  std::map<int, int> link_map;
  for (std::size_t i = 0; i < links.size(); ++i) link_map[links[i].value()] = static_cast<int>(i);
  const auto map_link = [&](int l) {
    const auto it = link_map.find(prev.links[static_cast<std::size_t>(l)].value());
    return it == link_map.end() ? -1 : it->second;
  };

  // Horizon-relative slot translation: old slot t is new slot t - shift;
  // slots before the new window vanish.
  const auto map_slot = [&](int t) { return t - shift_slots; };

  // Old row index -> new row index by label (-1 = vanished).
  const auto map_row = [&](int r) -> int {
    if (r < 0 || r >= old_rows.rows()) return -1;
    if (r < T * c_old) {
      const int t = map_slot(r / c_old);
      const int c = shape_map[static_cast<std::size_t>(r % c_old)];
      return (t < 0 || c < 0) ? -1 : new_rows.c1(t, c);
    }
    r -= T * c_old;
    if (r < 2 * T * m_old) {
      const bool internet = r >= T * m_old;
      if (internet) r -= T * m_old;
      const int t = map_slot(r / m_old);
      const int m = dc_map[static_cast<std::size_t>(r % m_old)];
      if (t < 0 || m < 0) return -1;
      return internet ? new_rows.c3(t, m) : new_rows.c2(t, m);
    }
    r -= 2 * T * m_old;
    if (prev.e2e_row && r == 0) return new_rows.e2e ? new_rows.e2e_row() : -1;
    if (prev.e2e_row) r -= 1;
    const int t = map_slot(r / l_old);
    const int l = map_link(r % l_old);
    return (t < 0 || l < 0) ? -1 : new_rows.c5(t, l);
  };

  // Translate every surviving entry; collect the set of claimed rows so the
  // completion step below can fill the holes with slacks/artificials.
  std::vector<lp::BasisEntry> mapped;
  mapped.reserve(prev.basis.entries.size());
  std::set<std::pair<int, int>> seen;  // (kind, index) duplicates guard
  std::vector<bool> row_claimed(static_cast<std::size_t>(new_rows.rows()), false);
  const int num_x_old = old_lay.num_x();
  for (const auto& e : prev.basis.entries) {
    lp::BasisEntry out = e;
    if (e.kind == lp::BasisEntry::Kind::kStructural) {
      if (e.index < num_x_old) {
        int rest = e.index;
        const int p = rest % 2;
        rest /= 2;
        const int m = dc_map[static_cast<std::size_t>(rest % m_old)];
        rest /= m_old;
        const int c = shape_map[static_cast<std::size_t>(rest % c_old)];
        const int t = map_slot(rest / c_old);
        if (t < 0 || c < 0 || m < 0) continue;
        out.index = new_lay.x(t, c, m, p);
      } else {
        if (e.index >= num_x_old + l_old) return std::nullopt;  // corrupt snapshot
        const int l = map_link(e.index - num_x_old);
        if (l < 0) continue;
        out.index = new_lay.num_x() + l;
      }
    } else {
      const int r = map_row(e.index);
      if (r < 0) continue;
      out.index = r;
      row_claimed[static_cast<std::size_t>(r)] = true;
    }
    if (!seen.insert({static_cast<int>(out.kind), out.index}).second) return std::nullopt;
    mapped.push_back(out);
  }


  // Completion: the dropped entries' columns pivoted rows that either
  // vanished with them (balanced — nothing to do) or still exist and now
  // need a unit column. The rows that *demonstrably* lost their pivot are
  // the fresh-label ones — C1 rows of shapes the old plan never had (their
  // serving columns were never basic) and C5 rows of links no old path used
  // (no survivor touches them, so they would be all-zero in the basis).
  // Fill those first; top up any remaining budget over unclaimed rows in
  // row order. C1 rows are equalities (artificial — basic at the row's
  // demand, which is what the warm phase-1 repair in lp::solve drives out),
  // everything else is <= (slack).
  std::vector<bool> label_is_fresh(static_cast<std::size_t>(new_rows.rows()), true);
  for (int r = 0; r < old_rows.rows(); ++r) {
    const int nr = map_row(r);
    if (nr >= 0) label_is_fresh[static_cast<std::size_t>(nr)] = false;
  }
  int fresh_unclaimed = 0;
  for (int r = 0; r < new_rows.rows(); ++r)
    if (label_is_fresh[static_cast<std::size_t>(r)] && !row_claimed[static_cast<std::size_t>(r)])
      ++fresh_unclaimed;
  // Make room: every fresh row *must* get its unit column, so when the
  // survivors plus the fresh fills would overflow the row count, trim
  // survivors from the back (freed slack/artificial rows rejoin the
  // fillable pool; the structural-rank repair in lp::solve re-seats
  // whatever the trim destabilized).
  const int budget = new_rows.rows() - fresh_unclaimed;
  if (budget < 0) return std::nullopt;
  while (static_cast<int>(mapped.size()) > budget) {
    const lp::BasisEntry& victim = mapped.back();
    if (victim.kind != lp::BasisEntry::Kind::kStructural)
      row_claimed[static_cast<std::size_t>(victim.index)] = false;
    mapped.pop_back();
  }
  const auto fill_row = [&](int r) {
    lp::BasisEntry fill;
    fill.kind = r < T * new_lay.configs ? lp::BasisEntry::Kind::kArtificial
                                        : lp::BasisEntry::Kind::kSlack;
    fill.index = r;
    mapped.push_back(fill);
    row_claimed[static_cast<std::size_t>(r)] = true;
  };
  for (int r = 0; r < new_rows.rows(); ++r)
    if (label_is_fresh[static_cast<std::size_t>(r)] && !row_claimed[static_cast<std::size_t>(r)])
      fill_row(r);
  for (int r = 0; r < new_rows.rows() && static_cast<int>(mapped.size()) < new_rows.rows();
       ++r)
    if (!row_claimed[static_cast<std::size_t>(r)]) fill_row(r);
  if (static_cast<int>(mapped.size()) != new_rows.rows()) return std::nullopt;
  return lp::Basis{std::move(mapped)};
}

namespace {

// Realized sum over links of peak WAN bandwidth of a fractional plan —
// recomputed from the weights (not the LP objective) so monolithic and
// decomposed solves report the same physical quantity.
double sum_wan_peaks(const PlanInputs& inputs,
                     const std::vector<std::vector<AssignmentWeights>>& weights) {
  const auto& demands = inputs.demands();
  const auto& links = inputs.links();
  std::map<int, int> link_index;
  for (std::size_t l = 0; l < links.size(); ++l) link_index[links[l].value()] = static_cast<int>(l);
  std::vector<double> peak(links.size(), 0.0);
  for (std::size_t t = 0; t < weights.size(); ++t) {
    std::vector<double> usage(links.size(), 0.0);
    for (std::size_t c = 0; c < weights[t].size(); ++c) {
      for (const auto& e : weights[t][c].entries) {
        if (e.path != net::PathType::kWan) continue;
        for (const auto& [country, count] : demands[c].config.participants) {
          const double bw = demands[c].config.network_mbps_from(country) * e.units;
          for (const auto lid : inputs.net().topology().path(country, e.dc).links) {
            const auto it = link_index.find(lid.value());
            if (it != link_index.end()) usage[static_cast<std::size_t>(it->second)] += bw;
          }
        }
      }
    }
    for (std::size_t l = 0; l < links.size(); ++l) peak[l] = std::max(peak[l], usage[l]);
  }
  double sum = 0.0;
  for (const double p : peak) sum += p;
  return sum;
}

// Accumulates one lp::Solution's counters into the plan result (a plan
// solve may run several LPs: blocks + coupling).
void accumulate_solution_stats(LpPlanResult& r, const lp::Solution& sol) {
  r.solve_seconds += sol.solve_seconds;
  r.phase1_seconds += sol.phase1_seconds;
  r.phase2_seconds += sol.phase2_seconds;
  r.refactor_seconds += sol.refactor_seconds;
  r.refactorizations += sol.refactorizations;
  r.iterations += sol.iterations;
  r.phase1_iterations += sol.phase1_iterations;
  r.dual_iterations += sol.dual_iterations;
  r.stall_pivots += sol.stall_pivots;
  r.bland_pivots += sol.bland_pivots;
  r.pruned_columns += sol.pruned_columns;
  r.promoted_columns += sol.promoted_columns;
}

// Reduced costs d_j = c_j - a_j'y of every structural column at the
// optimal duals — the raw material of the next solve's candidate mask.
std::vector<double> structural_reduced_costs(const lp::LpModel& model, const lp::Solution& sol) {
  const int n = model.num_variables();
  std::vector<double> dj(static_cast<std::size_t>(n), 0.0);
  if (sol.duals.empty()) return dj;
  const lp::SparseMatrix a = model.matrix();
  for (int j = 0; j < n; ++j) {
    double dot = 0.0;
    for (int k = a.col_begin(j); k < a.col_end(j); ++k)
      dot += a.value(k) * sol.duals[static_cast<std::size_t>(a.row_index(k))];
    dj[static_cast<std::size_t>(j)] = model.costs()[static_cast<std::size_t>(j)] - dot;
  }
  return dj;
}

// Snapshots a solved model's identity + basis + reduced costs into a warm
// context for the next replan of the same (sub)scope.
void snapshot_context(PlanBasisContext& ctx, const PlanInputs& inputs,
                      const LpBuildOptions& options, const lp::LpModel& model,
                      const lp::Solution& sol, core::SlotIndex plan_begin) {
  ctx.basis = sol.basis;
  ctx.shapes.clear();
  ctx.shapes.reserve(inputs.demands().size());
  for (const auto& d : inputs.demands()) ctx.shapes.push_back(d.config);
  ctx.dcs = inputs.dcs();
  ctx.links = inputs.links();
  ctx.timeslots = inputs.scope().timeslots;
  ctx.e2e_row = has_e2e_row(inputs, options);
  ctx.plan_begin = plan_begin;
  ctx.reduced_costs = structural_reduced_costs(model, sol);
}

// Keep a column when its previous reduced cost was within this fraction of
// the previous maximum: optimal bases move locally between replans, so a
// column that priced far out of the money last time almost never enters
// now — and the solver's verification sweep promotes it if it does.
constexpr double kPruneKeepFraction = 0.05;

// Builds the candidate-column mask for the model build_model(inputs,
// options) produces, from the previous context's reduced costs mapped
// through the same label translation remap_basis uses. Fresh labels (new
// shapes, DCs, links, the horizon's new tail slots) and all y columns stay
// active. Returns an empty vector — pruning disabled — when the previous
// costs are missing, mis-sized, or the mask would prune too little to pay
// for its bookkeeping.
std::vector<std::uint8_t> candidate_mask_from(const PlanBasisContext& prev,
                                              const PlanInputs& inputs, int shift_slots) {
  std::vector<std::uint8_t> none;
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const auto& links = inputs.links();
  const int T = inputs.scope().timeslots;
  if (!prev.valid() || prev.timeslots != T || shift_slots < 0 || shift_slots >= T) return none;
  const int c_old = static_cast<int>(prev.shapes.size());
  const int m_old = static_cast<int>(prev.dcs.size());
  const int l_old = static_cast<int>(prev.links.size());
  const Layout old_lay{T, c_old, m_old};
  const int n_old = old_lay.num_x() + l_old;
  if (static_cast<int>(prev.reduced_costs.size()) != n_old) return none;

  double max_dj = 0.0;
  for (const double d : prev.reduced_costs) max_dj = std::max(max_dj, d);
  if (max_dj <= 0.0) return none;
  const double keep_below = kPruneKeepFraction * max_dj;

  // New label -> old index translations (the column-side mirror of
  // remap_basis's tables).
  std::map<workload::CallConfig, int> old_shape;
  for (int c = 0; c < c_old; ++c) old_shape[prev.shapes[static_cast<std::size_t>(c)]] = c;
  std::map<int, int> old_dc;
  for (int m = 0; m < m_old; ++m) old_dc[prev.dcs[static_cast<std::size_t>(m)].value()] = m;
  std::map<int, int> old_link;
  for (int l = 0; l < l_old; ++l) old_link[prev.links[static_cast<std::size_t>(l)].value()] = l;

  const Layout new_lay{T, static_cast<int>(demands.size()), static_cast<int>(dcs.size())};
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(new_lay.num_x() + static_cast<int>(links.size())), 1);
  int pruned = 0;
  for (int t = 0; t + shift_slots < T; ++t) {
    const int t_old = t + shift_slots;
    for (int c = 0; c < new_lay.configs; ++c) {
      const auto cit = old_shape.find(demands[static_cast<std::size_t>(c)].config);
      if (cit == old_shape.end()) continue;  // fresh shape: stays active
      for (int m = 0; m < new_lay.dcs; ++m) {
        const auto mit = old_dc.find(dcs[static_cast<std::size_t>(m)].value());
        if (mit == old_dc.end()) continue;
        for (int p = 0; p < 2; ++p) {
          const double dj = prev.reduced_costs[static_cast<std::size_t>(
              old_lay.x(t_old, cit->second, mit->second, p))];
          if (dj > keep_below) {
            mask[static_cast<std::size_t>(new_lay.x(t, c, m, p))] = 0;
            ++pruned;
          }
        }
      }
    }
  }
  // Too little pruned to matter — run the plain pricing loop instead.
  if (pruned < static_cast<int>(mask.size()) / 10) return none;
  return mask;
}

// The historical single-LP solve path. kOff and single-region kAuto run
// exactly this — byte for byte the pre-decomposition behaviour.
LpPlanResult solve_monolithic(const PlanInputs& inputs, const LpBuildOptions& options,
                              WarmStartCache* warm) {
  LpPlanResult result;
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const Layout lay{inputs.scope().timeslots, static_cast<int>(demands.size()),
                   static_cast<int>(dcs.size())};

  const auto build_start = std::chrono::steady_clock::now();
  const lp::LpModel model = build_model(inputs, options);
  result.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();
  std::optional<lp::Basis> seed;
  lp::SolveOptions solver = options.solver;
  if (warm != nullptr) {
    const int shift = warm->next_plan_begin - warm->last.plan_begin;
    seed = remap_basis(warm->last, inputs, options, shift);
    if (seed) solver.candidate_mask = candidate_mask_from(warm->last, inputs, shift);
  }
  const lp::Solution sol =
      seed ? lp::solve(model, *seed, solver) : lp::solve(model, solver);
  result.status = sol.status;
  result.objective = sol.objective;
  accumulate_solution_stats(result, sol);
  result.warm_started = sol.warm_started;
  if (sol.status != lp::SolveStatus::kOptimal) return result;

  // Snapshot the fresh basis + model identity for the next replan.
  if (warm != nullptr)
    snapshot_context(warm->last, inputs, options, model, sol, warm->next_plan_begin);

  result.weights.assign(static_cast<std::size_t>(lay.timeslots),
                        std::vector<AssignmentWeights>(demands.size()));
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c) {
      auto& w = result.weights[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) {
          const double units = sol.x[static_cast<std::size_t>(lay.x(t, c, m, p))];
          if (units > 1e-7)
            w.entries.push_back({dcs[static_cast<std::size_t>(m)],
                                 p == 0 ? net::PathType::kWan : net::PathType::kInternet,
                                 units});
        }
    }

  result.sum_of_wan_peaks_mbps = sum_wan_peaks(inputs, result.weights);
  return result;
}

// One region block of the decomposition: parent-relative DC and demand
// indices, in parent order.
struct RegionBlock {
  geo::Continent continent;
  std::vector<int> dc_idx;
  std::vector<int> demand_idx;
};

// Block-angular decomposed solve. Returns nullopt on any gate failure —
// overlapping block link sets, a non-infeasible block failure, a failed
// coupling solve, a violated global e2e bound — and the caller falls back
// to the monolithic path. See docs/solver.md, "Region-block decomposition"
// for the contract this implements.
std::optional<LpPlanResult> solve_decomposed(const PlanInputs& inputs,
                                             const LpBuildOptions& options,
                                             WarmStartCache* warm) {
  const auto& world = inputs.net().world();
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const auto& links = inputs.links();
  const int T = inputs.scope().timeslots;
  const int M = static_cast<int>(dcs.size());
  const int L = static_cast<int>(links.size());
  if (demands.empty() || dcs.empty()) return std::nullopt;

  // ---- Partition. A DC belongs to its continent's block; a demand is
  // homed to a block when every participant is on that block's continent
  // (and the block has DCs to serve it). Everything else — cross-region
  // demands, demands of DC-less blocks — goes to the coupling LP, which
  // sees every DC.
  std::vector<RegionBlock> blocks;
  for (const geo::Continent cont : inputs.scope().regions.continents()) {
    RegionBlock b;
    b.continent = cont;
    for (int m = 0; m < M; ++m)
      if (world.dc(dcs[static_cast<std::size_t>(m)]).continent == cont) b.dc_idx.push_back(m);
    blocks.push_back(std::move(b));
  }
  std::vector<int> coupling;
  for (int c = 0; c < static_cast<int>(demands.size()); ++c) {
    const auto& participants = demands[static_cast<std::size_t>(c)].config.participants;
    bool homed = false;
    if (!participants.empty()) {
      const geo::Continent home = world.country(participants.front().first).continent;
      bool single = true;
      for (const auto& [country, count] : participants)
        if (world.country(country).continent != home) single = false;
      if (single)
        for (auto& b : blocks)
          if (b.continent == home && !b.dc_idx.empty()) {
            b.demand_idx.push_back(c);
            homed = true;
            break;
          }
    }
    if (!homed) coupling.push_back(c);
  }

  // The degenerate single-block case: one block owning every DC and every
  // demand. The block model then IS the monolithic model (same inputs,
  // e2e row kept), which is what makes kForce on a single-region scope a
  // genuine bit-for-bit equivalence check of the block machinery.
  const bool degenerate = blocks.size() == 1 && coupling.empty() &&
                          static_cast<int>(blocks.front().dc_idx.size()) == M &&
                          blocks.front().demand_idx.size() == demands.size();

  LpPlanResult result;
  result.weights.assign(static_cast<std::size_t>(T),
                        std::vector<AssignmentWeights>(demands.size()));
  // Parent-indexed resource usage by the block solutions, feeding the
  // coupling LP's residual capacities and incremental-peak rows.
  std::vector<std::vector<double>> compute_usage(static_cast<std::size_t>(T),
                                                 std::vector<double>(static_cast<std::size_t>(M), 0.0));
  std::vector<std::vector<double>> internet_usage(compute_usage);
  std::vector<std::vector<double>> link_usage(static_cast<std::size_t>(T),
                                              std::vector<double>(static_cast<std::size_t>(L), 0.0));
  std::map<int, int> link_index;
  for (int l = 0; l < L; ++l) link_index[links[static_cast<std::size_t>(l)].value()] = l;

  // Blocks must not share WAN links, or summing per-block peaks would
  // double-count a link's objective contribution.
  std::set<int> claimed_links;

  double objective = 0.0;
  for (auto& b : blocks) {
    if (b.demand_idx.empty()) continue;
    const PlanInputs block_inputs = inputs.restricted(b.dc_idx, b.demand_idx);
    for (const auto l : block_inputs.links())
      if (!claimed_links.insert(l.value()).second) return std::nullopt;

    LpBuildOptions block_options = options;
    block_options.decomposition = Decomposition::kOff;
    // Blocks solve the C4-free relaxation; the global bound is verified on
    // the composed plan below (a relaxation optimum that satisfies the
    // bound is optimal for the bounded problem too). The degenerate block
    // keeps the row so its model matches the monolithic one exactly.
    if (!degenerate) block_options.e2e_bound_ms = -1.0;

    const auto build_start = std::chrono::steady_clock::now();
    const lp::LpModel model = build_model(block_inputs, block_options);
    result.build_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();

    std::optional<lp::Basis> seed;
    lp::SolveOptions solver = options.solver;
    PlanBasisContext* ctx = nullptr;
    if (warm != nullptr) {
      ctx = &warm->blocks[b.continent];
      const int shift = warm->next_plan_begin - ctx->plan_begin;
      seed = remap_basis(*ctx, block_inputs, block_options, shift);
      if (seed) solver.candidate_mask = candidate_mask_from(*ctx, block_inputs, shift);
    }
    const lp::Solution sol =
        seed ? lp::solve(model, *seed, solver) : lp::solve(model, solver);
    accumulate_solution_stats(result, sol);
    if (sol.status == lp::SolveStatus::kInfeasible) {
      // The block alone cannot serve its demands (e.g. its DCs are
      // drained). Promote them to the coupling LP, which sees every DC —
      // the load shifts cross-region exactly as the monolithic LP would
      // shift it.
      for (const int c : b.demand_idx) coupling.push_back(c);
      if (ctx != nullptr) *ctx = PlanBasisContext{};
      continue;
    }
    if (sol.status != lp::SolveStatus::kOptimal) return std::nullopt;
    ++result.blocks_solved;
    result.warm_started = result.warm_started || sol.warm_started;
    if (ctx != nullptr)
      snapshot_context(*ctx, block_inputs, block_options, model, sol, warm->next_plan_begin);
    objective += sol.objective;

    // Fold the block solution into parent-indexed weights and usage.
    const Layout block_lay{T, static_cast<int>(b.demand_idx.size()),
                           static_cast<int>(b.dc_idx.size())};
    for (int t = 0; t < T; ++t)
      for (int bc = 0; bc < block_lay.configs; ++bc) {
        const int c = b.demand_idx[static_cast<std::size_t>(bc)];
        auto& w = result.weights[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
        for (int bm = 0; bm < block_lay.dcs; ++bm) {
          const int m = b.dc_idx[static_cast<std::size_t>(bm)];
          for (int p = 0; p < 2; ++p) {
            const double units = sol.x[static_cast<std::size_t>(block_lay.x(t, bc, bm, p))];
            if (units <= 1e-7) continue;
            const auto path = p == 0 ? net::PathType::kWan : net::PathType::kInternet;
            w.entries.push_back({dcs[static_cast<std::size_t>(m)], path, units});
            const auto& config = demands[static_cast<std::size_t>(c)].config;
            compute_usage[static_cast<std::size_t>(t)][static_cast<std::size_t>(m)] +=
                units * config.compute_cores();
            if (p == 1) {
              internet_usage[static_cast<std::size_t>(t)][static_cast<std::size_t>(m)] +=
                  units * config.network_mbps();
            } else {
              for (const auto& [country, count] : config.participants) {
                const double bw = config.network_mbps_from(country) * units;
                for (const auto lid :
                     inputs.net().topology().path(country, dcs[static_cast<std::size_t>(m)]).links) {
                  const auto it = link_index.find(lid.value());
                  if (it != link_index.end())
                    link_usage[static_cast<std::size_t>(t)][static_cast<std::size_t>(it->second)] +=
                        bw;
                }
              }
            }
          }
        }
      }
  }

  // ---- Coupling LP: the cross-region (and promoted) demands over every
  // DC, against residual capacities, with *incremental* peak rows — y'_l
  // is the increase of link l's peak above what the blocks already pay
  // for, so sum(block objectives) + coupling objective prices the composed
  // plan's true sum of per-link peaks.
  if (!coupling.empty()) {
    std::sort(coupling.begin(), coupling.end());
    std::vector<double> block_peak(static_cast<std::size_t>(L), 0.0);
    for (int t = 0; t < T; ++t)
      for (int l = 0; l < L; ++l)
        block_peak[static_cast<std::size_t>(l)] =
            std::max(block_peak[static_cast<std::size_t>(l)],
                     link_usage[static_cast<std::size_t>(t)][static_cast<std::size_t>(l)]);

    const Layout clay{T, static_cast<int>(coupling.size()), M};
    const auto build_start = std::chrono::steady_clock::now();
    lp::LpModel model;
    for (int i = 0; i < clay.num_x(); ++i) model.add_variable(0.0);
    std::vector<int> yvar(static_cast<std::size_t>(L));
    for (int l = 0; l < L; ++l)
      yvar[static_cast<std::size_t>(l)] = model.add_variable(1.0);

    // C1: every coupling demand fully assigned.
    for (int t = 0; t < T; ++t)
      for (int cc = 0; cc < clay.configs; ++cc) {
        const auto& d = demands[static_cast<std::size_t>(coupling[static_cast<std::size_t>(cc)])];
        const int row =
            model.add_constraint(lp::Sense::kEq, d.units_per_slot[static_cast<std::size_t>(t)]);
        for (int m = 0; m < M; ++m)
          for (int p = 0; p < 2; ++p) model.add_coefficient(row, clay.x(t, cc, m, p), 1.0);
      }
    // C2/C3: residual compute and Internet capacity after the blocks.
    for (int t = 0; t < T; ++t)
      for (int m = 0; m < M; ++m) {
        const double residual =
            std::max(0.0, inputs.dc_capacity(dcs[static_cast<std::size_t>(m)]) -
                              compute_usage[static_cast<std::size_t>(t)][static_cast<std::size_t>(m)]);
        const int row = model.add_constraint(lp::Sense::kLe, residual);
        for (int cc = 0; cc < clay.configs; ++cc) {
          const double cores =
              demands[static_cast<std::size_t>(coupling[static_cast<std::size_t>(cc)])]
                  .config.compute_cores();
          for (int p = 0; p < 2; ++p) model.add_coefficient(row, clay.x(t, cc, m, p), cores);
        }
      }
    for (int t = 0; t < T; ++t)
      for (int m = 0; m < M; ++m) {
        const double residual = std::max(
            0.0, inputs.internet_capacity(dcs[static_cast<std::size_t>(m)]) -
                     internet_usage[static_cast<std::size_t>(t)][static_cast<std::size_t>(m)]);
        const int row = model.add_constraint(lp::Sense::kLe, residual);
        for (int cc = 0; cc < clay.configs; ++cc)
          model.add_coefficient(
              row, clay.x(t, cc, m, 1),
              demands[static_cast<std::size_t>(coupling[static_cast<std::size_t>(cc)])]
                  .config.network_mbps());
      }
    // C5 (incremental): coupling usage - y'_l <= block_peak_l - block usage.
    for (int t = 0; t < T; ++t)
      for (int l = 0; l < L; ++l) {
        const double headroom = std::max(
            0.0, block_peak[static_cast<std::size_t>(l)] -
                     link_usage[static_cast<std::size_t>(t)][static_cast<std::size_t>(l)]);
        const int row = model.add_constraint(lp::Sense::kLe, headroom);
        for (int cc = 0; cc < clay.configs; ++cc) {
          const auto& config =
              demands[static_cast<std::size_t>(coupling[static_cast<std::size_t>(cc)])].config;
          for (int m = 0; m < M; ++m) {
            double bw = 0.0;
            for (const auto& [country, count] : config.participants) {
              for (const auto lid :
                   inputs.net().topology().path(country, dcs[static_cast<std::size_t>(m)]).links)
                if (lid == links[static_cast<std::size_t>(l)])
                  bw += config.network_mbps_from(country);
            }
            if (bw > 0.0) model.add_coefficient(row, clay.x(t, cc, m, 0), bw);
          }
        }
        model.add_coefficient(row, yvar[static_cast<std::size_t>(l)], -1.0);
      }
    result.build_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();

    const lp::Solution sol = lp::solve(model, options.solver);
    accumulate_solution_stats(result, sol);
    if (sol.status != lp::SolveStatus::kOptimal) return std::nullopt;
    objective += sol.objective;
    for (int t = 0; t < T; ++t)
      for (int cc = 0; cc < clay.configs; ++cc) {
        const int c = coupling[static_cast<std::size_t>(cc)];
        auto& w = result.weights[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
        for (int m = 0; m < M; ++m)
          for (int p = 0; p < 2; ++p) {
            const double units = sol.x[static_cast<std::size_t>(clay.x(t, cc, m, p))];
            if (units > 1e-7)
              w.entries.push_back({dcs[static_cast<std::size_t>(m)],
                                   p == 0 ? net::PathType::kWan : net::PathType::kInternet,
                                   units});
          }
      }
  }

  // ---- Global e2e bound (C4) on the composed plan. The blocks solved the
  // relaxation; satisfied here means the composition is feasible — and as
  // good as the relaxation allows — for the bounded problem. Violated
  // means block-local optima spent too much latency: monolithic fallback.
  if (!degenerate && has_e2e_row(inputs, options)) {
    double lhs = 0.0;
    double total_units = 0.0;
    for (const auto& d : demands) total_units += d.total_units;
    for (int t = 0; t < T; ++t)
      for (std::size_t c = 0; c < demands.size(); ++c)
        for (const auto& e : result.weights[static_cast<std::size_t>(t)][c].entries)
          lhs += e.units * inputs.max_e2e_ms(demands[c].config, e.dc, e.path);
    if (lhs > options.e2e_bound_ms * total_units * (1.0 + 1e-9) + 1e-6) return std::nullopt;
  }

  result.status = lp::SolveStatus::kOptimal;
  result.objective = objective;
  result.sum_of_wan_peaks_mbps = sum_wan_peaks(inputs, result.weights);
  return result;
}

}  // namespace

LpPlanResult solve_plan(const PlanInputs& inputs, const LpBuildOptions& options,
                        WarmStartCache* warm) {
  const bool multi_region = inputs.scope().regions.size() > 1;
  const bool decompose =
      options.objective == Objective::kMinimizeWanPeaks &&
      (options.decomposition == Decomposition::kForce ||
       (options.decomposition == Decomposition::kAuto && multi_region));
  if (decompose) {
    if (auto r = solve_decomposed(inputs, options, warm)) return *r;
  }
  return solve_monolithic(inputs, options, warm);
}

}  // namespace titan::titannext
