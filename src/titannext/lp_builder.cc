#include "titannext/lp_builder.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>

namespace titan::titannext {

namespace {

// Variable layout: X vars first, y vars after.
//   x_index(t, c, m, p) = ((t * C + c) * M + m) * 2 + p
// with p: 0 = WAN, 1 = Internet.
struct Layout {
  int timeslots, configs, dcs;
  [[nodiscard]] int x(int t, int c, int m, int p) const {
    return ((t * configs + c) * dcs + m) * 2 + p;
  }
  [[nodiscard]] int num_x() const { return timeslots * configs * dcs * 2; }
};

// Per (config, dc): WAN bandwidth contributed to each in-scope link by one
// assigned unit.
using LinkLoads = std::vector<std::pair<int, double>>;  // (link index, Mbps)

// Row layout mirror of build_model's construction order: C1 demand rows
// (slot-major, config inner), C2 compute rows, C3 Internet rows, the single
// optional C4 e2e row, then C5 per-(slot, link) peak rows. remap_basis
// depends on this matching build_model exactly — extend both together.
struct RowLayout {
  int timeslots, configs, dcs, links;
  bool e2e;
  [[nodiscard]] int c1(int t, int c) const { return t * configs + c; }
  [[nodiscard]] int c2(int t, int m) const { return timeslots * configs + t * dcs + m; }
  [[nodiscard]] int c3(int t, int m) const {
    return timeslots * (configs + dcs) + t * dcs + m;
  }
  [[nodiscard]] int e2e_row() const { return timeslots * (configs + 2 * dcs); }
  [[nodiscard]] int c5(int t, int l) const {
    return timeslots * (configs + 2 * dcs) + (e2e ? 1 : 0) + t * links + l;
  }
  [[nodiscard]] int rows() const {
    return timeslots * (configs + 2 * dcs) + (e2e ? 1 : 0) + timeslots * links;
  }
};

// Whether build_model will emit the C4 row for these inputs.
bool has_e2e_row(const PlanInputs& inputs, const LpBuildOptions& options) {
  if (options.e2e_bound_ms <= 0.0) return false;
  double total_units = 0.0;
  for (const auto& d : inputs.demands()) total_units += d.total_units;
  return total_units > 0.0;
}

}  // namespace

lp::LpModel build_model(const PlanInputs& inputs, const LpBuildOptions& options) {
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const auto& links = inputs.links();
  const Layout lay{inputs.scope().timeslots, static_cast<int>(demands.size()),
                   static_cast<int>(dcs.size())};

  lp::LpModel model;
  // X variables (objective coefficients depend on the variant).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c)
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) {
          double cost = 0.0;
          const auto path = p == 0 ? net::PathType::kWan : net::PathType::kInternet;
          if (options.objective == Objective::kMinimizeTotalLatency)
            cost = inputs.total_latency_ms(demands[static_cast<std::size_t>(c)].config,
                                           dcs[static_cast<std::size_t>(m)], path);
          else if (options.objective == Objective::kMinimizeTotalMaxE2e)
            cost = inputs.max_e2e_ms(demands[static_cast<std::size_t>(c)].config,
                                     dcs[static_cast<std::size_t>(m)], path);
          model.add_variable(cost);
        }
  // y variables (peak per link) — only part of the objective for the
  // Titan-Next variant; harmless otherwise (cost 0 keeps them defined).
  std::vector<int> yvar(links.size());
  for (std::size_t l = 0; l < links.size(); ++l)
    yvar[l] = model.add_variable(
        options.objective == Objective::kMinimizeWanPeaks ? 1.0 : 0.0,
        "y_link" + std::to_string(links[l].value()));

  // Precompute per (config, dc) link loads and resource coefficients.
  std::map<int, int> link_index;
  for (std::size_t l = 0; l < links.size(); ++l) link_index[links[l].value()] = static_cast<int>(l);
  std::vector<std::vector<LinkLoads>> loads(demands.size(),
                                            std::vector<LinkLoads>(dcs.size()));
  for (std::size_t c = 0; c < demands.size(); ++c) {
    for (std::size_t m = 0; m < dcs.size(); ++m) {
      std::map<int, double> acc;
      for (const auto& [country, count] : demands[c].config.participants) {
        const double bw = demands[c].config.network_mbps_from(country);
        for (const auto lid : inputs.net().topology().path(country, dcs[m]).links) {
          const auto it = link_index.find(lid.value());
          if (it != link_index.end()) acc[it->second] += bw;
        }
      }
      for (const auto& [l, bw] : acc) loads[c][m].push_back({l, bw});
    }
  }

  // C1: all calls of each (t, c) assigned.
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c) {
      const double n =
          demands[static_cast<std::size_t>(c)].units_per_slot[static_cast<std::size_t>(t)];
      const int row = model.add_constraint(lp::Sense::kEq, n);
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) model.add_coefficient(row, lay.x(t, c, m, p), 1.0);
    }

  // C2: MP compute per (t, m).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int m = 0; m < lay.dcs; ++m) {
      const int row = model.add_constraint(lp::Sense::kLe,
                                           inputs.dc_capacity(dcs[static_cast<std::size_t>(m)]));
      for (int c = 0; c < lay.configs; ++c) {
        const double cores = demands[static_cast<std::size_t>(c)].config.compute_cores();
        for (int p = 0; p < 2; ++p)
          model.add_coefficient(row, lay.x(t, c, m, p), cores);
      }
    }

  // C3: Internet path capacity per (t, m).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int m = 0; m < lay.dcs; ++m) {
      const int row = model.add_constraint(
          lp::Sense::kLe, inputs.internet_capacity(dcs[static_cast<std::size_t>(m)]));
      for (int c = 0; c < lay.configs; ++c)
        model.add_coefficient(row, lay.x(t, c, m, 1),
                              demands[static_cast<std::size_t>(c)].config.network_mbps());
    }

  // C4: bound on the demand-weighted average of max-E2E latency. The
  // presence condition is shared with remap_basis through has_e2e_row so
  // the row layouts cannot drift apart.
  if (has_e2e_row(inputs, options)) {
    double total_units = 0.0;
    for (const auto& d : demands) total_units += d.total_units;
    const int row = model.add_constraint(lp::Sense::kLe, options.e2e_bound_ms * total_units);
    for (int t = 0; t < lay.timeslots; ++t)
      for (int c = 0; c < lay.configs; ++c)
        for (int m = 0; m < lay.dcs; ++m)
          for (int p = 0; p < 2; ++p) {
            const auto path = p == 0 ? net::PathType::kWan : net::PathType::kInternet;
            model.add_coefficient(
                row, lay.x(t, c, m, p),
                inputs.max_e2e_ms(demands[static_cast<std::size_t>(c)].config,
                                  dcs[static_cast<std::size_t>(m)], path));
          }
  }

  // C5: per-link peak definition, y_l >= slot WAN usage.
  for (int t = 0; t < lay.timeslots; ++t)
    for (std::size_t l = 0; l < links.size(); ++l) {
      const int row = model.add_constraint(lp::Sense::kLe, 0.0);
      bool any = false;
      for (int c = 0; c < lay.configs; ++c)
        for (int m = 0; m < lay.dcs; ++m)
          for (const auto& [li, bw] : loads[static_cast<std::size_t>(c)][static_cast<std::size_t>(m)])
            if (li == static_cast<int>(l)) {
              model.add_coefficient(row, lay.x(t, c, m, 0), bw);
              any = true;
            }
      model.add_coefficient(row, yvar[l], -1.0);
      (void)any;
    }

  return model;
}

std::optional<lp::Basis> remap_basis(const PlanBasisContext& prev, const PlanInputs& inputs,
                                     const LpBuildOptions& options, int shift_slots) {
  if (!prev.valid() || prev.timeslots != inputs.scope().timeslots) return std::nullopt;
  // The windows must overlap: slot t of the old horizon is slot t - shift
  // of the new one, so shift >= T means nothing transfers (and a negative
  // shift would mean time ran backwards — a caller bug; refuse).
  if (shift_slots < 0 || shift_slots >= prev.timeslots) return std::nullopt;
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const auto& links = inputs.links();
  const int T = prev.timeslots;
  const int c_old = static_cast<int>(prev.shapes.size());
  const int m_old = static_cast<int>(prev.dcs.size());
  const int l_old = static_cast<int>(prev.links.size());
  if (c_old == 0 || m_old == 0) return std::nullopt;

  const Layout old_lay{T, c_old, m_old};
  const Layout new_lay{T, static_cast<int>(demands.size()), static_cast<int>(dcs.size())};
  const RowLayout old_rows{T, c_old, m_old, l_old, prev.e2e_row};
  const RowLayout new_rows{T, new_lay.configs, new_lay.dcs, static_cast<int>(links.size()),
                           has_e2e_row(inputs, options)};
  if (static_cast<int>(prev.basis.entries.size()) != old_rows.rows()) return std::nullopt;

  // Label translation tables old index -> new index (-1 = label vanished).
  std::vector<int> shape_map(static_cast<std::size_t>(c_old), -1);
  for (int c = 0; c < c_old; ++c)
    shape_map[static_cast<std::size_t>(c)] =
        inputs.demand_index(prev.shapes[static_cast<std::size_t>(c)]);
  std::vector<int> dc_map(static_cast<std::size_t>(m_old), -1);
  for (int m = 0; m < m_old; ++m)
    for (std::size_t i = 0; i < dcs.size(); ++i)
      if (dcs[i] == prev.dcs[static_cast<std::size_t>(m)]) {
        dc_map[static_cast<std::size_t>(m)] = static_cast<int>(i);
        break;
      }
  std::map<int, int> link_map;
  for (std::size_t i = 0; i < links.size(); ++i) link_map[links[i].value()] = static_cast<int>(i);
  const auto map_link = [&](int l) {
    const auto it = link_map.find(prev.links[static_cast<std::size_t>(l)].value());
    return it == link_map.end() ? -1 : it->second;
  };

  // Horizon-relative slot translation: old slot t is new slot t - shift;
  // slots before the new window vanish.
  const auto map_slot = [&](int t) { return t - shift_slots; };

  // Old row index -> new row index by label (-1 = vanished).
  const auto map_row = [&](int r) -> int {
    if (r < 0 || r >= old_rows.rows()) return -1;
    if (r < T * c_old) {
      const int t = map_slot(r / c_old);
      const int c = shape_map[static_cast<std::size_t>(r % c_old)];
      return (t < 0 || c < 0) ? -1 : new_rows.c1(t, c);
    }
    r -= T * c_old;
    if (r < 2 * T * m_old) {
      const bool internet = r >= T * m_old;
      if (internet) r -= T * m_old;
      const int t = map_slot(r / m_old);
      const int m = dc_map[static_cast<std::size_t>(r % m_old)];
      if (t < 0 || m < 0) return -1;
      return internet ? new_rows.c3(t, m) : new_rows.c2(t, m);
    }
    r -= 2 * T * m_old;
    if (prev.e2e_row && r == 0) return new_rows.e2e ? new_rows.e2e_row() : -1;
    if (prev.e2e_row) r -= 1;
    const int t = map_slot(r / l_old);
    const int l = map_link(r % l_old);
    return (t < 0 || l < 0) ? -1 : new_rows.c5(t, l);
  };

  // Translate every surviving entry; collect the set of claimed rows so the
  // completion step below can fill the holes with slacks/artificials.
  std::vector<lp::BasisEntry> mapped;
  mapped.reserve(prev.basis.entries.size());
  std::set<std::pair<int, int>> seen;  // (kind, index) duplicates guard
  std::vector<bool> row_claimed(static_cast<std::size_t>(new_rows.rows()), false);
  const int num_x_old = old_lay.num_x();
  for (const auto& e : prev.basis.entries) {
    lp::BasisEntry out = e;
    if (e.kind == lp::BasisEntry::Kind::kStructural) {
      if (e.index < num_x_old) {
        int rest = e.index;
        const int p = rest % 2;
        rest /= 2;
        const int m = dc_map[static_cast<std::size_t>(rest % m_old)];
        rest /= m_old;
        const int c = shape_map[static_cast<std::size_t>(rest % c_old)];
        const int t = map_slot(rest / c_old);
        if (t < 0 || c < 0 || m < 0) continue;
        out.index = new_lay.x(t, c, m, p);
      } else {
        if (e.index >= num_x_old + l_old) return std::nullopt;  // corrupt snapshot
        const int l = map_link(e.index - num_x_old);
        if (l < 0) continue;
        out.index = new_lay.num_x() + l;
      }
    } else {
      const int r = map_row(e.index);
      if (r < 0) continue;
      out.index = r;
      row_claimed[static_cast<std::size_t>(r)] = true;
    }
    if (!seen.insert({static_cast<int>(out.kind), out.index}).second) return std::nullopt;
    mapped.push_back(out);
  }


  // Completion: the dropped entries' columns pivoted rows that either
  // vanished with them (balanced — nothing to do) or still exist and now
  // need a unit column. The rows that *demonstrably* lost their pivot are
  // the fresh-label ones — C1 rows of shapes the old plan never had (their
  // serving columns were never basic) and C5 rows of links no old path used
  // (no survivor touches them, so they would be all-zero in the basis).
  // Fill those first; top up any remaining budget over unclaimed rows in
  // row order. C1 rows are equalities (artificial — basic at the row's
  // demand, which is what the warm phase-1 repair in lp::solve drives out),
  // everything else is <= (slack).
  std::vector<bool> label_is_fresh(static_cast<std::size_t>(new_rows.rows()), true);
  for (int r = 0; r < old_rows.rows(); ++r) {
    const int nr = map_row(r);
    if (nr >= 0) label_is_fresh[static_cast<std::size_t>(nr)] = false;
  }
  int fresh_unclaimed = 0;
  for (int r = 0; r < new_rows.rows(); ++r)
    if (label_is_fresh[static_cast<std::size_t>(r)] && !row_claimed[static_cast<std::size_t>(r)])
      ++fresh_unclaimed;
  // Make room: every fresh row *must* get its unit column, so when the
  // survivors plus the fresh fills would overflow the row count, trim
  // survivors from the back (freed slack/artificial rows rejoin the
  // fillable pool; the structural-rank repair in lp::solve re-seats
  // whatever the trim destabilized).
  const int budget = new_rows.rows() - fresh_unclaimed;
  if (budget < 0) return std::nullopt;
  while (static_cast<int>(mapped.size()) > budget) {
    const lp::BasisEntry& victim = mapped.back();
    if (victim.kind != lp::BasisEntry::Kind::kStructural)
      row_claimed[static_cast<std::size_t>(victim.index)] = false;
    mapped.pop_back();
  }
  const auto fill_row = [&](int r) {
    lp::BasisEntry fill;
    fill.kind = r < T * new_lay.configs ? lp::BasisEntry::Kind::kArtificial
                                        : lp::BasisEntry::Kind::kSlack;
    fill.index = r;
    mapped.push_back(fill);
    row_claimed[static_cast<std::size_t>(r)] = true;
  };
  for (int r = 0; r < new_rows.rows(); ++r)
    if (label_is_fresh[static_cast<std::size_t>(r)] && !row_claimed[static_cast<std::size_t>(r)])
      fill_row(r);
  for (int r = 0; r < new_rows.rows() && static_cast<int>(mapped.size()) < new_rows.rows();
       ++r)
    if (!row_claimed[static_cast<std::size_t>(r)]) fill_row(r);
  if (static_cast<int>(mapped.size()) != new_rows.rows()) return std::nullopt;
  return lp::Basis{std::move(mapped)};
}

LpPlanResult solve_plan(const PlanInputs& inputs, const LpBuildOptions& options,
                        WarmStartCache* warm) {
  LpPlanResult result;
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const Layout lay{inputs.scope().timeslots, static_cast<int>(demands.size()),
                   static_cast<int>(dcs.size())};

  const auto build_start = std::chrono::steady_clock::now();
  const lp::LpModel model = build_model(inputs, options);
  result.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();
  std::optional<lp::Basis> seed;
  if (warm != nullptr)
    seed = remap_basis(warm->last, inputs, options,
                       warm->next_plan_begin - warm->last.plan_begin);
  const lp::Solution sol =
      seed ? lp::solve(model, *seed, options.solver) : lp::solve(model, options.solver);
  result.status = sol.status;
  result.objective = sol.objective;
  result.solve_seconds = sol.solve_seconds;
  result.phase1_seconds = sol.phase1_seconds;
  result.phase2_seconds = sol.phase2_seconds;
  result.refactor_seconds = sol.refactor_seconds;
  result.refactorizations = sol.refactorizations;
  result.iterations = sol.iterations;
  result.phase1_iterations = sol.phase1_iterations;
  result.warm_started = sol.warm_started;
  if (sol.status != lp::SolveStatus::kOptimal) return result;

  // Snapshot the fresh basis + model identity for the next replan.
  if (warm != nullptr) {
    warm->last.basis = sol.basis;
    warm->last.shapes.clear();
    warm->last.shapes.reserve(demands.size());
    for (const auto& d : demands) warm->last.shapes.push_back(d.config);
    warm->last.dcs = dcs;
    warm->last.links = inputs.links();
    warm->last.timeslots = inputs.scope().timeslots;
    warm->last.e2e_row = has_e2e_row(inputs, options);
    warm->last.plan_begin = warm->next_plan_begin;
  }

  result.weights.assign(static_cast<std::size_t>(lay.timeslots),
                        std::vector<AssignmentWeights>(demands.size()));
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c) {
      auto& w = result.weights[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) {
          const double units = sol.x[static_cast<std::size_t>(lay.x(t, c, m, p))];
          if (units > 1e-7)
            w.entries.push_back({dcs[static_cast<std::size_t>(m)],
                                 p == 0 ? net::PathType::kWan : net::PathType::kInternet,
                                 units});
        }
    }

  // Realized sum of per-link WAN peaks of the fractional plan.
  const auto& links = inputs.links();
  std::map<int, int> link_index;
  for (std::size_t l = 0; l < links.size(); ++l) link_index[links[l].value()] = static_cast<int>(l);
  std::vector<double> peak(links.size(), 0.0);
  for (int t = 0; t < lay.timeslots; ++t) {
    std::vector<double> usage(links.size(), 0.0);
    for (int c = 0; c < lay.configs; ++c) {
      const auto& w = result.weights[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
      for (const auto& e : w.entries) {
        if (e.path != net::PathType::kWan) continue;
        for (const auto& [country, count] :
             demands[static_cast<std::size_t>(c)].config.participants) {
          const double bw =
              demands[static_cast<std::size_t>(c)].config.network_mbps_from(country) * e.units;
          for (const auto lid : inputs.net().topology().path(country, e.dc).links) {
            const auto it = link_index.find(lid.value());
            if (it != link_index.end()) usage[static_cast<std::size_t>(it->second)] += bw;
          }
        }
      }
    }
    for (std::size_t l = 0; l < links.size(); ++l) peak[l] = std::max(peak[l], usage[l]);
  }
  for (const double p : peak) result.sum_of_wan_peaks_mbps += p;
  return result;
}

}  // namespace titan::titannext
