#include "titannext/lp_builder.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace titan::titannext {

namespace {

// Variable layout: X vars first, y vars after.
//   x_index(t, c, m, p) = ((t * C + c) * M + m) * 2 + p
// with p: 0 = WAN, 1 = Internet.
struct Layout {
  int timeslots, configs, dcs;
  [[nodiscard]] int x(int t, int c, int m, int p) const {
    return ((t * configs + c) * dcs + m) * 2 + p;
  }
  [[nodiscard]] int num_x() const { return timeslots * configs * dcs * 2; }
};

// Per (config, dc): WAN bandwidth contributed to each in-scope link by one
// assigned unit.
using LinkLoads = std::vector<std::pair<int, double>>;  // (link index, Mbps)

}  // namespace

lp::LpModel build_model(const PlanInputs& inputs, const LpBuildOptions& options) {
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const auto& links = inputs.links();
  const Layout lay{inputs.scope().timeslots, static_cast<int>(demands.size()),
                   static_cast<int>(dcs.size())};

  lp::LpModel model;
  // X variables (objective coefficients depend on the variant).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c)
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) {
          double cost = 0.0;
          const auto path = p == 0 ? net::PathType::kWan : net::PathType::kInternet;
          if (options.objective == Objective::kMinimizeTotalLatency)
            cost = inputs.total_latency_ms(demands[static_cast<std::size_t>(c)].config,
                                           dcs[static_cast<std::size_t>(m)], path);
          else if (options.objective == Objective::kMinimizeTotalMaxE2e)
            cost = inputs.max_e2e_ms(demands[static_cast<std::size_t>(c)].config,
                                     dcs[static_cast<std::size_t>(m)], path);
          model.add_variable(cost);
        }
  // y variables (peak per link) — only part of the objective for the
  // Titan-Next variant; harmless otherwise (cost 0 keeps them defined).
  std::vector<int> yvar(links.size());
  for (std::size_t l = 0; l < links.size(); ++l)
    yvar[l] = model.add_variable(
        options.objective == Objective::kMinimizeWanPeaks ? 1.0 : 0.0,
        "y_link" + std::to_string(links[l].value()));

  // Precompute per (config, dc) link loads and resource coefficients.
  std::map<int, int> link_index;
  for (std::size_t l = 0; l < links.size(); ++l) link_index[links[l].value()] = static_cast<int>(l);
  std::vector<std::vector<LinkLoads>> loads(demands.size(),
                                            std::vector<LinkLoads>(dcs.size()));
  for (std::size_t c = 0; c < demands.size(); ++c) {
    for (std::size_t m = 0; m < dcs.size(); ++m) {
      std::map<int, double> acc;
      for (const auto& [country, count] : demands[c].config.participants) {
        const double bw = demands[c].config.network_mbps_from(country);
        for (const auto lid : inputs.net().topology().path(country, dcs[m]).links) {
          const auto it = link_index.find(lid.value());
          if (it != link_index.end()) acc[it->second] += bw;
        }
      }
      for (const auto& [l, bw] : acc) loads[c][m].push_back({l, bw});
    }
  }

  // C1: all calls of each (t, c) assigned.
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c) {
      const double n =
          demands[static_cast<std::size_t>(c)].units_per_slot[static_cast<std::size_t>(t)];
      const int row = model.add_constraint(lp::Sense::kEq, n);
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) model.add_coefficient(row, lay.x(t, c, m, p), 1.0);
    }

  // C2: MP compute per (t, m).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int m = 0; m < lay.dcs; ++m) {
      const int row = model.add_constraint(lp::Sense::kLe,
                                           inputs.dc_capacity(dcs[static_cast<std::size_t>(m)]));
      for (int c = 0; c < lay.configs; ++c) {
        const double cores = demands[static_cast<std::size_t>(c)].config.compute_cores();
        for (int p = 0; p < 2; ++p)
          model.add_coefficient(row, lay.x(t, c, m, p), cores);
      }
    }

  // C3: Internet path capacity per (t, m).
  for (int t = 0; t < lay.timeslots; ++t)
    for (int m = 0; m < lay.dcs; ++m) {
      const int row = model.add_constraint(
          lp::Sense::kLe, inputs.internet_capacity(dcs[static_cast<std::size_t>(m)]));
      for (int c = 0; c < lay.configs; ++c)
        model.add_coefficient(row, lay.x(t, c, m, 1),
                              demands[static_cast<std::size_t>(c)].config.network_mbps());
    }

  // C4: bound on the demand-weighted average of max-E2E latency.
  if (options.e2e_bound_ms > 0.0) {
    double total_units = 0.0;
    for (const auto& d : demands) total_units += d.total_units;
    if (total_units > 0.0) {
      const int row =
          model.add_constraint(lp::Sense::kLe, options.e2e_bound_ms * total_units);
      for (int t = 0; t < lay.timeslots; ++t)
        for (int c = 0; c < lay.configs; ++c)
          for (int m = 0; m < lay.dcs; ++m)
            for (int p = 0; p < 2; ++p) {
              const auto path = p == 0 ? net::PathType::kWan : net::PathType::kInternet;
              model.add_coefficient(
                  row, lay.x(t, c, m, p),
                  inputs.max_e2e_ms(demands[static_cast<std::size_t>(c)].config,
                                    dcs[static_cast<std::size_t>(m)], path));
            }
    }
  }

  // C5: per-link peak definition, y_l >= slot WAN usage.
  for (int t = 0; t < lay.timeslots; ++t)
    for (std::size_t l = 0; l < links.size(); ++l) {
      const int row = model.add_constraint(lp::Sense::kLe, 0.0);
      bool any = false;
      for (int c = 0; c < lay.configs; ++c)
        for (int m = 0; m < lay.dcs; ++m)
          for (const auto& [li, bw] : loads[static_cast<std::size_t>(c)][static_cast<std::size_t>(m)])
            if (li == static_cast<int>(l)) {
              model.add_coefficient(row, lay.x(t, c, m, 0), bw);
              any = true;
            }
      model.add_coefficient(row, yvar[l], -1.0);
      (void)any;
    }

  return model;
}

LpPlanResult solve_plan(const PlanInputs& inputs, const LpBuildOptions& options) {
  LpPlanResult result;
  const auto& demands = inputs.demands();
  const auto& dcs = inputs.dcs();
  const Layout lay{inputs.scope().timeslots, static_cast<int>(demands.size()),
                   static_cast<int>(dcs.size())};

  const lp::LpModel model = build_model(inputs, options);
  const lp::Solution sol = lp::solve(model, options.solver);
  result.status = sol.status;
  result.objective = sol.objective;
  result.solve_seconds = sol.solve_seconds;
  result.iterations = sol.iterations;
  if (sol.status != lp::SolveStatus::kOptimal) return result;

  result.weights.assign(static_cast<std::size_t>(lay.timeslots),
                        std::vector<AssignmentWeights>(demands.size()));
  for (int t = 0; t < lay.timeslots; ++t)
    for (int c = 0; c < lay.configs; ++c) {
      auto& w = result.weights[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
      for (int m = 0; m < lay.dcs; ++m)
        for (int p = 0; p < 2; ++p) {
          const double units = sol.x[static_cast<std::size_t>(lay.x(t, c, m, p))];
          if (units > 1e-7)
            w.entries.push_back({dcs[static_cast<std::size_t>(m)],
                                 p == 0 ? net::PathType::kWan : net::PathType::kInternet,
                                 units});
        }
    }

  // Realized sum of per-link WAN peaks of the fractional plan.
  const auto& links = inputs.links();
  std::map<int, int> link_index;
  for (std::size_t l = 0; l < links.size(); ++l) link_index[links[l].value()] = static_cast<int>(l);
  std::vector<double> peak(links.size(), 0.0);
  for (int t = 0; t < lay.timeslots; ++t) {
    std::vector<double> usage(links.size(), 0.0);
    for (int c = 0; c < lay.configs; ++c) {
      const auto& w = result.weights[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
      for (const auto& e : w.entries) {
        if (e.path != net::PathType::kWan) continue;
        for (const auto& [country, count] :
             demands[static_cast<std::size_t>(c)].config.participants) {
          const double bw =
              demands[static_cast<std::size_t>(c)].config.network_mbps_from(country) * e.units;
          for (const auto lid : inputs.net().topology().path(country, e.dc).links) {
            const auto it = link_index.find(lid.value());
            if (it != link_index.end()) usage[static_cast<std::size_t>(it->second)] += bw;
          }
        }
      }
    }
    for (std::size_t l = 0; l < links.size(); ++l) peak[l] = std::max(peak[l], usage[l]);
  }
  for (const double p : peak) result.sum_of_wan_peaks_mbps += p;
  return result;
}

}  // namespace titan::titannext
