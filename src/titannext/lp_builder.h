// LP formulation of the joint MP-DC + routing assignment (Fig. 13).
//
//   variable  X[t][c][m][p]  — reduced-config units of config c assigned in
//                              timeslot t to MP DC m over routing option p;
//   variable  y[l]           — peak WAN bandwidth on link l;
//   objective minimize sum_l y[l]             (sum of WAN link peaks)
//   C1  sum_{m,p} X = N[t][c]                 (all calls assigned)
//   C2  sum_{c,p} X * computeUsed(c) <= Cap[t][m]
//   C3  sum_c X[.,Internet] * networkUsed(c) <= InternetCap[t][m]
//   C4  avg of max-E2E latency across assignments <= E
//   C5  y[l] >= sum X * networkUsed * isLinkUsed(c,m,WAN,l)   for all t
//
// The builder also produces the Locality-First baselines (§7.2) by swapping
// the objective for total latency (or total max-E2E latency) and dropping
// C4 — per the paper, LF keeps the same constraint set otherwise.
#pragma once

#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "titannext/inputs.h"

namespace titan::titannext {

enum class Objective {
  kMinimizeWanPeaks,      // Titan-Next
  kMinimizeTotalLatency,  // Locality-First
  kMinimizeTotalMaxE2e,   // LF variant optimizing total max-E2E latency
};

struct LpBuildOptions {
  Objective objective = Objective::kMinimizeWanPeaks;
  // C4 bound: average (over assigned units) of max-E2E latency, msec.
  // <= 0 disables the constraint (the LF baselines drop it).
  double e2e_bound_ms = 80.0;
  lp::SolveOptions solver;
};

// Fractional assignment weights for one (timeslot, demand index).
struct AssignmentWeights {
  struct Entry {
    core::DcId dc;
    net::PathType path;
    double units;
  };
  std::vector<Entry> entries;
};

struct LpPlanResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  double objective = 0.0;
  double solve_seconds = 0.0;
  int iterations = 0;
  // weights[t][demand_idx]
  std::vector<std::vector<AssignmentWeights>> weights;
  // Realized sum over links of peak WAN bandwidth of the fractional plan.
  double sum_of_wan_peaks_mbps = 0.0;
};

// Builds and solves the plan LP over the inputs.
[[nodiscard]] LpPlanResult solve_plan(const PlanInputs& inputs, const LpBuildOptions& options);

// Exposed for tests: just build the model (variable layout documented in
// the .cc file).
[[nodiscard]] lp::LpModel build_model(const PlanInputs& inputs, const LpBuildOptions& options);

}  // namespace titan::titannext
