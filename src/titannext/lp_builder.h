// LP formulation of the joint MP-DC + routing assignment (Fig. 13).
//
//   variable  X[t][c][m][p]  — reduced-config units of config c assigned in
//                              timeslot t to MP DC m over routing option p;
//   variable  y[l]           — peak WAN bandwidth on link l;
//   objective minimize sum_l y[l]             (sum of WAN link peaks)
//   C1  sum_{m,p} X = N[t][c]                 (all calls assigned)
//   C2  sum_{c,p} X * computeUsed(c) <= Cap[t][m]
//   C3  sum_c X[.,Internet] * networkUsed(c) <= InternetCap[t][m]
//   C4  avg of max-E2E latency across assignments <= E
//   C5  y[l] >= sum X * networkUsed * isLinkUsed(c,m,WAN,l)   for all t
//
// The builder also produces the Locality-First baselines (§7.2) by swapping
// the objective for total latency (or total max-E2E latency) and dropping
// C4 — per the paper, LF keeps the same constraint set otherwise.
#pragma once

#include <optional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "titannext/inputs.h"

namespace titan::titannext {

enum class Objective {
  kMinimizeWanPeaks,      // Titan-Next
  kMinimizeTotalLatency,  // Locality-First
  kMinimizeTotalMaxE2e,   // LF variant optimizing total max-E2E latency
};

struct LpBuildOptions {
  Objective objective = Objective::kMinimizeWanPeaks;
  // C4 bound: average (over assigned units) of max-E2E latency, msec.
  // <= 0 disables the constraint (the LF baselines drop it).
  double e2e_bound_ms = 80.0;
  lp::SolveOptions solver;
};

// Fractional assignment weights for one (timeslot, demand index).
struct AssignmentWeights {
  struct Entry {
    core::DcId dc;
    net::PathType path;
    double units;
  };
  std::vector<Entry> entries;
};

struct LpPlanResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  double objective = 0.0;
  double solve_seconds = 0.0;
  // Wall-clock breakdown (see lp::Solution): model construction, the two
  // simplex phases, and the LU refactorization share counted inside them.
  double build_seconds = 0.0;
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  double refactor_seconds = 0.0;
  int refactorizations = 0;  // deterministic, like `iterations`
  int iterations = 0;
  int phase1_iterations = 0;
  bool warm_started = false;  // seeded from the previous replan's basis
  // weights[t][demand_idx]
  std::vector<std::vector<AssignmentWeights>> weights;
  // Realized sum over links of peak WAN bandwidth of the fractional plan.
  double sum_of_wan_peaks_mbps = 0.0;
};

// Identity snapshot of a solved plan LP plus its final simplex basis. The
// model layout is a pure function of (timeslots, demand order, DC order,
// link order, e2e-row presence); snapshotting those labels lets the basis
// be re-expressed against a *rebuilt* model of the same PlanScope even when
// a later forecast reorders or truncates the demand set — columns and rows
// are matched by meaning ((slot, reduced shape, DC, path) for assignment
// variables, link id for peak variables and rows), not by index.
struct PlanBasisContext {
  lp::Basis basis;
  std::vector<workload::CallConfig> shapes;  // demand shapes, model order
  std::vector<core::DcId> dcs;
  std::vector<core::LinkId> links;
  int timeslots = 0;
  bool e2e_row = false;  // whether the C4 row existed
  // Absolute slot the plan horizon started at. A later replan of the same
  // scope maps slot labels *through time*: horizon-relative slot t of this
  // plan is slot t - shift of the next one (shift = difference of the two
  // begins), so only the overlapping window transfers. Disjoint windows
  // (replan interval == horizon, the test cadence) transfer nothing and
  // deliberately fall back to a cold solve.
  core::SlotIndex plan_begin = 0;
  [[nodiscard]] bool valid() const { return !basis.empty(); }
};

// Rolling warm-start state for one replan loop (i.e. one PlanScope).
// `solve_plan` consumes `last` to seed the simplex and overwrites it with
// the fresh basis after every optimal solve. The replan loop sets
// `next_plan_begin` to the new horizon's absolute start slot before each
// solve; callers re-solving one fixed window can leave both begins at 0.
struct WarmStartCache {
  PlanBasisContext last;
  core::SlotIndex next_plan_begin = 0;
};

// Re-expresses `prev`'s basis against the model build_model(inputs,
// options) produces, with the horizon window advanced by `shift_slots`
// (0 = re-solving the same window). Surviving labels — overlapping slots,
// shapes still in the demand set, links still on a path, same DCs — carry
// their entries over; everything else (the fresh tail of the horizon, new
// shapes/links) is completed with slacks/artificials that lp::solve's
// structural-rank repair and warm phase 1 then resolve. Returns nullopt
// when nothing can transfer (disjoint windows, changed horizon length).
// The result is only a *candidate*: lp::solve still gates on factorization
// and basic feasibility and cold-solves otherwise.
[[nodiscard]] std::optional<lp::Basis> remap_basis(const PlanBasisContext& prev,
                                                   const PlanInputs& inputs,
                                                   const LpBuildOptions& options,
                                                   int shift_slots = 0);

// Builds and solves the plan LP over the inputs. With a cache, the solve is
// seeded from the cache's previous basis (warm start) and the cache is
// updated with the new basis on success. A transferred seed reaches the
// same objective as a cold solve but may stop at a different vertex of the
// optimal face; when nothing transfers (disjoint windows, failed gates)
// the solve IS the cold path, byte for byte. See docs/solver.md,
// "Warm-start lifecycle".
[[nodiscard]] LpPlanResult solve_plan(const PlanInputs& inputs, const LpBuildOptions& options,
                                      WarmStartCache* warm = nullptr);

// Exposed for tests: just build the model (variable layout documented in
// the .cc file).
[[nodiscard]] lp::LpModel build_model(const PlanInputs& inputs, const LpBuildOptions& options);

}  // namespace titan::titannext
