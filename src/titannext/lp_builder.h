// LP formulation of the joint MP-DC + routing assignment (Fig. 13).
//
//   variable  X[t][c][m][p]  — reduced-config units of config c assigned in
//                              timeslot t to MP DC m over routing option p;
//   variable  y[l]           — peak WAN bandwidth on link l;
//   objective minimize sum_l y[l]             (sum of WAN link peaks)
//   C1  sum_{m,p} X = N[t][c]                 (all calls assigned)
//   C2  sum_{c,p} X * computeUsed(c) <= Cap[t][m]
//   C3  sum_c X[.,Internet] * networkUsed(c) <= InternetCap[t][m]
//   C4  avg of max-E2E latency across assignments <= E
//   C5  y[l] >= sum X * networkUsed * isLinkUsed(c,m,WAN,l)   for all t
//
// The builder also produces the Locality-First baselines (§7.2) by swapping
// the objective for total latency (or total max-E2E latency) and dropping
// C4 — per the paper, LF keeps the same constraint set otherwise.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "titannext/inputs.h"

namespace titan::titannext {

enum class Objective {
  kMinimizeWanPeaks,      // Titan-Next
  kMinimizeTotalLatency,  // Locality-First
  kMinimizeTotalMaxE2e,   // LF variant optimizing total max-E2E latency
};

// Region-block decomposition policy for solve_plan (docs/solver.md):
//  * kAuto: decompose multi-continent scopes; single-continent scopes take
//    the monolithic path — byte for byte the historical behaviour, which is
//    what keeps every single-region golden checksum unchanged.
//  * kForce: decompose whenever the scope supports it, including the
//    degenerate single-block case (the equivalence tests run this against
//    kOff on the same inputs).
//  * kOff: always monolithic.
// Decomposition only applies to the kMinimizeWanPeaks objective (the LF
// baselines solve monolithically), and every gate failure — overlapping
// block link sets, a failed block or coupling solve, a violated global e2e
// bound — falls back to the monolithic solve transparently.
enum class Decomposition { kOff, kAuto, kForce };

struct LpBuildOptions {
  Objective objective = Objective::kMinimizeWanPeaks;
  // C4 bound: average (over assigned units) of max-E2E latency, msec.
  // <= 0 disables the constraint (the LF baselines drop it).
  double e2e_bound_ms = 80.0;
  Decomposition decomposition = Decomposition::kAuto;
  lp::SolveOptions solver;
};

// Fractional assignment weights for one (timeslot, demand index).
struct AssignmentWeights {
  struct Entry {
    core::DcId dc;
    net::PathType path;
    double units;
  };
  std::vector<Entry> entries;
};

struct LpPlanResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  double objective = 0.0;
  double solve_seconds = 0.0;
  // Wall-clock breakdown (see lp::Solution): model construction, the two
  // simplex phases, and the LU refactorization share counted inside them.
  double build_seconds = 0.0;
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  double refactor_seconds = 0.0;
  int refactorizations = 0;  // deterministic, like `iterations`
  int iterations = 0;
  int phase1_iterations = 0;
  // Solver observability, summed across every LP the plan solve ran (one
  // for a monolithic solve; per-block + coupling for a decomposed one).
  // See lp::Solution for the per-solve meanings.
  int dual_iterations = 0;
  int stall_pivots = 0;
  int bland_pivots = 0;
  int pruned_columns = 0;
  int promoted_columns = 0;
  // Region blocks solved to optimality by the decomposed path; 0 for a
  // monolithic solve (the coupling LP is not counted as a block).
  int blocks_solved = 0;
  bool warm_started = false;  // seeded from the previous replan's basis
  // weights[t][demand_idx]
  std::vector<std::vector<AssignmentWeights>> weights;
  // Realized sum over links of peak WAN bandwidth of the fractional plan.
  double sum_of_wan_peaks_mbps = 0.0;
};

// Identity snapshot of a solved plan LP plus its final simplex basis. The
// model layout is a pure function of (timeslots, demand order, DC order,
// link order, e2e-row presence); snapshotting those labels lets the basis
// be re-expressed against a *rebuilt* model of the same PlanScope even when
// a later forecast reorders or truncates the demand set — columns and rows
// are matched by meaning ((slot, reduced shape, DC, path) for assignment
// variables, link id for peak variables and rows), not by index.
struct PlanBasisContext {
  lp::Basis basis;
  std::vector<workload::CallConfig> shapes;  // demand shapes, model order
  std::vector<core::DcId> dcs;
  std::vector<core::LinkId> links;
  int timeslots = 0;
  bool e2e_row = false;  // whether the C4 row existed
  // Absolute slot the plan horizon started at. A later replan of the same
  // scope maps slot labels *through time*: horizon-relative slot t of this
  // plan is slot t - shift of the next one (shift = difference of the two
  // begins), so only the overlapping window transfers. Disjoint windows
  // (replan interval == horizon, the test cadence) transfer nothing and
  // deliberately fall back to a cold solve.
  core::SlotIndex plan_begin = 0;
  // Reduced costs d_j >= 0 of every structural column of the solved model
  // (assignment variables then peak variables, model order), derived from
  // the optimal duals. The next warm solve maps them through the same
  // label translation as the basis to build its candidate-column mask
  // (docs/solver.md, "Candidate-column pruning"). Empty disables pruning.
  std::vector<double> reduced_costs;
  [[nodiscard]] bool valid() const { return !basis.empty(); }
};

// Rolling warm-start state for one replan loop (i.e. one PlanScope).
// `solve_plan` consumes `last` to seed the simplex and overwrites it with
// the fresh basis after every optimal solve. The replan loop sets
// `next_plan_begin` to the new horizon's absolute start slot before each
// solve; callers re-solving one fixed window can leave both begins at 0.
// Decomposed solves keep one context per region block instead (keyed by
// the block's Continent), each carried across replans exactly like `last`;
// the small coupling LP always solves cold.
struct WarmStartCache {
  PlanBasisContext last;
  std::map<geo::Continent, PlanBasisContext> blocks;
  core::SlotIndex next_plan_begin = 0;
};

// Re-expresses `prev`'s basis against the model build_model(inputs,
// options) produces, with the horizon window advanced by `shift_slots`
// (0 = re-solving the same window). Surviving labels — overlapping slots,
// shapes still in the demand set, links still on a path, same DCs — carry
// their entries over; everything else (the fresh tail of the horizon, new
// shapes/links) is completed with slacks/artificials that lp::solve's
// structural-rank repair and warm phase 1 then resolve. Returns nullopt
// when nothing can transfer (disjoint windows, changed horizon length).
// The result is only a *candidate*: lp::solve still gates on factorization
// and basic feasibility and cold-solves otherwise.
[[nodiscard]] std::optional<lp::Basis> remap_basis(const PlanBasisContext& prev,
                                                   const PlanInputs& inputs,
                                                   const LpBuildOptions& options,
                                                   int shift_slots = 0);

// Builds and solves the plan LP over the inputs. With a cache, the solve is
// seeded from the cache's previous basis (warm start) and the cache is
// updated with the new basis on success. A transferred seed reaches the
// same objective as a cold solve but may stop at a different vertex of the
// optimal face; when nothing transfers (disjoint windows, failed gates)
// the solve IS the cold path, byte for byte. Under the decomposition
// policy above, multi-continent scopes are split into per-region block
// LPs plus a coupling LP over the cross-region demands, each block warm-
// started from its own cached context. See docs/solver.md, "Warm-start
// lifecycle" and "Region-block decomposition".
[[nodiscard]] LpPlanResult solve_plan(const PlanInputs& inputs, const LpBuildOptions& options,
                                      WarmStartCache* warm = nullptr);

// Exposed for tests: just build the model (variable layout documented in
// the .cc file).
[[nodiscard]] lp::LpModel build_model(const PlanInputs& inputs, const LpBuildOptions& options);

}  // namespace titan::titannext
