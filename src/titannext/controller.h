// Online controller for real-time call assignment (§6.4).
//
// When the first user joins we only know their country, so the controller
// (1) assumes an intra-country call, (2) picks the most recently used
// reduced call config for that country (per media type; audio when unseen),
// and (3) draws the (MP DC, routing option) by weighted random from the
// offline plan. Five minutes in, the converged call config may disagree
// with the guess; if the plan's assignment for the true reduced config does
// not cover the current DC, the call migrates (the user-visible glitch
// Table 4 counts). Route-quality failover moves individual users from the
// Internet to the WAN when loss or latency crosses the §6.4 thresholds;
// calls are never moved WAN -> Internet mid-flight (capacity safety).
#pragma once

#include <optional>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "geo/world.h"
#include "titannext/plan.h"

namespace titan::titannext {

// Admission control / load shedding under overload. When a region's offered
// compute load exceeds its aggregate DC capacity, the controller first
// degrades new calls (codec/bitrate step-down through the media ladder:
// video -> screen-share -> audio, shrinking the demand footprint) and only
// past the reject threshold starts shedding. Shedding is proportional to
// each region's own overshoot — regions under threshold never shed — and is
// capped so no region is ever fully starved.
struct AdmissionPolicy {
  bool enabled = false;
  // Region load ratio (offered compute / capacity) where step-downs begin.
  double degrade_threshold = 0.85;
  // Ratio where shedding begins; in (degrade, reject] the controller only
  // degrades, so degradation is always attempted before any rejection.
  double reject_threshold = 1.0;
  // Fairness floor: even at extreme overload a region keeps admitting at
  // least (1 - max_shed) of its offered calls.
  double max_shed = 0.95;
  std::uint64_t seed = 0xAD317;  // per-call admission coin stream
};

// Per-call admission verdict.
struct AdmissionDecision {
  bool admit = true;
  int degrade_steps = 0;  // media step-downs to apply when admitted
};

struct ControllerOptions {
  std::uint64_t seed = 303;
  double route_failover_loss = 0.01;      // loss >= 1%
  double route_failover_rtt_factor = 1.6; // x pair WAN RTT (distance proxy)
  // Must match the plan: when the offline LP was fed *full* call configs
  // (Table 4's ablation), convergence must look configs up un-reduced.
  bool use_reduction = true;
  AdmissionPolicy admission;
};

struct InitialAssignment {
  Assignment assignment;
  bool from_plan = false;  // false => fallback (nearest DC, WAN)
  workload::CallConfig guessed_config;
  core::CountryId first_joiner;  // keys the recently-used-config memory
  // Media step-downs admission control applied at arrival (sim engine sets
  // this from the AdmissionDecision); carried so convergence and usage
  // accounting see the degraded shape.
  int degrade_steps = 0;
};

struct ConvergenceResult {
  Assignment final_assignment;
  bool dc_migration = false;    // inter-DC migration (the damaging kind)
  bool route_change = false;    // routing-option-only change
  bool out_of_plan = false;     // true config not covered by the plan
};

class OnlineController {
 public:
  OnlineController(const PlanInputs& inputs, const OfflinePlan& plan,
                   const ControllerOptions& options = {});

  // Closed-loop replan hook (src/sim/): swap in a freshly solved plan while
  // preserving the recently-used-config state that guides first-joiner
  // guesses across plan generations.
  void rebind(const PlanInputs& inputs, const OfflinePlan& plan);

  // Assignment when the first user joins.
  [[nodiscard]] InitialAssignment assign_initial(core::CountryId first_joiner,
                                                 media::MediaType media, core::SlotIndex t,
                                                 core::Rng& rng);

  // Convergence check a few minutes into the call, once the true config is
  // known. Keeps the call in place whenever the plan supports the current
  // DC for the true reduced config.
  [[nodiscard]] ConvergenceResult converge(const InitialAssignment& initial,
                                           const workload::CallConfig& true_config,
                                           core::SlotIndex t, core::Rng& rng);

  // §6.4 route migration: move this participant's traffic to WAN?
  [[nodiscard]] bool should_route_failover(core::CountryId country, core::DcId dc,
                                           double observed_loss,
                                           core::Millis observed_rtt_ms) const;

  // Fallback when the plan has nothing for a config: nearest in-scope DC by
  // WAN latency ("assign MP DC closest to the first joiner"), WAN routing.
  // The `exclude` overload additionally avoids one DC — partial-drain
  // evacuations must land their chosen subset somewhere *else*, even when
  // the draining DC still has capacity — unless it is the only *live* DC
  // left (a partially drained DC still beats a fully drained one). When
  // every in-scope DC is fully drained, the result's DC is invalid
  // (`!Assignment::valid()`): an explicit reject the caller must handle,
  // never a silent landing on a drained DC.
  [[nodiscard]] Assignment fallback(core::CountryId country) const;
  [[nodiscard]] Assignment fallback(core::CountryId country, core::DcId exclude) const;

  // Push the per-region load ratios (offered compute / aggregate capacity,
  // indexed by geo::Continent) that admission decisions read. The sim pushes
  // the previous slot's merged accounting identically to every shard
  // controller at the slot barrier, so admission is a pure function of
  // (pushed state, call id) and independent of sharding.
  void set_admission_state(const std::vector<double>& region_load_ratio);

  // Admission verdict for a new call arriving in `region`. Deterministic:
  // the shed coin is a pure hash of (policy seed, call id).
  [[nodiscard]] AdmissionDecision admit(geo::Continent region, core::CallId call,
                                        media::MediaType media) const;

 private:
  // Most recently used reduced config for one (country, media) cell, plus
  // its demand index under the CURRENT plan generation so assign_initial
  // reaches the plan without any shape lookup. `demand_idx` is -1 when the
  // shape is outside the current demand set; rebind() re-resolves every
  // valid cell against the new inputs (reindex).
  struct RecentConfig {
    workload::CallConfig config;
    int demand_idx = -1;
    bool valid = false;
  };

  void reindex();
  [[nodiscard]] std::size_t recent_slot(core::CountryId country, media::MediaType media) const {
    return static_cast<std::size_t>(country.value()) *
               static_cast<std::size_t>(media::kMediaTypeCount) +
           static_cast<std::size_t>(media);
  }

  const PlanInputs* inputs_;
  const OfflinePlan* plan_;
  ControllerOptions options_;
  // Flat per-(country, media) memory, [country * kMediaTypeCount + media];
  // survives rebind (the memory spans plan generations by design).
  std::vector<RecentConfig> recent_;
  // Per-region offered-load / capacity ratio, [geo::kNumContinents]; zeros
  // (everything admitted untouched) until set_admission_state is called.
  std::vector<double> region_load_;
};

}  // namespace titan::titannext
