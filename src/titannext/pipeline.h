// Titan-Next end-to-end pipeline (Fig. 12).
//
// Glues the building blocks: the call-records DB (a workload::Trace), call
// count prediction (Holt-Winters per call config, §6.1/2), call config
// grouping (§6.2, inside PlanInputs), the offline precomputed LP plan
// (§6.3), and the online controller (§6.4). One `DayPlan` covers a
// 24-hour horizon of 30-minute slots; production re-plans every 30 minutes
// with fresh estimates — re-planning frequency is the caller's loop.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "forecast/holt_winters.h"
#include "net/network_db.h"
#include "titannext/controller.h"
#include "titannext/plan.h"
#include "workload/callgen.h"

namespace titan::titannext {

struct PipelineOptions {
  PlanScope scope;
  LpBuildOptions lp;
  // Number of top-volume configs forecast with Holt-Winters; the rest use
  // same-slot-last-week persistence (cheap tail handling).
  int top_k_forecast = 300;
  bool use_reduction = true;  // §6.2 grouping (Table 4 ablates this)
};

struct DayPlan {
  std::unique_ptr<PlanInputs> inputs;
  OfflinePlan plan;
  double forecast_seconds = 0.0;
  double lp_seconds = 0.0;       // across all solve attempts
  // Phase breakdown of the LP work, accumulated across attempts like
  // lp_seconds: model build, simplex phase 1 (or warm restoration),
  // phase 2, and the LU refactorization share counted inside the phases.
  double lp_build_seconds = 0.0;
  double lp_phase1_seconds = 0.0;
  double lp_phase2_seconds = 0.0;
  double lp_refactor_seconds = 0.0;
  int lp_refactorizations = 0;    // of the accepted solve (deterministic)
  int lp_iterations = 0;          // simplex iterations of the accepted solve
  int lp_phase1_iterations = 0;   // phase-1 share (for warm-started solves:
                                  // the feasibility-restoration iterations)
  // Scale-out observability of the accepted solve (deterministic; see
  // LpPlanResult): dual-simplex pivots, region blocks solved by the
  // decomposed path, and structural columns excluded from pricing by the
  // candidate mask.
  int lp_dual_iterations = 0;
  int lp_blocks_solved = 0;
  int lp_pruned_columns = 0;
  bool lp_warm_started = false;   // accepted solve was seeded from a cached basis
  int lp_attempts = 0;            // headroom-relaxation attempts consumed
  [[nodiscard]] bool valid() const { return plan.valid(); }
};

// Per-config forecast of the next `horizon` slots from history
// counts[config][0..history_end). Configs ranked by volume; the top
// `top_k` get Holt-Winters, the rest persistence.
struct ForecastOutput {
  std::vector<std::vector<double>> counts;  // [config][horizon slot]
  double seconds = 0.0;
  int hw_configs = 0;
};
[[nodiscard]] ForecastOutput forecast_counts(const std::vector<std::vector<double>>& history,
                                             int history_end, int horizon, int top_k);

class TitanNextPipeline {
 public:
  TitanNextPipeline(const net::NetworkDb& net,
                    std::map<std::pair<int, int>, double> internet_fractions,
                    const PipelineOptions& options = {});

  // Oracle plan (§7): ground-truth counts for [day_begin, day_begin + T).
  [[nodiscard]] DayPlan plan_day_oracle(const workload::Trace& trace,
                                        core::SlotIndex day_begin) const;

  // Practical plan (§8): Holt-Winters forecasts trained on all slots before
  // `day_begin`.
  [[nodiscard]] DayPlan plan_day_forecast(const workload::Trace& trace,
                                          core::SlotIndex day_begin) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

  // Plans directly from per-(config, horizon-slot) counts; `trace` only
  // supplies the config registry. With a warm-start cache the LP solve is
  // seeded from the previous plan's basis (and the cache refreshed) —
  // a replan loop passes one cache across its whole lifetime.
  [[nodiscard]] DayPlan plan_from_counts(const workload::Trace& trace,
                                         const std::vector<std::vector<double>>& counts,
                                         double forecast_seconds,
                                         WarmStartCache* warm = nullptr) const;

 private:
  const net::NetworkDb* net_;
  std::map<std::pair<int, int>, double> fractions_;
  PipelineOptions options_;
};

}  // namespace titan::titannext
