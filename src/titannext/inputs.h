// Inputs to the Titan-Next offline plan (§6, "Inputs").
//
// The planner consumes: (a) per-DC MP compute capacity per timeslot,
// (b) per-(reduced config, timeslot) call counts — ground truth in §7's
// oracle evaluation, Holt-Winters forecasts in §8's practical evaluation,
// (c) per-DC Internet path capacities as learnt by Titan, and (d) the WAN
// topology (link set + per-pair paths) and latency tables. `PlanInputs`
// materializes all of it in LP-ready form, with a scope restricted to a
// region set (a single continent — Europe — in the paper's evaluation;
// multi-continent scopes plan cross-region serving and corridors).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/ids.h"
#include "core/timegrid.h"
#include "core/units.h"
#include "geo/region.h"
#include "net/network_db.h"
#include "workload/call_config.h"
#include "workload/callgen.h"

namespace titan::titannext {

struct ReducedDemand {
  workload::CallConfig config;           // reduced shape
  std::vector<double> units_per_slot;    // reduced-units per timeslot
  double total_units = 0.0;
};

struct PlanScope {
  // Continents whose countries and DCs are in plan scope. A bare Continent
  // converts implicitly, so `scope.regions = geo::Continent::kEurope` keeps
  // working; multi-region scopes list several (validated: non-empty, no
  // duplicates) and make cross-continent serving available to the LP.
  geo::RegionSet regions = geo::Continent::kEurope;
  int timeslots = core::kSlotsPerDay;  // planning horizon (24h of 30-min slots)
  // Keep only the top-K reduced configs by volume (the paper predicts the
  // top 3,000 call configs covering 90+% of calls; our scaled world needs
  // far fewer).
  int max_reduced_configs = 80;
  // Total MP compute provisioned across in-scope DCs, as a multiple of the
  // trace's peak per-slot compute demand. Distributed across DCs
  // proportionally to their synthetic `cores`.
  double compute_headroom = 2.0;
  // Scale on the Titan-learnt Internet capacities (the "double the traffic
  // on the Internet" ablation passes 2.0; "MP placement only" passes 0.0).
  double internet_capacity_scale = 1.0;
  // When > 0, DC compute capacity is anchored at this absolute core count
  // instead of the horizon's peak demand: capacity = anchor x headroom x
  // DC share x drain scale. This is what makes *sustained overload*
  // expressible — with the default (0, legacy behaviour, byte-identical)
  // capacity is re-derived from forecast demand at every replan, so it
  // grows with the workload and demand can never outrun it.
  double capacity_anchor_cores = 0.0;
};

class PlanInputs {
 public:
  // `fractions` maps (country, dc) -> safe Internet fraction as learnt by
  // Titan; use titan_sys::TitanSystem::internet_fraction or a constant map.
  PlanInputs(const net::NetworkDb& net, const PlanScope& scope,
             const std::map<std::pair<int, int>, double>& fractions);

  // Demand from per-(original config, slot) counts; reduction + grouping
  // (§6.2) happens here. `use_reduction=false` feeds full configs to the LP
  // (Table 4's ablation).
  void set_demand(const workload::ConfigRegistry& registry,
                  const std::vector<std::vector<double>>& counts_per_config,
                  bool use_reduction = true);

  [[nodiscard]] const PlanScope& scope() const { return scope_; }
  [[nodiscard]] const net::NetworkDb& net() const { return *net_; }
  [[nodiscard]] const std::vector<core::DcId>& dcs() const { return dcs_; }
  [[nodiscard]] const std::vector<ReducedDemand>& demands() const { return demands_; }
  [[nodiscard]] const std::vector<core::LinkId>& links() const { return links_; }

  [[nodiscard]] core::Cores dc_capacity(core::DcId dc) const;
  [[nodiscard]] core::Mbps internet_capacity(core::DcId dc) const;

  // Resource helpers shared by the LP builder and the evaluators.
  // Max end-to-end latency for a config hosted at `dc` over `path` (Fig. 10:
  // worst participant pair, one-way legs through the MP).
  [[nodiscard]] core::Millis max_e2e_ms(const workload::CallConfig& config, core::DcId dc,
                                        net::PathType path) const;
  // Sum of participant RTTs (the Locality-First objective).
  [[nodiscard]] core::Millis total_latency_ms(const workload::CallConfig& config,
                                              core::DcId dc, net::PathType path) const;

  // Index of a reduced config shape, -1 when out of scope.
  [[nodiscard]] int demand_index(const workload::CallConfig& reduced_shape) const;

  // Demand index of the intra-country singleton shape (one participant of
  // `country`, `media`) — the controller's first-joiner guess and its
  // miss-path media variants. A flat table rebuilt with the demand set, so
  // the assignment hot path reads one int instead of constructing a
  // CallConfig and walking the demand map. -1 when the shape is not in the
  // demand set (or the country is invalid / unknown).
  [[nodiscard]] int singleton_demand_index(core::CountryId country,
                                           media::MediaType media) const;

  // Block view for the region-block decomposition (docs/solver.md,
  // "Region-block decomposition"): the same inputs restricted to a subset
  // of DCs (by parent index) and demands (by parent index), both keeping
  // their parent relative order. Per-DC capacities are copied VERBATIM —
  // they are a function of the full-scope demand (peak-demand headroom
  // split, per-country bandwidth shares), so recomputing them from the
  // block's slice would give each block a different, wrong LP. The link
  // set is recomputed from the retained (participant country, DC) paths,
  // exactly as set_demand does — identical inputs restricted to everything
  // reproduce themselves byte for byte.
  [[nodiscard]] PlanInputs restricted(const std::vector<int>& dc_indices,
                                      const std::vector<int>& demand_indices) const;

 private:
  void finalize_capacities();
  void build_singleton_index();

  const net::NetworkDb* net_;
  PlanScope scope_;
  std::map<std::pair<int, int>, double> fractions_;
  std::vector<core::DcId> dcs_;
  std::vector<ReducedDemand> demands_;
  std::map<workload::CallConfig, int> demand_index_;
  // [country * kMediaTypeCount + media] -> demand index of the singleton
  // shape, -1 when absent. Sized by the world's country set.
  std::vector<int> singleton_demand_;
  std::vector<core::LinkId> links_;
  std::vector<core::Cores> dc_capacity_;      // per dcs_ index
  std::vector<core::Mbps> internet_capacity_;  // per dcs_ index
};

}  // namespace titan::titannext
