#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "core/hash.h"
#include "media/media_types.h"
#include "media/mos.h"
#include "sim/executor.h"
#include "titannext/controller.h"
#include "workload/event_stream.h"

namespace titan::sim {

namespace {

// Fingerprint of one assignment decision; order-sensitive within a shard.
std::uint64_t mix_decision(std::uint64_t h, std::uint32_t call_index, core::DcId dc,
                           net::PathType path, std::uint32_t flags) {
  h = core::hash_mix(h, call_index);
  h = core::hash_mix(h, static_cast<std::uint64_t>(dc.value()));
  h = core::hash_mix(h, static_cast<std::uint64_t>(path));
  return core::hash_mix(h, flags);
}

}  // namespace

struct SimEngine::Shard {
  struct ActiveCall {
    core::DcId dc;
    net::PathType path = net::PathType::kWan;
    // Media step-downs admission control applied (0 = full quality). A
    // degraded call occupies its stepped-down footprint in the usage and
    // region-load accounting.
    std::uint8_t degrade = 0;
  };

  core::Rng rng{0};
  titannext::OfflinePlan plan;  // per-shard copy: credit state stays private
  std::unique_ptr<titannext::OnlineController> controller;
  EventQueue queue;
  // Ordered containers keep float accumulation order fixed per shard.
  std::map<std::uint32_t, ActiveCall> active;
  std::map<std::uint32_t, titannext::InitialAssignment> pending;
  std::vector<std::uint32_t> converged_this_slot;
  std::map<std::pair<int, int>, double> internet_load;  // (country, dc) -> Mbps, this slot
  // (country, dc) pairs whose route failover this slot was caused by a
  // congested transit; the engine steers them to an alternate provider
  // between slots (ordered so the merged steering order is deterministic).
  std::set<std::pair<int, int>> transit_steer;
  eval::SlotMetricsSink sink;
  // Per-shard observability, merged into SimResult::perf in shard index
  // order (layouts are seeded from SimPerf's in run()).
  obs::Histogram assign_latency_us;
  obs::Histogram admission_latency_us;
  obs::Histogram call_duration_slots;
  std::int64_t events = 0;  // call events drained (deterministic)
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  std::int64_t calls = 0;
  std::int64_t dc_migrations = 0;
  std::int64_t route_changes = 0;
  std::int64_t forced_migrations = 0;
  std::int64_t out_of_plan = 0;
  std::int64_t fallbacks = 0;
  // Overload regime: shed/degrade counters plus this slot's active compute
  // per hosting-DC continent (cleared per slot; merged at the barrier into
  // the load ratios the admission policy reads next slot).
  std::int64_t rejected = 0;
  std::int64_t degraded = 0;
  std::array<std::int64_t, geo::kNumContinents> rejected_by_region{};
  std::array<std::int64_t, geo::kNumContinents> degraded_by_region{};
  std::array<double, geo::kNumContinents> region_cores{};
};

SimEngine::SimEngine(const Scenario& scenario) : scenario_(scenario) {
  scenario_.shards = std::max(1, scenario_.shards);
  scenario_.replan_interval_slots = std::max(1, scenario_.replan_interval_slots);
  scenario_.convergence_delay_slots = std::max(0, scenario_.convergence_delay_slots);
  // The plan must cover at least one full replan interval.
  scenario_.pipeline.scope.timeslots =
      std::max(scenario_.pipeline.scope.timeslots, scenario_.replan_interval_slots);

  scenario_.pipeline.scope.regions.validate();
  world_ = std::make_unique<geo::World>(geo::World::make());
  workload_ = build_workload(scenario_, *world_);
  history_slots_ = scenario_.history_slots();
  for (const auto& c : world_->countries()) country_region_.push_back(c.continent);
  for (const auto& d : world_->dcs()) dc_region_.push_back(d.continent);

  // A clean network must exist before disturbances resolve: kTransitDegrade
  // pins its target to the pair's *BGP-default* transit, read off the
  // pristine loss model.
  reset_network();

  // Resolve disturbance names into the event schedule. Windowed kinds
  // synthesize a restore/recover event at window close that resets the
  // target outright, so overlapping windows on the *same* target would
  // cancel each other mid-flight — reject them instead of under-simulating.
  std::map<int, std::vector<std::pair<int, int>>> drain_windows;    // dc -> [begin, end)
  std::map<int, std::vector<std::pair<int, int>>> degrade_windows;  // transit -> [begin, end)
  const auto note_window = [](std::map<int, std::vector<std::pair<int, int>>>& windows,
                              int target, int begin, int end, const char* what) {
    constexpr int kOpenEnded = std::numeric_limits<int>::max();
    if (end < 0) end = kOpenEnded;
    for (const auto& [b, e] : windows[target])
      if (begin < e && b < end)
        throw std::invalid_argument(std::string("overlapping ") + what +
                                    " windows on one target");
    windows[target].emplace_back(begin, end);
  };
  for (const auto& d : scenario_.disturbances) {
    NetworkEvent e;
    e.kind = d.kind;
    e.slot = d.day * core::kSlotsPerDay + d.slot_in_day;
    e.end_slot = d.duration_slots > 0 ? e.slot + d.duration_slots : -1;
    e.magnitude = d.magnitude;
    // Targets must exist *and* sit inside the plan scope: a disturbance on
    // an out-of-scope country or DC would silently simulate nothing.
    const auto& regions = scenario_.pipeline.scope.regions;
    if (!d.country.empty()) {
      e.country = world_->find_country(d.country);
      if (!e.country.valid()) throw std::invalid_argument("disturbance country: " + d.country);
      if (!regions.contains(world_->country(e.country).continent))
        throw std::invalid_argument("disturbance country outside plan scope: " + d.country);
    }
    if (!d.dc.empty()) {
      e.dc = world_->find_dc(d.dc);
      if (!e.dc.valid()) throw std::invalid_argument("disturbance dc: " + d.dc);
      if (!regions.contains(world_->dc(e.dc).continent))
        throw std::invalid_argument("disturbance dc outside plan scope: " + d.dc);
    }
    if (e.kind == NetworkEventKind::kForecastBias) {
      forecast_biases_.push_back(e);  // a modeling regime, not a fired event
    } else if (e.kind == NetworkEventKind::kDcDrain) {
      if (!e.dc.valid()) throw std::invalid_argument("dc drain requires a dc");
      if (e.magnitude < 0.0 || e.magnitude >= 1.0)
        throw std::invalid_argument("dc drain magnitude must be in [0, 1)");
      note_window(drain_windows, e.dc.value(), e.slot, e.end_slot, "dc drain");
      events_.push_back(e);
      // A drain window restores the DC when it closes (maintenance done).
      if (e.end_slot >= 0) {
        NetworkEvent restore = e;
        restore.slot = e.end_slot;
        restore.end_slot = -1;
        restore.magnitude = 1.0;
        events_.push_back(restore);
      }
    } else if (e.kind == NetworkEventKind::kTransitDegrade) {
      if (!e.dc.valid()) throw std::invalid_argument("transit degrade requires a dc");
      if (e.magnitude <= 0.0)
        throw std::invalid_argument("transit degrade magnitude must be > 0");
      e.transit = e.country.valid() ? db_->loss().transit_for(e.country, e.dc)
                                    : db_->loss().transits_of(e.dc).front();
      note_window(degrade_windows, e.transit.value(), e.slot, e.end_slot, "transit degrade");
      events_.push_back(e);
      // The congestion episode clears when the window closes.
      if (e.end_slot >= 0) {
        NetworkEvent recover = e;
        recover.slot = e.end_slot;
        recover.end_slot = -1;
        recover.magnitude = 0.0;
        events_.push_back(recover);
      }
    } else {
      // Fiber repairs take months (§4.2 finding 7) — far beyond any sim
      // horizon — so link events have no restoration path; reject windows
      // rather than silently ignoring them.
      if (!e.country.valid() || !e.dc.valid())
        throw std::invalid_argument("link disturbances require a country and a dc");
      if (d.duration_slots > 0)
        throw std::invalid_argument("link disturbances do not support duration_slots");
      events_.push_back(e);
    }
  }
  // Restores order before new disturbances at the same slot, so touching
  // windows ([10,20) then [20,30) on one target) work regardless of the
  // order the scenario listed them in. Only synthesized restore/recover
  // events carry these magnitudes — user disturbances reject them.
  const auto is_restore = [](const NetworkEvent& e) {
    return (e.kind == NetworkEventKind::kDcDrain && e.magnitude >= 1.0) ||
           (e.kind == NetworkEventKind::kTransitDegrade && e.magnitude <= 0.0);
  };
  std::stable_sort(events_.begin(), events_.end(),
                   [&](const NetworkEvent& a, const NetworkEvent& b) {
                     if (a.slot != b.slot) return a.slot < b.slot;
                     return is_restore(a) && !is_restore(b);
                   });

  // Forecast inputs: training history followed by the realized eval counts
  // (replans only ever read columns before "now").
  auto hist = workload_.history.config_active_counts();
  const auto eval = workload_.eval.config_active_counts();
  combined_counts_.resize(eval.size());
  for (std::size_t c = 0; c < eval.size(); ++c) {
    auto& series = combined_counts_[c];
    series = c < hist.size() ? std::move(hist[c])
                             : std::vector<double>(static_cast<std::size_t>(history_slots_), 0.0);
    series.insert(series.end(), eval[c].begin(), eval[c].end());
  }

  // Per-config compute footprints (history and eval windows share one
  // registry), for the anchor below and the replan demand cap.
  const auto& registry = workload_.eval.configs();
  config_cores_.resize(registry.size());
  for (std::size_t c = 0; c < registry.size(); ++c)
    config_cores_[c] = registry.get(core::ConfigId(static_cast<int>(c))).compute_cores();

  // Overload regime: anchor plan capacity at the HISTORY trace's peak
  // per-slot compute demand. The eval-side amplification then genuinely
  // outruns provisioned cores instead of inflating them (see
  // PlanScope::capacity_anchor_cores).
  if (scenario_.capacity_anchor) {
    double peak = 0.0;
    for (int t = 0; t < history_slots_; ++t) {
      double total = 0.0;
      for (std::size_t c = 0; c < combined_counts_.size(); ++c)
        total += combined_counts_[c][static_cast<std::size_t>(t)] * config_cores_[c];
      peak = std::max(peak, total);
    }
    capacity_anchor_cores_ = peak;
    scenario_.pipeline.scope.capacity_anchor_cores = peak;
  }
}

SimEngine::~SimEngine() = default;

void SimEngine::reset_network() {
  // Rebuilding the NetworkDb from the world resets every disturbance effect
  // (link scales, drains), so consecutive runs are identical.
  db_ = std::make_unique<net::NetworkDb>(*world_);
  // The rebuild already starts clean; reset the transit steering state
  // explicitly so the invariant survives a future cheaper reset path.
  db_->loss().reset_failovers();
  db_->loss().reset_degrades();
  dead_links_.assign(db_->topology().link_count(), false);
  drained_dcs_.assign(world_->dcs().size(), false);
  evacuation_pending_ = false;
  partial_evac_.clear();
  severed_links_.clear();

  fractions_.clear();
  const auto& regions = scenario_.pipeline.scope.regions;
  const auto scope_dcs = geo::dcs_in(*world_, regions);
  for (const auto c : geo::countries_in(*world_, regions)) {
    const double f = db_->loss().internet_unusable(c) ? 0.0 : scenario_.titan_fraction_cap;
    for (const auto d : scope_dcs) fractions_[{c.value(), d.value()}] = f;
  }

  current_plan_ = titannext::DayPlan{};
  plan_begin_ = 0;
  warm_cache_ = titannext::WarmStartCache{};
}

void SimEngine::apply_network_event(const NetworkEvent& event) {
  switch (event.kind) {
    case NetworkEventKind::kFiberCut: {
      const auto link = db_->cut_wan_link_on_path(event.country, event.dc, event.magnitude);
      // Titan's emergency response (§4.2 finding 7): pairs whose WAN path
      // crossed the severed link get a surged Internet fraction, so the
      // next replan moves their traffic off the crippled segment. Affected
      // pairs must be collected from the *pre-reroute* paths.
      const auto& regions = scenario_.pipeline.scope.regions;
      const auto scope_dcs = geo::dcs_in(*world_, regions);
      for (const auto c : geo::countries_in(*world_, regions)) {
        if (db_->loss().internet_unusable(c)) continue;
        for (const auto d : scope_dcs) {
          const auto& path = db_->topology().path(c, d).links;
          if (std::find(path.begin(), path.end(), link) == path.end()) continue;
          auto& f = fractions_[{c.value(), d.value()}];
          f = std::max(f, scenario_.fiber_cut_surge_fraction);
        }
      }
      if (event.magnitude <= 0.0) {
        dead_links_[static_cast<std::size_t>(link.value())] = true;
        severed_links_.emplace_back(event.slot, link);
        evacuation_pending_ = true;
        // Traffic engineering reroutes future WAN paths off the dead fiber.
        db_->topology().reroute_around_dead_links(*world_);
      }
      break;
    }
    case NetworkEventKind::kLinkScale: {
      db_->scale_wan_links_on_path(event.country, event.dc, event.magnitude);
      if (event.magnitude <= 0.0) {
        for (const auto lid : db_->topology().path(event.country, event.dc).links) {
          dead_links_[static_cast<std::size_t>(lid.value())] = true;
          severed_links_.emplace_back(event.slot, lid);
        }
        evacuation_pending_ = true;
        db_->topology().reroute_around_dead_links(*world_);
      }
      break;
    }
    case NetworkEventKind::kDcDrain: {
      db_->set_dc_compute_scale(event.dc, event.magnitude);
      drained_dcs_[static_cast<std::size_t>(event.dc.value())] = event.magnitude <= 0.0;
      if (event.magnitude <= 0.0) {
        evacuation_pending_ = true;
      } else if (event.magnitude < 1.0) {
        // Partial/rolling maintenance: the next evacuation wave moves a
        // deterministic ~(1 - magnitude) share of the DC's in-flight calls;
        // planning sees the shrunk capacity through dc_compute_scale.
        partial_evac_[event.dc.value()] =
            std::max(partial_evac_[event.dc.value()], 1.0 - event.magnitude);
        evacuation_pending_ = true;
      }
      break;
    }
    case NetworkEventKind::kTransitDegrade:
      if (event.magnitude > 0.0)
        db_->loss().degrade_transit(event.transit, event.magnitude);
      else
        db_->loss().clear_transit_degrade(event.transit);
      break;
    case NetworkEventKind::kForecastBias:
      break;  // handled as a schedule in replan(), not as a fired event
  }
}

void SimEngine::replan(core::SlotIndex slot, std::vector<Shard>& shards) {
  const int horizon = scenario_.pipeline.scope.timeslots;
  const int now = history_slots_ + slot;

  std::vector<std::vector<double>> counts;
  double forecast_seconds = 0.0;
  if (scenario_.oracle_counts) {
    counts.assign(combined_counts_.size(),
                  std::vector<double>(static_cast<std::size_t>(horizon), 0.0));
    for (std::size_t c = 0; c < combined_counts_.size(); ++c)
      for (int h = 0; h < horizon; ++h)
        if (now + h < static_cast<int>(combined_counts_[c].size()))
          counts[c][static_cast<std::size_t>(h)] =
              combined_counts_[c][static_cast<std::size_t>(now + h)];
  } else {
    auto fc = titannext::forecast_counts(combined_counts_, now, horizon,
                                         scenario_.pipeline.top_k_forecast);
    counts = std::move(fc.counts);
    forecast_seconds = fc.seconds;
  }

  // Forecast-miss regimes: every forecast column whose slot falls inside a
  // bias window is scaled, whichever replan produced it.
  for (const auto& bias : forecast_biases_) {
    for (int h = 0; h < horizon; ++h) {
      const core::SlotIndex covered = slot + h;
      if (covered < bias.slot || (bias.end_slot >= 0 && covered >= bias.end_slot)) continue;
      for (auto& series : counts) series[static_cast<std::size_t>(h)] *= bias.magnitude;
    }
  }

  // Overload regime: plan the ADMISSIBLE load, not the raw overload. With
  // capacity anchored, a demand column past aggregate capacity would leave
  // the LP infeasible and the pipeline's headroom relaxation would silently
  // re-inflate the capacity we just fixed; instead, scale each over-budget
  // column down to what the (drain-aware) fleet can actually serve —
  // admission control sheds the rest at arrival time.
  if (scenario_.capacity_anchor && capacity_anchor_cores_ > 0.0) {
    // Small slack under the cap keeps the LP's corridor/E2E constraints
    // feasible at the planned volume on the first attempt.
    constexpr double kPlanDemandSafety = 0.9;
    double share_total = 0.0, live_share = 0.0;
    for (const auto dc : geo::dcs_in(*world_, scenario_.pipeline.scope.regions)) {
      const double share = world_->dc(dc).cores;
      share_total += share;
      live_share += share * db_->dc_compute_scale(dc);
    }
    const double admissible = capacity_anchor_cores_ * scenario_.pipeline.scope.compute_headroom *
                              (share_total > 0.0 ? live_share / share_total : 0.0) *
                              kPlanDemandSafety;
    for (int h = 0; h < horizon; ++h) {
      double planned = 0.0;
      for (std::size_t c = 0; c < counts.size(); ++c)
        planned += counts[c][static_cast<std::size_t>(h)] * config_cores_[c];
      if (planned <= admissible || planned <= 0.0) continue;
      const double scale = admissible / planned;
      for (auto& series : counts) series[static_cast<std::size_t>(h)] *= scale;
    }
  }

  // A fresh pipeline per replan picks up fraction surges and drains. The
  // warm cache seeds each solve from its predecessor's basis shifted to
  // this horizon's start; with disjoint windows nothing transfers and the
  // solve is the byte-identical cold path (see docs/solver.md). A forced
  // replan reacts to a network change — capacity/bound damage on the rhs
  // side that leaves the cached basis dual-feasible — so it KEEPS the
  // cache: the dual pivot loop repairs exactly that damage, and every
  // solver gate (dual feasibility, factorization, repair budget) still
  // falls back to the cold solve when the change was too structural.
  const titannext::TitanNextPipeline pipeline(*db_, fractions_, scenario_.pipeline);
  warm_cache_.next_plan_begin = slot;
  titannext::DayPlan day =
      pipeline.plan_from_counts(workload_.eval, counts, forecast_seconds,
                                scenario_.warm_replans ? &warm_cache_ : nullptr);

  titannext::ControllerOptions copts;
  copts.use_reduction = scenario_.pipeline.use_reduction;
  copts.admission.enabled = scenario_.admission_control;
  copts.admission.degrade_threshold = scenario_.admission_degrade_threshold;
  copts.admission.reject_threshold = scenario_.admission_reject_threshold;
  copts.admission.max_shed = scenario_.admission_max_shed;
  copts.admission.seed = scenario_.seed;
  for (auto& sh : shards) {
    // Each shard gets its own copy of the new plan, seeded with ITS OWN
    // previous credit state: smooth-WRR smoothing must span plan
    // generations (a restart every replan interval lets the realized mix
    // drift toward round-robin and away from the plan weights at rolling
    // cadences). The carry must happen before current_plan_ is replaced
    // below — it matches demands through the previous generation's inputs.
    titannext::OfflinePlan fresh = day.plan;
    fresh.carry_credits_from(sh.plan);
    sh.plan = std::move(fresh);
    if (sh.controller == nullptr)
      sh.controller = std::make_unique<titannext::OnlineController>(*day.inputs, sh.plan, copts);
    else
      sh.controller->rebind(*day.inputs, sh.plan);
  }
  current_plan_ = std::move(day);  // frees the previous generation
  plan_begin_ = slot;

  // Aggregate plan capacity per continent under the fresh inputs — drains
  // shrink it through dc_compute_scale, so the admission ratios react to
  // DC loss the same replan the plan does.
  if (scenario_.admission_control) {
    region_capacity_.assign(geo::kNumContinents, 0.0);
    for (const auto dc : current_plan_.inputs->dcs())
      region_capacity_[static_cast<std::size_t>(
          dc_region_[static_cast<std::size_t>(dc.value())])] +=
          current_plan_.inputs->dc_capacity(dc);
  }
}

SimResult SimEngine::run(int threads) {
  const auto t0 = std::chrono::steady_clock::now();
  reset_network();

  const int num_slots = scenario_.eval_slots();
  const int num_links = static_cast<int>(db_->topology().link_count());
  const int num_shards = scenario_.shards;
  const auto& calls = workload_.eval.calls();
  const bool use_reduction = scenario_.pipeline.use_reduction;

  std::vector<Shard> shards(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto& sh = shards[static_cast<std::size_t>(i)];
    sh.rng = core::Rng(core::hash_key(scenario_.seed, 0x51Aa, i));
    sh.sink = eval::SlotMetricsSink(num_slots, num_links);
    // Seed the per-shard histograms with SimPerf's bucket layouts so the
    // shard-order merge below is a layout-identical (and thus bit-exact)
    // count addition.
    sh.assign_latency_us = SimPerf{}.assign_latency_us;
    sh.admission_latency_us = SimPerf{}.admission_latency_us;
    sh.call_duration_slots = SimPerf{}.call_duration_slots;
  }
  for (const auto& e :
       workload::build_event_stream(workload_.eval, scenario_.convergence_delay_slots))
    shards[static_cast<std::size_t>(shard_of(calls[e.call_index].id, num_shards))].queue.push(e);

  ShardedExecutor exec(num_shards, threads);
  SimResult result;
  result.scenario = scenario_.name;
  result.eval_slots = num_slots;
  result.threads = std::max(1, threads);

  // Per-shard accumulated job wall time (phases A+B and C together).
  std::vector<double> shard_seconds(static_cast<std::size_t>(num_shards), 0.0);
  const auto seconds_since = [](std::chrono::steady_clock::time_point t) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t).count();
  };
  if (trace_ != nullptr) {
    trace_->set_lane_name(0, "engine");
    for (int i = 0; i < num_shards; ++i)
      trace_->set_lane_name(1 + i, "shard " + std::to_string(i));
  }

  // Engine-level (cross-shard) per-slot stream: transit steering decisions.
  eval::SlotMetricsSink engine_sink(num_slots, num_links);
  std::uint64_t engine_checksum = 0xa0761d6478bd642fULL;

  std::size_t next_event = 0;
  core::SlotIndex next_replan = 0;
  for (core::SlotIndex s = 0; s < num_slots; ++s) {
    bool force_replan = false;
    while (next_event < events_.size() && events_[next_event].slot <= s) {
      apply_network_event(events_[next_event]);
      if (events_[next_event].kind != NetworkEventKind::kForecastBias) force_replan = true;
      ++next_event;
    }
    if (s >= next_replan || force_replan) {
      // A purely-forced replan (a disturbance firing between scheduled
      // replans) re-solves the *current* plan window against the damaged
      // network: the horizon anchor stays put, so the cached basis
      // transfers at shift 0 and the damage is pure rhs — exactly the
      // shape the dual simplex repairs. Scheduled replans (forced or not)
      // advance the window and the schedule as before. The current slot is
      // always inside the kept window: replan_interval <= timeslots.
      const bool scheduled = s >= next_replan;
      const auto r0 = std::chrono::steady_clock::now();
      {
        obs::Span span(trace_, "replan", "engine", 0);
        replan(scheduled ? s : plan_begin_, shards);
      }
      result.perf.replan_seconds += seconds_since(r0);
      result.plan_seconds += current_plan_.lp_seconds;
      result.forecast_seconds += current_plan_.forecast_seconds;
      ++result.replans;
      ReplanStat stat;
      stat.slot = s;
      stat.iterations = current_plan_.lp_iterations;
      stat.phase1_iterations = current_plan_.lp_phase1_iterations;
      stat.dual_iterations = current_plan_.lp_dual_iterations;
      stat.blocks_solved = current_plan_.lp_blocks_solved;
      stat.pruned_columns = current_plan_.lp_pruned_columns;
      stat.warm_started = current_plan_.lp_warm_started;
      stat.forced = force_replan;
      stat.attempts = current_plan_.lp_attempts;
      stat.solve_seconds = current_plan_.lp_seconds;
      stat.build_seconds = current_plan_.lp_build_seconds;
      stat.phase1_seconds = current_plan_.lp_phase1_seconds;
      stat.phase2_seconds = current_plan_.lp_phase2_seconds;
      stat.refactor_seconds = current_plan_.lp_refactor_seconds;
      stat.refactorizations = current_plan_.lp_refactorizations;
      result.replan_stats.push_back(stat);
      result.perf.lp_build_seconds += current_plan_.lp_build_seconds;
      result.perf.lp_phase1_seconds += current_plan_.lp_phase1_seconds;
      result.perf.lp_phase2_seconds += current_plan_.lp_phase2_seconds;
      result.perf.lp_refactor_seconds += current_plan_.lp_refactor_seconds;
      if (scheduled) next_replan = s + scenario_.replan_interval_slots;
    }

    const bool evacuate = evacuation_pending_;
    evacuation_pending_ = false;
    const std::map<int, double> partial_evac = std::move(partial_evac_);
    partial_evac_.clear();
    const core::SlotIndex abs_slot = history_slots_ + s;
    const core::SlotIndex t = s - plan_begin_;  // slot within the plan horizon

    // Deterministic per-call draw for partial-drain evacuation: a pure
    // function of (seed, call id, slot), so the evacuated subset is
    // identical at any shard/thread layout.
    const auto partial_pick = [&](core::CallId id, core::DcId dc) {
      const auto pit = partial_evac.find(dc.value());
      return pit != partial_evac.end() &&
             core::rng_at(scenario_.seed, 0xD7A1, static_cast<std::uint64_t>(id.value()),
                          static_cast<std::uint64_t>(s))
                 .chance(pit->second);
    };

    // Phase A+B: per shard, evacuate stranded calls, drain this slot's call
    // events, then account per-slot usage of the shard's active set.
    const auto ab0 = std::chrono::steady_clock::now();
    obs::Span ab_span(trace_, "events+usage", "engine", 0);
    exec.run_timed([&](int i) {
      obs::Span shard_span(trace_, "events+usage", "shard", 1 + i);
      auto& sh = shards[static_cast<std::size_t>(i)];
      sh.internet_load.clear();
      sh.converged_this_slot.clear();
      sh.region_cores.fill(0.0);

      // Force-reject one call whose evacuation found no live DC anywhere in
      // scope (fallback returned an invalid assignment): it cannot keep
      // running on capacity that no longer exists, so it leaves the
      // lifecycle sets as an explicit rejection, never a silent landing.
      const auto force_reject = [&](std::uint32_t idx) {
        const auto& call = calls[idx];
        ++sh.rejected;
        const auto region =
            country_region_[static_cast<std::size_t>(call.first_joiner.value())];
        ++sh.rejected_by_region[static_cast<std::size_t>(region)];
        sh.sink.add_rejected(s, region);
      };

      if (evacuate) {
        const auto on_dead_link = [&](core::CountryId country, core::DcId dc) {
          for (const auto lid : db_->topology().path(country, dc).links)
            if (dead_links_[static_cast<std::size_t>(lid.value())]) return true;
          return false;
        };
        // Re-target one stranded placement: plan first, nearest live DC
        // otherwise. A partially drained DC still holds plan weight, but
        // the chosen evacuation subset must actually leave it.
        const auto retarget = [&](std::uint32_t idx, const workload::CallConfig& config,
                                  core::CountryId first_joiner, bool partial, core::DcId from,
                                  std::uint32_t flag) {
          const auto picked = sh.plan.pick(config, t, sh.rng);
          titannext::Assignment target = picked.value_or(sh.controller->fallback(first_joiner));
          if (partial && target.dc == from) target = sh.controller->fallback(first_joiner, from);
          if (!target.valid()) {
            // Fallback exhausted every live in-scope DC: the call cannot be
            // re-homed and terminates in an explicit rejection.
            sh.checksum = mix_decision(sh.checksum, idx, core::DcId::invalid(),
                                       net::PathType::kWan, 0x20u);
            return target;
          }
          if (target.dc != from) {
            ++sh.forced_migrations;
            sh.sink.add_forced_migration(s);
          }
          sh.checksum = mix_decision(sh.checksum, idx, target.dc, target.path, flag);
          return target;
        };

        for (auto it = sh.active.begin(); it != sh.active.end();) {
          const auto idx = it->first;
          auto& ac = it->second;
          const auto& call = calls[idx];
          bool stranded = drained_dcs_[static_cast<std::size_t>(ac.dc.value())];
          const bool partial = !stranded && partial_pick(call.id, ac.dc);
          stranded |= partial;
          if (!stranded && ac.path == net::PathType::kWan) {
            const auto& config = workload_.eval.configs().get(call.config);
            for (const auto& [country, count] : config.participants)
              if (on_dead_link(country, ac.dc)) {
                stranded = true;
                break;
              }
          }
          if (!stranded) {
            ++it;
            continue;
          }
          const auto& config = workload_.eval.configs().get(call.config);
          const auto reduced = use_reduction ? workload::reduce(config).config : config;
          const auto target = retarget(idx, reduced, call.first_joiner, partial, ac.dc, 0x4u);
          if (!target.valid()) {
            force_reject(idx);
            it = sh.active.erase(it);
            continue;
          }
          ac.dc = target.dc;
          ac.path = target.path;
          ++it;
        }

        // Pending calls (arrived, not yet converged) hold an initial
        // assignment that can equally point at a drained DC or a severed
        // link; re-target it so the eventual convergence starts from a
        // live placement. The link check uses the first joiner's path —
        // the only participant the initial assignment was based on.
        for (auto it = sh.pending.begin(); it != sh.pending.end();) {
          const auto idx = it->first;
          auto& init = it->second;
          const auto& call = calls[idx];
          auto& assignment = init.assignment;
          bool stranded = drained_dcs_[static_cast<std::size_t>(assignment.dc.value())];
          const bool partial = !stranded && partial_pick(call.id, assignment.dc);
          stranded |= partial;
          if (!stranded && assignment.path == net::PathType::kWan)
            stranded = on_dead_link(call.first_joiner, assignment.dc);
          if (!stranded) {
            ++it;
            continue;
          }
          const auto target = retarget(idx, init.guessed_config, call.first_joiner, partial,
                                       assignment.dc, 0x10u);
          if (!target.valid()) {
            force_reject(idx);
            it = sh.pending.erase(it);
            continue;
          }
          assignment = target;
          ++it;
        }
      }

      while (sh.queue.due(s)) {
        const auto e = sh.queue.pop();
        ++sh.events;
        const auto& call = calls[e.call_index];
        switch (e.kind) {
          case workload::CallEventKind::kEnd:
            // A call can end before it ever converges (delayed convergence,
            // or a zero-length call whose end orders before its arrival);
            // drop it from both lifecycle sets.
            sh.active.erase(e.call_index);
            sh.pending.erase(e.call_index);
            break;
          case workload::CallEventKind::kArrival: {
            ++sh.calls;
            sh.sink.add_arrival(s);
            const auto region =
                country_region_[static_cast<std::size_t>(call.first_joiner.value())];
            sh.sink.add_region_arrival(s, region);
            sh.call_duration_slots.record(static_cast<double>(call.duration_slots));
            const auto& config = workload_.eval.configs().get(call.config);
            // Admission gate (overload regime): degrade first, shed past the
            // reject threshold. The verdict reads only the barrier-merged
            // previous-slot load ratios plus the call id, so it is identical
            // at any thread count.
            const auto ad0 = std::chrono::steady_clock::now();
            const auto verdict = sh.controller->admit(region, call.id, config.media);
            sh.admission_latency_us.record(
                std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                          ad0)
                    .count());
            const auto reject = [&] {
              ++sh.rejected;
              ++sh.rejected_by_region[static_cast<std::size_t>(region)];
              sh.sink.add_rejected(s, region);
              sh.checksum = mix_decision(sh.checksum, e.call_index, core::DcId::invalid(),
                                         net::PathType::kWan, 0x20u);
            };
            if (!verdict.admit) {
              // No pending entry: the later kConvergence/kEnd events find
              // nothing and no-op, so a shed call can never leak usage.
              reject();
              break;
            }
            const auto media = media::step_down(config.media, verdict.degrade_steps);
            const auto a0 = std::chrono::steady_clock::now();
            auto initial = sh.controller->assign_initial(call.first_joiner, media, t, sh.rng);
            sh.assign_latency_us.record(
                std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                          a0)
                    .count());
            if (!initial.assignment.valid()) {
              // Every in-scope DC drained: the fallback's explicit reject.
              reject();
              break;
            }
            initial.degrade_steps = verdict.degrade_steps;
            if (verdict.degrade_steps > 0) {
              ++sh.degraded;
              ++sh.degraded_by_region[static_cast<std::size_t>(region)];
              sh.sink.add_degraded(s, region);
            }
            if (!initial.from_plan) ++sh.fallbacks;
            sh.pending.emplace(e.call_index, std::move(initial));
            break;
          }
          case workload::CallEventKind::kConvergence: {
            const auto it = sh.pending.find(e.call_index);
            // Already ended (kEnd drained it this or an earlier slot):
            // never resurrect the call into the active set.
            if (it == sh.pending.end()) break;
            // kEnd = 0 orders before kConvergence at equal slots, so an end
            // due at or before this slot has already fired — except for a
            // zero-length call, whose end fired before its *arrival*. Its
            // pending entry must die here, not graduate.
            const core::SlotIndex end_slot = std::min<core::SlotIndex>(
                call.start_slot + call.duration_slots, num_slots);
            if (end_slot <= s) {
              sh.pending.erase(it);
              break;
            }
            const auto& config = workload_.eval.configs().get(call.config);
            const int degrade = it->second.degrade_steps;
            std::uint32_t flags = 0;
            const auto c0 = std::chrono::steady_clock::now();
            titannext::ConvergenceResult conv;
            if (degrade > 0) {
              // Admission stepped this call's media down at arrival; the
              // plan lookup must see the degraded shape the call actually
              // carries, not the full-quality one it asked for.
              workload::CallConfig effective = config;
              effective.media = media::step_down(config.media, degrade);
              conv = sh.controller->converge(it->second, effective, t, sh.rng);
              flags |= 0x40u;
            } else {
              conv = sh.controller->converge(it->second, config, t, sh.rng);
            }
            sh.assign_latency_us.record(
                std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                          c0)
                    .count());
            if (conv.dc_migration) {
              ++sh.dc_migrations;
              sh.sink.add_dc_migration(s);
              flags |= 0x1u;
            }
            if (conv.out_of_plan) {
              ++sh.out_of_plan;
              sh.sink.add_out_of_plan(s);
              flags |= 0x2u;
            }
            sh.active.insert_or_assign(
                e.call_index,
                Shard::ActiveCall{conv.final_assignment.dc, conv.final_assignment.path,
                                  static_cast<std::uint8_t>(degrade)});
            sh.pending.erase(it);
            sh.converged_this_slot.push_back(e.call_index);
            sh.checksum = mix_decision(sh.checksum, e.call_index, conv.final_assignment.dc,
                                       conv.final_assignment.path, flags);
            break;
          }
        }
      }

      // Per-slot usage of everything active in this shard.
      for (const auto& [idx, ac] : sh.active) {
        const auto& call = calls[idx];
        const auto& config = workload_.eval.configs().get(call.config);
        const auto dc_region = dc_region_[static_cast<std::size_t>(ac.dc.value())];
        sh.sink.add_region_active_call(s, dc_region);
        // A degraded call occupies its stepped-down media footprint — that
        // shrinkage (not just shedding) is how admission pulls the region's
        // load ratio back under the reject threshold.
        const auto effective_media =
            ac.degrade == 0 ? config.media : media::step_down(config.media, ac.degrade);
        const double bw_scale =
            ac.degrade == 0 ? 1.0
                            : media::bandwidth_per_participant(effective_media) /
                                  media::bandwidth_per_participant(config.media);
        int total = 0;
        for (const auto& [country, count] : config.participants) {
          total += count;
          const double bw = config.network_mbps_from(country) * bw_scale;
          if (ac.path == net::PathType::kWan) {
            for (const auto lid : db_->topology().path(country, ac.dc).links)
              sh.sink.add_wan_mbps(s, lid, bw);
            // Offered (per-pair, not per-link) WAN bandwidth, sliced by
            // where the hosting DC sits.
            sh.sink.add_region_wan_mbps(s, dc_region, bw);
          } else {
            sh.internet_load[{country.value(), ac.dc.value()}] += bw;
            sh.sink.add_internet_mbps(s, bw);
          }
        }
        sh.sink.add_participants(s, ac.path == net::PathType::kInternet ? total : 0, total);
        if (scenario_.admission_control)
          sh.region_cores[static_cast<std::size_t>(dc_region)] +=
              total * media::compute_per_participant(effective_media);
      }
    }, shard_seconds);
    ab_span.end();
    result.perf.event_apply_seconds += seconds_since(ab0);

    // Barrier: the load-dependent Internet metrics need the slot's total
    // offered load per pair across every shard (merged in shard order).
    const auto agg0 = std::chrono::steady_clock::now();
    obs::Span agg_span(trace_, "aggregate+quality", "engine", 0);
    std::map<std::pair<int, int>, double> pair_load;
    for (const auto& sh : shards)
      for (const auto& [pair, mbps] : sh.internet_load) pair_load[pair] += mbps;

    // Phase C: route-quality failover and the MOS proxy, against effective
    // (elasticity-aware) Internet quality at the merged load.
    exec.run_timed([&](int i) {
      obs::Span shard_span(trace_, "route+mos", "shard", 1 + i);
      auto& sh = shards[static_cast<std::size_t>(i)];
      sh.transit_steer.clear();
      for (auto& [idx, ac] : sh.active) {
        if (ac.path != net::PathType::kInternet) continue;
        const auto& call = calls[idx];
        const auto country = call.first_joiner;
        const auto it = pair_load.find({country.value(), ac.dc.value()});
        const double offered = it == pair_load.end() ? 0.0 : it->second;
        const double loss = db_->effective_internet_loss(country, ac.dc, abs_slot, offered);
        const double rtt = db_->effective_internet_rtt(country, ac.dc, abs_slot, offered);
        if (sh.controller->should_route_failover(country, ac.dc, loss, rtt)) {
          // §6.4: degraded Internet traffic moves to the WAN; never back.
          ac.path = net::PathType::kWan;
          ++sh.route_changes;
          sh.sink.add_route_change(s);
          sh.checksum = mix_decision(sh.checksum, idx, ac.dc, ac.path, 0x8u);
          // When the damage traces to a congested transit (not the
          // elasticity knee or a last-mile spike), flag the pair for
          // Titan's transit-steering response between slots.
          if (db_->loss().transit_congested(db_->loss().transit_for(country, ac.dc), abs_slot))
            sh.transit_steer.insert({country.value(), ac.dc.value()});
        }
      }
      const media::MosModel mos_model;
      for (const auto idx : sh.converged_this_slot) {
        const auto it = sh.active.find(idx);
        if (it == sh.active.end()) continue;
        const auto& ac = it->second;
        const auto& call = calls[idx];
        const auto& config = workload_.eval.configs().get(call.config);
        double loss = 0.0;
        if (ac.path == net::PathType::kInternet) {
          const auto lit = pair_load.find({call.first_joiner.value(), ac.dc.value()});
          loss = db_->effective_internet_loss(call.first_joiner, ac.dc, abs_slot,
                                              lit == pair_load.end() ? 0.0 : lit->second);
        } else {
          loss = db_->loss().slot_loss(call.first_joiner, ac.dc, net::PathType::kWan, abs_slot);
        }
        const double e2e = current_plan_.inputs->max_e2e_ms(config, ac.dc, ac.path);
        sh.sink.add_mos(s, mos_model.expected(e2e, loss, ac.degrade));
      }
    }, shard_seconds);

    // Transit failover (§4.2 finding 6, Titan's steering knob): every pair
    // whose route failover this slot traced to a congested transit moves to
    // the DC's next provider. Requests merge in shard order into one
    // ordered set, and the loss model mutates between slots only, so the
    // result is bit-identical at any thread count.
    std::set<std::pair<int, int>> steer;
    for (const auto& sh : shards)
      steer.insert(sh.transit_steer.begin(), sh.transit_steer.end());
    for (const auto& [country, dc] : steer) {
      db_->loss().fail_over(core::CountryId(country), core::DcId(dc));
      ++result.transit_failovers;
      engine_sink.add_transit_failover(s);
      engine_checksum = core::hash_mix(
          core::hash_mix(core::hash_mix(engine_checksum, static_cast<std::uint64_t>(s)),
                         static_cast<std::uint64_t>(country)),
          static_cast<std::uint64_t>(dc));
    }

    // Admission feedback: merge this slot's active compute per continent (in
    // shard index order — float addition order is fixed) against the plan's
    // aggregate capacity, and push the ratios identically to every shard
    // controller. Next slot's admission verdicts read this one-slot-lagged
    // state, so they are a pure function of (pushed state, call id) and
    // bit-identical at any thread count.
    if (scenario_.admission_control) {
      std::array<double, geo::kNumContinents> cores{};
      for (const auto& sh : shards)
        for (std::size_t r = 0; r < static_cast<std::size_t>(geo::kNumContinents); ++r)
          cores[r] += sh.region_cores[r];
      std::vector<double> ratio(geo::kNumContinents, 0.0);
      for (std::size_t r = 0; r < static_cast<std::size_t>(geo::kNumContinents); ++r) {
        const double cap =
            r < region_capacity_.size() ? region_capacity_[r] : 0.0;
        // Load on a region with zero plan capacity (every DC fully drained)
        // saturates the ratio: shed at the max_shed cap until it recovers.
        ratio[r] = cap > 0.0 ? cores[r] / cap : (cores[r] > 0.0 ? 10.0 : 0.0);
      }
      for (auto& sh : shards) sh.controller->set_admission_state(ratio);
    }
    agg_span.end();
    result.perf.metric_aggregation_seconds += seconds_since(agg0);
  }

  // Deterministic merge in shard index order.
  const auto merge0 = std::chrono::steady_clock::now();
  obs::Span merge_span(trace_, "final merge", "engine", 0);
  eval::SlotMetricsSink merged(num_slots, num_links);
  std::uint64_t checksum = 0x9e3779b97f4a7c15ULL;
  for (const auto& sh : shards) {
    merged.merge(sh.sink);
    result.perf.assign_latency_us.merge(sh.assign_latency_us);
    result.perf.admission_latency_us.merge(sh.admission_latency_us);
    result.perf.call_duration_slots.merge(sh.call_duration_slots);
    result.perf.events_processed += sh.events;
    result.calls += sh.calls;
    result.dc_migrations += sh.dc_migrations;
    result.route_changes += sh.route_changes;
    result.forced_migrations += sh.forced_migrations;
    result.out_of_plan += sh.out_of_plan;
    result.fallback_assignments += sh.fallbacks;
    result.rejected_calls += sh.rejected;
    result.degraded_calls += sh.degraded;
    for (std::size_t r = 0; r < static_cast<std::size_t>(geo::kNumContinents); ++r) {
      result.rejected_by_region[r] += sh.rejected_by_region[r];
      result.degraded_by_region[r] += sh.degraded_by_region[r];
    }
    checksum = core::hash_mix(checksum, sh.checksum);
    // Lifecycle audit: anything still active (or pending) whose end (or
    // convergence) event was due inside the window leaked — its usage
    // accrued past its lifetime.
    for (const auto& entry : sh.active) {
      const auto& call = calls[entry.first];
      const core::SlotIndex end_slot =
          std::min<core::SlotIndex>(call.start_slot + call.duration_slots, num_slots);
      if (end_slot < num_slots) ++result.leaked_calls;
    }
    for (const auto& entry : sh.pending) {
      const auto& call = calls[entry.first];
      const core::SlotIndex conv_slot = std::min<core::SlotIndex>(
          call.start_slot + scenario_.convergence_delay_slots, num_slots);
      if (conv_slot < num_slots) ++result.leaked_calls;
    }
  }
  merged.merge(engine_sink);
  checksum = core::hash_mix(checksum, engine_checksum);
  result.wan = merged.wan_usage();
  result.internet_share = merged.internet_share_overall();
  result.mean_mos = merged.mean_mos_overall();
  for (int r = 0; r < geo::kNumContinents; ++r) {
    const auto region = static_cast<geo::Continent>(r);
    result.calls_by_region[static_cast<std::size_t>(r)] =
        static_cast<std::int64_t>(merged.region_arrivals_total(region));
    result.wan_gb_by_region[static_cast<std::size_t>(r)] =
        merged.region_wan_mbps_total(region) * core::kSlotSeconds / 8.0 / 1000.0;
  }
  result.streams = std::move(merged);
  result.checksum = checksum;
  result.severed_links = severed_links_;
  merge_span.end();
  result.perf.metric_aggregation_seconds += seconds_since(merge0);
  for (const double sec : shard_seconds) result.perf.shard_work_seconds += sec;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace titan::sim
