// Closed-loop discrete-event simulation engine.
//
// Drives the full Titan-Next stack end-to-end the way production runs it
// (§8): the online controller assigns calls in real time from the current
// offline plan while the LP re-plans on fresh forecasts every
// `replan_interval` slots, under injectable disturbances (fiber cuts, DC
// drains, forecast-miss regimes, flash crowds). Per slot the engine
//
//   1. fires due network events (mutating the engine's own NetworkDb),
//   2. re-plans when the replan timer — or a disturbance — demands it,
//      re-binding every shard's controller to the fresh plan,
//   3. evacuates active *and pending* calls stranded on severed links or
//      drained DCs; partial drains (magnitude in (0,1)) evacuate a
//      deterministic per-call-id subset proportional to the drained share,
//   4. drains call events (end / arrival / convergence) shard-parallel —
//      a convergence whose call already ended is dropped, never resurrected,
//   5. accounts per-slot WAN link and Internet pair usage (active calls;
//      calls still converging are not yet at full media flow),
//   6. runs §6.4 route-quality failover against load-dependent Internet
//      loss/RTT (elasticity knee included); failed-over traffic moves
//      Internet -> WAN, never the reverse. Pairs whose failover was caused
//      by a congested transit are then steered to the DC's next transit
//      provider (`LossModel::fail_over`, Titan's §4.2-finding-6 knob), so
//      later calls see a clean Internet path again.
//
// Determinism: calls are partitioned across a fixed shard count by call-id
// hash; each shard owns an RNG stream, a controller, a plan copy (credit
// state), and a metric sink. Merges happen in shard index order, so a
// given (scenario, seed) produces bit-identical results at any worker
// thread count.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/slot_metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/scenario.h"

namespace titan::sim {

// Per-replan LP statistics: how much simplex work one pass of the replan
// loop cost and whether it ran warm (seeded from the previous basis) or
// cold. Iteration counts are deterministic; `solve_seconds` is wall clock
// and must be zeroed (SimResult::zero_wallclock) before bitwise compares.
struct ReplanStat {
  core::SlotIndex slot = 0;      // eval slot the replan fired at
  int iterations = 0;            // simplex iterations of the accepted solve
  int phase1_iterations = 0;     // phase-1 share (for warm solves: the
                                 // feasibility-restoration iterations)
  // Deterministic scale-out counters of the accepted solve: dual-simplex
  // pivots (disturbance replans repaired by the dual pivot loop), region
  // blocks solved by the decomposed path (0 = monolithic), and structural
  // columns the candidate mask kept out of pricing.
  int dual_iterations = 0;
  int blocks_solved = 0;
  int pruned_columns = 0;
  bool warm_started = false;
  // True when this replan was disturbance-forced (a network event, not the
  // scheduled cadence). A purely-forced replan keeps the warm cache AND
  // the current horizon anchor, so the seed transfers at shift 0 and the
  // rhs-side damage is exactly what the dual simplex repairs —
  // warm_started (and dual_iterations) on a forced stat is the dual
  // path's success signal.
  bool forced = false;
  int attempts = 1;              // headroom-relaxation attempts consumed
  double solve_seconds = 0.0;
  // Wall-clock breakdown of the LP work (accumulated across attempts, like
  // solve_seconds): model construction, simplex phase 1 (or the warm
  // restoration pass), phase 2, and the LU refactorization share counted
  // inside whichever phase triggered it. All zeroed by zero_wallclock().
  double build_seconds = 0.0;
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  double refactor_seconds = 0.0;
  int refactorizations = 0;  // deterministic, like `iterations`
  bool operator==(const ReplanStat&) const = default;
};

// Run-level performance observability, carried by SimResult next to the
// deterministic metrics. Two kinds of content live here, with opposite
// masking rules (docs/observability.md):
//
//  * wall-clock phase totals and the assignment-latency histogram — these
//    legitimately differ between runs and are masked by
//    SimResult::zero_wallclock() before bitwise compares;
//  * deterministic fields (`events_processed`, `call_duration_slots`) —
//    pure functions of the workload, bit-identical at any thread count,
//    deliberately left un-masked so determinism tests cover the histogram
//    merge path.
struct SimPerf {
  // Phase totals in seconds across the whole run, engine's view.
  double event_apply_seconds = 0.0;        // phase A+B: evacuation + event drain + usage
  double metric_aggregation_seconds = 0.0; // barrier merges, phase C, final merge
  double replan_seconds = 0.0;             // replan() end to end (forecast + LP + rebind)
  double shard_work_seconds = 0.0;         // summed per-shard job time (all phases)
  // LP breakdown accumulated across replans (per-replan values sit in
  // SimResult::replan_stats).
  double lp_build_seconds = 0.0;
  double lp_phase1_seconds = 0.0;
  double lp_phase2_seconds = 0.0;
  double lp_refactor_seconds = 0.0;

  // Per-call controller latency in microseconds: one sample per
  // assign_initial and one per converge. Wall clock — masked.
  obs::Histogram assign_latency_us{obs::Histogram::Options{0.01, 1e6, 8}};

  // Admission/degradation decision latency in microseconds: one sample per
  // arrival while admission control is enabled (the overload scenarios) —
  // the cost of deciding to admit, step down, or shed a call. Wall clock —
  // masked; empty in every non-overload scenario.
  obs::Histogram admission_latency_us{obs::Histogram::Options{0.01, 1e6, 8}};

  // Call durations in slots, recorded at arrival. Deterministic.
  obs::Histogram call_duration_slots{obs::Histogram::Options{1.0, 1e5, 4}};
  std::int64_t events_processed = 0;  // call events drained (deterministic)

  bool operator==(const SimPerf&) const = default;

  void zero_wallclock() {
    event_apply_seconds = metric_aggregation_seconds = replan_seconds = 0.0;
    shard_work_seconds = 0.0;
    lp_build_seconds = lp_phase1_seconds = lp_phase2_seconds = lp_refactor_seconds = 0.0;
    assign_latency_us.reset();
    admission_latency_us.reset();
  }
};

struct SimResult {
  std::string scenario;
  int eval_slots = 0;
  int threads = 1;

  std::int64_t calls = 0;
  std::int64_t dc_migrations = 0;       // convergence-time inter-DC moves
  std::int64_t route_changes = 0;       // route-quality failovers (Internet -> WAN)
  std::int64_t forced_migrations = 0;   // network-event evacuations
  std::int64_t transit_failovers = 0;   // pairs steered to an alternate transit
  std::int64_t out_of_plan = 0;         // true config absent from the plan
  std::int64_t fallback_assignments = 0;
  // Overload regime (admission control): calls refused outright — at
  // arrival by the shed policy, or force-rejected when an evacuation found
  // no live DC anywhere in scope — and calls admitted with a degraded media
  // shape. Both 0 in every non-overload scenario.
  std::int64_t rejected_calls = 0;
  std::int64_t degraded_calls = 0;
  // Lifecycle invariant check: calls still occupying the active/pending sets
  // after their end (or convergence) event was due. Always 0 — a nonzero
  // value means the engine leaked a call and its usage streams are corrupt.
  std::int64_t leaked_calls = 0;
  int replans = 0;
  // One entry per replan, in firing order (replan_stats.size() == replans):
  // the replan-latency surface of the warm-start loop.
  std::vector<ReplanStat> replan_stats;

  double plan_seconds = 0.0;      // LP time across replans
  double forecast_seconds = 0.0;  // forecasting time across replans
  double wall_seconds = 0.0;

  double internet_share = 0.0;  // participant-weighted
  double mean_mos = 0.0;        // MOS proxy over converged calls

  // Per-continent slices (indexed by geo::Continent): arrivals by the first
  // joiner's continent, and WAN traffic (GB over the window) by the serving
  // DC's continent. Regions outside the plan scope stay 0; a cross-region
  // load shift moves wan_gb between entries.
  std::array<std::int64_t, geo::kNumContinents> calls_by_region{};
  std::array<double, geo::kNumContinents> wan_gb_by_region{};
  // Overload slices by the first joiner's continent (where the shed lands).
  std::array<std::int64_t, geo::kNumContinents> rejected_by_region{};
  std::array<std::int64_t, geo::kNumContinents> degraded_by_region{};

  eval::WanUsage wan;            // day-peak cost metric over the sim window
  eval::SlotMetricsSink streams; // full per-slot streams

  // Bit-exact fingerprint of every assignment decision, in shard order.
  std::uint64_t checksum = 0;

  // Performance observability (never feeds `checksum`; wall-clock parts
  // masked by zero_wallclock()).
  SimPerf perf;

  // Links severed by fiber-cut/link-scale events, with their firing slot.
  std::vector<std::pair<core::SlotIndex, core::LinkId>> severed_links;

  [[nodiscard]] double out_of_plan_rate() const {
    return calls > 0 ? static_cast<double>(out_of_plan) / static_cast<double>(calls) : 0.0;
  }
  [[nodiscard]] double migration_rate() const {
    return calls > 0 ? static_cast<double>(dc_migrations) / static_cast<double>(calls) : 0.0;
  }
  // Rejected / offered arrivals for one region (`calls` counts offered
  // arrivals, rejected included) — the per-region shed fraction.
  [[nodiscard]] double shed_fraction(geo::Continent region) const {
    const auto r = static_cast<std::size_t>(region);
    return calls_by_region[r] > 0 ? static_cast<double>(rejected_by_region[r]) /
                                        static_cast<double>(calls_by_region[r])
                                  : 0.0;
  }
  // Throughput rates derived from the wall clock (reporting only).
  [[nodiscard]] double calls_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(calls) / wall_seconds : 0.0;
  }
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(perf.events_processed) / wall_seconds : 0.0;
  }

  // Bitwise equality over every field, streams included. Callers comparing
  // runs for determinism must first zero the wall-clock fields (threads,
  // plan/forecast/wall seconds and the per-replan solve seconds), which
  // legitimately differ between runs — zero_wallclock() does exactly that.
  bool operator==(const SimResult&) const = default;

  // Masks every nondeterministic (wall-clock) field so two runs of the same
  // (scenario, seed) compare bit-identical regardless of thread count.
  void zero_wallclock() {
    threads = 0;
    plan_seconds = forecast_seconds = wall_seconds = 0.0;
    for (auto& r : replan_stats) {
      r.solve_seconds = 0.0;
      r.build_seconds = r.phase1_seconds = r.phase2_seconds = r.refactor_seconds = 0.0;
    }
    perf.zero_wallclock();
  }
};

class SimEngine {
 public:
  // Materializes the scenario: world, a private mutable NetworkDb, the
  // workload split (surges applied), Titan fractions, and the disturbance
  // schedule with names resolved to ids.
  explicit SimEngine(const Scenario& scenario);
  ~SimEngine();

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }
  [[nodiscard]] const geo::World& world() const { return *world_; }
  [[nodiscard]] const net::NetworkDb& network() const { return *db_; }
  [[nodiscard]] const workload::Trace& eval_trace() const { return workload_.eval; }
  // History-peak compute anchor (cores); 0 unless scenario.capacity_anchor.
  // Aggregate serving capacity is anchor x compute_headroom — the
  // denominator of the overload tests' demand/capacity ratio.
  [[nodiscard]] double capacity_anchor_cores() const { return capacity_anchor_cores_; }

  // Optional span recorder for the run's phase timing (null = tracing off,
  // the default; the hot loops then never read the trace clock). Lane 0
  // carries the engine's per-slot phases, lane 1 + i the per-shard jobs.
  // The recorder must outlive run(); its output is a visualization
  // artifact and never feeds the result (docs/observability.md).
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  // Runs the whole scenario with `threads` workers. Repeatable: each run
  // rebuilds all mutable state (including disturbance effects) from the
  // scenario, so consecutive runs of one engine are identical.
  [[nodiscard]] SimResult run(int threads = 1);

 private:
  struct Shard;

  void reset_network();
  void apply_network_event(const NetworkEvent& event);
  // Re-plans the horizon starting at `slot`. A disturbance-driven
  // ("forced") replan keeps the warm cache and passes the *current*
  // horizon anchor: a network change damages the rhs side (capacities,
  // bounds) of the plan LP while the model layout stays put, which is
  // exactly what the dual-simplex warm path repairs at shift 0; the
  // solver's own gates (dual feasibility, factorization, repair budget)
  // fall back to a cold solve when the change was too structural. The
  // caller records the forced flag on the ReplanStat.
  void replan(core::SlotIndex slot, std::vector<Shard>& shards);

  Scenario scenario_;
  std::unique_ptr<geo::World> world_;
  std::unique_ptr<net::NetworkDb> db_;
  ScenarioWorkload workload_;
  std::map<std::pair<int, int>, double> fractions_;
  // Continent lookup tables for the hot per-slot accounting loops.
  std::vector<geo::Continent> country_region_;  // by country id
  std::vector<geo::Continent> dc_region_;       // by dc id
  std::vector<NetworkEvent> events_;  // sorted by slot
  // Active-counts history ++ realized eval counts, for forecasting.
  std::vector<std::vector<double>> combined_counts_;
  int history_slots_ = 0;

  // Forecast-miss regimes (kForecastBias), fixed per scenario: any forecast
  // column whose slot falls inside a window is scaled by its magnitude,
  // whenever the replan producing it happens.
  std::vector<NetworkEvent> forecast_biases_;

  // Overload regime. The anchor is the history trace's peak per-slot
  // compute demand (cores), fixed at construction; 0 when
  // scenario.capacity_anchor is off. config_cores_ caches per-config
  // compute footprints for the anchor/cap math.
  double capacity_anchor_cores_ = 0.0;
  std::vector<double> config_cores_;
  // Aggregate plan capacity per continent under the CURRENT plan inputs
  // (drain-aware); recomputed after every replan. Feeds the admission
  // load ratios pushed to the shard controllers at each slot barrier.
  std::vector<double> region_capacity_;

  // Per-run mutable state.
  titannext::DayPlan current_plan_;
  core::SlotIndex plan_begin_ = 0;
  // Rolling basis cache feeding warm-started replans (reset per run so
  // consecutive runs of one engine stay identical).
  titannext::WarmStartCache warm_cache_;
  std::vector<bool> dead_links_;   // capacity fully severed
  std::vector<bool> drained_dcs_;  // compute fully drained
  obs::TraceRecorder* trace_ = nullptr;
  bool evacuation_pending_ = false;
  // DC -> fraction of its in-flight calls to evacuate in the next wave
  // (partial drains); consumed by the wave, then cleared.
  std::map<int, double> partial_evac_;
  std::vector<std::pair<core::SlotIndex, core::LinkId>> severed_links_;
};

}  // namespace titan::sim
