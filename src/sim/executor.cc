#include "sim/executor.h"

#include <algorithm>
#include <chrono>

namespace titan::sim {

ShardedExecutor::ShardedExecutor(int num_shards, int threads)
    : num_shards_(num_shards), threads_(std::max(1, threads)) {
  if (threads_ <= 1) return;
  const int n = std::min(threads_, num_shards_);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ShardedExecutor::~ShardedExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardedExecutor::run(const std::function<void(int)>& job) {
  if (workers_.empty()) {
    for (int s = 0; s < num_shards_; ++s) job(s);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &job;
  next_shard_.store(0, std::memory_order_relaxed);
  running_ = static_cast<int>(workers_.size());
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
}

void ShardedExecutor::run_timed(const std::function<void(int)>& job,
                                std::vector<double>& shard_seconds) {
  run([&](int shard) {
    const auto t0 = std::chrono::steady_clock::now();
    job(shard);
    shard_seconds[static_cast<std::size_t>(shard)] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  });
}

void ShardedExecutor::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    int shard;
    while ((shard = next_shard_.fetch_add(1, std::memory_order_relaxed)) < num_shards_)
      (*job)(shard);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace titan::sim
