// Typed events of the closed-loop simulation.
//
// Two event families drive the engine: *call events* (arrival, convergence,
// end — see workload/event_stream.h) flow through per-shard queues at high
// volume, and *network events* (injectable disturbances: fiber cuts, link
// regrades, DC drains, forecast-miss regimes) fire at slot boundaries on
// the engine thread. Ordering is strict and deterministic: (slot, kind,
// call index) for call events, (slot, insertion order) for network events.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/ids.h"
#include "core/timegrid.h"
#include "workload/event_stream.h"

namespace titan::sim {

// Min-heap of call events in (slot, kind, call index) order. Each shard
// drains its queue up to the engine's current slot; kEnd orders before
// kArrival so resources free at the slot boundary.
class EventQueue {
 public:
  void push(const workload::CallEvent& e) { heap_.push(e); }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const workload::CallEvent& top() const { return heap_.top(); }

  workload::CallEvent pop() {
    workload::CallEvent e = heap_.top();
    heap_.pop();
    return e;
  }

  // True when the next event is due at or before `slot`.
  [[nodiscard]] bool due(core::SlotIndex slot) const {
    return !heap_.empty() && heap_.top().slot <= slot;
  }

 private:
  struct After {
    bool operator()(const workload::CallEvent& a, const workload::CallEvent& b) const {
      return b < a;  // min-heap
    }
  };
  std::priority_queue<workload::CallEvent, std::vector<workload::CallEvent>, After> heap_;
};

enum class NetworkEventKind : std::uint8_t {
  kFiberCut,       // sever the top-capacity WAN link on the (country, dc) path
  kLinkScale,      // scale every WAN link on the (country, dc) path
  kDcDrain,        // scale a DC's usable MP compute (0 = fully drained; a
                   // magnitude in (0,1) is a partial/rolling drain that also
                   // proportionally evacuates active calls)
  kForecastBias,   // multiply forecasts by `magnitude` while active
  kTransitDegrade, // force congestion on one of the DC's transit ISPs for a
                   // window; `magnitude` is the added loss fraction (§6.4
                   // failover drill: pairs steer to an alternate transit)
};

struct NetworkEvent {
  NetworkEventKind kind = NetworkEventKind::kFiberCut;
  core::SlotIndex slot = 0;      // eval-relative firing slot
  core::SlotIndex end_slot = -1; // windowed regimes (kForecastBias); -1 = open
  core::CountryId country = core::CountryId::invalid();
  core::DcId dc = core::DcId::invalid();
  // kTransitDegrade target, resolved once when the engine materializes the
  // scenario (the BGP-default transit of (country, dc), or the DC's first
  // transit when no country is named).
  core::TransitId transit = core::TransitId::invalid();
  double magnitude = 0.0;  // scale / factor, kind-dependent
};

}  // namespace titan::sim
