// Scenario descriptions for the closed-loop simulator.
//
// A `Scenario` pins down everything a simulation needs — workload shape,
// training/evaluation split, replanning cadence, shard count, Titan
// fractions, and a schedule of disturbances — so benches, tests, and
// examples exercise the *same* named situations. The library covers the
// paper's §8 situations plus the failure drills production rehearses:
// steady-week, weekend-transition, fiber-cut-failover, dc-drain, and
// flash-crowd.
#pragma once

#include <string>
#include <vector>

#include "sim/event.h"
#include "titannext/pipeline.h"
#include "workload/callgen.h"

namespace titan::sim {

// A scheduled disturbance, resolved to ids when the engine materializes
// the scenario. Times are eval-relative (day 0 = first simulated day).
struct Disturbance {
  NetworkEventKind kind = NetworkEventKind::kFiberCut;
  int day = 0;
  int slot_in_day = 0;
  // Window length for kForecastBias (bias applies inside the window) and
  // kDcDrain (the DC restores when the window closes); -1 = open-ended.
  // Link kinds reject windows: fiber repairs exceed any sim horizon.
  int duration_slots = -1;
  std::string country;      // client country name ("" = unused)
  std::string dc;           // DC name ("" = unused)
  double magnitude = 0.0;   // kind-dependent scale / factor
};

// A regional traffic surge (flash crowd). Applied to the workload before
// the simulation starts: arrivals of the region inside the window are
// cloned up to `factor` times the original volume, with fresh call ids.
struct SurgeSpec {
  int day = 0;
  int begin_slot_in_day = 18;  // 09:00
  int end_slot_in_day = 26;    // 13:00
  std::string country;
  double factor = 3.0;
};

struct Scenario {
  std::string name;
  std::string description;

  std::uint64_t seed = 2024;
  int training_weeks = 4;
  int eval_days = 7;
  // Day-of-week offset of the eval window from its Monday start (the
  // weekend-transition scenario starts on Friday with offset 4).
  int eval_offset_days = 0;
  double peak_slot_calls = 150.0;
  double weekend_factor = 0.25;

  // Closed-loop control: the offline LP re-plans every `replan_interval`
  // slots (production: every slot; the long benches use daily replans).
  int replan_interval_slots = core::kSlotsPerDay;
  // Plan on ground-truth counts instead of Holt-Winters forecasts (oracle
  // replanning; cheap, used by tests).
  bool oracle_counts = false;

  int shards = 16;
  double titan_fraction_cap = 0.20;
  // Titan's emergency offload cap for pairs hit by a fiber cut.
  double fiber_cut_surge_fraction = 0.50;

  titannext::PipelineOptions pipeline;

  std::vector<Disturbance> disturbances;
  std::vector<SurgeSpec> surges;

  [[nodiscard]] int eval_slots() const { return eval_days * core::kSlotsPerDay; }
  [[nodiscard]] int history_slots() const {
    return training_weeks * core::kSlotsPerWeek + eval_offset_days * core::kSlotsPerDay;
  }
};

// --- named library ------------------------------------------------------
[[nodiscard]] Scenario steady_week();
[[nodiscard]] Scenario weekend_transition();
[[nodiscard]] Scenario fiber_cut_failover();
[[nodiscard]] Scenario dc_drain();
[[nodiscard]] Scenario flash_crowd();

[[nodiscard]] const std::vector<std::string>& scenario_names();
// Throws std::invalid_argument for unknown names.
[[nodiscard]] Scenario make_scenario(const std::string& name);

struct ScenarioWorkload {
  workload::Trace history;  // everything before the eval window
  workload::Trace eval;     // the simulated window, surges applied
};

// Generates the scenario's trace, splits it around the eval window, and
// injects flash-crowd surges into the eval side. Deterministic in
// (scenario, world).
[[nodiscard]] ScenarioWorkload build_workload(const Scenario& scenario,
                                              const geo::World& world);

}  // namespace titan::sim
