// Scenario descriptions for the closed-loop simulator.
//
// A `Scenario` pins down everything a simulation needs — workload shape,
// training/evaluation split, replanning cadence, shard count, Titan
// fractions, and a schedule of disturbances — so benches, tests, and
// examples exercise the *same* named situations. The library covers the
// paper's §8 situations plus the failure drills production rehearses:
// steady-week, weekend-transition, fiber-cut-failover, dc-drain,
// flash-crowd, transit-degrade-failover, rolling-maintenance, and the
// compound cut-then-flash-crowd — and the multi-region family opened by
// the region-set PlanScope: na-steady-week, asia-flash-crowd,
// global-steady-week (all three paper regions, cross-continent calls),
// and na-cut-shifts-to-eu (a regional outage whose load lands across
// the Atlantic) — plus the overload family: overload-sustained (demand
// beyond anchored aggregate capacity for days, admission control
// degrading then shedding), regional-catastrophe (DC cut + transit
// degrade + flash crowd on the survivors at once), and cascading-drain
// (evacuation load tips the next DC over threshold).
#pragma once

#include <string>
#include <vector>

#include "sim/event.h"
#include "titannext/pipeline.h"
#include "workload/callgen.h"

namespace titan::sim {

// A scheduled disturbance, resolved to ids when the engine materializes
// the scenario. Times are eval-relative (day 0 = first simulated day).
struct Disturbance {
  NetworkEventKind kind = NetworkEventKind::kFiberCut;
  int day = 0;
  int slot_in_day = 0;
  // Window length for kForecastBias (bias applies inside the window),
  // kDcDrain (the DC restores when the window closes), and kTransitDegrade
  // (the transit recovers when the window closes); -1 = open-ended.
  // Link kinds reject windows: fiber repairs exceed any sim horizon.
  int duration_slots = -1;
  std::string country;      // client country name ("" = unused)
  std::string dc;           // DC name ("" = unused)
  // Kind-dependent scale / factor. For kDcDrain this is the remaining
  // compute scale: 0 is a full drain, a value in (0,1) is a *partial*
  // drain that evacuates a deterministic ~(1 - magnitude) share of the
  // DC's in-flight calls and shrinks its plan capacity proportionally.
  // For kTransitDegrade it is the loss fraction the congested transit adds.
  double magnitude = 0.0;
};

// A regional traffic surge (flash crowd). Applied to the workload before
// the simulation starts: arrivals of the region inside the window are
// cloned up to `factor` times the original volume, with fresh call ids.
struct SurgeSpec {
  int day = 0;
  int begin_slot_in_day = 18;  // 09:00
  int end_slot_in_day = 26;    // 13:00
  std::string country;
  double factor = 3.0;
};

struct Scenario {
  std::string name;
  std::string description;

  std::uint64_t seed = 2024;
  int training_weeks = 4;
  int eval_days = 7;
  // Day-of-week offset of the eval window from its Monday start (the
  // weekend-transition scenario starts on Friday with offset 4).
  int eval_offset_days = 0;
  double peak_slot_calls = 150.0;
  double weekend_factor = 0.25;
  // Fraction of multi-participant calls spanning two continents of the
  // plan scope (workload::TraceOptions::cross_region_fraction). Must lie
  // in [0, 1]; only meaningful for multi-region scopes.
  double cross_region_fraction = 0.0;

  // Closed-loop control: the offline LP re-plans every `replan_interval`
  // slots (production: every slot; the long benches use daily replans).
  int replan_interval_slots = core::kSlotsPerDay;
  // Plan on ground-truth counts instead of Holt-Winters forecasts (oracle
  // replanning; cheap, used by tests).
  bool oracle_counts = false;
  // Warm-start every replan after the first from the previous plan's
  // simplex basis (titannext::WarmStartCache). At the library's default
  // cadence (replan interval == horizon) consecutive plan windows are
  // disjoint, nothing transfers, and every solve is the byte-identical
  // cold path — the golden checksums pin this. At a rolling cadence
  // (interval < horizon) the overlap transfers and replans get measurably
  // cheaper; the warm plan is equally optimal (same objective) but may be
  // a different vertex of the optimal face than the cold solve would pick,
  // so runs are only comparable within one warm_replans setting. Benches
  // flip this off to measure the cold baseline.
  bool warm_replans = true;
  // Slots between a call's arrival and its convergence (true config known).
  // 0 = same slot (the default; the paper's ~5-minute convergence collapsed
  // onto the 30-minute grid). With a positive delay, calls sit in the
  // pending state across slot boundaries — and across network events, so
  // evacuation must cover them too.
  int convergence_delay_slots = 0;

  int shards = 16;
  double titan_fraction_cap = 0.20;
  // Titan's emergency offload cap for pairs hit by a fiber cut.
  double fiber_cut_surge_fraction = 0.50;

  // --- overload regime (ROADMAP "Overload, admission control") ----------
  // Anchor plan DC capacity at the *history* trace's peak compute demand
  // (PlanScope::capacity_anchor_cores) instead of re-deriving it from each
  // replan's forecast. Without the anchor, capacity floats with demand and
  // sustained overload is inexpressible; with it, provisioned cores stay
  // fixed while the workload grows past them.
  bool capacity_anchor = false;
  // Enable the controller's admission/shed policy (degrade past
  // degrade_threshold, shed past reject_threshold, shed probability capped
  // at max_shed — see titannext::AdmissionPolicy).
  bool admission_control = false;
  double admission_degrade_threshold = 0.85;
  double admission_reject_threshold = 1.0;
  double admission_max_shed = 0.95;
  // Region-wide demand amplification of eval days [overload_begin_day,
  // overload_end_day) via workload::amplify_window; 1.0 disables,
  // end_day -1 means through the end of the eval window. Applied before
  // surge injection (surges clone the amplified originals).
  double overload_factor = 1.0;
  int overload_begin_day = 0;
  int overload_end_day = -1;

  titannext::PipelineOptions pipeline;

  std::vector<Disturbance> disturbances;
  std::vector<SurgeSpec> surges;

  [[nodiscard]] int eval_slots() const { return eval_days * core::kSlotsPerDay; }
  [[nodiscard]] int history_slots() const {
    return training_weeks * core::kSlotsPerWeek + eval_offset_days * core::kSlotsPerDay;
  }
};

// --- named library ------------------------------------------------------
[[nodiscard]] Scenario steady_week();
[[nodiscard]] Scenario weekend_transition();
[[nodiscard]] Scenario fiber_cut_failover();
[[nodiscard]] Scenario dc_drain();
[[nodiscard]] Scenario flash_crowd();
[[nodiscard]] Scenario transit_degrade_failover();
[[nodiscard]] Scenario rolling_maintenance();
[[nodiscard]] Scenario cut_then_flash_crowd();
// Multi-region family (region-set PlanScope).
[[nodiscard]] Scenario na_steady_week();
[[nodiscard]] Scenario asia_flash_crowd();
[[nodiscard]] Scenario global_steady_week();
[[nodiscard]] Scenario na_cut_shifts_to_eu();
// Overload family (anchored capacity + admission control).
[[nodiscard]] Scenario overload_sustained();
[[nodiscard]] Scenario regional_catastrophe();
[[nodiscard]] Scenario cascading_drain();

// Appends a rolling-maintenance schedule: each named DC is partially
// drained to `magnitude` for `window_slots`, one DC at a time, with
// `gap_slots` of restored operation between phases. Start time is
// (day, slot_in_day); phases follow back-to-back on the same timeline.
void add_rolling_maintenance(Scenario& s, const std::vector<std::string>& dcs, int day,
                             int slot_in_day, int window_slots, int gap_slots,
                             double magnitude);

[[nodiscard]] const std::vector<std::string>& scenario_names();
// Throws std::invalid_argument for unknown names.
[[nodiscard]] Scenario make_scenario(const std::string& name);

struct ScenarioWorkload {
  workload::Trace history;  // everything before the eval window
  workload::Trace eval;     // the simulated window, surges applied
};

// Generates the scenario's trace, splits it around the eval window, and
// injects flash-crowd surges into the eval side. Deterministic in
// (scenario, world).
[[nodiscard]] ScenarioWorkload build_workload(const Scenario& scenario,
                                              const geo::World& world);

}  // namespace titan::sim
