#include "sim/scenario.h"

#include <cmath>
#include <stdexcept>

#include "core/hash.h"

namespace titan::sim {

namespace {

Scenario base_scenario() {
  Scenario s;
  s.pipeline.scope.timeslots = core::kSlotsPerDay;
  s.pipeline.scope.max_reduced_configs = 60;
  s.pipeline.top_k_forecast = 150;
  return s;
}

}  // namespace

Scenario steady_week() {
  Scenario s = base_scenario();
  s.name = "steady-week";
  s.description = "one undisturbed evaluation week with daily replans (Fig. 15 closed-loop)";
  return s;
}

Scenario weekend_transition() {
  Scenario s = base_scenario();
  s.name = "weekend-transition";
  s.description = "Friday through Monday: the workload collapses to weekend volume and "
                  "recovers; forecasts must track the regime change";
  s.eval_offset_days = 4;  // start on Friday
  s.eval_days = 4;         // Fri, Sat, Sun, Mon
  return s;
}

Scenario fiber_cut_failover() {
  Scenario s = base_scenario();
  s.name = "fiber-cut-failover";
  s.description = "mid-week fiber cut severs the top WAN link on the France path; Titan "
                  "surges the affected pairs' Internet fractions and the loop replans "
                  "(§4.2 finding 7)";
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.day = 2;                // Wednesday
  cut.slot_in_day = 20;       // 10:00, mid business morning
  cut.country = "france";
  cut.dc = "netherlands";
  cut.magnitude = 0.0;        // severed outright
  s.disturbances.push_back(cut);
  return s;
}

Scenario dc_drain() {
  Scenario s = base_scenario();
  s.name = "dc-drain";
  s.description = "maintenance fully drains the Netherlands MP DC on Thursday morning; "
                  "active calls evacuate and replans spread the load";
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 3;              // Thursday
  drain.slot_in_day = 16;     // 08:00
  drain.dc = "netherlands";
  drain.magnitude = 0.0;
  s.disturbances.push_back(drain);
  return s;
}

Scenario flash_crowd() {
  Scenario s = base_scenario();
  s.name = "flash-crowd";
  s.description = "a Tuesday-morning regional event triples France call volume for four "
                  "hours; forecasts trained on calm history under-provision";
  SurgeSpec surge;
  surge.day = 1;              // Tuesday
  surge.begin_slot_in_day = 18;
  surge.end_slot_in_day = 26;
  surge.country = "france";
  surge.factor = 3.0;
  s.surges.push_back(surge);
  // The surge also breaks the forecast regime: model the under-forecast
  // explicitly so forecast columns covering the window are biased low,
  // whichever replan produces them.
  Disturbance bias;
  bias.kind = NetworkEventKind::kForecastBias;
  bias.day = 1;
  bias.slot_in_day = 18;
  bias.duration_slots = 8;
  bias.magnitude = 0.7;
  s.disturbances.push_back(bias);
  return s;
}

Scenario transit_degrade_failover() {
  Scenario s = base_scenario();
  s.name = "transit-degrade-failover";
  s.description = "a transit ISP at the Netherlands DC congests for a Tuesday business "
                  "morning; every homed pair sees >= 1% Internet loss, per-call route "
                  "failover moves traffic to the WAN and Titan steers the pairs to an "
                  "alternate transit (§4.2 finding 6, §6.4)";
  Disturbance degrade;
  degrade.kind = NetworkEventKind::kTransitDegrade;
  degrade.day = 1;               // Tuesday
  degrade.slot_in_day = 18;      // 09:00
  degrade.duration_slots = 8;    // a four-hour congestion episode
  degrade.country = "france";    // resolve the transit France is homed onto
  degrade.dc = "netherlands";
  degrade.magnitude = 0.03;      // 3% added loss: well past the 1% threshold
  s.disturbances.push_back(degrade);
  return s;
}

Scenario rolling_maintenance() {
  Scenario s = base_scenario();
  s.name = "rolling-maintenance";
  s.description = "rolling half-capacity maintenance across the European DCs, one at a "
                  "time with restore windows in between; each phase evacuates ~half of "
                  "the in-flight calls at the DC under maintenance (§4.2 drains)";
  // Wednesday night into Thursday morning, the classic maintenance slot:
  // three hours per DC at half capacity, one hour restored between phases.
  add_rolling_maintenance(s, {"netherlands", "ireland", "uk"}, /*day=*/2,
                          /*slot_in_day=*/40 /* 20:00 */, /*window_slots=*/6,
                          /*gap_slots=*/2, /*magnitude=*/0.5);
  return s;
}

Scenario cut_then_flash_crowd() {
  Scenario s = base_scenario();
  s.name = "cut-then-flash-crowd";
  s.description = "compound drill: a Tuesday fiber cut severs the France WAN path, then "
                  "a Wednesday-morning flash crowd triples France volume while the "
                  "network is still degraded — surge traffic must ride the already "
                  "surged Internet fractions and the rerouted WAN";
  Disturbance cut;
  cut.kind = NetworkEventKind::kFiberCut;
  cut.day = 1;                // Tuesday
  cut.slot_in_day = 20;       // 10:00
  cut.country = "france";
  cut.dc = "netherlands";
  cut.magnitude = 0.0;        // severed outright
  s.disturbances.push_back(cut);
  SurgeSpec surge;
  surge.day = 2;              // Wednesday
  surge.begin_slot_in_day = 18;
  surge.end_slot_in_day = 26;
  surge.country = "france";
  surge.factor = 3.0;
  s.surges.push_back(surge);
  Disturbance bias;           // the crowd breaks the forecasts, as in flash-crowd
  bias.kind = NetworkEventKind::kForecastBias;
  bias.day = 2;
  bias.slot_in_day = 18;
  bias.duration_slots = 8;
  bias.magnitude = 0.7;
  s.disturbances.push_back(bias);
  return s;
}

Scenario na_steady_week() {
  Scenario s = base_scenario();
  s.name = "na-steady-week";
  s.description = "one undisturbed North American evaluation week with daily replans — the "
                  "European steady-week drill transplanted onto the NA countries and the "
                  "eight NA DCs";
  s.pipeline.scope.regions = geo::Continent::kNorthAmerica;
  // 8 DCs vs Europe's 5: a slightly tighter reduced set keeps the LP at
  // the European scenarios' column count (simplex time is superlinear).
  s.pipeline.scope.max_reduced_configs = 40;
  return s;
}

Scenario asia_flash_crowd() {
  Scenario s = base_scenario();
  s.name = "asia-flash-crowd";
  s.description = "a Tuesday-morning regional event triples India call volume for four "
                  "hours across the Asian scope; forecasts trained on calm history "
                  "under-provision";
  s.pipeline.scope.regions = geo::Continent::kAsia;
  SurgeSpec surge;
  surge.day = 1;  // Tuesday
  surge.begin_slot_in_day = 18;
  surge.end_slot_in_day = 26;
  surge.country = "india";
  surge.factor = 3.0;
  s.surges.push_back(surge);
  Disturbance bias;  // the crowd breaks the forecasts, as in flash-crowd
  bias.kind = NetworkEventKind::kForecastBias;
  bias.day = 1;
  bias.slot_in_day = 18;
  bias.duration_slots = 8;
  bias.magnitude = 0.7;
  s.disturbances.push_back(bias);
  return s;
}

Scenario global_steady_week() {
  Scenario s = base_scenario();
  s.name = "global-steady-week";
  s.description = "one undisturbed week across all three paper regions (NA + Europe + "
                  "Asia, 18 DCs) with cross-continent corridor calls in the mix — the "
                  "paper's global world planned as one scope";
  s.pipeline.scope.regions = {geo::Continent::kNorthAmerica, geo::Continent::kEurope,
                              geo::Continent::kAsia};
  s.cross_region_fraction = 0.15;
  // Full base-scenario fidelity (day horizon, daily replans, full reduced
  // set): the region-block decomposition solves the 18-DC scope as three
  // per-continent LPs plus a small coupling LP, so the global scope no
  // longer pays the monolithic simplex's superlinear column cost.
  return s;
}

Scenario na_cut_shifts_to_eu() {
  Scenario s = base_scenario();
  s.name = "na-cut-shifts-to-eu";
  s.description = "a catastrophic Wednesday event takes every North American DC offline "
                  "for four hours; their in-flight calls evacuate across the Atlantic and "
                  "replans serve the whole NA+EU scope from Europe until the region "
                  "restores — the cross-region load shift is visible in the per-region "
                  "slot metrics";
  s.pipeline.scope.regions = {geo::Continent::kNorthAmerica, geo::Continent::kEurope};
  s.cross_region_fraction = 0.10;
  // 13 DCs at full base-scenario fidelity — the region-block decomposition
  // carries the multi-region cost (see global-steady-week).
  // Europe alone must be able to absorb the NA outage: EU holds ~36% of the
  // scope's provisioned cores, so 3x headroom keeps the LP feasible with the
  // whole NA fleet at zero capacity.
  s.pipeline.scope.compute_headroom = 3.0;
  for (const char* dc : {"us1", "us2", "us3", "us4", "us5", "us6", "us7", "canada"}) {
    Disturbance drain;
    drain.kind = NetworkEventKind::kDcDrain;
    drain.day = 2;           // Wednesday
    drain.slot_in_day = 18;  // 09:00
    drain.duration_slots = 8;
    drain.dc = dc;
    drain.magnitude = 0.0;  // the region goes dark
    s.disturbances.push_back(drain);
  }
  return s;
}

Scenario overload_sustained() {
  Scenario s = base_scenario();
  s.name = "overload-sustained";
  s.description = "two weekdays at five times the trained volume against capacity anchored "
                  "at 0.8x the historical peak — day-integrated demand runs ~1.7x aggregate "
                  "capacity, so admission control must degrade media shapes through the "
                  "whole business day and shed calls at the peaks, fairly per region";
  s.eval_days = 2;  // Monday + Tuesday, both fully overloaded
  s.capacity_anchor = true;
  s.admission_control = true;
  // Provision *below* the historical peak: even the un-amplified business
  // day brushes the degrade band, and the 5x amplification pushes far past
  // reject territory — integrated over the whole day, not just its peak.
  s.pipeline.scope.compute_headroom = 0.8;
  s.overload_factor = 5.0;  // whole eval window (begin 0, end -1)
  // The amplified regime breaks the trained forecasts the same way a flash
  // crowd does; bias the forecast columns low across both days.
  Disturbance bias;
  bias.kind = NetworkEventKind::kForecastBias;
  bias.day = 0;
  bias.slot_in_day = 0;
  bias.duration_slots = 2 * core::kSlotsPerDay;
  bias.magnitude = 0.7;
  s.disturbances.push_back(bias);
  return s;
}

Scenario regional_catastrophe() {
  Scenario s = base_scenario();
  s.name = "regional-catastrophe";
  s.description = "compound Wednesday catastrophe: the Amsterdam DC (largest in Europe) "
                  "goes dark for eight hours while a transit ISP congests the France "
                  "Internet paths and a flash crowd triples France and Germany volume on "
                  "the surviving DCs — anchored capacity means the survivors cannot "
                  "absorb it all, and admission control degrades then sheds";
  s.capacity_anchor = true;
  s.admission_control = true;
  // Modest provisioning: healthy days run clean, but losing the largest DC
  // under a surge pushes the survivors past threshold.
  s.pipeline.scope.compute_headroom = 1.2;
  Disturbance drain;
  drain.kind = NetworkEventKind::kDcDrain;
  drain.day = 2;            // Wednesday
  drain.slot_in_day = 18;   // 09:00
  drain.duration_slots = 16;  // dark through the business day
  drain.dc = "netherlands";
  drain.magnitude = 0.0;
  s.disturbances.push_back(drain);
  Disturbance degrade;
  degrade.kind = NetworkEventKind::kTransitDegrade;
  degrade.day = 2;
  degrade.slot_in_day = 18;
  degrade.duration_slots = 8;
  degrade.country = "france";
  degrade.dc = "ireland";     // a *survivor's* transit congests under the shifted load
  degrade.magnitude = 0.03;   // 3% added loss: past the route-failover threshold
  s.disturbances.push_back(degrade);
  for (const char* country : {"france", "germany"}) {
    SurgeSpec surge;
    surge.day = 2;
    surge.begin_slot_in_day = 18;
    surge.end_slot_in_day = 26;
    surge.country = country;
    surge.factor = 3.0;
    s.surges.push_back(surge);
  }
  Disturbance bias;  // the crowd breaks the forecasts, as in flash-crowd
  bias.kind = NetworkEventKind::kForecastBias;
  bias.day = 2;
  bias.slot_in_day = 18;
  bias.duration_slots = 8;
  bias.magnitude = 0.7;
  s.disturbances.push_back(bias);
  return s;
}

Scenario cascading_drain() {
  Scenario s = base_scenario();
  s.name = "cascading-drain";
  s.description = "cascade drill: with capacity anchored at 1.1x peak and Tuesday running "
                  "hot (1.5x volume), the Amsterdam DC drains and its evacuated calls tip "
                  "the Dublin DC over threshold — which then drains too, stacking both "
                  "evacuations onto the remaining DCs while admission control holds the "
                  "line";
  s.capacity_anchor = true;
  s.admission_control = true;
  s.pipeline.scope.compute_headroom = 1.1;
  // A hot (not yet overloaded) Tuesday: the drains, not the volume alone,
  // cause the overload.
  s.overload_factor = 1.5;
  s.overload_begin_day = 1;
  s.overload_end_day = 2;
  Disturbance first;
  first.kind = NetworkEventKind::kDcDrain;
  first.day = 1;             // Tuesday
  first.slot_in_day = 16;    // 08:00
  first.duration_slots = 16;
  first.dc = "netherlands";
  first.magnitude = 0.0;
  s.disturbances.push_back(first);
  Disturbance second;
  second.kind = NetworkEventKind::kDcDrain;
  second.day = 1;
  second.slot_in_day = 20;   // 10:00 — two hours of evacuated load tips it over
  second.duration_slots = 12;
  second.dc = "ireland";
  second.magnitude = 0.0;
  s.disturbances.push_back(second);
  return s;
}

void add_rolling_maintenance(Scenario& s, const std::vector<std::string>& dcs, int day,
                             int slot_in_day, int window_slots, int gap_slots,
                             double magnitude) {
  if (window_slots <= 0) throw std::invalid_argument("rolling maintenance window_slots");
  if (gap_slots < 0) throw std::invalid_argument("rolling maintenance gap_slots");
  int begin = day * core::kSlotsPerDay + slot_in_day;
  for (const auto& dc : dcs) {
    Disturbance drain;
    drain.kind = NetworkEventKind::kDcDrain;
    drain.day = begin / core::kSlotsPerDay;
    drain.slot_in_day = begin % core::kSlotsPerDay;
    drain.duration_slots = window_slots;
    drain.dc = dc;
    drain.magnitude = magnitude;
    s.disturbances.push_back(drain);
    begin += window_slots + gap_slots;
  }
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "steady-week",    "weekend-transition",       "fiber-cut-failover",
      "dc-drain",       "flash-crowd",              "transit-degrade-failover",
      "rolling-maintenance", "cut-then-flash-crowd",
      "na-steady-week", "asia-flash-crowd",         "global-steady-week",
      "na-cut-shifts-to-eu",
      "overload-sustained", "regional-catastrophe", "cascading-drain"};
  return names;
}

Scenario make_scenario(const std::string& name) {
  if (name == "steady-week") return steady_week();
  if (name == "weekend-transition") return weekend_transition();
  if (name == "fiber-cut-failover") return fiber_cut_failover();
  if (name == "dc-drain") return dc_drain();
  if (name == "flash-crowd") return flash_crowd();
  if (name == "transit-degrade-failover") return transit_degrade_failover();
  if (name == "rolling-maintenance") return rolling_maintenance();
  if (name == "cut-then-flash-crowd") return cut_then_flash_crowd();
  if (name == "na-steady-week") return na_steady_week();
  if (name == "asia-flash-crowd") return asia_flash_crowd();
  if (name == "global-steady-week") return global_steady_week();
  if (name == "na-cut-shifts-to-eu") return na_cut_shifts_to_eu();
  if (name == "overload-sustained") return overload_sustained();
  if (name == "regional-catastrophe") return regional_catastrophe();
  if (name == "cascading-drain") return cascading_drain();
  throw std::invalid_argument("unknown scenario: " + name);
}

ScenarioWorkload build_workload(const Scenario& scenario, const geo::World& world) {
  const int hist_slots = scenario.history_slots();
  const int total_slots = hist_slots + scenario.eval_slots();
  workload::TraceOptions topts;
  topts.seed = scenario.seed;
  topts.weeks = (total_slots + core::kSlotsPerWeek - 1) / core::kSlotsPerWeek;
  topts.peak_slot_calls = scenario.peak_slot_calls;
  topts.weekend_factor = scenario.weekend_factor;
  topts.regions = scenario.pipeline.scope.regions;
  topts.cross_region_fraction = scenario.cross_region_fraction;
  const auto full = workload::TraceGenerator(world).generate(topts);

  ScenarioWorkload out;
  out.history = full.window(0, hist_slots);
  workload::Trace eval = full.window(hist_slots, total_slots);

  // Overload amplification first: region-wide, so aggregate demand outruns
  // anchored capacity. Surges below snapshot the amplified originals.
  if (scenario.overload_factor > 1.0) {
    if (scenario.overload_factor > 50.0)
      throw std::invalid_argument("overload_factor implausibly large");
    const int begin = scenario.overload_begin_day * core::kSlotsPerDay;
    const int end = scenario.overload_end_day < 0
                        ? eval.num_slots()
                        : scenario.overload_end_day * core::kSlotsPerDay;
    if (begin < 0 || begin >= end || end > eval.num_slots())
      throw std::invalid_argument("overload window outside the eval window");
    eval = workload::amplify_window(eval, begin, end, scenario.overload_factor, scenario.seed);
  }

  if (scenario.surges.empty()) {
    out.eval = std::move(eval);
    return out;
  }

  // Flash-crowd injection: clone matching arrivals (factor - 1) extra
  // times, deterministically per call id. Clones keep the config (the
  // registry is shared) and get fresh ids past the original range.
  std::vector<workload::CallRecord> calls = eval.calls();
  std::int64_t next_id = 0;
  for (const auto& call : calls) next_id = std::max(next_id, call.id.value() + 1);
  // Each surge clones *original* calls only (snapshot taken before any
  // surge), so overlapping surges add rather than compound.
  const std::size_t original_count = calls.size();
  for (std::size_t surge_index = 0; surge_index < scenario.surges.size(); ++surge_index) {
    const auto& surge = scenario.surges[surge_index];
    const auto region = world.find_country(surge.country);
    if (!region.valid()) throw std::invalid_argument("surge country: " + surge.country);
    if (!scenario.pipeline.scope.regions.contains(world.country(region).continent))
      throw std::invalid_argument("surge country outside plan scope: " + surge.country);
    const int begin = surge.day * core::kSlotsPerDay + surge.begin_slot_in_day;
    const int end = surge.day * core::kSlotsPerDay + surge.end_slot_in_day;
    for (std::size_t i = 0; i < original_count; ++i) {
      const auto call = calls[i];
      if (call.start_slot < begin || call.start_slot >= end) continue;
      if (call.first_joiner != region) continue;
      const double extra = surge.factor - 1.0;
      int clones = static_cast<int>(std::floor(extra));
      // The surge index is part of the key: overlapping surges must make
      // *independent* fractional-clone decisions per call, not perfectly
      // correlated ones.
      core::Rng rng = core::rng_at(scenario.seed, 0xF1a5, surge_index, call.id.value());
      if (rng.chance(extra - clones)) ++clones;
      for (int k = 0; k < clones; ++k) {
        workload::CallRecord clone = call;
        clone.id = core::CallId(next_id++);
        calls.push_back(clone);
      }
    }
  }
  out.eval = workload::Trace::assemble(std::move(calls), eval.configs(), eval.num_slots());
  return out;
}

}  // namespace titan::sim
