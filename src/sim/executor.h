// Sharded deterministic execution.
//
// The engine partitions calls across a *fixed* number of shards by a hash
// of the call id; worker threads execute shard jobs in parallel. Because
// every job touches only its own shard's state (RNG stream, controller,
// plan credits, metric sink) and merges happen single-threaded in shard
// index order, simulation results are bit-identical for a given seed
// regardless of the worker-thread count — the shard count, not the thread
// count, defines the decomposition.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/hash.h"
#include "core/ids.h"

namespace titan::sim {

// Stable shard of a call id: a pure function of the id, never of threads.
[[nodiscard]] inline int shard_of(core::CallId id, int num_shards) {
  return static_cast<int>(core::hash_key(0x5eedU, static_cast<std::uint64_t>(id.value())) %
                          static_cast<std::uint64_t>(num_shards));
}

// Persistent worker pool executing `job(shard)` for shards [0, num_shards).
// `run` blocks until every shard has finished. With `threads <= 1` jobs run
// inline on the caller, with zero pool overhead.
class ShardedExecutor {
 public:
  ShardedExecutor(int num_shards, int threads);
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  void run(const std::function<void(int shard)>& job);

  // Like run(), but accumulates each shard job's wall seconds into
  // shard_seconds[shard] (+=; must have num_shards entries). Safe because
  // one worker at a time owns a shard index and distinct shards touch
  // distinct entries. The per-shard work/merge-imbalance surface of
  // docs/observability.md.
  void run_timed(const std::function<void(int shard)>& job, std::vector<double>& shard_seconds);

  [[nodiscard]] int num_shards() const { return num_shards_; }
  [[nodiscard]] int threads() const { return threads_; }

 private:
  void worker_loop();

  int num_shards_;
  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::atomic<int> next_shard_{0};
  int running_ = 0;
  bool stop_ = false;
};

}  // namespace titan::sim
