#include "forecast/holt_winters.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/stats.h"

namespace titan::forecast {

namespace {

// Runs the additive Holt-Winters recursion over the series, returning the
// final state and accumulating one-step-ahead SSE.
HoltWintersFit run(const std::vector<double>& series, const HoltWintersParams& p) {
  const int m = p.season_length;
  const auto n = static_cast<int>(series.size());
  if (m < 2) throw std::invalid_argument("HoltWinters: season_length must be >= 2");
  if (n < 2 * m) throw std::invalid_argument("HoltWinters: need at least two seasons of data");

  HoltWintersFit fit;
  fit.params = p;

  // Initial level/trend from the first two seasons; initial seasonal indices
  // as deviations from the first-season mean.
  double mean1 = 0.0, mean2 = 0.0;
  for (int i = 0; i < m; ++i) mean1 += series[static_cast<std::size_t>(i)];
  for (int i = m; i < 2 * m; ++i) mean2 += series[static_cast<std::size_t>(i)];
  mean1 /= m;
  mean2 /= m;

  double level = mean1;
  double trend = (mean2 - mean1) / m;
  std::vector<double> seasonal(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) seasonal[static_cast<std::size_t>(i)] = series[static_cast<std::size_t>(i)] - mean1;

  double sse = 0.0;
  for (int t = 0; t < n; ++t) {
    const double s_prev = seasonal[static_cast<std::size_t>(t % m)];
    const double forecast = level + trend + s_prev;
    const double err = series[static_cast<std::size_t>(t)] - forecast;
    sse += err * err;

    const double x = series[static_cast<std::size_t>(t)];
    const double level_prev = level;
    level = p.alpha * (x - s_prev) + (1.0 - p.alpha) * (level + trend);
    trend = p.beta * (level - level_prev) + (1.0 - p.beta) * trend;
    seasonal[static_cast<std::size_t>(t % m)] =
        p.gamma * (x - level) + (1.0 - p.gamma) * s_prev;
  }

  fit.level = level;
  fit.trend = trend;
  fit.seasonal = std::move(seasonal);
  fit.n_obs = n;
  fit.training_sse = sse;
  return fit;
}

}  // namespace

HoltWintersFit HoltWinters::fit(const std::vector<double>& series,
                                const HoltWintersParams& params) {
  return run(series, params);
}

HoltWintersFit HoltWinters::fit_auto(const std::vector<double>& series, int season_length) {
  // Coarse grid, then one refinement pass around the best cell. Call-count
  // series are smooth enough that this lands within a hair of the optimum.
  const std::vector<double> coarse = {0.05, 0.15, 0.3, 0.5, 0.75};
  const std::vector<double> trend_grid = {0.0, 0.02, 0.1};
  const std::vector<double> season_grid = {0.05, 0.2, 0.5};

  HoltWintersFit best;
  best.training_sse = std::numeric_limits<double>::infinity();
  auto consider = [&](double a, double b, double g) {
    HoltWintersParams p{a, b, g, season_length};
    const HoltWintersFit f = run(series, p);
    if (f.training_sse < best.training_sse) best = f;
  };

  for (double a : coarse)
    for (double b : trend_grid)
      for (double g : season_grid) consider(a, b, g);

  const HoltWintersParams center = best.params;
  for (double da : {-0.05, 0.0, 0.05})
    for (double dg : {-0.1, 0.0, 0.1}) {
      const double a = std::clamp(center.alpha + da, 0.01, 0.95);
      const double g = std::clamp(center.gamma + dg, 0.01, 0.95);
      consider(a, center.beta, g);
    }
  return best;
}

std::vector<double> HoltWinters::forecast(const HoltWintersFit& fit, int horizon) {
  const int m = fit.params.season_length;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(horizon));
  // Seasonal indices continue from the end of training: the forecast for
  // step h targets absolute index n_obs + h - 1, whose phase is taken
  // modulo the season length.
  for (int h = 1; h <= horizon; ++h) {
    const double s = fit.seasonal[static_cast<std::size_t>((fit.n_obs + h - 1) % m)];
    out.push_back(std::max(0.0, fit.level + fit.trend * h + s));
  }
  return out;
}

ForecastError evaluate_forecast(const std::vector<double>& actual,
                                const std::vector<double>& predicted) {
  ForecastError e;
  if (actual.empty() || actual.size() != predicted.size()) return e;
  double peak = 0.0;
  for (double v : actual) peak = std::max(peak, v);
  if (peak <= 0.0) return e;
  e.rmse_normalized = core::rmse(actual, predicted) / peak;
  e.mae_normalized = core::mae(actual, predicted) / peak;
  return e;
}

}  // namespace titan::forecast
