// Holt-Winters triple exponential smoothing (§6.1 building block 2).
//
// Titan-Next forecasts the number of calls per call config for the next
// 24 hours in 30-minute slots, training on 4 weeks of history. Call volume
// has strong daily and weekly seasonality, so we use the additive
// formulation with a weekly season (336 slots of 30 minutes). Smoothing
// parameters are fitted by coarse-to-fine grid search minimizing one-step-
// ahead squared error, mirroring statsmodels' default behaviour closely
// enough for the paper's accuracy analysis (Fig. 20).
#pragma once

#include <cstddef>
#include <vector>

namespace titan::forecast {

struct HoltWintersParams {
  double alpha = 0.3;  // level
  double beta = 0.05;  // trend
  double gamma = 0.2;  // seasonal
  int season_length = 336;
};

struct HoltWintersFit {
  HoltWintersParams params;
  double level = 0.0;
  double trend = 0.0;
  std::vector<double> seasonal;  // season_length entries
  int n_obs = 0;                 // training length (fixes forecast phase)
  double training_sse = 0.0;
};

class HoltWinters {
 public:
  // Fits with fixed parameters. `series` must span at least two full
  // seasons; throws std::invalid_argument otherwise.
  static HoltWintersFit fit(const std::vector<double>& series, const HoltWintersParams& params);

  // Grid-searches (alpha, beta, gamma) minimizing one-step-ahead SSE.
  static HoltWintersFit fit_auto(const std::vector<double>& series, int season_length);

  // Point forecasts for the next `horizon` steps after the end of the
  // training series. Negative forecasts are clamped to zero (call counts).
  static std::vector<double> forecast(const HoltWintersFit& fit, int horizon);
};

// Normalized forecast error summary for Fig. 20: errors are normalized to
// the series' peak so elephant and mice configs weigh equally.
struct ForecastError {
  double rmse_normalized = 0.0;
  double mae_normalized = 0.0;
};
[[nodiscard]] ForecastError evaluate_forecast(const std::vector<double>& actual,
                                              const std::vector<double>& predicted);

}  // namespace titan::forecast
