// Phase-timing spans exportable as Chrome trace_event JSON.
//
// A TraceRecorder collects completed spans ("X" phase events in the
// trace_event vocabulary) on integer lanes (rendered as thread rows in
// Perfetto / chrome://tracing); obs::Span is the RAII producer. All times
// are wall clock — trace output is a visualization artifact and must never
// feed a determinism checksum (docs/observability.md).
//
// Recording is mutex-serialized so spans may close on any worker thread;
// the spans the sim emits are per-(slot, shard) phases, coarse enough that
// the lock is invisible next to the work it brackets. A null recorder
// makes Span a no-op that never reads the clock, so instrumented hot paths
// pay one branch when tracing is off.
#pragma once

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace titan::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  int lane = 0;           // rendered as the tid
  double start_us = 0.0;  // relative to the recorder's epoch
  double duration_us = 0.0;
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  // Microseconds since the recorder was constructed — the time base every
  // span uses, so one recorder can span several sequential runs.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     epoch_)
        .count();
  }

  // Names a lane's row in the viewer (idempotent).
  void set_lane_name(int lane, std::string name);

  void add_complete(std::string name, std::string category, int lane, double start_us,
                    double duration_us);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // Chrome trace_event "JSON Object Format": {"traceEvents": [...]} with
  // thread_name metadata per named lane and one "X" event per span.
  // Loadable directly in Perfetto or chrome://tracing.
  [[nodiscard]] std::string chrome_json() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<int, std::string> lane_names_;
};

// RAII span: captures the start time at construction and records a
// complete event when destroyed (or end()ed early). With a null recorder
// every operation is a no-op and the clock is never read.
class Span {
 public:
  Span() = default;
  Span(TraceRecorder* recorder, const char* name, const char* category = "", int lane = 0)
      : recorder_(recorder), name_(name), category_(category), lane_(lane) {
    if (recorder_ != nullptr) start_us_ = recorder_->now_us();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void end() {
    if (recorder_ == nullptr) return;
    recorder_->add_complete(name_, category_, lane_, start_us_,
                            recorder_->now_us() - start_us_);
    recorder_ = nullptr;
  }

 private:
  TraceRecorder* recorder_ = nullptr;
  const char* name_ = "";
  const char* category_ = "";
  int lane_ = 0;
  double start_us_ = 0.0;
};

}  // namespace titan::obs
