// Observability metrics: counters, gauges, fixed-bucket log-scale
// histograms, and a named registry.
//
// Design rules (docs/observability.md has the full contract):
//
//  * Bucket edges are a pure function of Histogram::Options — every
//    instance built from the same options has byte-identical edges, so
//    histograms recorded independently (one per sim shard) merge into
//    bit-identical counts regardless of how work was threaded.
//  * Counts are integers; merging adds them, so merged counts are exactly
//    invariant to merge order. The floating `sum` is also exact (and thus
//    order-invariant) whenever the recorded values are integers below
//    2^53; for wall-clock samples it is reporting-only.
//  * Nothing in this header reads a clock. Wall-clock values are recorded
//    by the caller, and whether a metric may feed a determinism checksum
//    is decided by what was recorded into it, not by this layer: a
//    histogram of call durations is deterministic, a histogram of
//    assignment latencies is not and must be masked (see
//    sim::SimResult::zero_wallclock) before bitwise compares.
//
// None of these types are thread-safe; the intended pattern is one
// instance per shard/worker, merged single-threaded in a fixed order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace titan::obs {

// Monotonic integer count.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  friend bool operator==(const Counter&, const Counter&) = default;

 private:
  std::int64_t value_ = 0;
};

// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  friend bool operator==(const Gauge&, const Gauge&) = default;

 private:
  double value_ = 0.0;
};

// Log-scale histogram with fixed, deterministic bucket edges.
//
// Layout: one underflow bucket for values < min, `buckets_per_decade`
// log10-spaced buckets per decade across [min, max), and one overflow
// bucket for values >= max. Bucket membership is resolved by binary search
// on the precomputed edges, so a value maps to exactly one bucket
// (half-open [lower, upper)) on every platform the same way the edges
// were computed.
class Histogram {
 public:
  struct Options {
    double min = 1e-3;  // lower edge of the first log bucket; must be > 0
    double max = 1e6;   // values >= max land in the overflow bucket
    int buckets_per_decade = 8;
    friend bool operator==(const Options&, const Options&) = default;
  };

  Histogram() : Histogram(Options{}) {}
  // Throws std::invalid_argument on min <= 0, max <= min, or
  // buckets_per_decade < 1.
  explicit Histogram(const Options& options);

  void record(double value) { record_many(value, 1); }
  void record_many(double value, std::uint64_t count);

  // Adds `other`'s counts/sum and widens min/max. Throws
  // std::invalid_argument when the bucket layouts differ — merged counts
  // are only meaningful bucket-by-bucket.
  void merge(const Histogram& other);

  // Zeroes every count and the sum/min/max, keeping the bucket layout:
  // the masking primitive for wall-clock histograms.
  void reset();

  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] std::uint64_t total_count() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }
  [[nodiscard]] double min() const { return total_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return total_ == 0 ? 0.0 : max_; }

  // Quantile estimate by linear interpolation inside the covering bucket
  // (exact at q=1, which returns the recorded max). Deterministic in the
  // counts. Returns 0 on an empty histogram; q is clamped to [0, 1].
  [[nodiscard]] double quantile(double q) const;

  // Buckets: index 0 = underflow, 1..num_log_buckets = the log grid,
  // last = overflow.
  [[nodiscard]] std::size_t num_buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  // Edge values of bucket i as rendered in reports: the underflow bucket
  // reports [0, min), the overflow [max, +inf) — quantile() substitutes
  // the recorded extremes when interpolating inside them.
  [[nodiscard]] double bucket_lower(std::size_t i) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;
  [[nodiscard]] std::size_t bucket_index(double value) const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  Options options_;
  std::vector<double> edges_;         // ascending; edges_.front() == min
  std::vector<std::uint64_t> counts_; // edges_.size() + 1 buckets
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  // valid only when total_ > 0
  double max_ = 0.0;
};

// Named metrics, grouped by kind. Accessors create on first use;
// `histogram` of an existing name verifies the requested bucket layout
// matches (throws std::invalid_argument otherwise — silently merging two
// layouts under one name would corrupt the counts). Iteration over the
// underlying maps is name-sorted, so any export of a registry is
// deterministic in its contents.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name, const Histogram::Options& options = {});

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // Folds `other` in: counters add, histograms merge (created with the
  // source layout when absent here), gauges take `other`'s value.
  void merge(const Registry& other);

  friend bool operator==(const Registry&, const Registry&) = default;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace titan::obs
