#include "obs/trace.h"

namespace titan::obs {

namespace {

// JSON string escaping for the few characters span names could plausibly
// carry; everything else we emit is machine-chosen ASCII.
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void TraceRecorder::set_lane_name(int lane, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_names_[lane] = std::move(name);
}

void TraceRecorder::add_complete(std::string name, std::string category, int lane,
                                 double start_us, double duration_us) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({std::move(name), std::move(category), lane, start_us, duration_us});
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceRecorder::chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  char buf[96];
  for (const auto& [lane, name] : lane_names_) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{"
                  "\"name\":\"",
                  lane);
    out += buf;
    append_escaped(out, name);
    out += "\"}}";
  }
  for (const auto& e : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,";
    std::snprintf(buf, sizeof buf, "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"name\":\"", e.lane,
                  e.start_us, e.duration_us);
    out += buf;
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.category.empty() ? std::string("default") : e.category);
    out += "\"}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace titan::obs
