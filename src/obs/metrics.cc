#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace titan::obs {

Histogram::Histogram(const Options& options) : options_(options) {
  if (!(options_.min > 0.0)) throw std::invalid_argument("histogram: min must be > 0");
  if (!(options_.max > options_.min))
    throw std::invalid_argument("histogram: max must be > min");
  if (options_.buckets_per_decade < 1)
    throw std::invalid_argument("histogram: buckets_per_decade must be >= 1");

  // Edges at 10^(log10(min) + k / buckets_per_decade), k = 0, 1, ... up to
  // and including the first edge >= max (clamped to max so the grid covers
  // exactly [min, max)). Computed once, identically for every instance
  // with the same options — the determinism anchor of the whole type.
  const double lo = std::log10(options_.min);
  const double hi = std::log10(options_.max);
  const int per = options_.buckets_per_decade;
  const int steps = static_cast<int>(std::ceil((hi - lo) * per - 1e-9));
  edges_.reserve(static_cast<std::size_t>(steps) + 1);
  edges_.push_back(options_.min);
  for (int k = 1; k < steps; ++k)
    edges_.push_back(std::pow(10.0, lo + static_cast<double>(k) / per));
  edges_.push_back(options_.max);
  counts_.assign(edges_.size() + 1, 0);
}

std::size_t Histogram::bucket_index(double value) const {
  // upper_bound: first edge > value; bucket i spans [edges_[i-1], edges_[i]).
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  return static_cast<std::size_t>(it - edges_.begin());
}

double Histogram::bucket_lower(std::size_t i) const {
  return i == 0 ? 0.0 : edges_[i - 1];
}

double Histogram::bucket_upper(std::size_t i) const {
  return i >= edges_.size() ? std::numeric_limits<double>::infinity() : edges_[i];
}

void Histogram::record_many(double value, std::uint64_t count) {
  if (count == 0) return;
  counts_[bucket_index(value)] += count;
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_ += count;
  sum_ += value * static_cast<double>(count);
}

void Histogram::merge(const Histogram& other) {
  if (options_ != other.options_)
    throw std::invalid_argument("histogram merge: mismatched bucket layout");
  if (other.total_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Interpolate inside the covering bucket. The open-ended buckets
      // substitute the recorded extremes for their infinite edge.
      double lower = bucket_lower(i);
      double upper = bucket_upper(i);
      if (i == 0) lower = min_;
      if (i + 1 == counts_.size()) upper = max_;
      lower = std::max(lower, min_);
      upper = std::min(upper, max_);
      if (upper <= lower) return lower;
      const double frac =
          std::clamp((target - static_cast<double>(cum)) / static_cast<double>(c), 0.0, 1.0);
      return lower + frac * (upper - lower);
    }
    cum += c;
  }
  return max_;
}

Histogram& Registry::histogram(const std::string& name, const Histogram::Options& options) {
  const auto it = histograms_.find(name);
  if (it == histograms_.end())
    return histograms_.emplace(name, Histogram(options)).first->second;
  if (it->second.options() != options)
    throw std::invalid_argument("registry: histogram '" + name +
                                "' already exists with a different bucket layout");
  return it->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].add(c.value());
  for (const auto& [name, g] : other.gauges_) gauges_[name].set(g.value());
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end())
      histograms_.emplace(name, h);
    else
      it->second.merge(h);
  }
}

}  // namespace titan::obs
