// Two-phase revised primal simplex.
//
// Solves min c'x s.t. Ax {<=,=,>=} b, x >= 0 as built by LpModel. Slacks
// and surpluses convert rows to equalities; artificials complete the
// initial basis where a slack cannot (equality rows, wrong-sign rhs).
// Phase 1 minimizes the artificial sum; phase 2 continues from the feasible
// basis with the true objective. The basis is held in a sparse LU
// (BasisLu) refreshed by product-form eta updates and periodically
// refactorized. Dantzig pricing with a Bland's-rule fallback breaks
// degenerate stalls.
#pragma once

#include <string>
#include <vector>

#include "lp/model.h"

namespace titan::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit, kNumericalFailure };

[[nodiscard]] std::string status_name(SolveStatus s);

struct SolveOptions {
  int max_iterations = 200000;
  int refactor_interval = 64;     // eta updates between refactorizations
  double optimality_tol = 1e-7;   // reduced-cost tolerance
  double feasibility_tol = 1e-7;  // basic-value / ratio-test tolerance
  double pivot_tol = 1e-9;
  int bland_trigger = 40;  // consecutive degenerate iterations before Bland
  bool verbose = false;
};

struct Solution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only
  int iterations = 0;
  int phase1_iterations = 0;
  double solve_seconds = 0.0;
};

[[nodiscard]] Solution solve(const LpModel& model, const SolveOptions& options = {});

}  // namespace titan::lp
