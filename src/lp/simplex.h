// Two-phase revised primal simplex.
//
// Solves min c'x s.t. Ax {<=,=,>=} b, x >= 0 as built by LpModel. Slacks
// and surpluses convert rows to equalities; artificials complete the
// initial basis where a slack cannot (equality rows, wrong-sign rhs).
// Phase 1 minimizes the artificial sum; phase 2 continues from the feasible
// basis with the true objective. The basis is held in a sparse LU
// (BasisLu) refreshed by product-form eta updates and periodically
// refactorized. Dantzig pricing with a Bland's-rule fallback breaks
// degenerate stalls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"

namespace titan::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit, kNumericalFailure };

[[nodiscard]] std::string status_name(SolveStatus s);

struct SolveOptions {
  int max_iterations = 200000;
  int refactor_interval = 64;     // eta updates between refactorizations
  double optimality_tol = 1e-7;   // reduced-cost tolerance
  double feasibility_tol = 1e-7;  // basic-value / ratio-test tolerance
  double pivot_tol = 1e-9;
  int bland_trigger = 40;  // consecutive degenerate iterations before Bland
  // Warm-start repair budget: a seeded basis may carry basic artificials
  // above zero (rows the seed never covered — e.g. the fresh tail of a
  // rolling replan horizon); phase 1 run *from the seed* repairs them. When
  // more than this fraction of rows is hot the seed has transferred too
  // little to pay off — measured on the plan LPs, majority-fresh repairs
  // cost multiples of a cold solve — so the solver falls back cold instead.
  double warm_repair_limit = 0.1;
  bool verbose = false;
};

// One simplex-basis member, in model-relative terms: either a structural
// column (by column index) or the slack/surplus or artificial column owned
// by a constraint row (by row index). Encoding by *meaning* rather than by
// computational-form column number lets a basis survive a model rebuild
// whose row/column identities are preserved — the warm-start contract
// documented in docs/solver.md.
struct BasisEntry {
  enum class Kind : std::uint8_t { kStructural, kSlack, kArtificial };
  Kind kind = Kind::kSlack;
  int index = 0;  // kStructural: column; kSlack/kArtificial: owning row
  friend bool operator==(const BasisEntry&, const BasisEntry&) = default;
};

// A full basis: exactly one entry per constraint row of the model it was
// extracted from (the entry order carries no meaning — a basis is a set).
struct Basis {
  std::vector<BasisEntry> entries;
  [[nodiscard]] bool empty() const { return entries.empty(); }
  friend bool operator==(const Basis&, const Basis&) = default;
};

struct Solution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only
  int iterations = 0;
  int phase1_iterations = 0;
  double solve_seconds = 0.0;
  // Phase breakdown of solve_seconds (wall clock; solve_seconds also
  // covers tableau construction and basis mapping, so the parts do not sum
  // to it). refactor_seconds is the LU (re)factorization share, counted
  // inside whichever phase triggered it. `refactorizations` counts those
  // factorizations — a deterministic companion to `iterations`, since the
  // pivot sequence and eta-growth policy are deterministic.
  double phase1_seconds = 0.0;  // classic phase 1 or warm restoration
  double phase2_seconds = 0.0;
  double refactor_seconds = 0.0;
  int refactorizations = 0;
  Basis basis;                // final basis, filled when status == kOptimal
  bool warm_started = false;  // solved from a caller basis (phase 1 skipped)
};

[[nodiscard]] Solution solve(const LpModel& model, const SolveOptions& options = {});

// Warm-started solve: seeds the simplex with `warm` (a Solution::basis from
// an earlier solve of a structurally compatible model). When the seeded
// basis maps onto this model, factorizes, and is primal-feasible, phase 1
// is skipped entirely and phase 2 runs from it; on a dimension mismatch, a
// singular factorization, an infeasible seed, or a numerical failure
// mid-solve, the call transparently falls back to the cold path — the
// result is always as trustworthy as solve() without a basis.
[[nodiscard]] Solution solve(const LpModel& model, const Basis& warm,
                             const SolveOptions& options = {});

}  // namespace titan::lp
