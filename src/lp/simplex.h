// Two-phase revised simplex (primal, with a dual pivot mode for warm
// re-solves).
//
// Solves min c'x s.t. Ax {<=,=,>=} b, x >= 0 as built by LpModel. Slacks
// and surpluses convert rows to equalities; artificials complete the
// initial basis where a slack cannot (equality rows, wrong-sign rhs).
// Phase 1 minimizes the artificial sum; phase 2 continues from the feasible
// basis with the true objective. The basis is held in a sparse LU
// (BasisLu) refreshed by product-form eta updates and periodically
// refactorized. Dantzig pricing with a bounded Bland's-rule fallback breaks
// degenerate stalls.
//
// Warm re-solves additionally support the *dual* simplex: when a seeded
// basis is dual-feasible (no attractive nonbasic column) but primally
// violated — the shape rhs-side disturbances leave a previously optimal
// basis in — the dual pivot loop drives the negative basics out without
// ever dropping dual feasibility, typically in a handful of pivots where
// the primal restoration pass would rebuild feasibility from scratch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"

namespace titan::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit, kNumericalFailure };

[[nodiscard]] std::string status_name(SolveStatus s);

// Pivot-mode selection for warm-started solves (cold solves always run the
// classic primal two-phase path, byte for byte):
//  * kAuto: a clean seed goes straight to primal phase 2; a primally
//    damaged seed tries the dual simplex when it is dual-feasible (and has
//    no uncovered rows), else the primal restoration pass.
//  * kPrimal: never enter the dual loop (the pre-dual behaviour).
//  * kDual: dual loop or nothing — a seed that is not dual-feasible fails
//    the warm attempt and the solve falls back cold. Benches use this to
//    isolate the dual path's contribution.
enum class PivotMode { kAuto, kPrimal, kDual };

struct SolveOptions {
  int max_iterations = 200000;
  int refactor_interval = 64;     // eta updates between refactorizations
  double optimality_tol = 1e-7;   // reduced-cost tolerance
  double feasibility_tol = 1e-7;  // basic-value / ratio-test tolerance
  double pivot_tol = 1e-9;
  int bland_trigger = 40;  // consecutive degenerate iterations before Bland
  // Bound on one Bland's-rule burst: after this many anti-cycling pivots
  // without a nondegenerate step the solver returns to Dantzig pricing and
  // re-arms the stall detector, so a long plateau cannot lock the solve
  // into Bland's slow first-negative scans forever. Large enough that the
  // plan LPs never exhaust it (their longest measured plateau is ~1k
  // pivots, on the Asian scope — below the bound the pivot sequence is
  // byte-identical to the unbounded rule); max_iterations remains the
  // termination backstop.
  int bland_burst = 2048;
  // Warm-start repair budget: a seeded basis may carry basic artificials
  // above zero (rows the seed never covered — e.g. the fresh tail of a
  // rolling replan horizon); phase 1 run *from the seed* repairs them. When
  // more than this fraction of rows is hot the seed has transferred too
  // little to pay off — measured on the plan LPs, majority-fresh repairs
  // cost multiples of a cold solve — so the solver falls back cold instead.
  // The dual pivot loop is exempt from this fraction but has stricter
  // gates of its own (dual pivots cost several primal ones each): seeds
  // with more than max(32, m/64) negative rows are refused outright, and
  // an admitted repair is cut off after min(m + 100, 200 × negative
  // rows) pivots — measured on the plan LPs, repairs that pay off
  // converge within ~160 pivots per damaged row; longer walks lose to
  // the cold solve they fall back to anyway.
  double warm_repair_limit = 0.1;
  PivotMode pivot_mode = PivotMode::kAuto;
  // Candidate-column pruning (warm solves only; cold paths ignore it).
  // When sized to the model's structural column count, phase-2 pricing
  // skips structural columns with mask 0 until a full verification sweep
  // finds one attractive — it is then promoted and pricing continues — so
  // the final optimum is exactly the unpruned one. Sized wrong, the mask
  // is ignored. Sourced from the previous solve's reduced costs by
  // titannext::solve_plan (docs/solver.md, "Candidate-column pruning").
  std::vector<std::uint8_t> candidate_mask;
  bool verbose = false;
};

// One simplex-basis member, in model-relative terms: either a structural
// column (by column index) or the slack/surplus or artificial column owned
// by a constraint row (by row index). Encoding by *meaning* rather than by
// computational-form column number lets a basis survive a model rebuild
// whose row/column identities are preserved — the warm-start contract
// documented in docs/solver.md.
struct BasisEntry {
  enum class Kind : std::uint8_t { kStructural, kSlack, kArtificial };
  Kind kind = Kind::kSlack;
  int index = 0;  // kStructural: column; kSlack/kArtificial: owning row
  friend bool operator==(const BasisEntry&, const BasisEntry&) = default;
};

// A full basis: exactly one entry per constraint row of the model it was
// extracted from (the entry order carries no meaning — a basis is a set).
struct Basis {
  std::vector<BasisEntry> entries;
  [[nodiscard]] bool empty() const { return entries.empty(); }
  friend bool operator==(const Basis&, const Basis&) = default;
};

struct Solution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only
  int iterations = 0;     // total pivots: phase 1/restoration + dual + phase 2
  int phase1_iterations = 0;
  // Dual-simplex pivots of the accepted solve (warm kAuto/kDual path only;
  // 0 on every cold or primal-warm solve). Counted inside `iterations`.
  int dual_iterations = 0;
  // Anti-cycling observability: degenerate pivots taken (the stall
  // detector's raw signal) and pivots spent inside Bland's-rule bursts.
  // Deterministic companions to `iterations`.
  int stall_pivots = 0;
  int bland_pivots = 0;
  // Candidate-column pruning: structural columns the mask excluded from
  // phase-2 pricing, and how many of those a verification sweep had to
  // promote back. pruned > 0 with promoted == 0 is the ideal warm solve.
  int pruned_columns = 0;
  int promoted_columns = 0;
  double solve_seconds = 0.0;
  // Phase breakdown of solve_seconds (wall clock; solve_seconds also
  // covers tableau construction and basis mapping, so the parts do not sum
  // to it). refactor_seconds is the LU (re)factorization share, counted
  // inside whichever phase triggered it. `refactorizations` counts those
  // factorizations — a deterministic companion to `iterations`, since the
  // pivot sequence and eta-growth policy are deterministic. Dual pivot
  // time is accounted under phase1_seconds (the "reach primal
  // feasibility" share, like the warm restoration pass).
  double phase1_seconds = 0.0;  // classic phase 1, warm restoration, or dual loop
  double phase2_seconds = 0.0;
  double refactor_seconds = 0.0;
  int refactorizations = 0;
  Basis basis;                // final basis, filled when status == kOptimal
  bool warm_started = false;  // solved from a caller basis (phase 1 skipped)
  // Row duals y (one per constraint, model row order) at the optimal
  // basis, priced with the phase-2 costs. Empty unless status == kOptimal.
  // Callers derive reduced costs d_j = c_j - a_j'y for column pruning.
  std::vector<double> duals;
};

[[nodiscard]] Solution solve(const LpModel& model, const SolveOptions& options = {});

// Warm-started solve: seeds the simplex with `warm` (a Solution::basis from
// an earlier solve of a structurally compatible model). When the seeded
// basis maps onto this model, factorizes, and is primal-feasible, phase 1
// is skipped entirely and phase 2 runs from it; a primally damaged seed is
// repaired by the dual simplex (dual-feasible seeds, pivot_mode kAuto/
// kDual) or the primal restoration pass. On a dimension mismatch, a
// singular factorization, an infeasible seed, or a numerical failure
// mid-solve, the call transparently falls back to the cold path — the
// result is always as trustworthy as solve() without a basis.
[[nodiscard]] Solution solve(const LpModel& model, const Basis& warm,
                             const SolveOptions& options = {});

}  // namespace titan::lp
