#include "lp/basis_lu.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace titan::lp {

bool BasisLu::factorize(const SparseMatrix& a, const std::vector<int>& basis,
                        double pivot_tolerance, Deficiency* deficiency) {
  if (deficiency != nullptr) {
    deficiency->positions.clear();
    deficiency->rows.clear();
  }
  m_ = a.rows();
  assert(static_cast<int>(basis.size()) == m_);
  l_col_ptr_.assign(1, 0);
  l_rows_.clear();
  l_vals_.clear();
  u_col_ptr_.assign(1, 0);
  u_rows_.clear();
  u_vals_.clear();
  u_diag_.assign(static_cast<std::size_t>(m_), 0.0);
  pivot_row_of_.assign(static_cast<std::size_t>(m_), -1);
  row_perm_.assign(static_cast<std::size_t>(m_), -1);
  etas_.clear();

  // Factor sparse columns first: the unit slack/artificial columns pivot
  // without creating any fill, leaving a small structural kernel.
  col_order_.resize(static_cast<std::size_t>(m_));
  for (int k = 0; k < m_; ++k) col_order_[static_cast<std::size_t>(k)] = k;
  std::stable_sort(col_order_.begin(), col_order_.end(), [&](int x, int y) {
    const int cx = basis[static_cast<std::size_t>(x)];
    const int cy = basis[static_cast<std::size_t>(y)];
    return (a.col_end(cx) - a.col_begin(cx)) < (a.col_end(cy) - a.col_begin(cy));
  });

  // Dense workspaces reused across columns.
  std::vector<double> work(static_cast<std::size_t>(m_), 0.0);
  std::vector<int> touched;              // original rows with nonzero work
  std::vector<char> in_stack(static_cast<std::size_t>(m_), 0);
  std::vector<int> stack, stack_k;       // DFS state
  std::vector<int> topo;                 // pivot positions in dependency order

  for (int j = 0; j < m_; ++j) {
    const int col = basis[static_cast<std::size_t>(col_order_[static_cast<std::size_t>(j)])];

    // ---- Symbolic: reach of the column's rows through pivoted L columns.
    topo.clear();
    touched.clear();
    for (int k = a.col_begin(col); k < a.col_end(col); ++k) {
      const int r0 = a.row_index(k);
      if (in_stack[static_cast<std::size_t>(r0)]) continue;
      // Iterative DFS over original rows.
      stack.clear();
      stack_k.clear();
      stack.push_back(r0);
      stack_k.push_back(-1);
      in_stack[static_cast<std::size_t>(r0)] = 1;
      while (!stack.empty()) {
        const int r = stack.back();
        const int pk = row_perm_[static_cast<std::size_t>(r)];
        bool descended = false;
        if (pk >= 0) {
          int& cursor = stack_k.back();
          if (cursor < 0) cursor = l_col_ptr_[static_cast<std::size_t>(pk)];
          while (cursor < l_col_ptr_[static_cast<std::size_t>(pk) + 1]) {
            const int child = l_rows_[static_cast<std::size_t>(cursor)];
            ++cursor;
            if (!in_stack[static_cast<std::size_t>(child)]) {
              in_stack[static_cast<std::size_t>(child)] = 1;
              stack.push_back(child);
              stack_k.push_back(-1);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          // Post-order: pivoted rows go to topo, everything to touched.
          if (pk >= 0) topo.push_back(pk);
          touched.push_back(r);
          stack.pop_back();
          stack_k.pop_back();
        }
      }
    }
    // Post-order gives children before parents; eliminate in reverse
    // (ancestors first = increasing dependency order).
    std::reverse(topo.begin(), topo.end());
    std::sort(topo.begin(), topo.end());

    // ---- Numeric: scatter and eliminate.
    for (int k = a.col_begin(col); k < a.col_end(col); ++k)
      work[static_cast<std::size_t>(a.row_index(k))] = a.value(k);
    for (const int pk : topo) {
      const int pr = pivot_row_of_[static_cast<std::size_t>(pk)];
      const double xk = work[static_cast<std::size_t>(pr)];
      if (xk == 0.0) continue;
      for (int t = l_col_ptr_[static_cast<std::size_t>(pk)];
           t < l_col_ptr_[static_cast<std::size_t>(pk) + 1]; ++t)
        work[static_cast<std::size_t>(l_rows_[static_cast<std::size_t>(t)])] -=
            l_vals_[static_cast<std::size_t>(t)] * xk;
    }

    // ---- Pivot selection among not-yet-pivoted touched rows.
    int pivot = -1;
    double best = pivot_tolerance;
    for (const int r : touched) {
      if (row_perm_[static_cast<std::size_t>(r)] >= 0) continue;
      const double v = std::abs(work[static_cast<std::size_t>(r)]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (pivot < 0) {
      // Singular: clean up the workspace, then either bail (strict mode) or
      // — in diagnosis mode — record the failed basis position and skip the
      // column, factoring on through the independent remainder. The skipped
      // LU slot gets inert placeholders; the caller never solves with a
      // deficient factorization.
      for (const int r : touched) {
        work[static_cast<std::size_t>(r)] = 0.0;
        in_stack[static_cast<std::size_t>(r)] = 0;
      }
      if (deficiency == nullptr) return false;
      deficiency->positions.push_back(col_order_[static_cast<std::size_t>(j)]);
      u_col_ptr_.push_back(static_cast<int>(u_rows_.size()));
      l_col_ptr_.push_back(static_cast<int>(l_rows_.size()));
      u_diag_[static_cast<std::size_t>(j)] = 1.0;
      pivot_row_of_[static_cast<std::size_t>(j)] = -1;
      continue;
    }
    const double d = work[static_cast<std::size_t>(pivot)];

    // ---- Store U column (pivoted rows) and L column (unpivoted rows).
    for (const int r : touched) {
      const int pk = row_perm_[static_cast<std::size_t>(r)];
      const double v = work[static_cast<std::size_t>(r)];
      if (pk >= 0) {
        if (v != 0.0) {
          u_rows_.push_back(pk);
          u_vals_.push_back(v);
        }
      } else if (r != pivot && std::abs(v) > 0.0) {
        l_rows_.push_back(r);
        l_vals_.push_back(v / d);
      }
      work[static_cast<std::size_t>(r)] = 0.0;
      in_stack[static_cast<std::size_t>(r)] = 0;
    }
    u_col_ptr_.push_back(static_cast<int>(u_rows_.size()));
    l_col_ptr_.push_back(static_cast<int>(l_rows_.size()));
    u_diag_[static_cast<std::size_t>(j)] = d;
    pivot_row_of_[static_cast<std::size_t>(j)] = pivot;
    row_perm_[static_cast<std::size_t>(pivot)] = j;
  }
  if (deficiency != nullptr && deficiency->any()) {
    for (int r = 0; r < m_; ++r)
      if (row_perm_[static_cast<std::size_t>(r)] < 0) deficiency->rows.push_back(r);
    std::sort(deficiency->positions.begin(), deficiency->positions.end());
    return false;
  }
  return true;
}

void BasisLu::ftran(std::vector<double>& x) const {
  assert(static_cast<int>(x.size()) == m_);
  // Forward: apply L^{-1} in original row space.
  for (int k = 0; k < m_; ++k) {
    const double xk = x[static_cast<std::size_t>(pivot_row_of_[static_cast<std::size_t>(k)])];
    if (xk == 0.0) continue;
    for (int t = l_col_ptr_[static_cast<std::size_t>(k)];
         t < l_col_ptr_[static_cast<std::size_t>(k) + 1]; ++t)
      x[static_cast<std::size_t>(l_rows_[static_cast<std::size_t>(t)])] -=
          l_vals_[static_cast<std::size_t>(t)] * xk;
  }
  // Gather into pivot coordinates, then backward U solve.
  std::vector<double> y(static_cast<std::size_t>(m_));
  for (int k = 0; k < m_; ++k)
    y[static_cast<std::size_t>(k)] =
        x[static_cast<std::size_t>(pivot_row_of_[static_cast<std::size_t>(k)])];
  for (int k = m_ - 1; k >= 0; --k) {
    const double t = y[static_cast<std::size_t>(k)] / u_diag_[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(k)] = t;
    if (t == 0.0) continue;
    for (int q = u_col_ptr_[static_cast<std::size_t>(k)];
         q < u_col_ptr_[static_cast<std::size_t>(k) + 1]; ++q)
      y[static_cast<std::size_t>(u_rows_[static_cast<std::size_t>(q)])] -=
          u_vals_[static_cast<std::size_t>(q)] * t;
  }
  // Undo the column ordering: LU position k corresponds to basis position
  // col_order_[k].
  for (int k = 0; k < m_; ++k)
    x[static_cast<std::size_t>(col_order_[static_cast<std::size_t>(k)])] =
        y[static_cast<std::size_t>(k)];
  // Eta updates, oldest first: B = B0 E1 ... Ek, so
  // x = Ek^{-1} ... E1^{-1} B0^{-1} b.
  for (const auto& eta : etas_) {
    const double t = x[static_cast<std::size_t>(eta.pivot_pos)] / eta.pivot_value;
    if (t != 0.0) {
      for (const auto& [pos, v] : eta.others) x[static_cast<std::size_t>(pos)] -= v * t;
    }
    x[static_cast<std::size_t>(eta.pivot_pos)] = t;
  }
}

void BasisLu::btran(std::vector<double>& y) const {
  assert(static_cast<int>(y.size()) == m_);
  // Eta transposes, newest first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = y[static_cast<std::size_t>(it->pivot_pos)];
    for (const auto& [pos, v] : it->others) acc -= v * y[static_cast<std::size_t>(pos)];
    y[static_cast<std::size_t>(it->pivot_pos)] = acc / it->pivot_value;
  }
  // U^T forward solve in pivot coordinates (inputs gathered through the
  // column ordering: LU position k holds basis position col_order_[k]).
  std::vector<double> t(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    double acc = y[static_cast<std::size_t>(col_order_[static_cast<std::size_t>(k)])];
    for (int q = u_col_ptr_[static_cast<std::size_t>(k)];
         q < u_col_ptr_[static_cast<std::size_t>(k) + 1]; ++q)
      acc -= u_vals_[static_cast<std::size_t>(q)] *
             t[static_cast<std::size_t>(u_rows_[static_cast<std::size_t>(q)])];
    t[static_cast<std::size_t>(k)] = acc / u_diag_[static_cast<std::size_t>(k)];
  }
  // Scatter to original rows, then L^T backward pass.
  std::vector<double> w(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k)
    w[static_cast<std::size_t>(pivot_row_of_[static_cast<std::size_t>(k)])] =
        t[static_cast<std::size_t>(k)];
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = w[static_cast<std::size_t>(pivot_row_of_[static_cast<std::size_t>(k)])];
    for (int q = l_col_ptr_[static_cast<std::size_t>(k)];
         q < l_col_ptr_[static_cast<std::size_t>(k) + 1]; ++q)
      acc -= l_vals_[static_cast<std::size_t>(q)] *
             w[static_cast<std::size_t>(l_rows_[static_cast<std::size_t>(q)])];
    w[static_cast<std::size_t>(pivot_row_of_[static_cast<std::size_t>(k)])] = acc;
  }
  y = std::move(w);
}

bool BasisLu::update(int leaving_pos, const std::vector<double>& alpha,
                     double pivot_tolerance) {
  const double pivot = alpha[static_cast<std::size_t>(leaving_pos)];
  if (std::abs(pivot) < pivot_tolerance) return false;
  Eta eta;
  eta.pivot_pos = leaving_pos;
  eta.pivot_value = pivot;
  for (int i = 0; i < m_; ++i) {
    if (i == leaving_pos) continue;
    const double v = alpha[static_cast<std::size_t>(i)];
    if (v != 0.0) eta.others.emplace_back(i, v);
  }
  etas_.push_back(std::move(eta));
  return true;
}

}  // namespace titan::lp
