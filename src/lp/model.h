// Linear program builder.
//
// Minimal modelling layer replacing COIN-OR for this reproduction: a
// minimization LP over continuous variables with lower bounds at zero,
// general rows (<=, >=, =), and a triplet-based coefficient store. The
// Titan-Next formulation (Fig. 13) and the Locality-First baseline build
// their programs through this interface and hand them to lp::solve().
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "lp/sparse.h"

namespace titan::lp {

enum class Sense { kLe, kGe, kEq };

class LpModel {
 public:
  // Adds a variable with the given objective cost; returns its column index.
  // All variables are continuous with domain [0, +inf).
  int add_variable(double cost, std::string name = {});

  // Adds a row; returns its index.
  int add_constraint(Sense sense, double rhs, std::string name = {});

  // Adds `value` to coefficient (row, col); duplicates accumulate.
  void add_coefficient(int row, int col, double value);

  [[nodiscard]] int num_variables() const { return static_cast<int>(costs_.size()); }
  [[nodiscard]] int num_constraints() const { return static_cast<int>(senses_.size()); }

  [[nodiscard]] const std::vector<double>& costs() const { return costs_; }
  [[nodiscard]] const std::vector<Sense>& senses() const { return senses_; }
  [[nodiscard]] const std::vector<double>& rhs() const { return rhs_; }
  [[nodiscard]] const std::string& variable_name(int j) const {
    return var_names_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] const std::string& constraint_name(int i) const {
    return row_names_[static_cast<std::size_t>(i)];
  }

  // Materializes the coefficient matrix (rows x cols).
  [[nodiscard]] SparseMatrix matrix() const;

  // Objective value of a candidate point (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  // Max constraint violation of a candidate point; 0 when feasible.
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> costs_;
  std::vector<std::string> var_names_;
  std::vector<Sense> senses_;
  std::vector<double> rhs_;
  std::vector<std::string> row_names_;
  std::vector<SparseMatrix::Triplet> triplets_;
};

}  // namespace titan::lp
