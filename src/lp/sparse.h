// Compressed sparse column matrix used by the LP solver.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace titan::lp {

// Immutable CSC matrix. Built from triplets; duplicate entries are summed.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(int rows, int cols) : rows_(rows), cols_(cols), col_ptr_(cols + 1, 0) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return row_idx_.size(); }

  [[nodiscard]] int col_begin(int j) const { return col_ptr_[static_cast<std::size_t>(j)]; }
  [[nodiscard]] int col_end(int j) const { return col_ptr_[static_cast<std::size_t>(j) + 1]; }
  [[nodiscard]] int row_index(int k) const { return row_idx_[static_cast<std::size_t>(k)]; }
  [[nodiscard]] double value(int k) const { return values_[static_cast<std::size_t>(k)]; }

  // y += alpha * A(:, j), dense y.
  void axpy_column(int j, double alpha, std::vector<double>& y) const {
    for (int k = col_begin(j); k < col_end(j); ++k)
      y[static_cast<std::size_t>(row_index(k))] += alpha * value(k);
  }

  // dot(A(:, j), y).
  [[nodiscard]] double dot_column(int j, const std::vector<double>& y) const {
    double acc = 0.0;
    for (int k = col_begin(j); k < col_end(j); ++k)
      acc += value(k) * y[static_cast<std::size_t>(row_index(k))];
    return acc;
  }

  struct Triplet {
    int row;
    int col;
    double value;
  };
  static SparseMatrix from_triplets(int rows, int cols, std::vector<Triplet> triplets);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> col_ptr_;
  std::vector<int> row_idx_;
  std::vector<double> values_;
};

inline SparseMatrix SparseMatrix::from_triplets(int rows, int cols,
                                                std::vector<Triplet> triplets) {
  SparseMatrix m(rows, cols);
  // Count, prefix-sum, scatter; then compact duplicates per column.
  std::vector<int> count(static_cast<std::size_t>(cols), 0);
  for (const auto& t : triplets) ++count[static_cast<std::size_t>(t.col)];
  m.col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);
  for (int j = 0; j < cols; ++j)
    m.col_ptr_[static_cast<std::size_t>(j) + 1] =
        m.col_ptr_[static_cast<std::size_t>(j)] + count[static_cast<std::size_t>(j)];
  m.row_idx_.resize(triplets.size());
  m.values_.resize(triplets.size());
  std::vector<int> cursor(m.col_ptr_.begin(), m.col_ptr_.end() - 1);
  for (const auto& t : triplets) {
    const int pos = cursor[static_cast<std::size_t>(t.col)]++;
    m.row_idx_[static_cast<std::size_t>(pos)] = t.row;
    m.values_[static_cast<std::size_t>(pos)] = t.value;
  }
  // Merge duplicates within each column (sort by row, then sum runs).
  std::vector<int> new_ptr(static_cast<std::size_t>(cols) + 1, 0);
  std::vector<int> out_rows;
  std::vector<double> out_vals;
  out_rows.reserve(m.row_idx_.size());
  out_vals.reserve(m.values_.size());
  for (int j = 0; j < cols; ++j) {
    const int b = m.col_ptr_[static_cast<std::size_t>(j)];
    const int e = m.col_ptr_[static_cast<std::size_t>(j) + 1];
    std::vector<std::pair<int, double>> entries;
    entries.reserve(static_cast<std::size_t>(e - b));
    for (int k = b; k < e; ++k)
      entries.emplace_back(m.row_idx_[static_cast<std::size_t>(k)],
                           m.values_[static_cast<std::size_t>(k)]);
    std::sort(entries.begin(), entries.end());
    for (std::size_t k = 0; k < entries.size();) {
      int row = entries[k].first;
      double sum = 0.0;
      while (k < entries.size() && entries[k].first == row) sum += entries[k++].second;
      if (sum != 0.0) {
        out_rows.push_back(row);
        out_vals.push_back(sum);
      }
    }
    new_ptr[static_cast<std::size_t>(j) + 1] = static_cast<int>(out_rows.size());
  }
  m.col_ptr_ = std::move(new_ptr);
  m.row_idx_ = std::move(out_rows);
  m.values_ = std::move(out_vals);
  return m;
}

}  // namespace titan::lp
