#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

#include "lp/basis_lu.h"

namespace titan::lp {

std::string status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNumericalFailure: return "numerical-failure";
  }
  return "?";
}

namespace {

struct Tableau {
  SparseMatrix a;             // computational-form matrix (m x n_total)
  std::vector<double> cost;   // phase-2 costs per column
  std::vector<double> rhs;    // original rhs
  int n_structural = 0;
  int n_total = 0;
  std::vector<bool> artificial;    // per column
  std::vector<int> slack_of;       // per row; -1 for equality rows
  std::vector<int> artificial_of;  // per row; -1 when the slack is feasible
};

Tableau build_tableau(const LpModel& model) {
  Tableau t;
  const int m = model.num_constraints();
  const int n = model.num_variables();
  t.n_structural = n;
  t.rhs = model.rhs();
  t.slack_of.assign(static_cast<std::size_t>(m), -1);
  t.artificial_of.assign(static_cast<std::size_t>(m), -1);

  std::vector<SparseMatrix::Triplet> trips;
  const SparseMatrix structural = model.matrix();
  for (int j = 0; j < n; ++j)
    for (int k = structural.col_begin(j); k < structural.col_end(j); ++k)
      trips.push_back({structural.row_index(k), j, structural.value(k)});

  t.cost = model.costs();
  int col = n;
  // Slack / surplus columns.
  for (int i = 0; i < m; ++i) {
    const Sense s = model.senses()[static_cast<std::size_t>(i)];
    if (s == Sense::kLe) {
      trips.push_back({i, col, 1.0});
      t.slack_of[static_cast<std::size_t>(i)] = col;
      t.cost.push_back(0.0);
      ++col;
    } else if (s == Sense::kGe) {
      trips.push_back({i, col, -1.0});
      t.slack_of[static_cast<std::size_t>(i)] = col;
      t.cost.push_back(0.0);
      ++col;
    }
  }
  // Artificial columns where the slack cannot seed a feasible basis.
  for (int i = 0; i < m; ++i) {
    const Sense s = model.senses()[static_cast<std::size_t>(i)];
    const double b = t.rhs[static_cast<std::size_t>(i)];
    const bool slack_feasible = (s == Sense::kLe && b >= 0.0) || (s == Sense::kGe && b <= 0.0);
    if (!slack_feasible) {
      trips.push_back({i, col, b >= 0.0 ? 1.0 : -1.0});
      t.artificial_of[static_cast<std::size_t>(i)] = col;
      t.cost.push_back(0.0);
      ++col;
    }
  }
  t.n_total = col;
  t.artificial.assign(static_cast<std::size_t>(col), false);
  for (const int j : t.artificial_of)
    if (j >= 0) t.artificial[static_cast<std::size_t>(j)] = true;
  t.a = SparseMatrix::from_triplets(m, col, std::move(trips));
  return t;
}

// Maps a model-relative Basis onto this tableau's columns. Rejects (returns
// nullopt) on a row-count mismatch, an entry naming a column the model does
// not have, or a duplicated column — the dimension-mismatch fallbacks of
// the warm-start contract.
std::optional<std::vector<int>> map_warm_basis(const Tableau& t, int m, const Basis& warm) {
  if (static_cast<int>(warm.entries.size()) != m) return std::nullopt;
  std::vector<int> basis(static_cast<std::size_t>(m), -1);
  std::vector<bool> used(static_cast<std::size_t>(t.n_total), false);
  for (int i = 0; i < m; ++i) {
    const BasisEntry& e = warm.entries[static_cast<std::size_t>(i)];
    int col = -1;
    switch (e.kind) {
      case BasisEntry::Kind::kStructural:
        if (e.index >= 0 && e.index < t.n_structural) col = e.index;
        break;
      case BasisEntry::Kind::kSlack:
        if (e.index >= 0 && e.index < m) col = t.slack_of[static_cast<std::size_t>(e.index)];
        break;
      case BasisEntry::Kind::kArtificial:
        if (e.index >= 0 && e.index < m)
          col = t.artificial_of[static_cast<std::size_t>(e.index)];
        break;
    }
    if (col < 0 || used[static_cast<std::size_t>(col)]) return std::nullopt;
    used[static_cast<std::size_t>(col)] = true;
    basis[static_cast<std::size_t>(i)] = col;
  }
  return basis;
}

// The inverse of map_warm_basis: the final tableau basis back in
// model-relative terms, for the caller to seed the next solve with.
Basis export_basis(const Tableau& t, const std::vector<int>& basis) {
  // Column -> owning row for the non-structural columns.
  std::vector<int> row_of(static_cast<std::size_t>(t.n_total), -1);
  for (std::size_t i = 0; i < t.slack_of.size(); ++i) {
    if (t.slack_of[i] >= 0) row_of[static_cast<std::size_t>(t.slack_of[i])] = static_cast<int>(i);
    if (t.artificial_of[i] >= 0)
      row_of[static_cast<std::size_t>(t.artificial_of[i])] = static_cast<int>(i);
  }
  Basis out;
  out.entries.reserve(basis.size());
  for (const int j : basis) {
    BasisEntry e;
    if (j < t.n_structural) {
      e.kind = BasisEntry::Kind::kStructural;
      e.index = j;
    } else {
      e.kind = t.artificial[static_cast<std::size_t>(j)] ? BasisEntry::Kind::kArtificial
                                                         : BasisEntry::Kind::kSlack;
      e.index = row_of[static_cast<std::size_t>(j)];
    }
    out.entries.push_back(e);
  }
  return out;
}

// Runs the simplex from `basis`. Cold starts (warm == false) begin with the
// canonical slack/artificial basis and run phase 1 when artificials are
// present; warm starts skip phase 1 but *gate* on the seeded basis being
// factorizable and primal-feasible, reporting kNumericalFailure otherwise
// so the caller can rerun cold.
// Seconds elapsed since `t0` (steady clock); the one timing idiom the
// phase instrumentation below uses.
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

Solution solve_from(const LpModel& model, const Tableau& t, std::vector<int> basis, bool warm,
                    const SolveOptions& options) {
  Solution sol;
  sol.warm_started = warm;
  const int m = model.num_constraints();

  // Candidate-column pruning applies to warm solves only: the cold path
  // (including the cold fallback after a rejected warm attempt) always
  // prices every column, so a mask can never make it diverge from the
  // historical pivot sequence. A mask not sized to this model's structural
  // column count is stale — ignore it.
  const std::vector<std::uint8_t>* candidate_mask = nullptr;
  if (warm && static_cast<int>(options.candidate_mask.size()) == t.n_structural)
    candidate_mask = &options.candidate_mask;

  std::vector<bool> in_basis(static_cast<std::size_t>(t.n_total), false);
  for (const int j : basis) in_basis[static_cast<std::size_t>(j)] = true;

  // Every LU factorization is counted and its wall time accumulated —
  // the refactorization share of the phase-timing breakdown.
  const auto timed_factorize = [&](BasisLu& lu_) {
    const auto f0 = std::chrono::steady_clock::now();
    const bool ok = lu_.factorize(t.a, basis, options.pivot_tol);
    sol.refactor_seconds += seconds_since(f0);
    ++sol.refactorizations;
    return ok;
  };

  BasisLu lu;
  if (!timed_factorize(lu)) {
    sol.status = SolveStatus::kNumericalFailure;
    return sol;
  }

  // Basic values x_B = B^{-1} b.
  std::vector<double> xb = t.rhs;
  lu.ftran(xb);

  // Classify the primal damage a warm seed carries. Two kinds survive a
  // basis transfer: hot artificials (rows the transfer never covered — the
  // fresh tail of a rolling horizon) and negative basic values (rhs drift:
  // a capacity cut, a drained DC, a transferred link-peak variable sitting
  // below the shifted window's new peak). Which repair path runs — and
  // whether the warm_repair_limit gate applies — is decided at the phase-1
  // dispatch below.
  int artificials_hot = 0;
  int negative_rows = 0;
  if (warm) {
    for (int i = 0; i < m; ++i) {
      const double v = xb[static_cast<std::size_t>(i)];
      if (v < -options.feasibility_tol)
        ++negative_rows;
      else if (t.artificial[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])] &&
               v > 1e-6)
        ++artificials_hot;
    }
  }

  // Phase costs.
  std::vector<double> phase1_cost(static_cast<std::size_t>(t.n_total), 0.0);
  for (int j = 0; j < t.n_total; ++j)
    if (t.artificial[static_cast<std::size_t>(j)]) phase1_cost[static_cast<std::size_t>(j)] = 1.0;

  auto run_phase = [&](const std::vector<double>& cost, bool block_artificials,
                       const std::vector<std::uint8_t>* mask,
                       int& iteration_counter) -> SolveStatus {
    int degenerate_streak = 0;
    // Remaining pivots in the current Bland's-rule burst (0 = Dantzig).
    // The burst is armed when the degenerate streak reaches bland_trigger
    // and disarmed by either a nondegenerate pivot or bland_burst pivots
    // without one — the bounded anti-cycling safeguard. Pivot selection is
    // identical to the unbounded rule until a burst actually exhausts.
    int bland_left = 0;
    std::vector<double> y(static_cast<std::size_t>(m));
    std::vector<double> alpha(static_cast<std::size_t>(m));
    // Active candidate set under pruning: a copy of the mask so that
    // verification sweeps can promote columns into it. Non-structural
    // columns (slacks) are always active.
    std::vector<std::uint8_t> active;
    if (mask) {
      active = *mask;
      int pruned = 0;
      for (const std::uint8_t keep : active)
        if (!keep) ++pruned;
      sol.pruned_columns = pruned;
    }
    const auto masked_out = [&](int j) {
      return mask && j < t.n_structural && !active[static_cast<std::size_t>(j)];
    };
    // Partial (cyclic) pricing: scan a window of columns per iteration,
    // remembering where we stopped. A full fruitless sweep proves
    // optimality. Bland mode falls back to a full first-negative scan.
    int scan_cursor = 0;
    const int window =
        std::max(512, t.n_total / 16);

    while (true) {
      if (iteration_counter >= options.max_iterations) return SolveStatus::kIterationLimit;

      // BTRAN: y = B^{-T} c_B.
      for (int i = 0; i < m; ++i)
        y[static_cast<std::size_t>(i)] = cost[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])];
      lu.btran(y);

      // Pricing.
      if (bland_left == 0 && degenerate_streak >= options.bland_trigger) {
        bland_left = options.bland_burst;
        degenerate_streak = 0;
      }
      const bool use_bland = bland_left > 0;
      int entering = -1;
      double best_dj = -options.optimality_tol;
      auto price = [&](int j) {
        if (in_basis[static_cast<std::size_t>(j)]) return false;
        if (block_artificials && t.artificial[static_cast<std::size_t>(j)]) return false;
        if (masked_out(j)) return false;
        const double dj = cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y);
        if (dj < best_dj) {
          best_dj = dj;
          entering = j;
          return true;
        }
        return false;
      };
      if (use_bland) {
        for (int j = 0; j < t.n_total; ++j) {
          if (in_basis[static_cast<std::size_t>(j)]) continue;
          if (block_artificials && t.artificial[static_cast<std::size_t>(j)]) continue;
          if (masked_out(j)) continue;
          const double dj = cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y);
          if (dj < -options.optimality_tol) {
            entering = j;
            break;
          }
        }
      } else {
        int scanned = 0;
        while (scanned < t.n_total) {
          const int stop = std::min(scan_cursor + window, t.n_total);
          for (int j = scan_cursor; j < stop; ++j) price(j);
          scanned += stop - scan_cursor;
          scan_cursor = stop == t.n_total ? 0 : stop;
          if (entering >= 0) break;  // found an attractive column in window
        }
      }
      if (entering < 0 && mask) {
        // Verification sweep: the active set priced clean, but optimality
        // holds only over every column. Price the pruned columns with the
        // same y; the most attractive (if any) is promoted into the active
        // set and pricing continues, so pruning can never change the
        // optimum — only the order columns are considered in.
        for (int j = 0; j < t.n_structural; ++j) {
          if (active[static_cast<std::size_t>(j)] || in_basis[static_cast<std::size_t>(j)])
            continue;
          const double dj = cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y);
          if (dj < best_dj) {
            best_dj = dj;
            entering = j;
          }
        }
        if (entering >= 0) {
          active[static_cast<std::size_t>(entering)] = 1;
          ++sol.promoted_columns;
        }
      }
      if (entering < 0) return SolveStatus::kOptimal;

      // FTRAN the entering column.
      std::fill(alpha.begin(), alpha.end(), 0.0);
      t.a.axpy_column(entering, 1.0, alpha);
      lu.ftran(alpha);

      // Ratio test.
      int leaving = -1;
      double theta = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m; ++i) {
        const double ai = alpha[static_cast<std::size_t>(i)];
        if (ai > options.pivot_tol) {
          const double ratio =
              std::max(0.0, xb[static_cast<std::size_t>(i)]) / ai;
          if (ratio < theta - options.feasibility_tol ||
              (use_bland && ratio < theta + options.feasibility_tol && leaving >= 0 &&
               basis[static_cast<std::size_t>(i)] < basis[static_cast<std::size_t>(leaving)])) {
            theta = ratio;
            leaving = i;
          }
        }
      }
      if (leaving < 0) return SolveStatus::kUnbounded;

      // Stall accounting feeds both the anti-cycling policy and the
      // surfaced counters. A nondegenerate step clears the streak *and*
      // any armed burst (the stall is broken); a degenerate step either
      // spends burst budget or grows the streak toward the trigger.
      if (use_bland) ++sol.bland_pivots;
      if (theta <= options.feasibility_tol) {
        ++sol.stall_pivots;
        if (use_bland)
          --bland_left;
        else
          ++degenerate_streak;
      } else {
        degenerate_streak = 0;
        bland_left = 0;
      }

      // Apply the pivot.
      for (int i = 0; i < m; ++i) xb[static_cast<std::size_t>(i)] -= theta * alpha[static_cast<std::size_t>(i)];
      xb[static_cast<std::size_t>(leaving)] = theta;
      in_basis[static_cast<std::size_t>(basis[static_cast<std::size_t>(leaving)])] = false;
      in_basis[static_cast<std::size_t>(entering)] = true;
      basis[static_cast<std::size_t>(leaving)] = entering;
      ++iteration_counter;

      const bool updated = lu.update(leaving, alpha, options.pivot_tol);
      if (!updated || lu.eta_count() >= options.refactor_interval) {
        if (!timed_factorize(lu)) return SolveStatus::kNumericalFailure;
        xb = t.rhs;
        lu.ftran(xb);
      }
    }
  };

  // Feasibility restoration for warm seeds: a composite phase 1 that
  // minimizes total primal infeasibility — basic artificials above zero
  // (cost +1) and negative basic values (cost -1) — with the piecewise
  // cost recomputed every iteration. The ratio test admits both blocker
  // kinds: a nonnegative basic dropping to zero, and a negative basic
  // *rising* to zero. Runs only on the warm path (the cold pivot sequence
  // stays byte-for-byte what it always was); any stall or numerical issue
  // reports failure and the caller falls back to a cold solve.
  auto run_restoration = [&](int& iteration_counter) -> bool {
    std::vector<double> cb(static_cast<std::size_t>(m));
    std::vector<double> y(static_cast<std::size_t>(m));
    std::vector<double> alpha(static_cast<std::size_t>(m));
    const int cap = std::min(options.max_iterations, iteration_counter + 2 * m + 100);
    // Same cyclic partial pricing as run_phase: scan a window per
    // iteration, remember the cursor; a full fruitless sweep proves there
    // is no improving column.
    int scan_cursor = 0;
    const int window = std::max(512, t.n_total / 16);
    while (true) {
      bool infeasible = false;
      for (int i = 0; i < m; ++i) {
        const int j = basis[static_cast<std::size_t>(i)];
        const double v = xb[static_cast<std::size_t>(i)];
        double c = 0.0;
        if (t.artificial[static_cast<std::size_t>(j)] && v > 1e-6) {
          c = 1.0;
          infeasible = true;
        } else if (v < -options.feasibility_tol) {
          c = -1.0;
          infeasible = true;
        }
        cb[static_cast<std::size_t>(i)] = c;
      }
      if (!infeasible) return true;
      if (iteration_counter >= cap) return false;

      y = cb;
      lu.btran(y);
      int entering = -1;
      double best = -options.optimality_tol;
      int scanned = 0;
      while (scanned < t.n_total) {
        const int stop = std::min(scan_cursor + window, t.n_total);
        for (int j = scan_cursor; j < stop; ++j) {
          if (in_basis[static_cast<std::size_t>(j)] || t.artificial[static_cast<std::size_t>(j)])
            continue;
          const double dj = -t.a.dot_column(j, y);
          if (dj < best) {
            best = dj;
            entering = j;
          }
        }
        scanned += stop - scan_cursor;
        scan_cursor = stop == t.n_total ? 0 : stop;
        if (entering >= 0) break;
      }
      if (entering < 0) return false;  // stalled while still infeasible

      std::fill(alpha.begin(), alpha.end(), 0.0);
      t.a.axpy_column(entering, 1.0, alpha);
      lu.ftran(alpha);

      int leaving = -1;
      double theta = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m; ++i) {
        const double ai = alpha[static_cast<std::size_t>(i)];
        const double v = xb[static_cast<std::size_t>(i)];
        double cand = -1.0;
        if (v >= -options.feasibility_tol && ai > options.pivot_tol)
          cand = std::max(0.0, v) / ai;
        else if (v < -options.feasibility_tol && ai < -options.pivot_tol)
          cand = v / ai;  // negative basic rising to zero
        if (cand >= 0.0 && cand < theta) {
          theta = cand;
          leaving = i;
        }
      }
      if (leaving < 0) return false;

      for (int i = 0; i < m; ++i)
        xb[static_cast<std::size_t>(i)] -= theta * alpha[static_cast<std::size_t>(i)];
      xb[static_cast<std::size_t>(leaving)] = theta;
      in_basis[static_cast<std::size_t>(basis[static_cast<std::size_t>(leaving)])] = false;
      in_basis[static_cast<std::size_t>(entering)] = true;
      basis[static_cast<std::size_t>(leaving)] = entering;
      ++iteration_counter;

      const bool updated = lu.update(leaving, alpha, options.pivot_tol);
      if (!updated || lu.eta_count() >= options.refactor_interval) {
        if (!timed_factorize(lu)) return false;
        xb = t.rhs;
        lu.ftran(xb);
      }
    }
  };

  // Dual-feasibility probe for a warm seed: one BTRAN plus a full pricing
  // pass with the phase-2 costs. True iff no nonbasic non-artificial
  // column is attractive — exactly the state a previously *optimal* basis
  // is left in by rhs-side changes (capacity cuts, bound shifts), which is
  // why disturbance-forced replans are the dual loop's target.
  const auto dual_feasible = [&]() -> bool {
    std::vector<double> y(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
      y[static_cast<std::size_t>(i)] =
          t.cost[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])];
    lu.btran(y);
    for (int j = 0; j < t.n_total; ++j) {
      if (in_basis[static_cast<std::size_t>(j)] || t.artificial[static_cast<std::size_t>(j)])
        continue;
      if (t.cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y) < -options.optimality_tol)
        return false;
    }
    return true;
  };

  // Dual simplex: from a dual-feasible basis, drive the negative basics
  // out while keeping every reduced cost nonnegative. Leaving row = most
  // negative basic value; entering column = the dual ratio test's minimum
  // d_j / (-alpha_rj) over nonbasic non-artificial columns with
  // alpha_rj < -pivot_tol (ascending-j scan, so ties go to the smallest
  // index — deterministic and anti-cycling in the Bland sense). Terminates
  // kOptimal once primal-feasible (phase 2 then verifies and polishes).
  // No eligible entering column means the LP is primal infeasible *or*
  // numerics drifted — either way the conservative answer is
  // kNumericalFailure so the caller re-solves cold and the cold path
  // delivers the authoritative status.
  auto run_dual = [&](int& iteration_counter) -> SolveStatus {
    std::vector<double> y(static_cast<std::size_t>(m));
    std::vector<double> rho(static_cast<std::size_t>(m));
    std::vector<double> alpha(static_cast<std::size_t>(m));
    // Damage-proportional repair budget, capped at ~m. A dual pivot costs
    // a multiple of a primal one (two BTRANs plus a full-width entering
    // scan), and primal infeasibility is not monotone under dual pivots —
    // measured on the plan LPs, repairs that converge do so within ~160
    // pivots per damaged row (budgeted at 200), while walks past that are
    // wandering the polytope and cost multiples of the cold solve they
    // cannot avoid anyway. Fail the warm attempt at the budget and let
    // the caller fall back. The global max_iterations stays the hard cap
    // and keeps its own (non-falling-back) status.
    const int budget = std::min(options.max_iterations,
                                iteration_counter +
                                    std::min(m + 100, std::max(64, 200 * negative_rows)));
    while (true) {
      if (iteration_counter >= options.max_iterations) return SolveStatus::kIterationLimit;
      if (iteration_counter >= budget) return SolveStatus::kNumericalFailure;

      // Leaving row: most negative basic value (ties: smallest row).
      int leaving = -1;
      double most_negative = -options.feasibility_tol;
      for (int i = 0; i < m; ++i) {
        if (xb[static_cast<std::size_t>(i)] < most_negative) {
          most_negative = xb[static_cast<std::size_t>(i)];
          leaving = i;
        }
      }
      if (leaving < 0) return SolveStatus::kOptimal;  // primal feasible

      // rho = B^{-T} e_r gives the leaving row of B^{-1}A; y prices d_j.
      std::fill(rho.begin(), rho.end(), 0.0);
      rho[static_cast<std::size_t>(leaving)] = 1.0;
      lu.btran(rho);
      for (int i = 0; i < m; ++i)
        y[static_cast<std::size_t>(i)] =
            t.cost[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])];
      lu.btran(y);

      int entering = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int j = 0; j < t.n_total; ++j) {
        if (in_basis[static_cast<std::size_t>(j)] || t.artificial[static_cast<std::size_t>(j)])
          continue;
        const double arj = t.a.dot_column(j, rho);
        if (arj >= -options.pivot_tol) continue;
        const double dj =
            std::max(0.0, t.cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y));
        const double ratio = dj / (-arj);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          entering = j;
        }
      }
      if (entering < 0) return SolveStatus::kNumericalFailure;

      std::fill(alpha.begin(), alpha.end(), 0.0);
      t.a.axpy_column(entering, 1.0, alpha);
      lu.ftran(alpha);
      // The FTRAN'd pivot element must agree in sign with the BTRAN'd row
      // scan; disagreement means the factorization has degraded.
      if (alpha[static_cast<std::size_t>(leaving)] >= -options.pivot_tol)
        return SolveStatus::kNumericalFailure;

      const double theta =
          xb[static_cast<std::size_t>(leaving)] / alpha[static_cast<std::size_t>(leaving)];
      for (int i = 0; i < m; ++i)
        xb[static_cast<std::size_t>(i)] -= theta * alpha[static_cast<std::size_t>(i)];
      xb[static_cast<std::size_t>(leaving)] = theta;
      in_basis[static_cast<std::size_t>(basis[static_cast<std::size_t>(leaving)])] = false;
      in_basis[static_cast<std::size_t>(entering)] = true;
      basis[static_cast<std::size_t>(leaving)] = entering;
      ++iteration_counter;

      const bool updated = lu.update(leaving, alpha, options.pivot_tol);
      if (!updated || lu.eta_count() >= options.refactor_interval) {
        if (!timed_factorize(lu)) return SolveStatus::kNumericalFailure;
        xb = t.rhs;
        lu.ftran(xb);
      }
    }
  };

  // ---- Phase 1. Warm seeds never run the classic artificial phase 1: a
  // clean seed skips straight to phase 2; a damaged one is repaired by the
  // dual simplex when eligible (kAuto/kDual, no uncovered rows, seed
  // dual-feasible — the disturbance-replan shape), else by the primal
  // restoration pass under the warm_repair_limit gate. Any failure returns
  // kNumericalFailure and the caller falls back cold.
  if (warm && (artificials_hot > 0 || negative_rows > 0)) {
    bool repaired = false;
    // Heavy rhs damage disqualifies the dual path outright (before paying
    // for the dual-feasibility probe): with more than ~1.5% of the rows
    // negative the repair walk measurably outruns any useful budget, so
    // entering would only burn pivots before the same cold fallback. The
    // threshold mirrors warm_repair_limit's spirit — repairs must be
    // small relative to the model to pay off — but is far stricter, dual
    // pivots being far pricier than restoration ones.
    const bool dual_damage_ok = negative_rows <= std::max(32, m / 64);
    if (options.pivot_mode != PivotMode::kPrimal && artificials_hot == 0 && dual_damage_ok &&
        dual_feasible()) {
      const auto d_start = std::chrono::steady_clock::now();
      const SolveStatus ds = run_dual(sol.dual_iterations);
      sol.phase1_seconds += seconds_since(d_start);
      sol.iterations += sol.dual_iterations;
      if (ds != SolveStatus::kOptimal) {
        // The basis has mutated mid-loop; the only safe continuation is the
        // cold fallback, whatever the pivot mode.
        sol.status = ds == SolveStatus::kIterationLimit ? ds : SolveStatus::kNumericalFailure;
        return sol;
      }
      repaired = true;
    }
    if (!repaired) {
      // kDual insists on the dual loop or nothing; a seed it cannot take
      // (uncovered rows, dual infeasibility) fails the warm attempt.
      // Restoration repair is only worth bounded damage: past
      // warm_repair_limit of the rows, repair work exceeds a cold phase 1
      // (measured on the plan LPs), so reject and let the caller cold-solve.
      if (options.pivot_mode == PivotMode::kDual ||
          artificials_hot + negative_rows > options.warm_repair_limit * m) {
        sol.status = SolveStatus::kNumericalFailure;
        return sol;
      }
      const auto p1_start = std::chrono::steady_clock::now();
      const bool restored = run_restoration(sol.phase1_iterations);
      sol.phase1_seconds += seconds_since(p1_start);
      sol.iterations += sol.phase1_iterations;
      if (!restored) {
        sol.status = SolveStatus::kNumericalFailure;
        return sol;
      }
    }
  }
  bool need_phase1 = false;
  if (!warm)
    for (const int j : basis)
      if (t.artificial[static_cast<std::size_t>(j)]) need_phase1 = true;
  if (need_phase1) {
    const auto p1_start = std::chrono::steady_clock::now();
    const SolveStatus s1 = run_phase(phase1_cost, /*block_artificials=*/false,
                                     /*mask=*/nullptr, sol.phase1_iterations);
    sol.phase1_seconds += seconds_since(p1_start);
    sol.iterations += sol.phase1_iterations;
    if (s1 == SolveStatus::kIterationLimit || s1 == SolveStatus::kNumericalFailure) {
      sol.status = s1;
      return sol;
    }
    double infeas = 0.0;
    for (int i = 0; i < m; ++i)
      if (t.artificial[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])])
        infeas += std::max(0.0, xb[static_cast<std::size_t>(i)]);
    if (infeas > 1e-6) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
  }

  // ---- Phase 2 (artificials blocked from re-entering).
  int phase2_iters = 0;
  const auto p2_start = std::chrono::steady_clock::now();
  const SolveStatus s2 = run_phase(t.cost, /*block_artificials=*/true, candidate_mask, phase2_iters);
  sol.phase2_seconds += seconds_since(p2_start);
  sol.iterations += phase2_iters;
  if (s2 != SolveStatus::kOptimal) {
    sol.status = s2;
    return sol;
  }

  // An artificial that stayed basic at zero through phase 2 can drift
  // positive during later pivots (the ratio test only guards basics from
  // going *negative*), which would mean the "optimal" point violates the
  // artificial's row. Refuse to report such a point: a warm solve falls
  // back to the cold path, a cold solve fails loudly rather than hand the
  // caller a plan that silently under-serves an equality row.
  for (int i = 0; i < m; ++i) {
    if (t.artificial[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])] &&
        xb[static_cast<std::size_t>(i)] > 1e-6) {
      sol.status = SolveStatus::kNumericalFailure;
      return sol;
    }
  }

  // Extract structural solution.
  sol.x.assign(static_cast<std::size_t>(t.n_structural), 0.0);
  for (int i = 0; i < m; ++i) {
    const int j = basis[static_cast<std::size_t>(i)];
    if (j < t.n_structural)
      sol.x[static_cast<std::size_t>(j)] = std::max(0.0, xb[static_cast<std::size_t>(i)]);
  }
  sol.objective = model.objective_value(sol.x);
  sol.status = SolveStatus::kOptimal;
  sol.basis = export_basis(t, basis);
  // Row duals y = B^{-T} c_B at the optimal basis, for callers that seed
  // the next solve's candidate mask from this one's reduced costs.
  sol.duals.assign(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i)
    sol.duals[static_cast<std::size_t>(i)] =
        t.cost[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])];
  lu.btran(sol.duals);
  return sol;
}

// Cold initial basis: feasible slack where possible, else the artificial
// allocated for the row.
std::vector<int> cold_basis(const Tableau& t, int m) {
  std::vector<int> basis(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const int slack = t.slack_of[static_cast<std::size_t>(i)];
    const int artificial = t.artificial_of[static_cast<std::size_t>(i)];
    basis[static_cast<std::size_t>(i)] = artificial >= 0 ? artificial : slack;
  }
  return basis;
}

}  // namespace

Solution solve(const LpModel& model, const SolveOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  const Tableau t = build_tableau(model);
  const int m = model.num_constraints();

  Solution sol = solve_from(model, t, cold_basis(t, m), /*warm=*/false, options);
  sol.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start).count();
  if (options.verbose)
    std::printf("[lp] %d rows, %d cols, %d iters (%d phase1), obj=%.6g, %.2fs\n", m, t.n_total,
                sol.iterations, sol.phase1_iterations, sol.objective, sol.solve_seconds);
  return sol;
}

Solution solve(const LpModel& model, const Basis& warm, const SolveOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  const Tableau t = build_tableau(model);
  const int m = model.num_constraints();

  Solution sol;
  sol.status = SolveStatus::kNumericalFailure;
  if (auto mapped = map_warm_basis(t, m, warm)) {
    // Structural-rank repair: a transferred basis can be singular when the
    // entries that used to pivot some rows did not survive the transfer
    // (which rows those are is invisible at the label level). Diagnose with
    // the LU, swap each failed position for the slack/artificial of an
    // unpivoted row, and retry; two rounds cover the cascade where a repair
    // unblocks a previously-masked dependency.
    for (int round = 0; round < 2; ++round) {
      BasisLu probe;
      BasisLu::Deficiency def;
      if (probe.factorize(t.a, *mapped, options.pivot_tol, &def) || !def.any()) break;
      bool repaired = true;
      for (std::size_t k = 0; k < def.positions.size() && repaired; ++k) {
        const int row = def.rows[k];
        const int unit = t.slack_of[static_cast<std::size_t>(row)] >= 0
                             ? t.slack_of[static_cast<std::size_t>(row)]
                             : t.artificial_of[static_cast<std::size_t>(row)];
        repaired = unit >= 0;
        if (repaired) (*mapped)[static_cast<std::size_t>(def.positions[k])] = unit;
      }
      if (!repaired) break;
    }
    sol = solve_from(model, t, std::move(*mapped), /*warm=*/true, options);
  }
  // Any warm failure — unmappable basis, singular factorization, infeasible
  // seed, or numerical trouble mid-phase-2 — falls back to the cold path,
  // reusing the tableau already built above.
  if (sol.status == SolveStatus::kNumericalFailure) {
    sol = solve_from(model, t, cold_basis(t, m), /*warm=*/false, options);
    sol.solve_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start).count();
    return sol;
  }
  sol.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start).count();
  if (options.verbose)
    std::printf("[lp] warm: %d rows, %d cols, %d iters, obj=%.6g, %.2fs\n", m, t.n_total,
                sol.iterations, sol.objective, sol.solve_seconds);
  return sol;
}

}  // namespace titan::lp
