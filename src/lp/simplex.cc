#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "lp/basis_lu.h"

namespace titan::lp {

std::string status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNumericalFailure: return "numerical-failure";
  }
  return "?";
}

namespace {

struct Tableau {
  SparseMatrix a;             // computational-form matrix (m x n_total)
  std::vector<double> cost;   // phase-2 costs per column
  std::vector<double> rhs;    // original rhs
  int n_structural = 0;
  int n_total = 0;
  std::vector<bool> artificial;  // per column
};

Tableau build_tableau(const LpModel& model) {
  Tableau t;
  const int m = model.num_constraints();
  const int n = model.num_variables();
  t.n_structural = n;
  t.rhs = model.rhs();

  std::vector<SparseMatrix::Triplet> trips;
  const SparseMatrix structural = model.matrix();
  for (int j = 0; j < n; ++j)
    for (int k = structural.col_begin(j); k < structural.col_end(j); ++k)
      trips.push_back({structural.row_index(k), j, structural.value(k)});

  t.cost = model.costs();
  int col = n;
  // Slack / surplus columns.
  std::vector<int> slack_col(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const Sense s = model.senses()[static_cast<std::size_t>(i)];
    if (s == Sense::kLe) {
      trips.push_back({i, col, 1.0});
      slack_col[static_cast<std::size_t>(i)] = col;
      t.cost.push_back(0.0);
      ++col;
    } else if (s == Sense::kGe) {
      trips.push_back({i, col, -1.0});
      slack_col[static_cast<std::size_t>(i)] = col;
      t.cost.push_back(0.0);
      ++col;
    }
  }
  // Artificial columns where the slack cannot seed a feasible basis.
  for (int i = 0; i < m; ++i) {
    const Sense s = model.senses()[static_cast<std::size_t>(i)];
    const double b = t.rhs[static_cast<std::size_t>(i)];
    const bool slack_feasible = (s == Sense::kLe && b >= 0.0) || (s == Sense::kGe && b <= 0.0);
    if (!slack_feasible) {
      trips.push_back({i, col, b >= 0.0 ? 1.0 : -1.0});
      t.cost.push_back(0.0);
      ++col;
    }
  }
  t.n_total = col;
  t.artificial.assign(static_cast<std::size_t>(col), false);
  t.a = SparseMatrix::from_triplets(m, col, std::move(trips));
  return t;
}

}  // namespace

Solution solve(const LpModel& model, const SolveOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  Solution sol;
  const int m = model.num_constraints();

  Tableau t = build_tableau(model);

  // Initial basis: feasible slack where possible, else the artificial
  // allocated for the row (columns after slacks, in row order).
  std::vector<int> basis(static_cast<std::size_t>(m), -1);
  {
    // Recover per-row slack/artificial columns by scanning unit-ish columns.
    // Build from the same construction order as build_tableau.
    int col = model.num_variables();
    std::vector<int> slack_of(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i) {
      const Sense s = model.senses()[static_cast<std::size_t>(i)];
      if (s != Sense::kEq) slack_of[static_cast<std::size_t>(i)] = col++;
    }
    for (int i = 0; i < m; ++i) {
      const Sense s = model.senses()[static_cast<std::size_t>(i)];
      const double b = t.rhs[static_cast<std::size_t>(i)];
      const bool slack_feasible =
          (s == Sense::kLe && b >= 0.0) || (s == Sense::kGe && b <= 0.0);
      if (slack_feasible) {
        basis[static_cast<std::size_t>(i)] = slack_of[static_cast<std::size_t>(i)];
      } else {
        basis[static_cast<std::size_t>(i)] = col;
        t.artificial[static_cast<std::size_t>(col)] = true;
        ++col;
      }
    }
  }

  std::vector<bool> in_basis(static_cast<std::size_t>(t.n_total), false);
  for (const int j : basis) in_basis[static_cast<std::size_t>(j)] = true;

  BasisLu lu;
  if (!lu.factorize(t.a, basis, options.pivot_tol)) {
    sol.status = SolveStatus::kNumericalFailure;
    return sol;
  }

  // Basic values x_B = B^{-1} b.
  std::vector<double> xb = t.rhs;
  lu.ftran(xb);

  // Phase costs.
  std::vector<double> phase1_cost(static_cast<std::size_t>(t.n_total), 0.0);
  for (int j = 0; j < t.n_total; ++j)
    if (t.artificial[static_cast<std::size_t>(j)]) phase1_cost[static_cast<std::size_t>(j)] = 1.0;

  auto run_phase = [&](const std::vector<double>& cost, bool block_artificials,
                       int& iteration_counter) -> SolveStatus {
    int degenerate_streak = 0;
    std::vector<double> y(static_cast<std::size_t>(m));
    std::vector<double> alpha(static_cast<std::size_t>(m));
    // Partial (cyclic) pricing: scan a window of columns per iteration,
    // remembering where we stopped. A full fruitless sweep proves
    // optimality. Bland mode falls back to a full first-negative scan.
    int scan_cursor = 0;
    const int window =
        std::max(512, t.n_total / 16);

    while (true) {
      if (iteration_counter >= options.max_iterations) return SolveStatus::kIterationLimit;

      // BTRAN: y = B^{-T} c_B.
      for (int i = 0; i < m; ++i)
        y[static_cast<std::size_t>(i)] = cost[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])];
      lu.btran(y);

      // Pricing.
      const bool use_bland = degenerate_streak >= options.bland_trigger;
      int entering = -1;
      double best_dj = -options.optimality_tol;
      auto price = [&](int j) {
        if (in_basis[static_cast<std::size_t>(j)]) return false;
        if (block_artificials && t.artificial[static_cast<std::size_t>(j)]) return false;
        const double dj = cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y);
        if (dj < best_dj) {
          best_dj = dj;
          entering = j;
          return true;
        }
        return false;
      };
      if (use_bland) {
        for (int j = 0; j < t.n_total; ++j) {
          if (in_basis[static_cast<std::size_t>(j)]) continue;
          if (block_artificials && t.artificial[static_cast<std::size_t>(j)]) continue;
          const double dj = cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y);
          if (dj < -options.optimality_tol) {
            entering = j;
            break;
          }
        }
      } else {
        int scanned = 0;
        while (scanned < t.n_total) {
          const int stop = std::min(scan_cursor + window, t.n_total);
          for (int j = scan_cursor; j < stop; ++j) price(j);
          scanned += stop - scan_cursor;
          scan_cursor = stop == t.n_total ? 0 : stop;
          if (entering >= 0) break;  // found an attractive column in window
        }
      }
      if (entering < 0) return SolveStatus::kOptimal;

      // FTRAN the entering column.
      std::fill(alpha.begin(), alpha.end(), 0.0);
      t.a.axpy_column(entering, 1.0, alpha);
      lu.ftran(alpha);

      // Ratio test.
      int leaving = -1;
      double theta = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m; ++i) {
        const double ai = alpha[static_cast<std::size_t>(i)];
        if (ai > options.pivot_tol) {
          const double ratio =
              std::max(0.0, xb[static_cast<std::size_t>(i)]) / ai;
          if (ratio < theta - options.feasibility_tol ||
              (use_bland && ratio < theta + options.feasibility_tol && leaving >= 0 &&
               basis[static_cast<std::size_t>(i)] < basis[static_cast<std::size_t>(leaving)])) {
            theta = ratio;
            leaving = i;
          }
        }
      }
      if (leaving < 0) return SolveStatus::kUnbounded;

      degenerate_streak = (theta <= options.feasibility_tol) ? degenerate_streak + 1 : 0;

      // Apply the pivot.
      for (int i = 0; i < m; ++i) xb[static_cast<std::size_t>(i)] -= theta * alpha[static_cast<std::size_t>(i)];
      xb[static_cast<std::size_t>(leaving)] = theta;
      in_basis[static_cast<std::size_t>(basis[static_cast<std::size_t>(leaving)])] = false;
      in_basis[static_cast<std::size_t>(entering)] = true;
      basis[static_cast<std::size_t>(leaving)] = entering;
      ++iteration_counter;

      const bool updated = lu.update(leaving, alpha, options.pivot_tol);
      if (!updated || lu.eta_count() >= options.refactor_interval) {
        if (!lu.factorize(t.a, basis, options.pivot_tol)) return SolveStatus::kNumericalFailure;
        xb = t.rhs;
        lu.ftran(xb);
      }
    }
  };

  // ---- Phase 1.
  bool need_phase1 = false;
  for (const int j : basis)
    if (t.artificial[static_cast<std::size_t>(j)]) need_phase1 = true;
  if (need_phase1) {
    const SolveStatus s1 = run_phase(phase1_cost, /*block_artificials=*/false,
                                     sol.phase1_iterations);
    sol.iterations += sol.phase1_iterations;
    if (s1 == SolveStatus::kIterationLimit || s1 == SolveStatus::kNumericalFailure) {
      sol.status = s1;
      return sol;
    }
    double infeas = 0.0;
    for (int i = 0; i < m; ++i)
      if (t.artificial[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])])
        infeas += std::max(0.0, xb[static_cast<std::size_t>(i)]);
    if (infeas > 1e-6) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
  }

  // ---- Phase 2 (artificials blocked from re-entering).
  int phase2_iters = 0;
  const SolveStatus s2 = run_phase(t.cost, /*block_artificials=*/true, phase2_iters);
  sol.iterations += phase2_iters;
  if (s2 != SolveStatus::kOptimal) {
    sol.status = s2;
    return sol;
  }

  // Extract structural solution.
  sol.x.assign(static_cast<std::size_t>(t.n_structural), 0.0);
  for (int i = 0; i < m; ++i) {
    const int j = basis[static_cast<std::size_t>(i)];
    if (j < t.n_structural)
      sol.x[static_cast<std::size_t>(j)] = std::max(0.0, xb[static_cast<std::size_t>(i)]);
  }
  sol.objective = model.objective_value(sol.x);
  sol.status = SolveStatus::kOptimal;
  sol.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start).count();
  if (options.verbose)
    std::printf("[lp] %d rows, %d cols, %d iters (%d phase1), obj=%.6g, %.2fs\n", m,
                t.n_total, sol.iterations, sol.phase1_iterations, sol.objective,
                sol.solve_seconds);
  return sol;
}

}  // namespace titan::lp
