#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

#include "lp/basis_lu.h"

namespace titan::lp {

std::string status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNumericalFailure: return "numerical-failure";
  }
  return "?";
}

namespace {

struct Tableau {
  SparseMatrix a;             // computational-form matrix (m x n_total)
  std::vector<double> cost;   // phase-2 costs per column
  std::vector<double> rhs;    // original rhs
  int n_structural = 0;
  int n_total = 0;
  std::vector<bool> artificial;    // per column
  std::vector<int> slack_of;       // per row; -1 for equality rows
  std::vector<int> artificial_of;  // per row; -1 when the slack is feasible
};

Tableau build_tableau(const LpModel& model) {
  Tableau t;
  const int m = model.num_constraints();
  const int n = model.num_variables();
  t.n_structural = n;
  t.rhs = model.rhs();
  t.slack_of.assign(static_cast<std::size_t>(m), -1);
  t.artificial_of.assign(static_cast<std::size_t>(m), -1);

  std::vector<SparseMatrix::Triplet> trips;
  const SparseMatrix structural = model.matrix();
  for (int j = 0; j < n; ++j)
    for (int k = structural.col_begin(j); k < structural.col_end(j); ++k)
      trips.push_back({structural.row_index(k), j, structural.value(k)});

  t.cost = model.costs();
  int col = n;
  // Slack / surplus columns.
  for (int i = 0; i < m; ++i) {
    const Sense s = model.senses()[static_cast<std::size_t>(i)];
    if (s == Sense::kLe) {
      trips.push_back({i, col, 1.0});
      t.slack_of[static_cast<std::size_t>(i)] = col;
      t.cost.push_back(0.0);
      ++col;
    } else if (s == Sense::kGe) {
      trips.push_back({i, col, -1.0});
      t.slack_of[static_cast<std::size_t>(i)] = col;
      t.cost.push_back(0.0);
      ++col;
    }
  }
  // Artificial columns where the slack cannot seed a feasible basis.
  for (int i = 0; i < m; ++i) {
    const Sense s = model.senses()[static_cast<std::size_t>(i)];
    const double b = t.rhs[static_cast<std::size_t>(i)];
    const bool slack_feasible = (s == Sense::kLe && b >= 0.0) || (s == Sense::kGe && b <= 0.0);
    if (!slack_feasible) {
      trips.push_back({i, col, b >= 0.0 ? 1.0 : -1.0});
      t.artificial_of[static_cast<std::size_t>(i)] = col;
      t.cost.push_back(0.0);
      ++col;
    }
  }
  t.n_total = col;
  t.artificial.assign(static_cast<std::size_t>(col), false);
  for (const int j : t.artificial_of)
    if (j >= 0) t.artificial[static_cast<std::size_t>(j)] = true;
  t.a = SparseMatrix::from_triplets(m, col, std::move(trips));
  return t;
}

// Maps a model-relative Basis onto this tableau's columns. Rejects (returns
// nullopt) on a row-count mismatch, an entry naming a column the model does
// not have, or a duplicated column — the dimension-mismatch fallbacks of
// the warm-start contract.
std::optional<std::vector<int>> map_warm_basis(const Tableau& t, int m, const Basis& warm) {
  if (static_cast<int>(warm.entries.size()) != m) return std::nullopt;
  std::vector<int> basis(static_cast<std::size_t>(m), -1);
  std::vector<bool> used(static_cast<std::size_t>(t.n_total), false);
  for (int i = 0; i < m; ++i) {
    const BasisEntry& e = warm.entries[static_cast<std::size_t>(i)];
    int col = -1;
    switch (e.kind) {
      case BasisEntry::Kind::kStructural:
        if (e.index >= 0 && e.index < t.n_structural) col = e.index;
        break;
      case BasisEntry::Kind::kSlack:
        if (e.index >= 0 && e.index < m) col = t.slack_of[static_cast<std::size_t>(e.index)];
        break;
      case BasisEntry::Kind::kArtificial:
        if (e.index >= 0 && e.index < m)
          col = t.artificial_of[static_cast<std::size_t>(e.index)];
        break;
    }
    if (col < 0 || used[static_cast<std::size_t>(col)]) return std::nullopt;
    used[static_cast<std::size_t>(col)] = true;
    basis[static_cast<std::size_t>(i)] = col;
  }
  return basis;
}

// The inverse of map_warm_basis: the final tableau basis back in
// model-relative terms, for the caller to seed the next solve with.
Basis export_basis(const Tableau& t, const std::vector<int>& basis) {
  // Column -> owning row for the non-structural columns.
  std::vector<int> row_of(static_cast<std::size_t>(t.n_total), -1);
  for (std::size_t i = 0; i < t.slack_of.size(); ++i) {
    if (t.slack_of[i] >= 0) row_of[static_cast<std::size_t>(t.slack_of[i])] = static_cast<int>(i);
    if (t.artificial_of[i] >= 0)
      row_of[static_cast<std::size_t>(t.artificial_of[i])] = static_cast<int>(i);
  }
  Basis out;
  out.entries.reserve(basis.size());
  for (const int j : basis) {
    BasisEntry e;
    if (j < t.n_structural) {
      e.kind = BasisEntry::Kind::kStructural;
      e.index = j;
    } else {
      e.kind = t.artificial[static_cast<std::size_t>(j)] ? BasisEntry::Kind::kArtificial
                                                         : BasisEntry::Kind::kSlack;
      e.index = row_of[static_cast<std::size_t>(j)];
    }
    out.entries.push_back(e);
  }
  return out;
}

// Runs the simplex from `basis`. Cold starts (warm == false) begin with the
// canonical slack/artificial basis and run phase 1 when artificials are
// present; warm starts skip phase 1 but *gate* on the seeded basis being
// factorizable and primal-feasible, reporting kNumericalFailure otherwise
// so the caller can rerun cold.
// Seconds elapsed since `t0` (steady clock); the one timing idiom the
// phase instrumentation below uses.
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

Solution solve_from(const LpModel& model, const Tableau& t, std::vector<int> basis, bool warm,
                    const SolveOptions& options) {
  Solution sol;
  sol.warm_started = warm;
  const int m = model.num_constraints();

  std::vector<bool> in_basis(static_cast<std::size_t>(t.n_total), false);
  for (const int j : basis) in_basis[static_cast<std::size_t>(j)] = true;

  // Every LU factorization is counted and its wall time accumulated —
  // the refactorization share of the phase-timing breakdown.
  const auto timed_factorize = [&](BasisLu& lu_) {
    const auto f0 = std::chrono::steady_clock::now();
    const bool ok = lu_.factorize(t.a, basis, options.pivot_tol);
    sol.refactor_seconds += seconds_since(f0);
    ++sol.refactorizations;
    return ok;
  };

  BasisLu lu;
  if (!timed_factorize(lu)) {
    sol.status = SolveStatus::kNumericalFailure;
    return sol;
  }

  // Basic values x_B = B^{-1} b.
  std::vector<double> xb = t.rhs;
  lu.ftran(xb);

  // Gate a warm seed on how much repair it needs. Two kinds of primal
  // damage survive a basis transfer: hot artificials (rows the transfer
  // never covered — the fresh tail of a rolling horizon) and negative
  // basic values (rhs drift, e.g. a transferred link-peak variable sitting
  // below the shifted window's new peak). Both are repairable by the
  // restoration pass below, but only worth it in bounded quantity: past
  // options.warm_repair_limit of the rows, the repair work exceeds what a
  // cold phase 1 would cost (measured on the plan LPs), so reject and let
  // the caller cold-solve.
  int artificials_hot = 0;
  int negative_rows = 0;
  if (warm) {
    for (int i = 0; i < m; ++i) {
      const double v = xb[static_cast<std::size_t>(i)];
      if (v < -options.feasibility_tol)
        ++negative_rows;
      else if (t.artificial[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])] &&
               v > 1e-6)
        ++artificials_hot;
    }
    if (artificials_hot + negative_rows > options.warm_repair_limit * m) {
      sol.status = SolveStatus::kNumericalFailure;
      return sol;
    }
  }

  // Phase costs.
  std::vector<double> phase1_cost(static_cast<std::size_t>(t.n_total), 0.0);
  for (int j = 0; j < t.n_total; ++j)
    if (t.artificial[static_cast<std::size_t>(j)]) phase1_cost[static_cast<std::size_t>(j)] = 1.0;

  auto run_phase = [&](const std::vector<double>& cost, bool block_artificials,
                       int& iteration_counter) -> SolveStatus {
    int degenerate_streak = 0;
    std::vector<double> y(static_cast<std::size_t>(m));
    std::vector<double> alpha(static_cast<std::size_t>(m));
    // Partial (cyclic) pricing: scan a window of columns per iteration,
    // remembering where we stopped. A full fruitless sweep proves
    // optimality. Bland mode falls back to a full first-negative scan.
    int scan_cursor = 0;
    const int window =
        std::max(512, t.n_total / 16);

    while (true) {
      if (iteration_counter >= options.max_iterations) return SolveStatus::kIterationLimit;

      // BTRAN: y = B^{-T} c_B.
      for (int i = 0; i < m; ++i)
        y[static_cast<std::size_t>(i)] = cost[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])];
      lu.btran(y);

      // Pricing.
      const bool use_bland = degenerate_streak >= options.bland_trigger;
      int entering = -1;
      double best_dj = -options.optimality_tol;
      auto price = [&](int j) {
        if (in_basis[static_cast<std::size_t>(j)]) return false;
        if (block_artificials && t.artificial[static_cast<std::size_t>(j)]) return false;
        const double dj = cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y);
        if (dj < best_dj) {
          best_dj = dj;
          entering = j;
          return true;
        }
        return false;
      };
      if (use_bland) {
        for (int j = 0; j < t.n_total; ++j) {
          if (in_basis[static_cast<std::size_t>(j)]) continue;
          if (block_artificials && t.artificial[static_cast<std::size_t>(j)]) continue;
          const double dj = cost[static_cast<std::size_t>(j)] - t.a.dot_column(j, y);
          if (dj < -options.optimality_tol) {
            entering = j;
            break;
          }
        }
      } else {
        int scanned = 0;
        while (scanned < t.n_total) {
          const int stop = std::min(scan_cursor + window, t.n_total);
          for (int j = scan_cursor; j < stop; ++j) price(j);
          scanned += stop - scan_cursor;
          scan_cursor = stop == t.n_total ? 0 : stop;
          if (entering >= 0) break;  // found an attractive column in window
        }
      }
      if (entering < 0) return SolveStatus::kOptimal;

      // FTRAN the entering column.
      std::fill(alpha.begin(), alpha.end(), 0.0);
      t.a.axpy_column(entering, 1.0, alpha);
      lu.ftran(alpha);

      // Ratio test.
      int leaving = -1;
      double theta = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m; ++i) {
        const double ai = alpha[static_cast<std::size_t>(i)];
        if (ai > options.pivot_tol) {
          const double ratio =
              std::max(0.0, xb[static_cast<std::size_t>(i)]) / ai;
          if (ratio < theta - options.feasibility_tol ||
              (use_bland && ratio < theta + options.feasibility_tol && leaving >= 0 &&
               basis[static_cast<std::size_t>(i)] < basis[static_cast<std::size_t>(leaving)])) {
            theta = ratio;
            leaving = i;
          }
        }
      }
      if (leaving < 0) return SolveStatus::kUnbounded;

      degenerate_streak = (theta <= options.feasibility_tol) ? degenerate_streak + 1 : 0;

      // Apply the pivot.
      for (int i = 0; i < m; ++i) xb[static_cast<std::size_t>(i)] -= theta * alpha[static_cast<std::size_t>(i)];
      xb[static_cast<std::size_t>(leaving)] = theta;
      in_basis[static_cast<std::size_t>(basis[static_cast<std::size_t>(leaving)])] = false;
      in_basis[static_cast<std::size_t>(entering)] = true;
      basis[static_cast<std::size_t>(leaving)] = entering;
      ++iteration_counter;

      const bool updated = lu.update(leaving, alpha, options.pivot_tol);
      if (!updated || lu.eta_count() >= options.refactor_interval) {
        if (!timed_factorize(lu)) return SolveStatus::kNumericalFailure;
        xb = t.rhs;
        lu.ftran(xb);
      }
    }
  };

  // Feasibility restoration for warm seeds: a composite phase 1 that
  // minimizes total primal infeasibility — basic artificials above zero
  // (cost +1) and negative basic values (cost -1) — with the piecewise
  // cost recomputed every iteration. The ratio test admits both blocker
  // kinds: a nonnegative basic dropping to zero, and a negative basic
  // *rising* to zero. Runs only on the warm path (the cold pivot sequence
  // stays byte-for-byte what it always was); any stall or numerical issue
  // reports failure and the caller falls back to a cold solve.
  auto run_restoration = [&](int& iteration_counter) -> bool {
    std::vector<double> cb(static_cast<std::size_t>(m));
    std::vector<double> y(static_cast<std::size_t>(m));
    std::vector<double> alpha(static_cast<std::size_t>(m));
    const int cap = std::min(options.max_iterations, iteration_counter + 2 * m + 100);
    // Same cyclic partial pricing as run_phase: scan a window per
    // iteration, remember the cursor; a full fruitless sweep proves there
    // is no improving column.
    int scan_cursor = 0;
    const int window = std::max(512, t.n_total / 16);
    while (true) {
      bool infeasible = false;
      for (int i = 0; i < m; ++i) {
        const int j = basis[static_cast<std::size_t>(i)];
        const double v = xb[static_cast<std::size_t>(i)];
        double c = 0.0;
        if (t.artificial[static_cast<std::size_t>(j)] && v > 1e-6) {
          c = 1.0;
          infeasible = true;
        } else if (v < -options.feasibility_tol) {
          c = -1.0;
          infeasible = true;
        }
        cb[static_cast<std::size_t>(i)] = c;
      }
      if (!infeasible) return true;
      if (iteration_counter >= cap) return false;

      y = cb;
      lu.btran(y);
      int entering = -1;
      double best = -options.optimality_tol;
      int scanned = 0;
      while (scanned < t.n_total) {
        const int stop = std::min(scan_cursor + window, t.n_total);
        for (int j = scan_cursor; j < stop; ++j) {
          if (in_basis[static_cast<std::size_t>(j)] || t.artificial[static_cast<std::size_t>(j)])
            continue;
          const double dj = -t.a.dot_column(j, y);
          if (dj < best) {
            best = dj;
            entering = j;
          }
        }
        scanned += stop - scan_cursor;
        scan_cursor = stop == t.n_total ? 0 : stop;
        if (entering >= 0) break;
      }
      if (entering < 0) return false;  // stalled while still infeasible

      std::fill(alpha.begin(), alpha.end(), 0.0);
      t.a.axpy_column(entering, 1.0, alpha);
      lu.ftran(alpha);

      int leaving = -1;
      double theta = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m; ++i) {
        const double ai = alpha[static_cast<std::size_t>(i)];
        const double v = xb[static_cast<std::size_t>(i)];
        double cand = -1.0;
        if (v >= -options.feasibility_tol && ai > options.pivot_tol)
          cand = std::max(0.0, v) / ai;
        else if (v < -options.feasibility_tol && ai < -options.pivot_tol)
          cand = v / ai;  // negative basic rising to zero
        if (cand >= 0.0 && cand < theta) {
          theta = cand;
          leaving = i;
        }
      }
      if (leaving < 0) return false;

      for (int i = 0; i < m; ++i)
        xb[static_cast<std::size_t>(i)] -= theta * alpha[static_cast<std::size_t>(i)];
      xb[static_cast<std::size_t>(leaving)] = theta;
      in_basis[static_cast<std::size_t>(basis[static_cast<std::size_t>(leaving)])] = false;
      in_basis[static_cast<std::size_t>(entering)] = true;
      basis[static_cast<std::size_t>(leaving)] = entering;
      ++iteration_counter;

      const bool updated = lu.update(leaving, alpha, options.pivot_tol);
      if (!updated || lu.eta_count() >= options.refactor_interval) {
        if (!timed_factorize(lu)) return false;
        xb = t.rhs;
        lu.ftran(xb);
      }
    }
  };

  // ---- Phase 1. Warm seeds never run the classic artificial phase 1:
  // a clean seed skips straight to phase 2, a damaged one runs the
  // restoration pass (whose iterations are accounted as phase-1 work).
  if (warm && (artificials_hot > 0 || negative_rows > 0)) {
    const auto p1_start = std::chrono::steady_clock::now();
    const bool restored = run_restoration(sol.phase1_iterations);
    sol.phase1_seconds += seconds_since(p1_start);
    sol.iterations += sol.phase1_iterations;
    if (!restored) {
      sol.status = SolveStatus::kNumericalFailure;
      return sol;
    }
  }
  bool need_phase1 = false;
  if (!warm)
    for (const int j : basis)
      if (t.artificial[static_cast<std::size_t>(j)]) need_phase1 = true;
  if (need_phase1) {
    const auto p1_start = std::chrono::steady_clock::now();
    const SolveStatus s1 = run_phase(phase1_cost, /*block_artificials=*/false,
                                     sol.phase1_iterations);
    sol.phase1_seconds += seconds_since(p1_start);
    sol.iterations += sol.phase1_iterations;
    if (s1 == SolveStatus::kIterationLimit || s1 == SolveStatus::kNumericalFailure) {
      sol.status = s1;
      return sol;
    }
    double infeas = 0.0;
    for (int i = 0; i < m; ++i)
      if (t.artificial[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])])
        infeas += std::max(0.0, xb[static_cast<std::size_t>(i)]);
    if (infeas > 1e-6) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
  }

  // ---- Phase 2 (artificials blocked from re-entering).
  int phase2_iters = 0;
  const auto p2_start = std::chrono::steady_clock::now();
  const SolveStatus s2 = run_phase(t.cost, /*block_artificials=*/true, phase2_iters);
  sol.phase2_seconds += seconds_since(p2_start);
  sol.iterations += phase2_iters;
  if (s2 != SolveStatus::kOptimal) {
    sol.status = s2;
    return sol;
  }

  // An artificial that stayed basic at zero through phase 2 can drift
  // positive during later pivots (the ratio test only guards basics from
  // going *negative*), which would mean the "optimal" point violates the
  // artificial's row. Refuse to report such a point: a warm solve falls
  // back to the cold path, a cold solve fails loudly rather than hand the
  // caller a plan that silently under-serves an equality row.
  for (int i = 0; i < m; ++i) {
    if (t.artificial[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])] &&
        xb[static_cast<std::size_t>(i)] > 1e-6) {
      sol.status = SolveStatus::kNumericalFailure;
      return sol;
    }
  }

  // Extract structural solution.
  sol.x.assign(static_cast<std::size_t>(t.n_structural), 0.0);
  for (int i = 0; i < m; ++i) {
    const int j = basis[static_cast<std::size_t>(i)];
    if (j < t.n_structural)
      sol.x[static_cast<std::size_t>(j)] = std::max(0.0, xb[static_cast<std::size_t>(i)]);
  }
  sol.objective = model.objective_value(sol.x);
  sol.status = SolveStatus::kOptimal;
  sol.basis = export_basis(t, basis);
  return sol;
}

// Cold initial basis: feasible slack where possible, else the artificial
// allocated for the row.
std::vector<int> cold_basis(const Tableau& t, int m) {
  std::vector<int> basis(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const int slack = t.slack_of[static_cast<std::size_t>(i)];
    const int artificial = t.artificial_of[static_cast<std::size_t>(i)];
    basis[static_cast<std::size_t>(i)] = artificial >= 0 ? artificial : slack;
  }
  return basis;
}

}  // namespace

Solution solve(const LpModel& model, const SolveOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  const Tableau t = build_tableau(model);
  const int m = model.num_constraints();

  Solution sol = solve_from(model, t, cold_basis(t, m), /*warm=*/false, options);
  sol.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start).count();
  if (options.verbose)
    std::printf("[lp] %d rows, %d cols, %d iters (%d phase1), obj=%.6g, %.2fs\n", m, t.n_total,
                sol.iterations, sol.phase1_iterations, sol.objective, sol.solve_seconds);
  return sol;
}

Solution solve(const LpModel& model, const Basis& warm, const SolveOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  const Tableau t = build_tableau(model);
  const int m = model.num_constraints();

  Solution sol;
  sol.status = SolveStatus::kNumericalFailure;
  if (auto mapped = map_warm_basis(t, m, warm)) {
    // Structural-rank repair: a transferred basis can be singular when the
    // entries that used to pivot some rows did not survive the transfer
    // (which rows those are is invisible at the label level). Diagnose with
    // the LU, swap each failed position for the slack/artificial of an
    // unpivoted row, and retry; two rounds cover the cascade where a repair
    // unblocks a previously-masked dependency.
    for (int round = 0; round < 2; ++round) {
      BasisLu probe;
      BasisLu::Deficiency def;
      if (probe.factorize(t.a, *mapped, options.pivot_tol, &def) || !def.any()) break;
      bool repaired = true;
      for (std::size_t k = 0; k < def.positions.size() && repaired; ++k) {
        const int row = def.rows[k];
        const int unit = t.slack_of[static_cast<std::size_t>(row)] >= 0
                             ? t.slack_of[static_cast<std::size_t>(row)]
                             : t.artificial_of[static_cast<std::size_t>(row)];
        repaired = unit >= 0;
        if (repaired) (*mapped)[static_cast<std::size_t>(def.positions[k])] = unit;
      }
      if (!repaired) break;
    }
    sol = solve_from(model, t, std::move(*mapped), /*warm=*/true, options);
  }
  // Any warm failure — unmappable basis, singular factorization, infeasible
  // seed, or numerical trouble mid-phase-2 — falls back to the cold path,
  // reusing the tableau already built above.
  if (sol.status == SolveStatus::kNumericalFailure) {
    sol = solve_from(model, t, cold_basis(t, m), /*warm=*/false, options);
    sol.solve_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start).count();
    return sol;
  }
  sol.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start).count();
  if (options.verbose)
    std::printf("[lp] warm: %d rows, %d cols, %d iters, obj=%.6g, %.2fs\n", m, t.n_total,
                sol.iterations, sol.objective, sol.solve_seconds);
  return sol;
}

}  // namespace titan::lp
