// Sparse LU factorization of the simplex basis, with product-form updates.
//
// The revised simplex keeps a factorization of the current basis matrix B
// (one column of the computational-form constraint matrix per row). Basis
// columns here are extremely sparse (slacks are unit vectors, structural
// columns have a handful of entries), so we use a Gilbert-Peierls
// left-looking sparse LU with partial pivoting. Between refactorizations
// the factorization is extended with product-form eta updates: replacing
// the basis column at position r by a column whose FTRAN image is alpha
// appends an eta (r, alpha) and both solves apply it in O(nnz(alpha)).
#pragma once

#include <vector>

#include "lp/sparse.h"

namespace titan::lp {

class BasisLu {
 public:
  // Structural-rank diagnosis of a failed factorization: the basis
  // positions whose columns found no pivot (each was in the span of the
  // columns factored before it) and the rows left unpivoted, both in
  // ascending order and of equal length. A warm-start caller repairs the
  // candidate basis by replacing each failed position with the unit
  // (slack/artificial) column of an unpivoted row, then refactorizes.
  struct Deficiency {
    std::vector<int> positions;
    std::vector<int> rows;
    [[nodiscard]] bool any() const { return !positions.empty(); }
  };

  // Factorizes B = A(:, basis). Returns false when numerically singular.
  // With `deficiency`, a singular basis does not abort: the maximal
  // independent column subset is factored, the failures are reported, and
  // the return is still false (the factorization itself is NOT usable for
  // solves in that case — refactorize after repairing).
  bool factorize(const SparseMatrix& a, const std::vector<int>& basis,
                 double pivot_tolerance = 1e-10, Deficiency* deficiency = nullptr);

  // Solves B * x = b. `x` enters holding b (dense, length m) and exits
  // holding the solution *in basis-position coordinates*: x[k] multiplies
  // basis column k.
  void ftran(std::vector<double>& x) const;

  // Solves B^T * y = c. `y` enters holding c indexed by basis position and
  // exits holding the row-space solution (length m, original row indices).
  void btran(std::vector<double>& y) const;

  // Registers a basis change: position `leaving_pos` is replaced by a column
  // whose FTRAN image (before this update) is `alpha`. Returns false when
  // the pivot element alpha[leaving_pos] is too small (caller should
  // refactorize instead).
  bool update(int leaving_pos, const std::vector<double>& alpha, double pivot_tolerance = 1e-9);

  [[nodiscard]] int eta_count() const { return static_cast<int>(etas_.size()); }
  [[nodiscard]] int dimension() const { return m_; }

 private:
  struct Eta {
    int pivot_pos;
    double pivot_value;                          // alpha[pivot_pos]
    std::vector<std::pair<int, double>> others;  // (pos, alpha[pos]) off-pivot
  };

  int m_ = 0;
  // L: unit lower triangular in pivot order; entries stored with
  // *original row* indices (they acquire pivot positions later).
  std::vector<int> l_col_ptr_;
  std::vector<int> l_rows_;
  std::vector<double> l_vals_;
  // U: strictly upper entries stored with *pivot position* row indices.
  std::vector<int> u_col_ptr_;
  std::vector<int> u_rows_;
  std::vector<double> u_vals_;
  std::vector<double> u_diag_;
  std::vector<int> pivot_row_of_;  // pivot position k -> original row
  std::vector<int> row_perm_;      // original row -> pivot position
  // Columns are factored in order of increasing nonzero count so the many
  // unit (slack/artificial) columns pivot first with zero fill-in;
  // col_order_[k] is the basis position factored at step k.
  std::vector<int> col_order_;
  std::vector<Eta> etas_;
};

}  // namespace titan::lp
