#include "lp/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace titan::lp {

int LpModel::add_variable(double cost, std::string name) {
  costs_.push_back(cost);
  if (name.empty()) name = "x" + std::to_string(costs_.size() - 1);
  var_names_.push_back(std::move(name));
  return static_cast<int>(costs_.size()) - 1;
}

int LpModel::add_constraint(Sense sense, double rhs, std::string name) {
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  if (name.empty()) name = "r" + std::to_string(senses_.size() - 1);
  row_names_.push_back(std::move(name));
  return static_cast<int>(senses_.size()) - 1;
}

void LpModel::add_coefficient(int row, int col, double value) {
  assert(row >= 0 && row < num_constraints());
  assert(col >= 0 && col < num_variables());
  if (value == 0.0) return;
  triplets_.push_back({row, col, value});
}

SparseMatrix LpModel::matrix() const {
  return SparseMatrix::from_triplets(num_constraints(), num_variables(), triplets_);
}

double LpModel::objective_value(const std::vector<double>& x) const {
  double acc = 0.0;
  for (std::size_t j = 0; j < costs_.size(); ++j) acc += costs_[j] * x[j];
  return acc;
}

double LpModel::max_violation(const std::vector<double>& x) const {
  std::vector<double> row_activity(static_cast<std::size_t>(num_constraints()), 0.0);
  for (const auto& t : triplets_)
    row_activity[static_cast<std::size_t>(t.row)] += t.value * x[static_cast<std::size_t>(t.col)];
  double worst = 0.0;
  for (int i = 0; i < num_constraints(); ++i) {
    const double a = row_activity[static_cast<std::size_t>(i)];
    const double b = rhs_[static_cast<std::size_t>(i)];
    double v = 0.0;
    switch (senses_[static_cast<std::size_t>(i)]) {
      case Sense::kLe: v = a - b; break;
      case Sense::kGe: v = b - a; break;
      case Sense::kEq: v = std::abs(a - b); break;
    }
    worst = std::max(worst, v);
  }
  for (double xi : x) worst = std::max(worst, -xi);  // lower bounds
  return worst;
}

}  // namespace titan::lp
