// Titan: quality-controlled movement of conferencing traffic to the
// Internet (§4). Production system reproduced end to end:
//
//  - manages a ramp state machine per (client country, MP DC) pair within
//    a target region (Europe in production);
//  - assigns each new call participant a routing option by weighted coin
//    flip at the pair's current fraction (§4.1 element 5: random selection);
//  - consumes relay telemetry through ECS scorecards each control epoch and
//    reacts (decrement / emergency brake / per-user WAN failover / transit
//    failover);
//  - exports the learnt safe Internet fractions as per-pair capacity
//    estimates — exactly the `InternetCap` input Titan-Next's LP uses.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "geo/region.h"
#include "media/relay_sim.h"
#include "net/network_db.h"
#include "titan/ramp.h"
#include "titan/scorecard.h"

namespace titan::titan_sys {

struct TitanOptions {
  std::uint64_t seed = 77;
  RampOptions ramp;
  // Per-user failover (§6.4): move a participant to WAN when their Internet
  // leg shows loss >= 1% or RTT beyond the distance-scaled threshold.
  double user_failover_loss = 0.01;
  double user_failover_rtt_factor = 1.6;  // x the pair's WAN RTT
  // Transit failover: if this fraction of a DC's managed pairs degrade in
  // the same epoch, steer the affected pairs to an alternate transit.
  double transit_failover_share = 0.5;
  std::size_t transit_failover_min_pairs = 3;
};

class TitanSystem {
 public:
  // Manages all (client country in scope, DC in scope) pairs across the
  // region set; a bare Continent converts (Europe in production).
  TitanSystem(net::NetworkDb& net, const geo::RegionSet& regions,
              const TitanOptions& options = {});

  // Routing decision for a new participant (random per the pair fraction).
  [[nodiscard]] net::PathType assign_path(core::CountryId country, core::DcId dc,
                                          core::Rng& rng) const;

  [[nodiscard]] double internet_fraction(core::CountryId country, core::DcId dc) const;
  [[nodiscard]] RampState pair_state(core::CountryId country, core::DcId dc) const;

  // One control epoch: build scorecards from the window's telemetry, step
  // every ramp, and fire transit failovers.
  void control_step(const std::vector<media::CallTelemetry>& telemetry);

  // Per-user reaction (§6.4): should this participant be moved to WAN now?
  [[nodiscard]] bool should_failover_user(const media::ParticipantTelemetry& t) const;

  // Capacity estimate exported to Titan-Next: learnt safe fraction times the
  // pair's peak demand, scaled by `headroom` (the "hypothetically double the
  // Internet traffic" ablation passes 2.0).
  [[nodiscard]] core::Mbps internet_capacity_mbps(core::CountryId country, core::DcId dc,
                                                  double headroom = 1.0) const;

  [[nodiscard]] const std::vector<std::pair<core::CountryId, core::DcId>>& pairs() const {
    return pairs_;
  }
  [[nodiscard]] int transit_failovers() const { return transit_failovers_; }
  [[nodiscard]] int control_epochs() const { return control_epochs_; }

 private:
  [[nodiscard]] const RampController* ramp(core::CountryId c, core::DcId d) const;

  net::NetworkDb* net_;
  TitanOptions options_;
  core::Rng rng_;
  std::vector<std::pair<core::CountryId, core::DcId>> pairs_;
  std::map<std::pair<int, int>, RampController> ramps_;
  int transit_failovers_ = 0;
  int control_epochs_ = 0;
};

}  // namespace titan::titan_sys
