// Per-pair ramp state machine (§4.1).
//
// For each (client country, MP DC) pair Titan moves traffic to the Internet
// iteratively: increment 1-3% at a time, dwell for a monitoring period,
// and react to the scorecard. Safety beats optimality: the ramp stops at a
// hard cap (20% in production) even when nothing degrades. Reactions
// (§4.1, element 4):
//   (a) moderate degradation        -> decrement the fraction;
//   (b) severe (P50 loss >= 1%)     -> emergency brake, all traffic to WAN;
//   (c) per-user issues             -> handled by reaction rules in titan.h;
//   (d) transit unavailability      -> BGP failover to an alternate peer.
#pragma once

#include <cstdint>
#include <string>

#include "core/rng.h"
#include "titan/scorecard.h"

namespace titan::titan_sys {

enum class RampState {
  kDisabled,  // Internet never used for this pair (unusable countries)
  kRamping,   // still stepping toward the cap
  kHolding,   // at cap, monitoring only
  kBackoff,   // emergency brake engaged; waiting out a cooldown
};

[[nodiscard]] std::string ramp_state_name(RampState s);

struct RampOptions {
  double increment_lo = 0.01;  // "typically increment 1-3%"
  double increment_hi = 0.03;
  double decrement = 0.04;
  double cap = 0.20;              // operational stop point
  double severe_p50_loss = 0.01;  // emergency brake threshold (1%)
  double moderate_p50_loss = 0.0025;
  double moderate_latency_inflation = 0.10;
  int backoff_epochs = 4;  // cooldown after an emergency brake
  std::size_t min_samples = 20;
};

class RampController {
 public:
  explicit RampController(const RampOptions& options = {}, bool internet_allowed = true);

  // One control epoch: consume the pair's scorecard and update the target
  // Internet fraction. Call once per dwell period.
  void step(const Scorecard& scorecard, core::Rng& rng);

  [[nodiscard]] double fraction() const { return fraction_; }
  [[nodiscard]] RampState state() const { return state_; }
  [[nodiscard]] int emergency_brakes() const { return emergency_brakes_; }
  [[nodiscard]] int decrements() const { return decrements_; }

 private:
  RampOptions options_;
  RampState state_;
  double fraction_ = 0.0;
  int backoff_remaining_ = 0;
  int emergency_brakes_ = 0;
  int decrements_ = 0;
};

}  // namespace titan::titan_sys
