#include "titan/titan.h"

#include <algorithm>

namespace titan::titan_sys {

TitanSystem::TitanSystem(net::NetworkDb& net, const geo::RegionSet& regions,
                         const TitanOptions& options)
    : net_(&net), options_(options), rng_(options.seed) {
  regions.validate();
  const auto countries = geo::countries_in(net.world(), regions);
  const auto dcs = geo::dcs_in(net.world(), regions);
  for (const auto c : countries) {
    for (const auto d : dcs) {
      const bool allowed = !net.loss().internet_unusable(c);
      pairs_.emplace_back(c, d);
      ramps_.emplace(std::make_pair(c.value(), d.value()),
                     RampController(options.ramp, allowed));
    }
  }
}

const RampController* TitanSystem::ramp(core::CountryId c, core::DcId d) const {
  const auto it = ramps_.find({c.value(), d.value()});
  return it == ramps_.end() ? nullptr : &it->second;
}

net::PathType TitanSystem::assign_path(core::CountryId country, core::DcId dc,
                                       core::Rng& rng) const {
  const RampController* r = ramp(country, dc);
  if (r == nullptr) return net::PathType::kWan;
  return rng.chance(r->fraction()) ? net::PathType::kInternet : net::PathType::kWan;
}

double TitanSystem::internet_fraction(core::CountryId country, core::DcId dc) const {
  const RampController* r = ramp(country, dc);
  return r == nullptr ? 0.0 : r->fraction();
}

RampState TitanSystem::pair_state(core::CountryId country, core::DcId dc) const {
  const RampController* r = ramp(country, dc);
  return r == nullptr ? RampState::kDisabled : r->state();
}

void TitanSystem::control_step(const std::vector<media::CallTelemetry>& telemetry) {
  ++control_epochs_;
  const auto scorecards = build_scorecards(telemetry);

  // Step every managed pair that has a scorecard; pairs with no treated
  // traffic this epoch still ramp cautiously on an empty card.
  std::map<std::pair<int, int>, const Scorecard*> by_pair;
  for (const auto& sc : scorecards) by_pair[{sc.country.value(), sc.dc.value()}] = &sc;

  // Track per-DC degradation for the transit-failover heuristic: multiple
  // client countries degrading toward one DC at once points at the transit
  // ISP, not the last mile (§4.2 finding 6).
  std::map<int, std::vector<core::CountryId>> degraded_by_dc;
  std::map<int, std::size_t> managed_by_dc;

  for (auto& [key, controller] : ramps_) {
    Scorecard empty;
    empty.country = core::CountryId(key.first);
    empty.dc = core::DcId(key.second);
    const auto it = by_pair.find(key);
    const Scorecard& sc = (it == by_pair.end()) ? empty : *it->second;
    ++managed_by_dc[key.second];
    if (sc.has_signal(options_.ramp.min_samples) &&
        sc.internet.p50_loss >= options_.ramp.moderate_p50_loss)
      degraded_by_dc[key.second].push_back(core::CountryId(key.first));
    controller.step(sc, rng_);
  }

  for (const auto& [dc, countries] : degraded_by_dc) {
    if (countries.size() < options_.transit_failover_min_pairs) continue;
    const double share = static_cast<double>(countries.size()) /
                         static_cast<double>(std::max<std::size_t>(1, managed_by_dc[dc]));
    if (share < options_.transit_failover_share) continue;
    for (const auto c : countries) net_->loss().fail_over(c, core::DcId(dc));
    ++transit_failovers_;
  }
}

bool TitanSystem::should_failover_user(const media::ParticipantTelemetry& t) const {
  if (t.path != net::PathType::kInternet) return false;
  if (t.rtp_loss >= options_.user_failover_loss) return true;
  // Latency threshold depends on physical distance: compare against the
  // pair's WAN RTT (a distance proxy) scaled by the failover factor.
  const double wan_rtt = net_->latency().base_rtt_ms(t.country, t.dc, net::PathType::kWan);
  return t.rtt_ms > wan_rtt * options_.user_failover_rtt_factor;
}

core::Mbps TitanSystem::internet_capacity_mbps(core::CountryId country, core::DcId dc,
                                               double headroom) const {
  const RampController* r = ramp(country, dc);
  if (r == nullptr) return 0.0;
  return r->fraction() * net_->pair_peak_demand(country, dc) * headroom;
}

}  // namespace titan::titan_sys
