#include "titan/ramp.h"

#include <algorithm>

namespace titan::titan_sys {

std::string ramp_state_name(RampState s) {
  switch (s) {
    case RampState::kDisabled: return "disabled";
    case RampState::kRamping: return "ramping";
    case RampState::kHolding: return "holding";
    case RampState::kBackoff: return "backoff";
  }
  return "?";
}

RampController::RampController(const RampOptions& options, bool internet_allowed)
    : options_(options),
      state_(internet_allowed ? RampState::kRamping : RampState::kDisabled) {}

void RampController::step(const Scorecard& scorecard, core::Rng& rng) {
  if (state_ == RampState::kDisabled) return;

  if (state_ == RampState::kBackoff) {
    if (--backoff_remaining_ > 0) return;
    // Cooldown over: resume cautiously from zero.
    state_ = RampState::kRamping;
    fraction_ = 0.0;
  }

  // Without signal (not enough treated users yet) keep ramping cautiously:
  // the very first increments necessarily act on thin data, mirroring the
  // small-community flights of §4.1 element 1.
  const bool has_signal = scorecard.has_signal(options_.min_samples);

  if (has_signal && scorecard.internet.p50_loss >= options_.severe_p50_loss) {
    // Emergency brake: reroute everything to WAN instantly.
    fraction_ = 0.0;
    state_ = RampState::kBackoff;
    backoff_remaining_ = options_.backoff_epochs;
    ++emergency_brakes_;
    return;
  }

  if (has_signal &&
      (scorecard.internet.p50_loss >= options_.moderate_p50_loss ||
       scorecard.latency_inflation() >= options_.moderate_latency_inflation)) {
    fraction_ = std::max(0.0, fraction_ - options_.decrement);
    state_ = RampState::kRamping;
    ++decrements_;
    return;
  }

  if (state_ == RampState::kHolding) return;  // safety: never exceed the cap

  fraction_ += rng.uniform(options_.increment_lo, options_.increment_hi);
  if (fraction_ >= options_.cap) {
    fraction_ = options_.cap;
    state_ = RampState::kHolding;
  }
}

}  // namespace titan::titan_sys
