#include "titan/scorecard.h"

#include <map>

#include "core/stats.h"

namespace titan::titan_sys {

std::vector<Scorecard> build_scorecards(const std::vector<media::CallTelemetry>& telemetry) {
  struct RawArm {
    std::vector<double> loss, rtt;
    double jitter_sum = 0.0;
    double mos_sum = 0.0;
    std::size_t mos_n = 0;
  };
  struct Raw {
    RawArm internet, wan;
  };
  std::map<std::pair<int, int>, Raw> raw;

  for (const auto& call : telemetry) {
    for (const auto& p : call.participants) {
      auto& arm_pair = raw[{p.country.value(), p.dc.value()}];
      RawArm& arm = (p.path == net::PathType::kInternet) ? arm_pair.internet : arm_pair.wan;
      arm.loss.push_back(p.rtp_loss);
      arm.rtt.push_back(p.rtt_ms);
      arm.jitter_sum += p.jitter_ms;
      if (call.mos) {
        // Attribute the call's rating to each participating arm.
        arm.mos_sum += *call.mos;
        ++arm.mos_n;
      }
    }
  }

  std::vector<Scorecard> out;
  out.reserve(raw.size());
  for (auto& [key, r] : raw) {
    Scorecard sc;
    sc.country = core::CountryId(key.first);
    sc.dc = core::DcId(key.second);
    auto fill = [](RawArm& a, ArmStats& s) {
      s.samples = a.loss.size();
      if (a.loss.empty()) return;
      s.p50_loss = core::median(a.loss);
      s.p50_rtt_ms = core::median(a.rtt);
      s.mean_jitter_ms = a.jitter_sum / static_cast<double>(a.loss.size());
      s.mos_samples = a.mos_n;
      s.mean_mos = a.mos_n == 0 ? 0.0 : a.mos_sum / static_cast<double>(a.mos_n);
    };
    fill(r.internet, sc.internet);
    fill(r.wan, sc.wan);
    out.push_back(std::move(sc));
  }
  return out;
}

}  // namespace titan::titan_sys
