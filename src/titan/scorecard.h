// ECS-style A|B experimentation scorecards (§4.1, element 2).
//
// Titan shifts traffic through an Experimentation and Configuration System
// that runs A|B experiments on a slice of the user population and produces
// scorecards comparing treatment (Internet routing) against control (WAN).
// A scorecard aggregates the per-participant telemetry of one
// (client country, MP DC) pair over a monitoring window: median loss and
// RTT, mean jitter, and mean MOS per arm, plus sample counts so callers can
// refuse to act on thin data.
#pragma once

#include <vector>

#include "core/ids.h"
#include "media/relay_sim.h"

namespace titan::titan_sys {

struct ArmStats {
  std::size_t samples = 0;
  double p50_loss = 0.0;
  double p50_rtt_ms = 0.0;
  double mean_jitter_ms = 0.0;
  double mean_mos = 0.0;
  std::size_t mos_samples = 0;
};

struct Scorecard {
  core::CountryId country;
  core::DcId dc;
  ArmStats internet;  // treatment
  ArmStats wan;       // control
  [[nodiscard]] bool has_signal(std::size_t min_samples = 20) const {
    return internet.samples >= min_samples && wan.samples >= min_samples;
  }
  // Latency inflation of treatment over control (0.1 == +10%).
  [[nodiscard]] double latency_inflation() const {
    return wan.p50_rtt_ms <= 0.0 ? 0.0 : internet.p50_rtt_ms / wan.p50_rtt_ms - 1.0;
  }
};

// Builds scorecards for every (country, DC) pair present in the telemetry.
[[nodiscard]] std::vector<Scorecard> build_scorecards(
    const std::vector<media::CallTelemetry>& telemetry);

}  // namespace titan::titan_sys
