#include "geo/location.h"

#include <cmath>
#include <numbers>

namespace titan::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
// Speed of light in fibre, km per millisecond (c * 2/3).
constexpr double kFiberKmPerMs = 299792.458 / 1000.0 * (2.0 / 3.0);

double to_rad(double deg) { return deg * std::numbers::pi / 180.0; }
}  // namespace

double haversine_km(LatLon a, LatLon b) {
  const double phi1 = to_rad(a.lat_deg);
  const double phi2 = to_rad(b.lat_deg);
  const double dphi = to_rad(b.lat_deg - a.lat_deg);
  const double dlmb = to_rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dphi / 2.0) * std::sin(dphi / 2.0) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlmb / 2.0) * std::sin(dlmb / 2.0);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double fiber_delay_ms(LatLon a, LatLon b) { return haversine_km(a, b) / kFiberKmPerMs; }

}  // namespace titan::geo
