#include "geo/region.h"

#include <algorithm>
#include <stdexcept>

namespace titan::geo {

bool RegionSet::contains(Continent c) const {
  return std::find(continents_.begin(), continents_.end(), c) != continents_.end();
}

std::string RegionSet::name() const {
  std::string out;
  for (const Continent c : continents_) {
    if (!out.empty()) out += '+';
    out += continent_name(c);
  }
  return out.empty() ? "(empty)" : out;
}

void RegionSet::validate() const {
  if (continents_.empty())
    throw std::invalid_argument("plan scope: empty region set");
  for (std::size_t i = 0; i < continents_.size(); ++i)
    for (std::size_t j = i + 1; j < continents_.size(); ++j)
      if (continents_[i] == continents_[j])
        throw std::invalid_argument("plan scope: duplicate continent in region set: " +
                                    continent_name(continents_[i]));
}

std::vector<core::CountryId> countries_in(const World& world, const RegionSet& regions) {
  std::vector<core::CountryId> out;
  for (const Continent c : regions.continents()) {
    const auto part = world.countries_in(c);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<core::DcId> dcs_in(const World& world, const RegionSet& regions) {
  std::vector<core::DcId> out;
  for (const Continent c : regions.continents()) {
    const auto part = world.dcs_in(c);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace titan::geo
