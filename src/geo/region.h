// Region sets: plan scopes spanning one or more continents.
//
// The paper's production deployment plans Europe, but its world is global —
// the NA–EU and EU–Asia corridor priors in net/latency_model.cc exist
// precisely because calls cross continents. `RegionSet` is the scope type
// every layer shares (titannext::PlanScope, workload::TraceOptions,
// policies::PolicyContext, titan_sys::TitanSystem): an ordered list of
// continents with a non-explicit single-continent constructor, so code
// written against the old one-continent API keeps compiling and — for a
// single-continent set — behaves byte-identically.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "core/ids.h"
#include "geo/world.h"

namespace titan::geo {

class RegionSet {
 public:
  RegionSet() = default;
  // Implicit: a bare Continent is the single-region scope it always was.
  RegionSet(Continent c) : continents_{c} {}
  RegionSet(std::initializer_list<Continent> cs) : continents_(cs) {}
  explicit RegionSet(std::vector<Continent> cs) : continents_(std::move(cs)) {}

  [[nodiscard]] const std::vector<Continent>& continents() const { return continents_; }
  [[nodiscard]] bool contains(Continent c) const;
  [[nodiscard]] bool empty() const { return continents_.empty(); }
  [[nodiscard]] std::size_t size() const { return continents_.size(); }
  [[nodiscard]] bool single() const { return continents_.size() == 1; }
  // Display name, e.g. "Europe" or "North America+Europe".
  [[nodiscard]] std::string name() const;

  // Scope validation, shared by PlanInputs, the sim engine, and workload
  // generation. Throws std::invalid_argument naming the problem: a plan
  // scope must name at least one continent, exactly once each.
  void validate() const;

  bool operator==(const RegionSet&) const = default;

 private:
  std::vector<Continent> continents_;  // in listed order
};

// Countries / DCs across the whole set, concatenated in region listing
// order. For a single-region set these are exactly World::countries_in /
// World::dcs_in — same ids, same order.
[[nodiscard]] std::vector<core::CountryId> countries_in(const World& world,
                                                        const RegionSet& regions);
[[nodiscard]] std::vector<core::DcId> dcs_in(const World& world, const RegionSet& regions);

}  // namespace titan::geo
