#include "geo/world.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace titan::geo {

std::string continent_name(Continent c) {
  switch (c) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kEurope: return "Europe";
    case Continent::kAsia: return "Asia";
    case Continent::kAfrica: return "Africa";
    case Continent::kOceania: return "Oceania";
  }
  return "?";
}

namespace {

struct CountrySpec {
  const char* name;
  const char* iso;
  Continent continent;
  double lat, lon;
  double population_m;
  double call_volume;
  double spread_deg;
};

// The 22 client countries of Fig. 4 plus a dense European set so the
// Titan-Next evaluation (all-participants-in-Europe calls, ~170+ country-DC
// pairs) has realistic coverage. Call volume weights are synthetic but follow
// the paper's "top 20 by call volume" ordering loosely (US/UK/EU heavy).
constexpr CountrySpec kCountries[] = {
    // Fig. 4 set.
    {"mexico", "MX", Continent::kNorthAmerica, 23.6, -102.5, 128, 2.2, 5.0},
    {"us", "US", Continent::kNorthAmerica, 39.8, -98.6, 331, 10.0, 12.0},
    {"canada", "CA", Continent::kNorthAmerica, 56.1, -106.3, 38, 2.5, 8.0},
    {"brazil", "BR", Continent::kSouthAmerica, -14.2, -51.9, 213, 2.8, 9.0},
    {"colombia", "CO", Continent::kSouthAmerica, 4.6, -74.1, 51, 1.1, 4.0},
    {"southafrica", "ZA", Continent::kAfrica, -30.6, 22.9, 60, 1.4, 6.0},
    {"egypt", "EG", Continent::kAfrica, 26.8, 30.8, 104, 0.9, 3.0},
    {"nigeria", "NG", Continent::kAfrica, 9.1, 8.7, 211, 0.8, 4.0},
    {"india", "IN", Continent::kAsia, 20.6, 79.0, 1380, 6.0, 10.0},
    {"japan", "JP", Continent::kAsia, 36.2, 138.3, 126, 3.0, 5.0},
    {"philippines", "PH", Continent::kAsia, 12.9, 121.8, 110, 1.5, 4.0},
    {"singapore", "SG", Continent::kAsia, 1.35, 103.8, 5.7, 1.2, 0.3},
    {"australia", "AU", Continent::kOceania, -25.3, 133.8, 26, 2.4, 14.0},
    {"uk", "GB", Continent::kEurope, 54.0, -2.0, 67, 5.5, 3.0},
    {"germany", "DE", Continent::kEurope, 51.2, 10.4, 83, 4.8, 3.0},
    {"france", "FR", Continent::kEurope, 46.6, 2.2, 67, 4.5, 3.5},
    {"netherlands", "NL", Continent::kEurope, 52.1, 5.3, 17, 2.2, 1.2},
    {"italy", "IT", Continent::kEurope, 42.8, 12.5, 60, 3.0, 3.5},
    {"spain", "ES", Continent::kEurope, 40.2, -3.7, 47, 2.6, 3.5},
    {"sweden", "SE", Continent::kEurope, 62.2, 14.8, 10, 1.3, 4.0},
    {"poland", "PL", Continent::kEurope, 51.9, 19.1, 38, 1.8, 2.5},
    {"switzerland", "CH", Continent::kEurope, 46.8, 8.2, 8.6, 1.2, 1.0},
    // Additional European client countries for the §7/§8 evaluation.
    {"ireland", "IE", Continent::kEurope, 53.4, -8.2, 5.0, 0.8, 1.2},
    {"belgium", "BE", Continent::kEurope, 50.5, 4.5, 11.5, 1.0, 1.0},
    {"austria", "AT", Continent::kEurope, 47.5, 14.5, 9.0, 0.9, 1.5},
    {"portugal", "PT", Continent::kEurope, 39.4, -8.2, 10.3, 0.8, 1.8},
    {"norway", "NO", Continent::kEurope, 64.6, 12.6, 5.4, 0.7, 4.0},
    {"denmark", "DK", Continent::kEurope, 56.3, 9.5, 5.8, 0.7, 1.2},
    {"finland", "FI", Continent::kEurope, 64.0, 26.0, 5.5, 0.6, 3.5},
    {"czechia", "CZ", Continent::kEurope, 49.8, 15.5, 10.7, 0.8, 1.5},
    {"hungary", "HU", Continent::kEurope, 47.2, 19.5, 9.7, 0.7, 1.5},
    {"greece", "GR", Continent::kEurope, 39.1, 21.8, 10.4, 0.6, 2.0},
    {"romania", "RO", Continent::kEurope, 45.9, 25.0, 19.2, 0.7, 2.0},
    {"ukraine", "UA", Continent::kEurope, 48.4, 31.2, 41.0, 0.6, 3.0},
    {"croatia", "HR", Continent::kEurope, 45.1, 15.2, 3.9, 0.3, 1.2},
    {"slovakia", "SK", Continent::kEurope, 48.7, 19.7, 5.5, 0.3, 1.0},
    {"bulgaria", "BG", Continent::kEurope, 42.7, 25.5, 6.9, 0.3, 1.5},
    {"lithuania", "LT", Continent::kEurope, 55.2, 23.9, 2.8, 0.2, 1.0},
    {"latvia", "LV", Continent::kEurope, 56.9, 24.6, 1.9, 0.2, 1.0},
    {"estonia", "EE", Continent::kEurope, 58.6, 25.0, 1.3, 0.2, 1.0},
    {"slovenia", "SI", Continent::kEurope, 46.1, 14.8, 2.1, 0.2, 0.8},
    {"luxembourg", "LU", Continent::kEurope, 49.8, 6.1, 0.6, 0.2, 0.3},
    // A few more non-European sources so global heatmaps are dense.
    {"hongkong", "HK", Continent::kAsia, 22.3, 114.2, 7.5, 0.9, 0.3},
    {"southkorea", "KR", Continent::kAsia, 36.5, 127.8, 52, 1.6, 2.0},
    {"uae", "AE", Continent::kAsia, 23.4, 53.8, 9.9, 0.9, 1.5},
    {"argentina", "AR", Continent::kSouthAmerica, -38.4, -63.6, 45, 0.9, 6.0},
    {"newzealand", "NZ", Continent::kOceania, -40.9, 174.9, 5.1, 0.5, 3.0},
    {"kenya", "KE", Continent::kAfrica, -0.02, 37.9, 54, 0.4, 3.0},
};

struct DcSpec {
  const char* name;
  const char* country;  // host country name (must exist above)
  Continent continent;
  double lat, lon;
  double cores;
  bool representative;
};

// The 21 DC locations of Fig. 2, approximated by Azure-like metros. The six
// representative destination DCs of Fig. 4 are flagged. Compute capacities
// (cores) are synthetic, larger in major regions.
constexpr DcSpec kDcs[] = {
    {"us1", "us", Continent::kNorthAmerica, 38.9, -77.5, 260000, true},   // Virginia
    {"us2", "us", Continent::kNorthAmerica, 37.4, -79.2, 160000, false},  // Virginia-2
    {"us3", "us", Continent::kNorthAmerica, 41.6, -93.6, 140000, false},  // Iowa
    {"us4", "us", Continent::kNorthAmerica, 29.4, -98.5, 140000, false},  // Texas
    {"us5", "us", Continent::kNorthAmerica, 37.2, -121.8, 180000, false}, // California
    {"us6", "us", Continent::kNorthAmerica, 47.2, -119.9, 160000, false}, // Washington
    {"us7", "us", Continent::kNorthAmerica, 41.9, -87.7, 140000, false},  // Illinois
    {"canada", "canada", Continent::kNorthAmerica, 43.65, -79.38, 120000, true},  // Toronto
    {"brazil", "brazil", Continent::kSouthAmerica, -23.55, -46.63, 90000, false}, // Sao Paulo
    {"uk", "uk", Continent::kEurope, 51.51, -0.13, 90000, false},            // London
    {"france", "france", Continent::kEurope, 48.86, 2.35, 110000, false},    // Paris
    {"netherlands", "netherlands", Continent::kEurope, 52.37, 4.90, 140000, true},  // Amsterdam
    {"switzerland", "switzerland", Continent::kEurope, 47.38, 8.54, 110000, false}, // Zurich
    {"ireland", "ireland", Continent::kEurope, 53.35, -6.26, 270000, false},  // Dublin
    {"india", "india", Continent::kAsia, 18.52, 73.86, 150000, false},        // Pune
    {"japan", "japan", Continent::kAsia, 35.68, 139.69, 120000, false},       // Tokyo
    {"hongkong", "hongkong", Continent::kAsia, 22.32, 114.17, 90000, true},
    {"singapore", "singapore", Continent::kAsia, 1.35, 103.82, 110000, false},
    {"australia1", "australia", Continent::kOceania, -33.87, 151.21, 90000, true},  // Sydney
    {"australia2", "australia", Continent::kOceania, -37.81, 144.96, 70000, false}, // Melbourne
    {"southafrica", "southafrica", Continent::kAfrica, -26.20, 28.05, 70000, true}, // Johannesburg
};

}  // namespace

World World::make(const WorldOptions& options) {
  World w;
  core::Rng rng(options.seed);

  // Countries.
  w.countries_.reserve(std::size(kCountries));
  for (std::size_t i = 0; i < std::size(kCountries); ++i) {
    const auto& s = kCountries[i];
    Country c;
    c.id = core::CountryId(static_cast<int>(i));
    c.name = s.name;
    c.iso = s.iso;
    c.continent = s.continent;
    c.centroid = {s.lat, s.lon};
    c.population_m = s.population_m;
    c.call_volume = s.call_volume;
    c.spread_deg = s.spread_deg;
    w.countries_.push_back(std::move(c));
  }

  // DCs.
  w.dcs_.reserve(std::size(kDcs));
  for (std::size_t i = 0; i < std::size(kDcs); ++i) {
    const auto& s = kDcs[i];
    DataCenter d;
    d.id = core::DcId(static_cast<int>(i));
    d.name = s.name;
    d.position = {s.lat, s.lon};
    d.continent = s.continent;
    d.cores = s.cores;
    d.representative = s.representative;
    d.country = core::CountryId::invalid();
    for (const auto& c : w.countries_) {
      if (c.name == s.country) {
        d.country = c.id;
        break;
      }
    }
    assert(d.country.valid() && "DC host country must be in the country table");
    w.dcs_.push_back(std::move(d));
  }

  // Cities and ASNs per country.
  w.cities_by_country_.resize(w.countries_.size());
  w.asns_by_country_.resize(w.countries_.size());
  w.city_weights_.resize(w.countries_.size());
  w.asn_weights_.resize(w.countries_.size());

  for (const auto& c : w.countries_) {
    core::Rng crng = rng.fork(static_cast<std::uint64_t>(c.id.value()));

    const int n_cities = std::clamp(
        static_cast<int>(std::lround(c.population_m * options.cities_per_million)),
        options.min_cities_per_country, options.max_cities_per_country);
    for (int i = 0; i < n_cities; ++i) {
      City city;
      city.id = core::CityId(static_cast<int>(w.cities_.size()));
      city.country = c.id;
      city.name = c.name + "-city" + std::to_string(i);
      city.position = {
          c.centroid.lat_deg + crng.normal(0.0, c.spread_deg * 0.5),
          c.centroid.lon_deg + crng.normal(0.0, c.spread_deg * 0.8),
      };
      city.position.lat_deg = std::clamp(city.position.lat_deg, -85.0, 85.0);
      // Zipf city sizes: largest city holds the biggest share.
      city.population_k =
          c.population_m * 1000.0 * 0.35 / std::pow(static_cast<double>(i + 1), 1.07);
      w.cities_by_country_[static_cast<std::size_t>(c.id.value())].push_back(city.id);
      w.city_weights_[static_cast<std::size_t>(c.id.value())].push_back(city.population_k);
      w.cities_.push_back(std::move(city));
    }

    const int n_asns = std::clamp(
        static_cast<int>(std::lround(std::sqrt(c.population_m) * 1.6)),
        options.min_asns_per_country, options.max_asns_per_country);
    double share_left = 1.0;
    for (int i = 0; i < n_asns; ++i) {
      Asn a;
      a.id = core::AsnId(static_cast<int>(w.asns_.size()));
      a.country = c.id;
      a.name = c.iso + std::string("-AS") + std::to_string(64512 + i);
      a.share = (i + 1 == n_asns) ? share_left : share_left * crng.uniform(0.3, 0.55);
      share_left -= a.share;
      // Last-mile quality: most ASNs nominal, a minority notably worse.
      a.quality = crng.chance(0.15) ? crng.uniform(1.02, 1.12) : crng.uniform(0.99, 1.04);
      w.asns_by_country_[static_cast<std::size_t>(c.id.value())].push_back(a.id);
      w.asn_weights_[static_cast<std::size_t>(c.id.value())].push_back(a.share);
      w.asns_.push_back(std::move(a));
    }
  }

  return w;
}

const Country& World::country(core::CountryId id) const {
  return countries_.at(static_cast<std::size_t>(id.value()));
}
const City& World::city(core::CityId id) const {
  return cities_.at(static_cast<std::size_t>(id.value()));
}
const Asn& World::asn(core::AsnId id) const {
  return asns_.at(static_cast<std::size_t>(id.value()));
}
const DataCenter& World::dc(core::DcId id) const {
  return dcs_.at(static_cast<std::size_t>(id.value()));
}

core::CountryId World::find_country(const std::string& name) const {
  for (const auto& c : countries_)
    if (c.name == name || c.iso == name) return c.id;
  return core::CountryId::invalid();
}

core::DcId World::find_dc(const std::string& name) const {
  for (const auto& d : dcs_)
    if (d.name == name) return d.id;
  return core::DcId::invalid();
}

const std::vector<core::CityId>& World::cities_of(core::CountryId c) const {
  return cities_by_country_.at(static_cast<std::size_t>(c.value()));
}
const std::vector<core::AsnId>& World::asns_of(core::CountryId c) const {
  return asns_by_country_.at(static_cast<std::size_t>(c.value()));
}

std::vector<core::DcId> World::dcs_in(Continent c) const {
  std::vector<core::DcId> out;
  for (const auto& d : dcs_)
    if (d.continent == c) out.push_back(d.id);
  return out;
}

std::vector<core::CountryId> World::countries_in(Continent c) const {
  std::vector<core::CountryId> out;
  for (const auto& ctry : countries_)
    if (ctry.continent == c) out.push_back(ctry.id);
  return out;
}

std::vector<core::DcId> World::representative_dcs() const {
  std::vector<core::DcId> out;
  for (const auto& d : dcs_)
    if (d.representative) out.push_back(d.id);
  return out;
}

core::CityId World::sample_city(core::CountryId c, core::Rng& rng) const {
  const auto idx = rng.weighted_pick(city_weights_.at(static_cast<std::size_t>(c.value())));
  return cities_by_country_[static_cast<std::size_t>(c.value())][idx];
}

core::AsnId World::sample_asn(core::CountryId c, core::Rng& rng) const {
  const auto idx = rng.weighted_pick(asn_weights_.at(static_cast<std::size_t>(c.value())));
  return asns_by_country_[static_cast<std::size_t>(c.value())][idx];
}

core::CountryId World::sample_country(core::Rng& rng, const Continent* restrict_to) const {
  std::vector<double> weights(countries_.size(), 0.0);
  for (const auto& c : countries_) {
    if (restrict_to != nullptr && c.continent != *restrict_to) continue;
    weights[static_cast<std::size_t>(c.id.value())] = c.call_volume;
  }
  return core::CountryId(static_cast<int>(rng.weighted_pick(weights)));
}

}  // namespace titan::geo
