// Geographic coordinates and great-circle distance.
#pragma once

namespace titan::geo {

struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

// Great-circle distance in kilometres (haversine, spherical Earth).
[[nodiscard]] double haversine_km(LatLon a, LatLon b);

// Lower bound on one-way propagation delay between two points, in
// milliseconds, assuming light in fibre (~2/3 c) along the geodesic.
// Real paths are longer; the latency models in `net` apply multiplicative
// inflation on top of this bound.
[[nodiscard]] double fiber_delay_ms(LatLon a, LatLon b);

}  // namespace titan::geo
