// Synthetic world model.
//
// The paper's measurement corpus spans 244 source countries, 241K cities,
// 61K ASNs and 21 Azure data centers. We build a deterministic synthetic
// world with the same *structure*: a curated set of countries (the 22 of
// Fig. 4 plus a dense European set for the Titan-Next evaluation), the 21 DC
// locations of Fig. 2 approximated by real metro coordinates, and
// procedurally generated cities/ASNs per country. All downstream analyses
// (hourly medians, fraction-F heatmaps, granularity clustering) operate on
// this world exactly as they would on the production geolocation database.
#pragma once

#include <string>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "geo/location.h"

namespace titan::geo {

enum class Continent {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAsia,
  kAfrica,
  kOceania,
};

// Number of Continent enumerators; sizes per-region metric arrays.
inline constexpr int kNumContinents = 6;
static_assert(kNumContinents == static_cast<int>(Continent::kOceania) + 1,
              "kNumContinents must cover every Continent enumerator");

[[nodiscard]] std::string continent_name(Continent c);

struct Country {
  core::CountryId id;
  std::string name;       // lowercase short name, e.g. "france"
  std::string iso;        // two-letter code, e.g. "FR"
  Continent continent;
  LatLon centroid;
  double population_m;    // population in millions, drives city synthesis
  double call_volume;     // relative Teams call volume weight
  double spread_deg;      // geographic dispersion of synthetic cities
};

struct City {
  core::CityId id;
  core::CountryId country;
  std::string name;
  LatLon position;
  double population_k;  // thousands
};

struct Asn {
  core::AsnId id;
  core::CountryId country;
  std::string name;
  double share;  // fraction of the country's clients on this ASN
  // Per-ASN last-mile quality multiplier applied to Internet path latency;
  // 1.0 is nominal, >1 is a worse-than-average eyeball network.
  double quality;
};

struct DataCenter {
  core::DcId id;
  std::string name;         // e.g. "netherlands", "us1"
  core::CountryId country;  // country hosting the DC
  LatLon position;
  Continent continent;
  double cores;  // provisioned MP compute capacity (cores)
  // True for the 6 representative DCs highlighted in Fig. 2 / Fig. 4.
  bool representative = false;
};

// Parameters controlling procedural synthesis.
struct WorldOptions {
  std::uint64_t seed = 42;
  // Cities generated per million population (clamped to [min,max] per country).
  double cities_per_million = 0.35;
  int min_cities_per_country = 3;
  int max_cities_per_country = 60;
  int min_asns_per_country = 3;
  int max_asns_per_country = 14;
};

class World {
 public:
  // Builds the curated countries + 21 DCs and synthesizes cities/ASNs.
  static World make(const WorldOptions& options = {});

  [[nodiscard]] const std::vector<Country>& countries() const { return countries_; }
  [[nodiscard]] const std::vector<City>& cities() const { return cities_; }
  [[nodiscard]] const std::vector<Asn>& asns() const { return asns_; }
  [[nodiscard]] const std::vector<DataCenter>& dcs() const { return dcs_; }

  [[nodiscard]] const Country& country(core::CountryId id) const;
  [[nodiscard]] const City& city(core::CityId id) const;
  [[nodiscard]] const Asn& asn(core::AsnId id) const;
  [[nodiscard]] const DataCenter& dc(core::DcId id) const;

  // Lookup by name; returns invalid id when absent.
  [[nodiscard]] core::CountryId find_country(const std::string& name) const;
  [[nodiscard]] core::DcId find_dc(const std::string& name) const;

  [[nodiscard]] const std::vector<core::CityId>& cities_of(core::CountryId c) const;
  [[nodiscard]] const std::vector<core::AsnId>& asns_of(core::CountryId c) const;

  // All DCs on a continent (e.g. the 5 European MP DCs used in §7).
  [[nodiscard]] std::vector<core::DcId> dcs_in(Continent c) const;
  [[nodiscard]] std::vector<core::CountryId> countries_in(Continent c) const;

  // The 6 representative destination DCs of Fig. 4.
  [[nodiscard]] std::vector<core::DcId> representative_dcs() const;

  // Sample a client city for a country, weighted by city population.
  [[nodiscard]] core::CityId sample_city(core::CountryId c, core::Rng& rng) const;
  // Sample a client ASN for a country, weighted by ASN share.
  [[nodiscard]] core::AsnId sample_asn(core::CountryId c, core::Rng& rng) const;
  // Sample a client country weighted by call volume (optionally restricted
  // to a continent; pass nullptr for global).
  [[nodiscard]] core::CountryId sample_country(core::Rng& rng,
                                               const Continent* restrict_to = nullptr) const;

 private:
  std::vector<Country> countries_;
  std::vector<City> cities_;
  std::vector<Asn> asns_;
  std::vector<DataCenter> dcs_;
  std::vector<std::vector<core::CityId>> cities_by_country_;
  std::vector<std::vector<core::AsnId>> asns_by_country_;
  std::vector<std::vector<double>> city_weights_;  // per country
  std::vector<std::vector<double>> asn_weights_;   // per country
};

}  // namespace titan::geo
