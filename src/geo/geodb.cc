#include "geo/geodb.h"

#include <cassert>

namespace titan::geo {

GeoDb GeoDb::make(const World& world, std::uint64_t seed, int subnets_per_point) {
  GeoDb db;
  core::Rng rng(seed);
  db.by_country_.resize(world.countries().size());
  db.weights_.resize(world.countries().size());

  SubnetKey next = 1;
  for (const auto& country : world.countries()) {
    const auto cidx = static_cast<std::size_t>(country.id.value());
    for (core::CityId city_id : world.cities_of(country.id)) {
      const City& city = world.city(city_id);
      for (core::AsnId asn_id : world.asns_of(country.id)) {
        const Asn& asn = world.asn(asn_id);
        for (int k = 0; k < subnets_per_point; ++k) {
          SubnetRecord rec{next++, country.id, city_id, asn_id};
          db.index_[rec.subnet] = db.records_.size();
          db.by_country_[cidx].push_back(rec.subnet);
          // Weight: clients in this subnet ~ city population x ASN share,
          // jittered so subnets within a point differ.
          db.weights_[cidx].push_back(city.population_k * asn.share *
                                      rng.uniform(0.5, 1.5));
          db.records_.push_back(rec);
        }
      }
    }
  }
  return db;
}

std::optional<SubnetRecord> GeoDb::lookup(SubnetKey subnet) const {
  const auto it = index_.find(subnet);
  if (it == index_.end()) return std::nullopt;
  return records_[it->second];
}

SubnetKey GeoDb::sample_subnet(core::CountryId country, core::Rng& rng) const {
  const auto cidx = static_cast<std::size_t>(country.value());
  assert(cidx < by_country_.size() && !by_country_[cidx].empty());
  return by_country_[cidx][rng.weighted_pick(weights_[cidx])];
}

}  // namespace titan::geo
