// Synthetic geolocation database.
//
// The production pipeline logs the /24-masked client IP of every probe and
// translates it offline to (country, city, ASN) using a proprietary
// geolocation database. We reproduce that flow: the world synthesizer
// allocates a deterministic set of /24 subnets to each (city, ASN) pair and
// `GeoDb` performs the offline translation. This keeps the measurement
// pipeline faithful — probes carry only a subnet key, and analysis joins
// against the DB — and gives Table 1 its "IP subnets" row.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "geo/world.h"

namespace titan::geo {

// Opaque /24 subnet key (synthetic; not a real IPv4 prefix).
using SubnetKey = std::uint32_t;

struct SubnetRecord {
  SubnetKey subnet;
  core::CountryId country;
  core::CityId city;
  core::AsnId asn;
};

class GeoDb {
 public:
  // Allocates `subnets_per_point` /24s for every (city, asn-of-country)
  // combination, producing the corpus the measurement study draws clients
  // from.
  static GeoDb make(const World& world, std::uint64_t seed = 7, int subnets_per_point = 3);

  [[nodiscard]] std::optional<SubnetRecord> lookup(SubnetKey subnet) const;
  [[nodiscard]] const std::vector<SubnetRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t subnet_count() const { return records_.size(); }

  // Sample a subnet for a given country, weighted by city population and
  // ASN share (weights baked in at construction).
  [[nodiscard]] SubnetKey sample_subnet(core::CountryId country, core::Rng& rng) const;

 private:
  std::vector<SubnetRecord> records_;
  std::unordered_map<SubnetKey, std::size_t> index_;
  // Per-country subnet lists and sampling weights.
  std::vector<std::vector<SubnetKey>> by_country_;
  std::vector<std::vector<double>> weights_;
};

}  // namespace titan::geo
