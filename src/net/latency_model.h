// Ground-truth latency model for the WAN and Internet routing options.
//
// The WAN side is structural: a (client country, DC) pair's WAN RTT is
// last-mile access delay plus twice the shortest-path propagation over the
// synthetic backbone (cold potato — the path rides the WAN from the client's
// country PoP).
//
// The Internet side is calibrated: the paper's central measurement result
// (Fig. 3/4) is the *distribution of the Internet-minus-WAN difference* per
// corridor. We therefore model the Internet RTT as WAN RTT plus a
// per-(country, DC) persistent delta drawn from a corridor-level prior
// (NA–EU good, intra-EU good, EU–HK poor, ...), scaled by the pair's
// geodesic distance, plus hourly wander and per-probe noise. The Internet
// RTT is clamped to stay above the speed-of-light bound.
//
// `epoch_months` shifts the model back in time: latencies were globally a
// few percent higher 12 months ago (Fig. 18, Internet improved slightly
// more), and the NA–EU Internet corridor was slightly worse 6 months ago
// (Fig. 19).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "core/units.h"
#include "geo/world.h"
#include "net/path.h"
#include "net/wan_topology.h"

namespace titan::net {

struct LatencyModelOptions {
  std::uint64_t seed = 21;
  // 0 = the paper's "June 2024" reference week; negative values move the
  // model into the past (e.g. -6 for December 2023, -12 for June 2023).
  double epoch_months = 0.0;
  // Per-hour wander of the pair's median, as a fraction of geodesic RTT.
  double hourly_sigma = 0.11;
  // Per-probe noise scale (msec, lognormal-ish).
  double probe_noise_ms = 2.0;
};

class LatencyModel {
 public:
  LatencyModel(const geo::World& world, const WanTopology& topology,
               const LatencyModelOptions& options = {});

  // Deterministic hourly median RTT (msec) for the pair; `absolute_hour`
  // counts from the start of the trace.
  [[nodiscard]] core::Millis hourly_rtt_ms(core::CountryId client, core::DcId dc,
                                           PathType path, int absolute_hour) const;

  // Time-invariant pair RTT used for planning (the LP's E2ELatency inputs):
  // the pair's median across hours.
  [[nodiscard]] core::Millis base_rtt_ms(core::CountryId client, core::DcId dc,
                                         PathType path) const;

  // One probe observation: hourly median + city/ASN heterogeneity +
  // measurement noise, as logged by the HTTPS 1x1-image endpoints (§3).
  [[nodiscard]] core::Millis probe_rtt_ms(core::CityId city, core::AsnId asn, core::DcId dc,
                                          PathType path, int absolute_hour,
                                          core::Rng& rng) const;

  [[nodiscard]] const geo::World& world() const { return *world_; }

 private:
  struct PairParams {
    core::Millis wan_base_rtt;    // 2 * (last-mile + backbone one-way)
    core::Millis internet_delta;  // persistent Internet - WAN median gap
    core::Millis geodesic_rtt;    // physical lower bound (RTT)
    core::Millis wander_scale;    // hourly wander magnitude
  };

  [[nodiscard]] const PairParams& pair(core::CountryId c, core::DcId d) const;
  [[nodiscard]] core::Millis epoch_scale(PathType path) const;

  const geo::World* world_;
  const WanTopology* topology_;
  LatencyModelOptions options_;
  std::vector<std::vector<PairParams>> pairs_;  // [country][dc]
};

// Corridor prior: mean/stddev of the persistent Internet-minus-WAN delta as
// a fraction of the pair's geodesic RTT. Exposed for tests.
struct CorridorPrior {
  double delta_mu;
  double delta_sigma;
};
[[nodiscard]] CorridorPrior corridor_prior(geo::Continent client, geo::Continent dc_continent);

}  // namespace titan::net
