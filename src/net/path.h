// Routing option and WAN path descriptors.
#pragma once

#include <string>
#include <vector>

#include "core/ids.h"
#include "core/units.h"

namespace titan::net {

// The two routing options of the paper (Fig. 1): the private WAN carries the
// traffic end-to-end (cold potato: ingress near the user), while the Internet
// option hands traffic to transit ISPs near the DC (hot potato).
enum class PathType { kWan, kInternet };

// Number of PathType enumerators; sizes flat per-(dc, path) state arrays.
inline constexpr int kNumPathTypes = 2;

[[nodiscard]] inline std::string path_type_name(PathType p) {
  return p == PathType::kWan ? "WAN" : "Internet";
}

// A concrete WAN route between a client country's ingress PoP and an MP DC:
// the ordered backbone links it traverses and its propagation latency.
// isLinkUsed(c, m, p, l) in the paper's LP (Fig. 13, C5) is membership in
// `links` here.
struct WanPath {
  std::vector<core::LinkId> links;
  core::Millis one_way_ms = 0.0;  // PoP -> DC propagation
};

}  // namespace titan::net
