#include "net/wan_topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace titan::net {

namespace {

double node_distance_km(const WanNode& a, const WanNode& b) {
  return geo::haversine_km(a.position, b.position);
}

}  // namespace

WanTopology WanTopology::make(const geo::World& world, const WanTopologyOptions& options) {
  WanTopology t;
  core::Rng rng(options.seed);

  // Nodes: one per DC, then one ingress PoP per country. A country that
  // hosts a DC still gets its own PoP — cold-potato ingress happens at the
  // metro edge, not inside the DC.
  t.node_by_dc_.resize(world.dcs().size(), core::PopId::invalid());
  t.pop_by_country_.resize(world.countries().size(), core::PopId::invalid());

  for (const auto& dc : world.dcs()) {
    WanNode n;
    n.id = core::PopId(static_cast<int>(t.nodes_.size()));
    n.position = dc.position;
    n.is_dc = true;
    n.dc = dc.id;
    n.country = dc.country;
    t.node_by_dc_[static_cast<std::size_t>(dc.id.value())] = n.id;
    t.nodes_.push_back(n);
  }
  for (const auto& c : world.countries()) {
    WanNode n;
    n.id = core::PopId(static_cast<int>(t.nodes_.size()));
    // PoP sits at the country's largest synthetic city.
    const auto& cities = world.cities_of(c.id);
    n.position = cities.empty() ? c.centroid : world.city(cities.front()).position;
    n.is_dc = false;
    n.country = c.id;
    t.pop_by_country_[static_cast<std::size_t>(c.id.value())] = n.id;
    t.nodes_.push_back(n);
  }

  // Edge set: start from an MST over geodesic distances (guarantees
  // connectivity), then enrich with k-nearest extras.
  const std::size_t n = t.nodes_.size();
  std::set<std::pair<int, int>> edge_set;
  auto add_edge_key = [&](int a, int b) {
    if (a > b) std::swap(a, b);
    return edge_set.insert({a, b}).second;
  };

  // Prim's MST.
  {
    std::vector<bool> in_tree(n, false);
    std::vector<double> best(n, std::numeric_limits<double>::infinity());
    std::vector<int> parent(n, -1);
    best[0] = 0.0;
    for (std::size_t iter = 0; iter < n; ++iter) {
      int u = -1;
      double bd = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i)
        if (!in_tree[i] && best[i] < bd) {
          bd = best[i];
          u = static_cast<int>(i);
        }
      assert(u >= 0);
      in_tree[static_cast<std::size_t>(u)] = true;
      if (parent[static_cast<std::size_t>(u)] >= 0)
        add_edge_key(parent[static_cast<std::size_t>(u)], u);
      for (std::size_t v = 0; v < n; ++v) {
        if (in_tree[v]) continue;
        const double d = node_distance_km(t.nodes_[static_cast<std::size_t>(u)], t.nodes_[v]);
        if (d < best[v]) {
          best[v] = d;
          parent[v] = u;
        }
      }
    }
  }

  // k-nearest enrichment.
  auto nearest = [&](std::size_t i, int k, bool dcs_only) {
    std::vector<std::pair<double, int>> cand;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (dcs_only && !t.nodes_[j].is_dc) continue;
      cand.push_back({node_distance_km(t.nodes_[i], t.nodes_[j]), static_cast<int>(j)});
    }
    std::sort(cand.begin(), cand.end());
    if (static_cast<int>(cand.size()) > k) cand.resize(static_cast<std::size_t>(k));
    return cand;
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (t.nodes_[i].is_dc) {
      for (const auto& [d, j] : nearest(i, options.dc_neighbors, /*dcs_only=*/true))
        add_edge_key(static_cast<int>(i), j);
    } else {
      for (const auto& [d, j] : nearest(i, options.pop_dc_neighbors, /*dcs_only=*/true))
        add_edge_key(static_cast<int>(i), j);
      int added = 0;
      for (const auto& [d, j] : nearest(i, options.pop_pop_neighbors + 4, /*dcs_only=*/false)) {
        if (t.nodes_[static_cast<std::size_t>(j)].is_dc) continue;
        add_edge_key(static_cast<int>(i), j);
        if (++added >= options.pop_pop_neighbors) break;
      }
    }
  }

  // Materialize links.
  t.adjacency_.resize(n);
  for (const auto& [a, b] : edge_set) {
    WanLink l;
    l.id = core::LinkId(static_cast<int>(t.links_.size()));
    l.a = core::PopId(a);
    l.b = core::PopId(b);
    const double km = node_distance_km(t.nodes_[static_cast<std::size_t>(a)],
                                       t.nodes_[static_cast<std::size_t>(b)]);
    l.latency_ms = geo::fiber_delay_ms(t.nodes_[static_cast<std::size_t>(a)].position,
                                       t.nodes_[static_cast<std::size_t>(b)].position) *
                   options.routing_inflation;
    // Long-haul links are fatter (trunked); all values synthetic.
    l.capacity_mbps = (km > 3000 ? 800.0 : 400.0) * core::kMbpsPerGbps *
                      rng.uniform(0.8, 1.3);
    t.adjacency_[static_cast<std::size_t>(a)].push_back({l.b, l.id});
    t.adjacency_[static_cast<std::size_t>(b)].push_back({l.a, l.id});
    t.links_.push_back(l);
  }

  t.compute_paths(world);
  return t;
}

void WanTopology::reroute_around_dead_links(const geo::World& world) {
  const auto previous = paths_;
  compute_paths(world, /*skip_dead_links=*/true);
  // Keep the old (dead) path where no live route exists.
  for (std::size_t c = 0; c < paths_.size(); ++c)
    for (std::size_t d = 0; d < paths_[c].size(); ++d)
      if (std::isinf(paths_[c][d].one_way_ms)) paths_[c][d] = previous[c][d];
}

void WanTopology::compute_paths(const geo::World& world, bool skip_dead_links) {
  const std::size_t n = nodes_.size();
  paths_.assign(world.countries().size(), std::vector<WanPath>(world.dcs().size()));

  // Dijkstra from each DC node (fewer DCs than countries).
  for (const auto& dc : world.dcs()) {
    const core::PopId src = node_by_dc_[static_cast<std::size_t>(dc.id.value())];
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<core::LinkId> via(n, core::LinkId::invalid());
    std::vector<int> prev(n, -1);
    using QE = std::pair<double, int>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> q;
    dist[static_cast<std::size_t>(src.value())] = 0.0;
    q.push({0.0, src.value()});
    while (!q.empty()) {
      const auto [d, u] = q.top();
      q.pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;
      for (const auto& [v, lid] : adjacency_[static_cast<std::size_t>(u)]) {
        if (skip_dead_links && links_[static_cast<std::size_t>(lid.value())].capacity_scale <= 0.0)
          continue;
        const double nd = d + links_[static_cast<std::size_t>(lid.value())].latency_ms;
        if (nd < dist[static_cast<std::size_t>(v.value())]) {
          dist[static_cast<std::size_t>(v.value())] = nd;
          via[static_cast<std::size_t>(v.value())] = lid;
          prev[static_cast<std::size_t>(v.value())] = u;
          q.push({nd, v.value()});
        }
      }
    }

    for (const auto& c : world.countries()) {
      const core::PopId pop = pop_by_country_[static_cast<std::size_t>(c.id.value())];
      WanPath p;
      p.one_way_ms = dist[static_cast<std::size_t>(pop.value())];
      // Walk back from the PoP to the DC collecting links.
      int cur = pop.value();
      while (cur != src.value() && prev[static_cast<std::size_t>(cur)] != -1) {
        p.links.push_back(via[static_cast<std::size_t>(cur)]);
        cur = prev[static_cast<std::size_t>(cur)];
      }
      std::reverse(p.links.begin(), p.links.end());
      paths_[static_cast<std::size_t>(c.id.value())][static_cast<std::size_t>(dc.id.value())] =
          std::move(p);
    }
  }
}

const WanLink& WanTopology::link(core::LinkId id) const {
  return links_.at(static_cast<std::size_t>(id.value()));
}

core::PopId WanTopology::pop_of_country(core::CountryId c) const {
  return pop_by_country_.at(static_cast<std::size_t>(c.value()));
}

core::PopId WanTopology::node_of_dc(core::DcId d) const {
  return node_by_dc_.at(static_cast<std::size_t>(d.value()));
}

const WanPath& WanTopology::path(core::CountryId c, core::DcId d) const {
  return paths_.at(static_cast<std::size_t>(c.value())).at(static_cast<std::size_t>(d.value()));
}

void WanTopology::set_link_capacity_scale(core::LinkId id, double scale) {
  if (scale < 0.0) throw std::invalid_argument("capacity scale must be >= 0");
  links_.at(static_cast<std::size_t>(id.value())).capacity_scale = scale;
}

}  // namespace titan::net
