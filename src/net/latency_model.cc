#include "net/latency_model.h"

#include <algorithm>
#include <cmath>

#include "core/hash.h"

namespace titan::net {

namespace {

using geo::Continent;

constexpr std::uint64_t kPairStream = 0xA1;
constexpr std::uint64_t kHourStream = 0xA2;
constexpr std::uint64_t kCityStream = 0xA3;

bool is_na_eu_corridor(Continent a, Continent b) {
  return (a == Continent::kNorthAmerica && b == Continent::kEurope) ||
         (a == Continent::kEurope && b == Continent::kNorthAmerica);
}

}  // namespace

CorridorPrior corridor_prior(Continent client, Continent dc_continent) {
  using C = Continent;
  // delta as a fraction of the pair's geodesic RTT; negative means the
  // Internet path is typically shorter than the WAN route for the pair.
  // Values are calibrated so the fraction-F heatmap (Fig. 4) and the global
  // difference buckets (Fig. 3) match the paper's shape.
  if (client == C::kEurope && dc_continent == C::kEurope) return {-0.02, 0.34};
  if (is_na_eu_corridor(client, dc_continent)) return {-0.01, 0.10};
  if (client == C::kNorthAmerica && dc_continent == C::kNorthAmerica) return {0.00, 0.22};
  if (client == C::kEurope && dc_continent == C::kAfrica) return {-0.04, 0.08};
  if (client == C::kEurope && dc_continent == C::kAsia) return {0.14, 0.12};
  if (client == C::kAsia && dc_continent == C::kEurope) return {0.09, 0.12};
  if (client == C::kAsia && dc_continent == C::kAsia) return {0.05, 0.16};
  if (client == C::kAsia && dc_continent == C::kNorthAmerica) return {0.07, 0.18};
  if (client == C::kNorthAmerica && dc_continent == C::kAsia) return {0.07, 0.18};
  if (client == C::kOceania || dc_continent == C::kOceania) return {0.04, 0.16};
  if (client == C::kAfrica || dc_continent == C::kAfrica) return {0.05, 0.20};
  if (client == C::kSouthAmerica || dc_continent == C::kSouthAmerica) return {0.05, 0.18};
  return {0.05, 0.20};
}

LatencyModel::LatencyModel(const geo::World& world, const WanTopology& topology,
                           const LatencyModelOptions& options)
    : world_(&world), topology_(&topology), options_(options) {
  pairs_.resize(world.countries().size());
  for (const auto& country : world.countries()) {
    auto& row = pairs_[static_cast<std::size_t>(country.id.value())];
    row.resize(world.dcs().size());
    for (const auto& dc : world.dcs()) {
      PairParams p;
      const double geodesic_one_way =
          geo::fiber_delay_ms(country.centroid, dc.position);
      p.geodesic_rtt = 2.0 * geodesic_one_way;

      core::Rng prng = core::rng_at(options.seed, kPairStream,
                                    country.id.value(), dc.id.value());
      // Last-mile access delay (both routing options traverse the same
      // last-mile ISP segment).
      const double last_mile = prng.uniform(2.0, 7.0);
      p.wan_base_rtt =
          2.0 * (topology.path(country.id, dc.id).one_way_ms) + 2.0 * last_mile + 1.0;

      CorridorPrior prior = corridor_prior(country.continent, dc.continent);
      // 6 months back the NA-EU Internet corridor was slightly worse
      // (Fig. 19); apply a small positive shift for past epochs.
      if (options.epoch_months < -3.0 && is_na_eu_corridor(country.continent, dc.continent))
        prior.delta_mu += 0.03;
      const double delta_frac = prng.normal(prior.delta_mu, prior.delta_sigma);
      // The delta scales with geodesic RTT plus a floor so that even
      // same-metro pairs can differ by a few msec (peering richness).
      p.internet_delta = delta_frac * std::max(p.geodesic_rtt, 12.0);

      p.wander_scale =
          options.hourly_sigma * std::max(p.geodesic_rtt, 15.0) * prng.uniform(0.6, 1.6);
      row[static_cast<std::size_t>(dc.id.value())] = p;
    }
  }
}

const LatencyModel::PairParams& LatencyModel::pair(core::CountryId c, core::DcId d) const {
  return pairs_[static_cast<std::size_t>(c.value())][static_cast<std::size_t>(d.value())];
}

core::Millis LatencyModel::epoch_scale(PathType path) const {
  // Latencies improved over the last 12 months for 80+% of paths, slightly
  // more on the Internet (Fig. 18). epoch_months <= 0; the past is slower.
  const double months_back = -options_.epoch_months;
  const double rate = path == PathType::kInternet ? 0.0050 : 0.0032;
  return 1.0 + rate * months_back;
}

core::Millis LatencyModel::hourly_rtt_ms(core::CountryId client, core::DcId dc, PathType path,
                                         int absolute_hour) const {
  const PairParams& p = pair(client, dc);
  core::Rng hrng = core::rng_at(options_.seed, kHourStream, client.value(), dc.value(),
                                static_cast<std::uint64_t>(path),
                                static_cast<std::uint64_t>(absolute_hour));
  double rtt = (path == PathType::kWan) ? p.wan_base_rtt : p.wan_base_rtt + p.internet_delta;
  // Internet medians wander hour to hour more than WAN medians.
  const double wander = p.wander_scale * (path == PathType::kInternet ? 1.0 : 0.45);
  rtt += hrng.normal(0.0, wander);
  rtt *= epoch_scale(path);
  // Physical floor: no path beats light in fibre (plus a processing msec).
  return std::max(rtt, p.geodesic_rtt + 1.0);
}

core::Millis LatencyModel::base_rtt_ms(core::CountryId client, core::DcId dc,
                                       PathType path) const {
  const PairParams& p = pair(client, dc);
  double rtt = (path == PathType::kWan) ? p.wan_base_rtt : p.wan_base_rtt + p.internet_delta;
  rtt *= epoch_scale(path);
  return std::max(rtt, p.geodesic_rtt + 1.0);
}

core::Millis LatencyModel::probe_rtt_ms(core::CityId city, core::AsnId asn, core::DcId dc,
                                        PathType path, int absolute_hour,
                                        core::Rng& rng) const {
  const geo::City& c = world_->city(city);
  const geo::Asn& a = world_->asn(asn);
  const double median = hourly_rtt_ms(c.country, dc, path, absolute_hour);

  // Persistent city offset: distance from the city to the country centroid
  // changes the effective last mile for both options.
  core::Rng crng = core::rng_at(options_.seed, kCityStream, city.value(), dc.value());
  const double city_offset =
      2.0 * geo::fiber_delay_ms(c.position, world_->country(c.country).centroid) *
      crng.uniform(0.5, 1.5);

  // ASN quality inflates Internet paths only: eyeball networks with poor
  // transit see it on hot-potato routes, while WAN ingress hides it.
  const double asn_factor = (path == PathType::kInternet) ? a.quality : 1.0;

  const double noise = rng.lognormal(0.0, 0.6) * options_.probe_noise_ms;
  return std::max(1.0, median * asn_factor + city_offset + noise);
}

}  // namespace titan::net
