// Synthetic private-WAN backbone.
//
// The paper's cost metric — the sum over WAN links of each link's peak
// bandwidth — needs a concrete link set and a mapping from (client country,
// MP DC) to the links its WAN path traverses. Azure's real topology is
// proprietary; we synthesize a globe-spanning backbone with the same
// structure: one ingress PoP per country, one node per DC, an MST for
// connectivity plus k-nearest-neighbour richness, and latency-weighted
// shortest-path routing. Cold-potato semantics fall out naturally: WAN
// traffic enters at the client country's PoP and rides the backbone all the
// way to the DC.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "core/units.h"
#include "geo/world.h"
#include "net/path.h"

namespace titan::net {

struct WanNode {
  core::PopId id;
  geo::LatLon position;
  bool is_dc = false;
  core::DcId dc = core::DcId::invalid();            // valid when is_dc
  core::CountryId country = core::CountryId::invalid();  // ingress PoP country
};

struct WanLink {
  core::LinkId id;
  core::PopId a;
  core::PopId b;
  core::Millis latency_ms;   // one-way propagation
  core::Mbps capacity_mbps;  // provisioned capacity (fiber-cut experiments)
  double capacity_scale = 1.0;  // 1.0 healthy; <1 after a fiber cut
};

struct WanTopologyOptions {
  std::uint64_t seed = 11;
  int dc_neighbors = 4;       // extra k-nearest edges between DCs
  int pop_dc_neighbors = 2;   // each PoP homes to this many nearby DCs
  int pop_pop_neighbors = 1;  // plus this many nearby peer PoPs
  double routing_inflation = 1.18;  // link latency vs geodesic fibre bound
};

class WanTopology {
 public:
  static WanTopology make(const geo::World& world, const WanTopologyOptions& options = {});

  [[nodiscard]] const std::vector<WanNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<WanLink>& links() const { return links_; }
  [[nodiscard]] const WanLink& link(core::LinkId id) const;

  [[nodiscard]] core::PopId pop_of_country(core::CountryId c) const;
  [[nodiscard]] core::PopId node_of_dc(core::DcId d) const;

  // Shortest WAN route (by latency) from a country's ingress PoP to a DC.
  // Precomputed; cheap to call.
  [[nodiscard]] const WanPath& path(core::CountryId c, core::DcId d) const;

  // Fiber-cut experiment support: scale a link's capacity (0 = severed).
  // Routing is latency-based and unchanged; capacity drops surface as
  // headroom loss in the evaluation layer.
  void set_link_capacity_scale(core::LinkId id, double scale);

  // Traffic engineering after a cut (closed-loop scenarios): recompute
  // latency-shortest routing over the *live* links only (capacity_scale >
  // 0). A pair left without a live route keeps its previous path — that
  // traffic blackholes on the dead segment until repair.
  void reroute_around_dead_links(const geo::World& world);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

 private:
  void compute_paths(const geo::World& world, bool skip_dead_links = false);

  std::vector<WanNode> nodes_;
  std::vector<WanLink> links_;
  std::vector<std::vector<std::pair<core::PopId, core::LinkId>>> adjacency_;
  std::vector<core::PopId> pop_by_country_;
  std::vector<core::PopId> node_by_dc_;
  // paths_[country][dc]
  std::vector<std::vector<WanPath>> paths_;
};

}  // namespace titan::net
