#include "net/network_db.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/hash.h"

namespace titan::net {

NetworkDb::NetworkDb(const geo::World& world, const NetworkDbOptions& options)
    : world_(&world), options_(options) {
  options_.topology.seed = core::hash_key(options.seed, 0x70);
  options_.latency.seed = core::hash_key(options.seed, 0x71);
  options_.loss.seed = core::hash_key(options.seed, 0x72);
  topology_ = std::make_unique<WanTopology>(WanTopology::make(world, options_.topology));
  latency_ = std::make_unique<LatencyModel>(world, *topology_, options_.latency);
  loss_ = std::make_unique<LossModel>(world, options_.loss);

  // Priority shares: capacity at each DC is split across client countries in
  // proportion to importance; we use call volume as the priority signal.
  double total = 0.0;
  for (const auto& c : world.countries()) total += c.call_volume;
  priority_share_.resize(world.countries().size());
  for (const auto& c : world.countries())
    priority_share_[static_cast<std::size_t>(c.id.value())] = c.call_volume / total;
  dc_compute_scale_.assign(world.dcs().size(), 1.0);
}

void NetworkDb::scale_wan_links_on_path(core::CountryId client, core::DcId dc, double scale) {
  for (const auto lid : topology_->path(client, dc).links)
    topology_->set_link_capacity_scale(lid, scale);
}

void NetworkDb::set_dc_compute_scale(core::DcId dc, double scale) {
  dc_compute_scale_.at(static_cast<std::size_t>(dc.value())) = scale;
}

double NetworkDb::dc_compute_scale(core::DcId dc) const {
  return dc_compute_scale_.at(static_cast<std::size_t>(dc.value()));
}

core::Mbps NetworkDb::pair_peak_demand(core::CountryId client, core::DcId dc) const {
  const auto& country = world_->country(client);
  core::Rng r = core::rng_at(options_.seed, 0xD0, client.value(), dc.value());
  return options_.reference_pair_demand_mbps * country.call_volume * r.uniform(0.8, 1.2);
}

core::Mbps NetworkDb::physical_internet_capacity(core::CountryId client, core::DcId dc) const {
  // Minimum peering capacity across the DC's transit providers (§4.1: "we
  // consider the minimum capacity available on Azure links peering with the
  // transit providers").
  double min_peering = std::numeric_limits<double>::infinity();
  for (const auto t : loss_->transits_of(dc))
    min_peering = std::min(min_peering,
                           loss_->transits().at(static_cast<std::size_t>(t.value()))
                               .peering_capacity_mbps);
  // The country's priority share of that headroom, re-expressed in our
  // scaled demand units: sized so that ~20% offload sits well under the
  // knee and ~30-50% reaches it.
  core::Rng r = core::rng_at(options_.seed, 0xD1, client.value(), dc.value());
  const double demand = pair_peak_demand(client, dc);
  const double demand_scaled = demand * r.uniform(0.30, 0.50);
  const double share_scaled =
      min_peering * priority_share_[static_cast<std::size_t>(client.value())];
  // Physical envelope: the tighter of the peering share and the synthetic
  // knee-based sizing, floored so that the production cap of 20% offload
  // never reaches the congestion knee (§4.2 finding 4: no systematic
  // inflation was ever observed at 20%).
  const double floor = demand * 0.20 / options_.elasticity.knee_utilization * 1.15;
  return std::max(floor, std::min(demand_scaled, share_scaled));
}

namespace {
double over_knee(double offered, double capacity, double knee) {
  if (capacity <= 0.0) return 1.0;  // no capacity: saturated immediately
  const double u = offered / capacity;
  return std::max(0.0, u - knee);
}
}  // namespace

core::LossFraction NetworkDb::effective_internet_loss(core::CountryId client, core::DcId dc,
                                                      core::SlotIndex slot,
                                                      core::Mbps offered_mbps) const {
  const double capacity = physical_internet_capacity(client, dc);
  const double base = loss_->slot_loss(client, dc, PathType::kInternet, slot);
  const double x = over_knee(offered_mbps, capacity, options_.elasticity.knee_utilization);
  const double u = capacity <= 0.0 ? 1.0 : offered_mbps / capacity;
  return std::min(0.5, base + 0.00002 * u + options_.elasticity.loss_coeff * x * x);
}

core::Millis NetworkDb::effective_internet_rtt(core::CountryId client, core::DcId dc,
                                               core::SlotIndex slot,
                                               core::Mbps offered_mbps) const {
  const double capacity = physical_internet_capacity(client, dc);
  const double base =
      latency_->hourly_rtt_ms(client, dc, PathType::kInternet, slot / core::kSlotsPerHour);
  const double x = over_knee(offered_mbps, capacity, options_.elasticity.knee_utilization);
  const double u = capacity <= 0.0 ? 1.0 : offered_mbps / capacity;
  return base + 0.8 * u + options_.elasticity.latency_coeff * x * x;
}

core::LinkId NetworkDb::cut_wan_link_on_path(core::CountryId client, core::DcId dc,
                                             double remaining_scale) {
  const WanPath& path = topology_->path(client, dc);
  if (path.links.empty()) throw std::logic_error("cut_wan_link_on_path: empty path");
  core::LinkId best = path.links.front();
  double best_cap = -1.0;
  for (const auto lid : path.links) {
    const auto& l = topology_->link(lid);
    if (l.capacity_mbps > best_cap) {
      best_cap = l.capacity_mbps;
      best = lid;
    }
  }
  topology_->set_link_capacity_scale(best, remaining_scale);
  return best;
}

}  // namespace titan::net
