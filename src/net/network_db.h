// Network database façade.
//
// Titan-Next's inputs (§6) include "WAN topology and Internet peering
// points" plus the Internet path capacities learnt by Titan. `NetworkDb`
// bundles the synthetic ground truth — topology, latency, loss — with the
// *physical* Internet path capacities and the load-dependent elasticity
// response (Fig. 8: loss and RTT stay flat as offload grows to 20%, then a
// congestion knee appears).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ids.h"
#include "core/timegrid.h"
#include "core/units.h"
#include "geo/world.h"
#include "net/latency_model.h"
#include "net/loss_model.h"
#include "net/wan_topology.h"

namespace titan::net {

struct ElasticityParams {
  // Utilization (offered / capacity) where the congestion knee begins.
  double knee_utilization = 0.85;
  // Quadratic growth coefficients past the knee.
  double loss_coeff = 0.25;       // added loss fraction per (u - knee)^2
  core::Millis latency_coeff = 220.0;  // added msec per (u - knee)^2
};

struct NetworkDbOptions {
  std::uint64_t seed = 1001;
  WanTopologyOptions topology;
  LatencyModelOptions latency;
  LossModelOptions loss;
  ElasticityParams elasticity;
  // Reference peak Teams demand per (client country, DC) pair in Mbps,
  // scaled by the country's call-volume weight. The physical Internet
  // capacity available to Teams on a pair is a multiple of this demand such
  // that ~20% offload leaves comfortable headroom and ~30-50% hits the knee
  // (the paper stops at 20% and never observed congestion).
  core::Mbps reference_pair_demand_mbps = 2000.0;
};

class NetworkDb {
 public:
  explicit NetworkDb(const geo::World& world, const NetworkDbOptions& options = {});

  [[nodiscard]] const geo::World& world() const { return *world_; }
  [[nodiscard]] const WanTopology& topology() const { return *topology_; }
  [[nodiscard]] WanTopology& topology() { return *topology_; }
  [[nodiscard]] const LatencyModel& latency() const { return *latency_; }
  [[nodiscard]] const LossModel& loss() const { return *loss_; }
  [[nodiscard]] LossModel& loss() { return *loss_; }
  [[nodiscard]] const NetworkDbOptions& options() const { return options_; }

  // Physical Internet capacity (Mbps) available to Teams traffic between a
  // client country and a DC: the minimum transit peering capacity at the DC
  // split across client countries by priority (§4.1, element 3), expressed
  // in our scaled-down demand units.
  [[nodiscard]] core::Mbps physical_internet_capacity(core::CountryId client,
                                                      core::DcId dc) const;

  // Expected peak Teams demand for the pair (Mbps) in the scaled world.
  [[nodiscard]] core::Mbps pair_peak_demand(core::CountryId client, core::DcId dc) const;

  // Load-dependent effective metrics for the Internet path when
  // `offered_mbps` of Teams traffic is placed on the pair in this slot.
  [[nodiscard]] core::LossFraction effective_internet_loss(core::CountryId client,
                                                           core::DcId dc,
                                                           core::SlotIndex slot,
                                                           core::Mbps offered_mbps) const;
  [[nodiscard]] core::Millis effective_internet_rtt(core::CountryId client, core::DcId dc,
                                                    core::SlotIndex slot,
                                                    core::Mbps offered_mbps) const;

  // Fiber-cut experiment (§4.2 finding 7): sever the highest-capacity WAN
  // link on the path between a country and a DC; returns the link cut.
  core::LinkId cut_wan_link_on_path(core::CountryId client, core::DcId dc,
                                    double remaining_scale = 0.0);

  // Scenario events (src/sim/): scale every WAN link on the pair's path
  // (partial regrade/brownout; 0 severs the whole segment).
  void scale_wan_links_on_path(core::CountryId client, core::DcId dc, double scale);

  // Maintenance drain: scale of a DC's usable MP compute (1 healthy, 0 fully
  // drained). Planning applies it to the DC's capacity; the online
  // controller's fallback skips fully drained DCs.
  void set_dc_compute_scale(core::DcId dc, double scale);
  [[nodiscard]] double dc_compute_scale(core::DcId dc) const;

 private:
  const geo::World* world_;
  NetworkDbOptions options_;
  std::unique_ptr<WanTopology> topology_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<LossModel> loss_;
  std::vector<double> priority_share_;  // per country, sums to 1
  std::vector<double> dc_compute_scale_;  // per DC, 1.0 healthy
};

}  // namespace titan::net
