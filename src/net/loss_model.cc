#include "net/loss_model.h"

#include <algorithm>
#include <cmath>

#include "core/hash.h"

namespace titan::net {

namespace {
constexpr std::uint64_t kWanLossStream = 0xB1;
constexpr std::uint64_t kBaseLossStream = 0xB2;
constexpr std::uint64_t kEpisodeStream = 0xB3;
constexpr std::uint64_t kPairSpikeStream = 0xB4;
constexpr std::uint64_t kJitterStream = 0xB5;
constexpr std::uint64_t kSeverityStream = 0xB6;

std::uint64_t pair_key(core::CountryId c, core::DcId d) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.value())) << 32) |
         static_cast<std::uint32_t>(d.value());
}
}  // namespace

LossModel::LossModel(const geo::World& world, const LossModelOptions& options)
    : world_(&world), options_(options) {
  transits_by_dc_.resize(world.dcs().size());
  core::Rng rng(options.seed);
  for (const auto& dc : world.dcs()) {
    for (int i = 0; i < options.transits_per_dc; ++i) {
      TransitIsp t;
      t.id = core::TransitId(static_cast<int>(transits_.size()));
      t.dc = dc.id;
      t.name = dc.name + "-transit" + std::to_string(i);
      t.peering_capacity_mbps = rng.uniform(30.0, 120.0) * core::kMbpsPerGbps;
      transits_by_dc_[static_cast<std::size_t>(dc.id.value())].push_back(t.id);
      transits_.push_back(std::move(t));
    }
  }
  unusable_.assign(world.countries().size(), false);
  for (const auto& name : options.unusable_internet_countries) {
    const core::CountryId id = world.find_country(name);
    if (id.valid()) unusable_[static_cast<std::size_t>(id.value())] = true;
  }
}

int LossModel::default_transit_index(core::CountryId client, core::DcId dc) const {
  // BGP picks one of the transit options (footnote 4); deterministic per pair.
  core::Rng r = core::rng_at(options_.seed, 0xBB, client.value(), dc.value());
  return static_cast<int>(r.uniform_int(0, options_.transits_per_dc - 1));
}

core::TransitId LossModel::transit_for(core::CountryId client, core::DcId dc) const {
  int idx = default_transit_index(client, dc);
  const auto it = failover_.find(pair_key(client, dc));
  if (it != failover_.end()) idx = it->second;
  return transits_by_dc_[static_cast<std::size_t>(dc.value())]
                        [static_cast<std::size_t>(idx % options_.transits_per_dc)];
}

void LossModel::fail_over(core::CountryId client, core::DcId dc) {
  int idx = default_transit_index(client, dc);
  const auto it = failover_.find(pair_key(client, dc));
  if (it != failover_.end()) idx = it->second;
  // Steer to the next provider, skipping force-degraded ones: Titan would
  // never move a pair onto a transit it knows is bad. With no clean
  // alternate, stay put — unless the current provider is itself degraded
  // (then plain rotation: everything is bad anyway).
  const auto& transits = transits_by_dc_[static_cast<std::size_t>(dc.value())];
  for (int step = 1; step < options_.transits_per_dc; ++step) {
    const int candidate = (idx + step) % options_.transits_per_dc;
    if (!transit_degraded(transits[static_cast<std::size_t>(candidate)])) {
      failover_[pair_key(client, dc)] = candidate;
      return;
    }
  }
  if (transit_degraded(transits[static_cast<std::size_t>(idx % options_.transits_per_dc)]))
    failover_[pair_key(client, dc)] = (idx + 1) % options_.transits_per_dc;
}

void LossModel::reset_failovers() { failover_.clear(); }

void LossModel::degrade_transit(core::TransitId t, double added_loss) {
  degraded_[t.value()] = added_loss;
}

void LossModel::clear_transit_degrade(core::TransitId t) { degraded_.erase(t.value()); }

bool LossModel::transit_degraded(core::TransitId t) const {
  return degraded_.find(t.value()) != degraded_.end();
}

void LossModel::reset_degrades() { degraded_.clear(); }

std::vector<core::TransitId> LossModel::transits_of(core::DcId dc) const {
  return transits_by_dc_.at(static_cast<std::size_t>(dc.value()));
}

bool LossModel::transit_congested(core::TransitId t, core::SlotIndex slot) const {
  if (transit_degraded(t)) return true;
  core::Rng r = core::rng_at(options_.seed, kEpisodeStream, t.value(),
                             static_cast<std::uint64_t>(slot));
  return r.chance(options_.transit_episode_prob);
}

bool LossModel::internet_unusable(core::CountryId client) const {
  return unusable_.at(static_cast<std::size_t>(client.value()));
}

core::LossFraction LossModel::slot_loss(core::CountryId client, core::DcId dc, PathType path,
                                        core::SlotIndex slot) const {
  if (path == PathType::kWan) {
    // WAN loss is near zero: median ~0.002%, spikes bounded by ~0.02%
    // (Fig. 7 caps WAN at 0.02%).
    core::Rng r = core::rng_at(options_.seed, kWanLossStream, client.value(), dc.value(),
                               static_cast<std::uint64_t>(slot));
    const double base = 0.00002 * r.lognormal(0.0, 0.8);
    return std::min(base, 0.0002);
  }

  // Internet: unusable countries see persistent heavy loss regardless of
  // offered load (production finding 5).
  if (internet_unusable(client)) {
    core::Rng r = core::rng_at(options_.seed, kBaseLossStream, client.value(), dc.value(),
                               static_cast<std::uint64_t>(slot));
    return 0.01 + 0.02 * r.uniform();  // 1-3%
  }

  // Baseline: clean most of the time.
  core::Rng r = core::rng_at(options_.seed, kBaseLossStream, client.value(), dc.value(),
                             static_cast<std::uint64_t>(slot));
  double loss = 0.00004 * r.lognormal(0.0, 1.0);

  // Transit-ISP congestion episode: shared by all countries homed onto this
  // transit for this DC (the paper's one-to-many loss signature).
  const core::TransitId transit = transit_for(client, dc);
  if (transit_congested(transit, slot)) {
    core::Rng sev = core::rng_at(options_.seed, kSeverityStream, transit.value(),
                                 static_cast<std::uint64_t>(slot));
    // Episode severity: mostly 0.1-1%, occasionally worse. A per-pair factor
    // keeps affected countries correlated but not identical.
    const double severity = 0.001 * sev.lognormal(0.6, 0.9);
    core::Rng pf = core::rng_at(options_.seed, 0xBC, client.value(), dc.value(),
                                static_cast<std::uint64_t>(slot));
    loss += severity * pf.uniform(0.6, 1.4);
    // Forced degradation adds its configured loss floor on top, so the
    // whole homed population breaches the route-failover threshold.
    const auto it = degraded_.find(transit.value());
    if (it != degraded_.end()) loss += it->second;
  }

  // Idiosyncratic last-mile spike.
  core::Rng pr = core::rng_at(options_.seed, kPairSpikeStream, client.value(), dc.value(),
                              static_cast<std::uint64_t>(slot));
  if (pr.chance(options_.pair_episode_prob)) loss += 0.0008 * pr.lognormal(0.0, 1.0);

  return std::min(loss, 0.2);
}

core::Millis LossModel::slot_jitter_ms(core::CountryId client, core::DcId dc, PathType path,
                                       core::SlotIndex slot) const {
  // Mean jitter ~3.4 msec on WAN, ~3.52 on Internet (§4.2 finding 3), with
  // episode-correlated inflation on the Internet side.
  core::Rng r = core::rng_at(options_.seed, kJitterStream, client.value(), dc.value(),
                             static_cast<std::uint64_t>(path), static_cast<std::uint64_t>(slot));
  double jitter = (path == PathType::kWan ? 3.4 : 3.52) * r.lognormal(0.0, 0.18);
  if (path == PathType::kInternet && transit_congested(transit_for(client, dc), slot))
    jitter *= r.uniform(1.2, 2.0);
  return jitter;
}

}  // namespace titan::net
