// Ground-truth packet-loss and jitter model.
//
// Production findings the model reproduces (§4.2):
//  (1) both options are mostly clean (median loss <= 0.01%), but the
//      Internet has a heavier tail — ~10% of pair-hours see >= 0.1% loss;
//  (2) the Internet shows more frequent and taller loss spikes (Fig. 7);
//  (3) Internet jitter is slightly worse (3.52 vs 3.40 msec mean);
//  (5) some client countries have unusable Internet paths outright;
//  (6) congestion concentrates at transit ISPs: every client country whose
//      BGP-selected transit to a DC is congested sees loss simultaneously,
//      with no corresponding WAN inflation — reproduced by modelling 3
//      transit providers per DC with slot-level congestion episodes.
//
// All per-slot values are pure functions of (seed, pair, slot) via hashed
// RNG streams; the only mutable state is the transit failover table — which
// reproduces Titan's "steer traffic to an alternate transit provider" knob —
// and the forced-degrade table driven by scenario kTransitDegrade events.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/timegrid.h"
#include "core/units.h"
#include "geo/world.h"
#include "net/path.h"

namespace titan::net {

struct LossModelOptions {
  std::uint64_t seed = 31;
  int transits_per_dc = 3;
  // Probability that a given (DC, transit) is congested in a 30-min slot.
  double transit_episode_prob = 0.035;
  // Probability of an idiosyncratic per-pair Internet loss spike per slot.
  double pair_episode_prob = 0.01;
  // Client countries whose Internet paths are unusable (production finding
  // 5 names Germany and Austria).
  std::vector<std::string> unusable_internet_countries = {"germany", "austria"};
};

struct TransitIsp {
  core::TransitId id;
  core::DcId dc;
  std::string name;
  core::Mbps peering_capacity_mbps;  // Azure<->transit peering link capacity
};

class LossModel {
 public:
  LossModel(const geo::World& world, const LossModelOptions& options = {});

  // Loss fraction for the pair in a slot, before any load-dependent
  // (elasticity) penalty.
  [[nodiscard]] core::LossFraction slot_loss(core::CountryId client, core::DcId dc,
                                             PathType path, core::SlotIndex slot) const;

  // Mean interarrival jitter (msec) for the pair in a slot.
  [[nodiscard]] core::Millis slot_jitter_ms(core::CountryId client, core::DcId dc,
                                            PathType path, core::SlotIndex slot) const;

  // True when the client country's Internet paths are unusable (finding 5).
  [[nodiscard]] bool internet_unusable(core::CountryId client) const;

  // Transit ISP handling. Each (country, DC) pair is BGP-assigned one of the
  // DC's transit providers; `fail_over` steers the pair to the next one.
  [[nodiscard]] const std::vector<TransitIsp>& transits() const { return transits_; }
  [[nodiscard]] std::vector<core::TransitId> transits_of(core::DcId dc) const;
  [[nodiscard]] core::TransitId transit_for(core::CountryId client, core::DcId dc) const;
  void fail_over(core::CountryId client, core::DcId dc);
  void reset_failovers();

  // Forced transit degradation (scenario kTransitDegrade events): while a
  // transit is degraded it counts as congested in every slot and adds
  // `added_loss` on top of the episode loss, so every pair homed onto it
  // crosses the §6.4 route-failover threshold until Titan steers the pair
  // to an alternate provider via `fail_over`.
  void degrade_transit(core::TransitId t, double added_loss);
  void clear_transit_degrade(core::TransitId t);
  [[nodiscard]] bool transit_degraded(core::TransitId t) const;
  void reset_degrades();

  // Whether the (DC, transit) peering is congested in this slot — exposed so
  // tests can verify the one-to-many loss pattern.
  [[nodiscard]] bool transit_congested(core::TransitId t, core::SlotIndex slot) const;

 private:
  [[nodiscard]] int default_transit_index(core::CountryId client, core::DcId dc) const;

  const geo::World* world_;
  LossModelOptions options_;
  std::vector<TransitIsp> transits_;
  std::vector<std::vector<core::TransitId>> transits_by_dc_;
  std::vector<bool> unusable_;  // per country
  // (country, dc) -> transit index override after failovers.
  std::unordered_map<std::uint64_t, int> failover_;
  // transit -> forced added loss fraction while degraded.
  std::unordered_map<int, double> degraded_;
};

}  // namespace titan::net
