// Performance-trajectory report: the JSON schema behind
// `bench_sim_scenarios --perf-json` and the committed
// bench/baselines/BENCH_sim_throughput.json baseline.
//
// The report captures, per scenario, the run's throughput (calls/sec,
// events/sec over the wall clock), the controller's per-call
// assignment-latency distribution (p50/p90/p99/max from the
// obs::Histogram), the engine's phase-timing totals, and a small block of
// *deterministic* companions (calls, events, replans, simplex iterations,
// LU refactorizations) that anchor cross-machine comparisons: when the
// deterministic block differs, the workload changed and throughput deltas
// are not comparable.
//
// The diff against a committed baseline is informational by design — wall
// clock varies across machines and CI hosts — so perf_diff_text never
// influences an exit code; it exists to make the performance trajectory
// *visible* in every CI run, not to gate merges (docs/observability.md).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/engine.h"
#include "sweep/dispatch.h"
#include "sweep/json.h"

namespace titan::sweep {

// Bumped when the report layout changes shape (field renames/removals);
// additive fields do not bump it.
inline constexpr int kPerfSchemaVersion = 1;

// One scenario entry of the "scenarios" array: throughput, latency
// quantiles, phase totals, and the deterministic anchors.
[[nodiscard]] Json perf_scenario_json(const sim::SimResult& r);

// The full report: {"schema_version", "config": {...}, "scenarios": [...]}.
// `config` echoes the workload knobs the runs used (peak, weeks, threads,
// seed) so a baseline diff can refuse apples-to-oranges comparisons.
[[nodiscard]] Json perf_report_json(const std::vector<sim::SimResult>& results,
                                    double peak_slot_calls, int weeks, int threads,
                                    std::uint64_t seed);

// Generic registry export: {"counters": {...}, "gauges": {...},
// "histograms": {name: {count, sum, mean, min, max, p50, p90, p99,
// buckets: [[lower, upper, count], ...nonzero only]}}}. Deterministic in
// the registry contents (maps iterate name-sorted).
[[nodiscard]] Json registry_json(const obs::Registry& registry);

// Per-worker timing artifact of a distributed sweep (`bench_sim_sweep
// --workers-proc N --perf-json PATH`): {"schema_version", "dispatch":
// {"workers", "retries", "seconds", "worker_stats": [{"worker",
// "tasks_completed", "faults", "respawns", "busy_seconds"}, ...]},
// "registry": {...}}. Wall-clock observability only — never compared, never
// part of the sweep result bytes (docs/sweep.md).
[[nodiscard]] Json dispatch_report_json(const DispatchReport& report,
                                        const obs::Registry& registry);

// Human-readable, informational comparison of two perf reports (current vs
// baseline): per-scenario throughput ratios, latency-quantile movement,
// and a loud note when the deterministic anchors differ (the workload
// changed; timing deltas are then expected). Tolerant of missing scenarios
// or fields — reports them instead of throwing.
[[nodiscard]] std::string perf_diff_text(const Json& baseline, const Json& current);

// Assignment-latency budget gate behind `bench_assign_latency --check`
// (docs/observability.md, "Assignment-latency budget"). `budget` is the
// committed bench/baselines/assign_latency_budget.json:
//
//   {"schema_version": 1,
//    "config": {"rate_per_sec": ..., "warmup_seconds": ...,
//               "measure_seconds": ..., "cooldown_seconds": ...},
//    "budget": {"p99_us": ..., "min_samples": ...}}
//
// and `report` is the harness's perf-report-schema output. Unlike
// perf_diff_text this check IS enforcing — CI fails on violation — so the
// failure modes are strict: a missing/NaN p99, fewer measured samples than
// `min_samples` (an empty window passes no budget vacuously), any
// config key pinned by the budget differing in the report (a p99 is only
// meaningful at its pinned offered load and window layout), or a
// schema-version mismatch all fail, they are not notes.
struct LatencyBudgetCheck {
  bool ok = false;
  std::string text;  // human-readable verdict, pass or fail
};
[[nodiscard]] LatencyBudgetCheck latency_budget_check(const Json& budget, const Json& report);

}  // namespace titan::sweep
