#include "sweep/perf_report.h"

#include <cmath>
#include <cstdio>

namespace titan::sweep {

namespace {

Json latency_json(const obs::Histogram& h) {
  Json out = Json::object();
  out.set("count", Json::number(static_cast<double>(h.total_count())));
  out.set("mean", Json::number(h.mean()));
  out.set("p50", Json::number(h.quantile(0.50)));
  out.set("p90", Json::number(h.quantile(0.90)));
  out.set("p99", Json::number(h.quantile(0.99)));
  out.set("max", Json::number(h.max()));
  return out;
}

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// Pulls `path.field` out of a scenario entry, tolerating absence.
bool get_number(const Json& scenario, const char* block, const char* field, double* out) {
  if (!scenario.has(block)) return false;
  const Json& b = scenario.at(block);
  if (!b.has(field)) return false;
  *out = b.at(field).as_number();
  return true;
}

std::string format_rate(double v) {
  char buf[48];
  if (v >= 1e6)
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  else if (v >= 1e3)
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string format_delta(double from, double to) {
  if (from <= 0.0) return "(n/a)";
  char buf[32];
  std::snprintf(buf, sizeof buf, "(%+.1f%%)", (to - from) / from * 100.0);
  return buf;
}

}  // namespace

Json perf_scenario_json(const sim::SimResult& r) {
  std::int64_t lp_iterations = 0;
  int lp_refactorizations = 0;
  std::int64_t lp_dual_iterations = 0, lp_blocks_solved = 0, lp_pruned_columns = 0;
  for (const auto& stat : r.replan_stats) {
    lp_iterations += stat.iterations;
    lp_refactorizations += stat.refactorizations;
    lp_dual_iterations += stat.dual_iterations;
    lp_blocks_solved += stat.blocks_solved;
    lp_pruned_columns += stat.pruned_columns;
  }

  Json det = Json::object();
  det.set("calls", Json::number(static_cast<double>(r.calls)));
  det.set("events", Json::number(static_cast<double>(r.perf.events_processed)));
  det.set("eval_slots", Json::number(r.eval_slots));
  det.set("replans", Json::number(r.replans));
  det.set("lp_iterations", Json::number(static_cast<double>(lp_iterations)));
  det.set("lp_refactorizations", Json::number(lp_refactorizations));
  det.set("lp_dual_iterations", Json::number(static_cast<double>(lp_dual_iterations)));
  det.set("lp_blocks_solved", Json::number(static_cast<double>(lp_blocks_solved)));
  det.set("lp_pruned_columns", Json::number(static_cast<double>(lp_pruned_columns)));
  det.set("rejected_calls", Json::number(static_cast<double>(r.rejected_calls)));
  det.set("degraded_calls", Json::number(static_cast<double>(r.degraded_calls)));
  det.set("checksum", Json::string(hex_u64(r.checksum)));

  Json thr = Json::object();
  thr.set("wall_seconds", Json::number(r.wall_seconds));
  thr.set("calls_per_sec", Json::number(r.calls_per_sec()));
  thr.set("events_per_sec", Json::number(r.events_per_sec()));

  Json phases = Json::object();
  phases.set("event_apply", Json::number(r.perf.event_apply_seconds));
  phases.set("metric_aggregation", Json::number(r.perf.metric_aggregation_seconds));
  phases.set("replan", Json::number(r.perf.replan_seconds));
  phases.set("shard_work", Json::number(r.perf.shard_work_seconds));
  phases.set("lp_build", Json::number(r.perf.lp_build_seconds));
  phases.set("lp_phase1", Json::number(r.perf.lp_phase1_seconds));
  phases.set("lp_phase2", Json::number(r.perf.lp_phase2_seconds));
  phases.set("lp_refactor", Json::number(r.perf.lp_refactor_seconds));
  phases.set("plan_total", Json::number(r.plan_seconds));
  phases.set("forecast_total", Json::number(r.forecast_seconds));

  Json out = Json::object();
  out.set("scenario", Json::string(r.scenario));
  out.set("deterministic", std::move(det));
  out.set("throughput", std::move(thr));
  out.set("assign_latency_us", latency_json(r.perf.assign_latency_us));
  // Admission/degradation decision latency: empty (count 0) outside the
  // overload scenarios.
  out.set("admission_latency_us", latency_json(r.perf.admission_latency_us));
  out.set("phases_seconds", std::move(phases));
  return out;
}

Json perf_report_json(const std::vector<sim::SimResult>& results, double peak_slot_calls,
                      int weeks, int threads, std::uint64_t seed) {
  Json config = Json::object();
  config.set("peak_slot_calls", Json::number(peak_slot_calls));
  config.set("weeks", Json::number(weeks));
  config.set("threads", Json::number(threads));
  config.set("seed", Json::number(static_cast<double>(seed)));

  Json scenarios = Json::array();
  for (const auto& r : results) scenarios.push_back(perf_scenario_json(r));

  Json out = Json::object();
  out.set("schema_version", Json::number(kPerfSchemaVersion));
  out.set("config", std::move(config));
  out.set("scenarios", std::move(scenarios));
  return out;
}

Json registry_json(const obs::Registry& registry) {
  Json counters = Json::object();
  for (const auto& [name, c] : registry.counters())
    counters.set(name, Json::number(static_cast<double>(c.value())));
  Json gauges = Json::object();
  for (const auto& [name, g] : registry.gauges()) gauges.set(name, Json::number(g.value()));
  Json histograms = Json::object();
  for (const auto& [name, h] : registry.histograms()) {
    Json entry = latency_json(h);
    Json buckets = Json::array();
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      if (h.bucket_count(i) == 0) continue;
      Json b = Json::array();
      b.push_back(Json::number(h.bucket_lower(i)));
      // The overflow bucket's +inf upper edge is not representable in
      // JSON; report the recorded max instead.
      const double upper = h.bucket_upper(i);
      b.push_back(Json::number(std::isfinite(upper) ? upper : h.max()));
      b.push_back(Json::number(static_cast<double>(h.bucket_count(i))));
      buckets.push_back(std::move(b));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

Json dispatch_report_json(const DispatchReport& report, const obs::Registry& registry) {
  Json workers = Json::array();
  for (const WorkerStats& w : report.workers) {
    Json entry = Json::object();
    entry.set("worker", Json::number(w.worker));
    entry.set("tasks_completed", Json::number(w.tasks_completed));
    entry.set("faults", Json::number(w.faults));
    entry.set("respawns", Json::number(w.respawns));
    entry.set("busy_seconds", Json::number(w.busy_seconds));
    workers.push_back(std::move(entry));
  }
  Json dispatch = Json::object();
  dispatch.set("workers", Json::number(static_cast<double>(report.workers.size())));
  dispatch.set("retries", Json::number(report.retries));
  dispatch.set("seconds", Json::number(report.seconds));
  dispatch.set("worker_stats", std::move(workers));
  Json out = Json::object();
  out.set("schema_version", Json::number(kPerfSchemaVersion));
  out.set("dispatch", std::move(dispatch));
  out.set("registry", registry_json(registry));
  return out;
}

std::string perf_diff_text(const Json& baseline, const Json& current) {
  std::string out = "perf vs baseline (informational — wall clock is machine-dependent):\n";

  if (baseline.has("config") && current.has("config") &&
      !(baseline.at("config") == current.at("config"))) {
    out += "  NOTE: config differs from baseline (" + baseline.at("config").dump() + " vs " +
           current.at("config").dump() + ") — deltas are not comparable\n";
  }
  if (!baseline.has("scenarios") || !current.has("scenarios")) {
    out += "  malformed report: missing \"scenarios\"\n";
    return out;
  }

  const auto find_scenario = [](const Json& report, const std::string& name) -> const Json* {
    const Json& arr = report.at("scenarios");
    for (std::size_t i = 0; i < arr.size(); ++i) {
      const Json& s = arr.at(i);
      if (s.has("scenario") && s.at("scenario").as_string() == name) return &s;
    }
    return nullptr;
  };

  const Json& cur = current.at("scenarios");
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const Json& c = cur.at(i);
    const std::string name = c.has("scenario") ? c.at("scenario").as_string() : "?";
    const Json* b = find_scenario(baseline, name);
    if (b == nullptr) {
      out += "  " + name + ": not in baseline (new scenario)\n";
      continue;
    }
    double b_calls = 0, c_calls = 0;
    if (get_number(*b, "deterministic", "calls", &b_calls) &&
        get_number(c, "deterministic", "calls", &c_calls) && b_calls != c_calls) {
      out += "  " + name + ": workload changed (calls " + format_rate(b_calls) + " -> " +
             format_rate(c_calls) + "), timing deltas expected\n";
    }
    double b_cps = 0, c_cps = 0, b_eps = 0, c_eps = 0, b_p99 = 0, c_p99 = 0;
    const bool have_cps = get_number(*b, "throughput", "calls_per_sec", &b_cps) &&
                          get_number(c, "throughput", "calls_per_sec", &c_cps);
    const bool have_eps = get_number(*b, "throughput", "events_per_sec", &b_eps) &&
                          get_number(c, "throughput", "events_per_sec", &c_eps);
    const bool have_p99 = get_number(*b, "assign_latency_us", "p99", &b_p99) &&
                          get_number(c, "assign_latency_us", "p99", &c_p99);
    out += "  " + name + ":";
    if (have_cps)
      out += " calls/sec " + format_rate(b_cps) + " -> " + format_rate(c_cps) + " " +
             format_delta(b_cps, c_cps);
    if (have_eps)
      out += "  events/sec " + format_rate(b_eps) + " -> " + format_rate(c_eps) + " " +
             format_delta(b_eps, c_eps);
    if (have_p99)
      out += "  assign p99(us) " + format_rate(b_p99) + " -> " + format_rate(c_p99) + " " +
             format_delta(b_p99, c_p99);
    if (!have_cps && !have_eps && !have_p99) out += " no comparable fields";
    out += "\n";
  }
  return out;
}

LatencyBudgetCheck latency_budget_check(const Json& budget, const Json& report) {
  LatencyBudgetCheck out;
  const auto fail = [&](const std::string& why) {
    out.ok = false;
    out.text = "latency budget FAIL: " + why + "\n";
    return out;
  };

  if (!budget.has("budget") || !budget.at("budget").has("p99_us"))
    return fail("budget file has no budget.p99_us");
  if (budget.has("schema_version") && report.has("schema_version") &&
      !(budget.at("schema_version") == report.at("schema_version")))
    return fail("schema_version mismatch (budget " + budget.at("schema_version").dump() +
                ", report " + report.at("schema_version").dump() + ")");

  // Every config key the budget pins must match the report exactly: the
  // p99 bound was chosen at that arrival rate and window layout.
  if (budget.has("config")) {
    if (!report.has("config")) return fail("report has no config block");
    const Json& rc = report.at("config");
    for (const auto& [key, pinned] : budget.at("config").members()) {
      if (!rc.has(key)) return fail("report config is missing pinned key \"" + key + "\"");
      if (!(rc.at(key) == pinned))
        return fail("config mismatch on \"" + key + "\" (budget " + pinned.dump() +
                    ", report " + rc.at(key).dump() + ") — not comparable");
    }
  }

  if (!report.has("scenarios") || report.at("scenarios").size() == 0)
    return fail("report has no scenarios");
  const Json& s = report.at("scenarios").at(std::size_t{0});
  double p99 = 0.0, count = 0.0;
  if (!get_number(s, "assign_latency_us", "p99", &p99))
    return fail("report has no assign_latency_us.p99");
  if (!std::isfinite(p99)) return fail("measured p99 is not finite");
  get_number(s, "assign_latency_us", "count", &count);

  const double budget_p99 = budget.at("budget").at("p99_us").as_number();
  double min_samples = 0.0;
  if (budget.at("budget").has("min_samples"))
    min_samples = budget.at("budget").at("min_samples").as_number();
  if (count < min_samples) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "only %.0f measured samples (budget requires >= %.0f)",
                  count, min_samples);
    return fail(buf);
  }
  char buf[160];
  if (p99 > budget_p99) {
    std::snprintf(buf, sizeof buf, "measured p99 %.2f us exceeds the %.2f us budget (%.0f samples)",
                  p99, budget_p99, count);
    return fail(buf);
  }
  out.ok = true;
  std::snprintf(buf, sizeof buf,
                "latency budget OK: p99 %.2f us within the %.2f us budget (%.0f samples)\n",
                p99, budget_p99, count);
  out.text = buf;
  return out;
}

}  // namespace titan::sweep
