#include "sweep/baseline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace titan::sweep {

double Tolerances::rel_for(const std::string& metric) const {
  const auto it = rel.find(metric);
  return it != rel.end() ? it->second : default_rel;
}

double Tolerances::abs_for(const std::string& metric) const {
  const auto it = abs.find(metric);
  return it != abs.end() ? it->second : default_abs;
}

Tolerances default_tolerances() {
  Tolerances tol;
  tol.default_rel = 0.05;
  // Any leaked call is an engine bug; no slack of either kind.
  tol.rel["leaked_calls"] = 0.0;
  tol.abs["leaked_calls"] = 0.0;
  // Event counters with small per-seed populations: a couple of events of
  // absolute slack so cross-platform floating-point drift in the decisions
  // feeding them cannot flip a near-zero mean into an "infinite" relative
  // regression.
  for (const char* metric :
       {"dc_migrations", "route_changes", "forced_migrations", "transit_failovers",
        "out_of_plan", "fallback_assignments"})
    tol.abs[metric] = 2.0;
  // The one wall-clock metric in the schema: machine-dependent by nature,
  // carried for observability only — never a regression gate. (A huge
  // finite relative band, not infinity: inf * 0 is NaN and would poison
  // the allowed-slack arithmetic when both sides are zero.)
  tol.rel["plan_solve_seconds"] = 1e18;
  tol.abs["plan_solve_seconds"] = 1e18;
  // Simplex pivot counts are deterministic per platform but sensitive to
  // floating-point library differences across compilers; give them a loose
  // relative band instead of the default 5%.
  tol.rel["replan_iterations"] = 0.25;
  tol.rel["replan_phase1_iterations"] = 0.25;
  tol.abs["warm_replans"] = 2.0;
  // Admission outcomes: the shed coin is a pure per-call hash, but the
  // load ratio feeding it is a float merge, so threshold-adjacent calls
  // can flip across compilers. The counts are large where nonzero (5%
  // relative covers them); the compound-catastrophe shed fractions sit
  // near zero, so mirror the small-population absolute slack above.
  tol.abs["rejected_calls"] = 5.0;
  tol.abs["degraded_calls"] = 5.0;
  for (const char* metric : {"shed_fraction_na", "shed_fraction_eu", "shed_fraction_asia"})
    tol.abs[metric] = 0.01;
  return tol;
}

std::string Regression::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s/%s %s: baseline %.6g, current %.6g (allowed +/- %.3g)",
                scenario.c_str(), metric.c_str(), stat.c_str(), baseline, current, allowed);
  return buf;
}

std::vector<Regression> compare_to_baseline(const SweepResult& current,
                                            const SweepResult& baseline,
                                            const Tolerances& tol) {
  if (!(current.spec == baseline.spec))
    throw std::invalid_argument(
        "sweep/baseline spec mismatch: the baseline was generated with different sweep "
        "parameters; regenerate it instead of comparing");
  if (current.aggregates.size() != baseline.aggregates.size())
    throw std::invalid_argument("sweep/baseline scenario count mismatch");

  const auto& names = metric_names();
  std::vector<Regression> regressions;
  for (std::size_t sc = 0; sc < current.aggregates.size(); ++sc) {
    const ScenarioAggregate& cur = current.aggregates[sc];
    const ScenarioAggregate& base = baseline.aggregates[sc];
    if (cur.scenario != base.scenario)
      throw std::invalid_argument("sweep/baseline scenario order mismatch: " + cur.scenario +
                                  " vs " + base.scenario);
    if (cur.stats.size() != names.size() || base.stats.size() != names.size())
      throw std::invalid_argument("sweep/baseline metric count mismatch");

    for (std::size_t m = 0; m < names.size(); ++m) {
      const auto check = [&](const char* stat, double cur_v, double base_v) {
        const double allowed =
            std::max(tol.rel_for(names[m]) * std::max(std::fabs(cur_v), std::fabs(base_v)),
                     tol.abs_for(names[m]));
        if (std::fabs(cur_v - base_v) <= allowed) return;
        Regression r;
        r.scenario = cur.scenario;
        r.metric = names[m];
        r.stat = stat;
        r.baseline = base_v;
        r.current = cur_v;
        r.allowed = allowed;
        regressions.push_back(std::move(r));
      };
      check("mean", cur.stats[m].mean, base.stats[m].mean);
      check("p95", cur.stats[m].p95, base.stats[m].p95);
    }
  }
  return regressions;
}

}  // namespace titan::sweep
