// Minimal JSON value, parser, and writer for the sweep subsystem.
//
// The sweep baseline lives in the repository as a JSON file that both the
// `bench_sim_sweep` binary and CI read back, so the format needs a real
// round-trip guarantee, not just a printf dump: objects preserve insertion
// order, numbers are written with enough digits (%.17g) that
// serialize -> parse -> re-serialize is byte-identical, and parse errors
// carry positions. Deliberately small — objects, arrays, strings, numbers,
// booleans, null — because the documents are machine-written; there is no
// need for (and no dependency on) an external JSON library.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace titan::sweep {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  // Typed reads; throw std::invalid_argument on a type mismatch so malformed
  // baseline files fail with a message instead of reading garbage.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  // number, checked integral
  [[nodiscard]] const std::string& as_string() const;

  // Arrays.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;
  void push_back(Json v);

  // Objects (insertion-ordered).
  [[nodiscard]] bool has(const std::string& key) const;
  // Throws std::invalid_argument when the key is absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  void set(std::string key, Json v);
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  // Serialization. `indent` < 0 produces a single line; >= 0 pretty-prints
  // with that many spaces per level. Doubles use %.17g (round-trip exact);
  // integral values print without a decimal point.
  [[nodiscard]] std::string dump(int indent = -1) const;

  // Throws std::invalid_argument (with offset) on malformed input or
  // trailing garbage.
  [[nodiscard]] static Json parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  void dump_to(std::string& out, int indent, int depth) const;
};

// %.17g with integral values rendered without an exponent or decimal point;
// the one double formatter every sweep serializer goes through.
[[nodiscard]] std::string format_double(double v);

}  // namespace titan::sweep
