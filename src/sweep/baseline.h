// Regression comparison of sweep aggregates against a committed baseline.
//
// The committed file (bench/baselines/sweep_baseline.json) freezes the
// metric distributions of a fixed sweep spec; `compare_to_baseline` diffs
// a freshly computed sweep against it with per-metric relative tolerances
// so a controller/LP/scenario change is judged against distributions, not
// one golden point. On one platform the engine is bit-deterministic and
// every delta is exactly zero; the tolerances absorb cross-compiler
// floating-point drift while still catching behavioural regressions.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace titan::sweep {

struct Tolerances {
  // A comparison passes when
  //   |current - baseline| <= max(rel * max(|current|, |baseline|), abs).
  double default_rel = 0.05;
  double default_abs = 1e-9;
  // Per-metric overrides (by metric_names() entry).
  std::map<std::string, double> rel;
  std::map<std::string, double> abs;

  [[nodiscard]] double rel_for(const std::string& metric) const;
  [[nodiscard]] double abs_for(const std::string& metric) const;
};

// The tolerances the bench and CI use: tight by default, zero slack for
// leaked_calls (any leak is a regression), and a couple of counts of
// absolute slack for the small-population event counters whose relative
// deltas are meaningless near zero.
[[nodiscard]] Tolerances default_tolerances();

struct Regression {
  std::string scenario;
  std::string metric;
  std::string stat;  // "mean" or "p95"
  double baseline = 0.0;
  double current = 0.0;
  double allowed = 0.0;  // the absolute slack the tolerance granted

  [[nodiscard]] std::string describe() const;
};

// Compares the mean and p95 of every (scenario, metric) aggregate. Returns
// every violation, ordered by scenario then metric. Throws
// std::invalid_argument when the sweeps are not comparable (different
// spec, scenario set, or seed count) — a baseline from another spec must
// be regenerated, not silently compared.
[[nodiscard]] std::vector<Regression> compare_to_baseline(const SweepResult& current,
                                                          const SweepResult& baseline,
                                                          const Tolerances& tol);

}  // namespace titan::sweep
