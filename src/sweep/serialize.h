// SweepResult <-> JSON.
//
// The sweep JSON is the contract between `bench_sim_sweep`, the committed
// regression baseline under bench/baselines/, and CI artifacts, so the
// mapping is versioned (`schema`) and loss-free: serialize -> parse ->
// re-serialize is byte-identical (doubles go through %.17g, checksums
// through fixed-width hex, object keys keep insertion order). Execution
// knobs (worker count, task shuffle seed) are intentionally NOT part of
// the document — two sweeps that differ only in how they were scheduled
// serialize to the same bytes.
#pragma once

#include <string>

#include "sweep/json.h"
#include "sweep/sweep.h"

namespace titan::sweep {

// v2: per-region metric slices (calls_na/eu/asia, wan_gb_na/eu/asia) joined
// the metric schema when PlanScope grew multi-region support; v1 baselines
// must be regenerated, not compared.
// v3: replan-latency metrics of the warm-start loop (replan_iterations,
// replan_phase1_iterations, warm_replans) plus plan_solve_seconds — the LP
// time `Solution::solve_seconds` always measured but the sweep never
// surfaced. Earlier baselines must be regenerated, not compared.
// v4: LP scale-out counters (replan_dual_iterations, replan_blocks_solved,
// replan_pruned_columns) from the dual-simplex warm path and the
// region-block decomposition. Earlier baselines must be regenerated, not
// compared.
// v5: overload-regime metrics (rejected_calls, degraded_calls,
// shed_fraction_na/eu/asia) from admission control, plus the three overload
// scenarios joining the scenario library. Earlier baselines must be
// regenerated, not compared.
inline constexpr int kSweepSchemaVersion = 5;

// Building blocks of the document mapping, exposed because the worker
// protocol (sweep/protocol.h) transports the same spec and run-record
// shapes line by line. `strict` additionally rejects unknown object keys
// ("sweep spec json: unknown field 'x'" / "run record json: unknown field
// 'x'") — protocol messages must not silently carry fields this binary
// does not understand, while the committed baseline documents keep the
// historical tolerant read.
[[nodiscard]] Json sweep_spec_to_json(const SweepSpec& spec);
[[nodiscard]] SweepSpec sweep_spec_from_json(const Json& j, bool strict = false);
[[nodiscard]] Json run_record_to_json(const RunRecord& run);
[[nodiscard]] RunRecord run_record_from_json(const Json& j, bool strict = false);

// Seeds are full uint64 values; JSON numbers (doubles) lose precision past
// 2^53, so they travel as decimal strings everywhere in the sweep formats.
[[nodiscard]] Json seed_to_json(std::uint64_t seed);
[[nodiscard]] std::uint64_t seed_from_json(const Json& j);

// `include_runs` = false drops the per-run records (aggregates only), for
// compact CI artifacts; the committed baseline keeps runs for forensics.
[[nodiscard]] Json to_json(const SweepResult& result, bool include_runs = true);
[[nodiscard]] std::string to_json_text(const SweepResult& result, bool include_runs = true);

// Throws std::invalid_argument on malformed documents, unknown schema
// versions, or metric schemas that do not match this binary's.
[[nodiscard]] SweepResult from_json(const Json& doc);
[[nodiscard]] SweepResult from_json_text(const std::string& text);

}  // namespace titan::sweep
