// SweepResult <-> JSON.
//
// The sweep JSON is the contract between `bench_sim_sweep`, the committed
// regression baseline under bench/baselines/, and CI artifacts, so the
// mapping is versioned (`schema`) and loss-free: serialize -> parse ->
// re-serialize is byte-identical (doubles go through %.17g, checksums
// through fixed-width hex, object keys keep insertion order). Execution
// knobs (worker count, task shuffle seed) are intentionally NOT part of
// the document — two sweeps that differ only in how they were scheduled
// serialize to the same bytes.
#pragma once

#include <string>

#include "sweep/json.h"
#include "sweep/sweep.h"

namespace titan::sweep {

// v2: per-region metric slices (calls_na/eu/asia, wan_gb_na/eu/asia) joined
// the metric schema when PlanScope grew multi-region support; v1 baselines
// must be regenerated, not compared.
// v3: replan-latency metrics of the warm-start loop (replan_iterations,
// replan_phase1_iterations, warm_replans) plus plan_solve_seconds — the LP
// time `Solution::solve_seconds` always measured but the sweep never
// surfaced. Earlier baselines must be regenerated, not compared.
// v4: LP scale-out counters (replan_dual_iterations, replan_blocks_solved,
// replan_pruned_columns) from the dual-simplex warm path and the
// region-block decomposition. Earlier baselines must be regenerated, not
// compared.
// v5: overload-regime metrics (rejected_calls, degraded_calls,
// shed_fraction_na/eu/asia) from admission control, plus the three overload
// scenarios joining the scenario library. Earlier baselines must be
// regenerated, not compared.
inline constexpr int kSweepSchemaVersion = 5;

// `include_runs` = false drops the per-run records (aggregates only), for
// compact CI artifacts; the committed baseline keeps runs for forensics.
[[nodiscard]] Json to_json(const SweepResult& result, bool include_runs = true);
[[nodiscard]] std::string to_json_text(const SweepResult& result, bool include_runs = true);

// Throws std::invalid_argument on malformed documents, unknown schema
// versions, or metric schemas that do not match this binary's.
[[nodiscard]] SweepResult from_json(const Json& doc);
[[nodiscard]] SweepResult from_json_text(const std::string& text);

}  // namespace titan::sweep
