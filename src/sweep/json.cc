#include "sweep/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace titan::sweep {

namespace {

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  static const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  throw std::invalid_argument(std::string("json: expected ") + wanted + ", got " +
                              names[static_cast<int>(got)]);
}

}  // namespace

std::string format_double(double v) {
  if (!std::isfinite(v)) throw std::invalid_argument("json: non-finite number");
  // Integral values (call counts, seeds) print as integers; everything else
  // gets 17 significant digits, enough to reconstruct the exact double.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  if (!std::isfinite(v)) throw std::invalid_argument("json: non-finite number");
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::int64_t Json::as_int() const {
  const double v = as_number();
  if (v != std::floor(v) || std::fabs(v) > 9.0e18)
    throw std::invalid_argument("json: expected an integral number");
  return static_cast<std::int64_t>(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_);
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (i >= array_.size()) throw std::invalid_argument("json: array index out of range");
  return array_[i];
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(v));
}

bool Json::has(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return true;
  return false;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return v;
  throw std::invalid_argument("json: missing key \"" + key + "\"");
}

void Json::set(std::string key, Json v) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

// --- writer --------------------------------------------------------------

namespace {

void escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_double(number_); break;
    case Type::kString: escape_to(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_to(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

// --- parser --------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json{};
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.set(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8. Surrogate halves would need pairing
          // logic this parser does not have — fail loud, never emit
          // invalid UTF-8.
          if (code >= 0xD800 && code <= 0xDFFF) fail("unsupported surrogate escape");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == begin) fail("expected a value");
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace titan::sweep
