// Seed x scenario sweep harness.
//
// A single (seed, scenario) simulation is one sample; the paper's
// evaluation (§8) reports *distributions* over weeks of traffic. The sweep
// layer turns the closed-loop engine into a distribution instrument: a
// `SweepRunner` fans every (scenario, seed) pair — optionally at several
// sim thread counts — across a worker pool, extracts a fixed schema of
// metrics from each `SimResult`, verifies the engine's determinism promise
// (bit-identical results across thread counts) on every task, and reduces
// each metric across seeds into mean / p50 / p95 / min / max / stddev.
//
// Determinism contract: every metric except the explicitly-marked timing
// entries (timing_metric_indices(); schema v3's plan_solve_seconds) is a
// pure function of the spec. Worker-pool size and task execution order
// never change a byte of those — records land in canonical (scenario,
// seed, threads) slots and aggregation runs after the pool drains — so a
// sweep JSON is comparable across machines and committable as a
// regression baseline (see sweep/baseline.h; the baseline check grants
// the timing metrics unbounded tolerance, and mask_timing_metrics puts
// two sweeps into fully byte-comparable form).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace titan::sweep {

// What to sweep and how to shrink the scenarios to sweepable cost. A value
// < 0 (or the scenario default) leaves the named scenario's own setting
// untouched, so the same struct drives both full-size benches and the tiny
// configurations tests use.
struct SweepSpec {
  std::vector<std::string> scenarios;  // empty = the whole named library
  std::uint64_t base_seed = 2024;
  int num_seeds = 8;                  // seeds base_seed .. base_seed + n - 1
  std::vector<int> sim_threads = {1};  // thread counts each sim runs at

  // Scenario overrides (applied to every scenario in the sweep).
  double peak_slot_calls = -1.0;
  int training_weeks = -1;
  int eval_days = -1;
  int replan_interval_slots = -1;
  int shards = -1;
  // Cap (not replacement) on the scenario's reduced-config budget: a
  // scenario whose own default is tighter keeps it.
  int max_reduced_configs = -1;
  bool oracle_counts = false;  // true: plan on ground truth, skip forecasts

  // Execution knobs — deliberately excluded from serialization: they must
  // not (and do not) affect the result.
  int workers = 0;                   // <= 0: one worker per hardware thread
  std::uint64_t task_order_seed = 0;  // != 0: shuffle task execution order

  bool operator==(const SweepSpec&) const = default;
};

// The SimResult fields a sweep aggregates, in report order. `metric_values`
// returns one value per `metric_names()` entry. Every metric is a pure
// function of the spec except the explicitly-marked timing metrics below
// (schema v3 carries plan_solve_seconds for replan-latency observability);
// comparison surfaces — the determinism audits, byte-equality of
// differently-scheduled sweeps — mask those first, and the baseline check
// grants them unbounded tolerance.
[[nodiscard]] const std::vector<std::string>& metric_names();
[[nodiscard]] std::vector<double> metric_values(const sim::SimResult& r);

// Indices into metric_names() of the wall-clock metrics (currently just
// plan_solve_seconds): the only schema entries that are NOT deterministic
// in the spec.
[[nodiscard]] const std::vector<std::size_t>& timing_metric_indices();

// One completed simulation, reduced to the metric schema.
struct RunRecord {
  std::string scenario;
  std::uint64_t seed = 0;
  int threads = 1;
  std::uint64_t checksum = 0;
  std::vector<double> values;  // parallel to metric_names()

  bool operator==(const RunRecord&) const = default;
};

// Distribution of one metric across seeds.
struct MetricStats {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;

  bool operator==(const MetricStats&) const = default;
};

// Requires a non-empty sample; the sweep never aggregates zero runs.
[[nodiscard]] MetricStats compute_stats(const std::vector<double>& samples);

struct ScenarioAggregate {
  std::string scenario;
  int seeds = 0;
  std::vector<MetricStats> stats;  // parallel to metric_names()

  bool operator==(const ScenarioAggregate&) const = default;
};

struct SweepResult {
  SweepSpec spec;
  // Sorted canonically: spec scenario order, then seed, then thread count.
  std::vector<RunRecord> runs;
  // One entry per scenario, in spec order. Aggregated across seeds from the
  // first sim_threads entry's runs (the rest are determinism replicas).
  std::vector<ScenarioAggregate> aggregates;
  // Human-readable descriptions of any (scenario, seed) whose results were
  // NOT bit-identical across sim thread counts. Always empty unless the
  // engine's core guarantee broke.
  std::vector<std::string> determinism_violations;

  // Wall seconds each (scenario, seed) task took (engine construction plus
  // every thread-count variant), in canonical task order: scenario-major,
  // seed-minor. Observability only — deliberately NOT serialized (the
  // sweep JSON schema stays at v3), zeroed by mask_timing_metrics
  // alongside the timing metrics, and excluded from operator== so the
  // lossless round-trip contract parse(serialize(x)) == x holds.
  std::vector<double> task_seconds;

  bool operator==(const SweepResult& other) const {
    return spec == other.spec && runs == other.runs && aggregates == other.aggregates &&
           determinism_violations == other.determinism_violations;
  }
};

// Zeroes the timing metrics of every run record and aggregate in place,
// putting two differently-scheduled sweeps into byte-comparable form.
void mask_timing_metrics(SweepResult& result);

// --- task seam ------------------------------------------------------------
//
// A sweep decomposes into independent (scenario, seed) tasks plus one
// order-invariant reduction. The three functions below are that seam made
// explicit: SweepRunner::run threads them in-process, and the distributed
// dispatcher (sweep/dispatch.h) runs the same task function in worker
// subprocesses and the same assembly on the collected partials — which is
// why an N-process sweep bit-compares equal to the in-process one.

// Validates and resolves a spec: an empty scenario list becomes the whole
// named library; unknown scenario names, a non-positive seed count, or a
// bad sim_threads list throw std::invalid_argument. Dispatcher and runner
// both normalize through this, so a spec that validates on the dispatcher
// validates identically inside every worker.
[[nodiscard]] SweepSpec validate_sweep_spec(SweepSpec spec);

// LP solver strategies a task can pin, mirroring the bench --lp-mode flag:
// "auto" keeps the scenario defaults, "primal"/"dual"/"decomposed" force
// the named path (see docs/solver.md). Part of the work-spec protocol so a
// remote worker reproduces the dispatcher's solver configuration exactly.
[[nodiscard]] const std::vector<std::string>& lp_mode_names();

// One (scenario, seed) task: builds the engine once, runs it at every
// spec.sim_threads count, audits the engine's thread-count determinism
// promise on the full SimResult, and reduces each run to its RunRecord
// (records[v] corresponds to spec.sim_threads[v]). Throws
// std::invalid_argument on an unknown scenario or lp_mode.
struct SweepTaskResult {
  std::vector<RunRecord> records;  // one per spec.sim_threads entry
  std::vector<std::string> determinism_violations;
  double seconds = 0.0;  // wall time for the whole task (observability only)
};
[[nodiscard]] SweepTaskResult run_sweep_task(const SweepSpec& spec,
                                             const std::string& scenario, std::uint64_t seed,
                                             const std::string& lp_mode = "auto");

// Assembles task outputs into the final SweepResult: `runs` in canonical
// slot order ((scenario-index * num_seeds + seed-index) * |sim_threads| +
// variant), `task_seconds` scenario-major/seed-minor. Normalizes the spec
// echo (execution knobs zeroed), sorts the violations, and aggregates
// across seeds — the reduction is a pure function of its inputs, so any
// scheduling (threads, worker processes, dispatch order) that fills the
// same slots produces the same bytes.
[[nodiscard]] SweepResult assemble_sweep_result(const SweepSpec& spec,
                                                std::vector<RunRecord> runs,
                                                std::vector<std::string> determinism_violations,
                                                std::vector<double> task_seconds);

class SweepRunner {
 public:
  // Resolves and validates the spec up front (validate_sweep_spec):
  // unknown scenario names, a non-positive seed count, or an empty
  // sim_threads list throw std::invalid_argument before any simulation
  // starts.
  explicit SweepRunner(SweepSpec spec);

  [[nodiscard]] const SweepSpec& spec() const { return spec_; }

  // Runs the whole sweep. Blocking; thread-safe against nothing (use one
  // runner per sweep). The result is identical for any `workers` and any
  // `task_order_seed`.
  [[nodiscard]] SweepResult run() const;

 private:
  SweepSpec spec_;
};

// The scenario with the spec's overrides and seed applied — exposed so
// benches/tests can reproduce exactly what the sweep simulated.
[[nodiscard]] sim::Scenario sweep_scenario(const SweepSpec& spec, const std::string& name,
                                           std::uint64_t seed);

}  // namespace titan::sweep
