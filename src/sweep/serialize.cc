#include "sweep/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace titan::sweep {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

// Strict-mode guard: every key of `j` must be in `known`. The error names
// the first offender exactly, so protocol tests can pin the text.
void reject_unknown_keys(const Json& j, std::initializer_list<const char*> known,
                         const char* what) {
  for (const auto& [key, value] : j.members()) {
    (void)value;
    bool ok = false;
    for (const char* k : known)
      if (key == k) {
        ok = true;
        break;
      }
    if (!ok)
      throw std::invalid_argument(std::string(what) + ": unknown field '" + key + "'");
  }
}

}  // namespace

Json seed_to_json(std::uint64_t seed) { return Json::string(std::to_string(seed)); }

std::uint64_t seed_from_json(const Json& j) {
  const std::string& s = j.as_string();
  if (s.empty() || s.size() > 20)
    throw std::invalid_argument("sweep json: bad seed '" + s + "'");
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("sweep json: bad seed '" + s + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~0ULL - digit) / 10)
      throw std::invalid_argument("sweep json: seed overflows uint64: '" + s + "'");
    v = v * 10 + digit;
  }
  return v;
}

namespace {

std::uint64_t parse_hex64(const std::string& s) {
  if (s.size() != 16) throw std::invalid_argument("sweep json: bad checksum '" + s + "'");
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else throw std::invalid_argument("sweep json: bad checksum '" + s + "'");
  }
  return v;
}

}  // namespace

Json sweep_spec_to_json(const SweepSpec& spec) {
  Json j = Json::object();
  j.set("base_seed", seed_to_json(spec.base_seed));
  j.set("num_seeds", Json::number(spec.num_seeds));
  Json scenarios = Json::array();
  for (const auto& name : spec.scenarios) scenarios.push_back(Json::string(name));
  j.set("scenarios", std::move(scenarios));
  Json threads = Json::array();
  for (const int t : spec.sim_threads) threads.push_back(Json::number(t));
  j.set("sim_threads", std::move(threads));
  j.set("peak_slot_calls", Json::number(spec.peak_slot_calls));
  j.set("training_weeks", Json::number(spec.training_weeks));
  j.set("eval_days", Json::number(spec.eval_days));
  j.set("replan_interval_slots", Json::number(spec.replan_interval_slots));
  j.set("shards", Json::number(spec.shards));
  j.set("max_reduced_configs", Json::number(spec.max_reduced_configs));
  j.set("oracle_counts", Json::boolean(spec.oracle_counts));
  return j;
}

SweepSpec sweep_spec_from_json(const Json& j, bool strict) {
  if (strict)
    reject_unknown_keys(j,
                        {"base_seed", "num_seeds", "scenarios", "sim_threads",
                         "peak_slot_calls", "training_weeks", "eval_days",
                         "replan_interval_slots", "shards", "max_reduced_configs",
                         "oracle_counts"},
                        "sweep spec json");
  SweepSpec spec;
  spec.base_seed = seed_from_json(j.at("base_seed"));
  spec.num_seeds = static_cast<int>(j.at("num_seeds").as_int());
  spec.scenarios.clear();
  for (std::size_t i = 0; i < j.at("scenarios").size(); ++i)
    spec.scenarios.push_back(j.at("scenarios").at(i).as_string());
  spec.sim_threads.clear();
  for (std::size_t i = 0; i < j.at("sim_threads").size(); ++i)
    spec.sim_threads.push_back(static_cast<int>(j.at("sim_threads").at(i).as_int()));
  spec.peak_slot_calls = j.at("peak_slot_calls").as_number();
  spec.training_weeks = static_cast<int>(j.at("training_weeks").as_int());
  spec.eval_days = static_cast<int>(j.at("eval_days").as_int());
  spec.replan_interval_slots = static_cast<int>(j.at("replan_interval_slots").as_int());
  spec.shards = static_cast<int>(j.at("shards").as_int());
  spec.max_reduced_configs = static_cast<int>(j.at("max_reduced_configs").as_int());
  spec.oracle_counts = j.at("oracle_counts").as_bool();
  return spec;
}

namespace {

Json stats_to_json(const MetricStats& s, const std::string& metric) {
  Json j = Json::object();
  j.set("metric", Json::string(metric));
  j.set("count", Json::number(static_cast<double>(s.count)));
  j.set("mean", Json::number(s.mean));
  j.set("p50", Json::number(s.p50));
  j.set("p95", Json::number(s.p95));
  j.set("min", Json::number(s.min));
  j.set("max", Json::number(s.max));
  j.set("stddev", Json::number(s.stddev));
  return j;
}

MetricStats stats_from_json(const Json& j) {
  MetricStats s;
  s.count = static_cast<std::size_t>(j.at("count").as_int());
  s.mean = j.at("mean").as_number();
  s.p50 = j.at("p50").as_number();
  s.p95 = j.at("p95").as_number();
  s.min = j.at("min").as_number();
  s.max = j.at("max").as_number();
  s.stddev = j.at("stddev").as_number();
  return s;
}

}  // namespace

Json run_record_to_json(const RunRecord& run) {
  Json j = Json::object();
  j.set("scenario", Json::string(run.scenario));
  j.set("seed", seed_to_json(run.seed));
  j.set("threads", Json::number(run.threads));
  j.set("checksum", Json::string(hex64(run.checksum)));
  Json values = Json::array();
  for (const double v : run.values) values.push_back(Json::number(v));
  j.set("values", std::move(values));
  return j;
}

RunRecord run_record_from_json(const Json& j, bool strict) {
  if (strict)
    reject_unknown_keys(j, {"scenario", "seed", "threads", "checksum", "values"},
                        "run record json");
  RunRecord run;
  run.scenario = j.at("scenario").as_string();
  run.seed = seed_from_json(j.at("seed"));
  run.threads = static_cast<int>(j.at("threads").as_int());
  run.checksum = parse_hex64(j.at("checksum").as_string());
  const Json& values = j.at("values");
  if (values.size() != metric_names().size())
    throw std::invalid_argument("sweep json: run value count mismatch");
  run.values.reserve(values.size());
  for (std::size_t v = 0; v < values.size(); ++v)
    run.values.push_back(values.at(v).as_number());
  return run;
}

Json to_json(const SweepResult& result, bool include_runs) {
  Json doc = Json::object();
  doc.set("schema", Json::number(kSweepSchemaVersion));
  doc.set("spec", sweep_spec_to_json(result.spec));

  Json metrics = Json::array();
  for (const auto& name : metric_names()) metrics.push_back(Json::string(name));
  doc.set("metrics", std::move(metrics));

  if (include_runs) {
    Json runs = Json::array();
    for (const auto& run : result.runs) runs.push_back(run_record_to_json(run));
    doc.set("runs", std::move(runs));
  }

  Json aggregates = Json::array();
  for (const auto& agg : result.aggregates) {
    Json j = Json::object();
    j.set("scenario", Json::string(agg.scenario));
    j.set("seeds", Json::number(agg.seeds));
    Json stats = Json::array();
    for (std::size_t m = 0; m < agg.stats.size(); ++m)
      stats.push_back(stats_to_json(agg.stats[m], metric_names()[m]));
    j.set("stats", std::move(stats));
    aggregates.push_back(std::move(j));
  }
  doc.set("aggregates", std::move(aggregates));

  Json violations = Json::array();
  for (const auto& v : result.determinism_violations) violations.push_back(Json::string(v));
  doc.set("determinism_violations", std::move(violations));
  return doc;
}

std::string to_json_text(const SweepResult& result, bool include_runs) {
  return to_json(result, include_runs).dump(2);
}

SweepResult from_json(const Json& doc) {
  if (doc.at("schema").as_int() != kSweepSchemaVersion)
    throw std::invalid_argument("sweep json: unsupported schema version");

  const Json& metrics = doc.at("metrics");
  const auto& names = metric_names();
  if (metrics.size() != names.size())
    throw std::invalid_argument("sweep json: metric schema size mismatch");
  for (std::size_t i = 0; i < names.size(); ++i)
    if (metrics.at(i).as_string() != names[i])
      throw std::invalid_argument("sweep json: metric schema mismatch at '" +
                                  metrics.at(i).as_string() + "'");

  SweepResult result;
  result.spec = sweep_spec_from_json(doc.at("spec"));

  if (doc.has("runs")) {
    const Json& runs = doc.at("runs");
    for (std::size_t i = 0; i < runs.size(); ++i)
      result.runs.push_back(run_record_from_json(runs.at(i)));
  }

  const Json& aggregates = doc.at("aggregates");
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const Json& j = aggregates.at(i);
    ScenarioAggregate agg;
    agg.scenario = j.at("scenario").as_string();
    agg.seeds = static_cast<int>(j.at("seeds").as_int());
    const Json& stats = j.at("stats");
    if (stats.size() != names.size())
      throw std::invalid_argument("sweep json: aggregate stat count mismatch");
    for (std::size_t m = 0; m < stats.size(); ++m) {
      if (stats.at(m).at("metric").as_string() != names[m])
        throw std::invalid_argument("sweep json: aggregate metric order mismatch");
      agg.stats.push_back(stats_from_json(stats.at(m)));
    }
    result.aggregates.push_back(std::move(agg));
  }

  const Json& violations = doc.at("determinism_violations");
  for (std::size_t i = 0; i < violations.size(); ++i)
    result.determinism_violations.push_back(violations.at(i).as_string());
  return result;
}

SweepResult from_json_text(const std::string& text) { return from_json(Json::parse(text)); }

}  // namespace titan::sweep
