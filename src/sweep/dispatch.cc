#include "sweep/dispatch.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/rng.h"

namespace titan::sweep {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A worker that dies mid-write must surface as a recoverable fault (EOF on
// the next recv), not kill the dispatcher with SIGPIPE.
void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

class ProcessWorkerTransport final : public WorkerTransport {
 public:
  explicit ProcessWorkerTransport(const std::vector<std::string>& argv) {
    ignore_sigpipe();
    int to_child[2];    // dispatcher writes -> child stdin
    int from_child[2];  // child stdout -> dispatcher reads
    if (::pipe(to_child) != 0) throw std::runtime_error("sweep dispatch: pipe() failed");
    if (::pipe(from_child) != 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      throw std::runtime_error("sweep dispatch: pipe() failed");
    }
    pid_ = ::fork();
    if (pid_ < 0) {
      for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) ::close(fd);
      throw std::runtime_error("sweep dispatch: fork() failed");
    }
    if (pid_ == 0) {
      // Child: wire the pipes to stdio and become the worker binary.
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) ::close(fd);
      std::vector<char*> args;
      args.reserve(argv.size() + 1);
      for (const auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
      args.push_back(nullptr);
      ::execv(args[0], args.data());
      ::_exit(127);  // exec failed; the dispatcher sees EOF
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
  }

  ~ProcessWorkerTransport() override {
    if (in_fd_ >= 0) ::close(in_fd_);
    if (out_fd_ >= 0) ::close(out_fd_);
    if (pid_ > 0) {
      // A healthy worker exits on stdin EOF; a hung or wedged one gets
      // SIGKILL. Either way, reap — the dispatcher never leaks zombies.
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  void send(const std::string& line) override {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::write(in_fd_, framed.data() + off, framed.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("sweep dispatch: worker stdin write failed");
      }
      off += static_cast<std::size_t>(n);
    }
  }

  Recv recv(std::string& line, double timeout_sec) override {
    const double deadline = now_seconds() + timeout_sec;
    for (;;) {
      // A full line may already be buffered from a previous read.
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return Recv::ok;
      }
      const double remaining = deadline - now_seconds();
      if (remaining <= 0.0) return Recv::timeout;
      struct pollfd pfd{out_fd_, POLLIN, 0};
      const int timeout_ms = static_cast<int>(std::min(remaining * 1000.0, 2.0e9)) + 1;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Recv::eof;
      }
      if (ready == 0) return Recv::timeout;
      char chunk[4096];
      const ssize_t n = ::read(out_fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Recv::eof;
      }
      if (n == 0) return Recv::eof;  // worker closed stdout (exited)
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::string buffer_;
};

}  // namespace

WorkerFactory process_worker_factory(std::vector<std::string> argv) {
  if (argv.empty())
    throw std::invalid_argument("sweep dispatch: worker argv must not be empty");
  return [argv = std::move(argv)]() -> std::unique_ptr<WorkerTransport> {
    return std::make_unique<ProcessWorkerTransport>(argv);
  };
}

SweepDispatcher::SweepDispatcher(SweepSpec spec, WorkerFactory factory,
                                 DispatchOptions options)
    : spec_(validate_sweep_spec(std::move(spec))),
      factory_(std::move(factory)),
      options_(options) {
  if (!factory_) throw std::invalid_argument("sweep dispatch: null worker factory");
  if (options_.workers < 1)
    throw std::invalid_argument("sweep dispatch: workers must be >= 1");
  if (!(options_.task_timeout_sec > 0.0))
    throw std::invalid_argument("sweep dispatch: task_timeout_sec must be > 0");
  if (options_.max_attempts < 1)
    throw std::invalid_argument("sweep dispatch: max_attempts must be >= 1");
  if (options_.max_respawns < 0)
    throw std::invalid_argument("sweep dispatch: max_respawns must be >= 0");
}

SweepResult SweepDispatcher::run() {
  if (ran_) throw std::runtime_error("sweep dispatch: run() called twice");
  ran_ = true;
  const double started = now_seconds();

  // The canonical task matrix, scenario-major / seed-minor — the same
  // order SweepRunner enumerates, and the slot layout assemble_sweep_result
  // expects.
  struct Pending {
    std::size_t task = 0;  // canonical task index
    WorkSpec spec;
    int attempts = 0;
    std::string last_fault;
  };
  const std::size_t num_tasks = spec_.scenarios.size() * static_cast<std::size_t>(spec_.num_seeds);
  std::deque<Pending> queue;
  for (std::size_t sc = 0; sc < spec_.scenarios.size(); ++sc)
    for (int sd = 0; sd < spec_.num_seeds; ++sd) {
      Pending p;
      p.task = sc * static_cast<std::size_t>(spec_.num_seeds) + static_cast<std::size_t>(sd);
      p.spec.scenario = spec_.scenarios[sc];
      p.spec.seed = spec_.base_seed + static_cast<std::uint64_t>(sd);
      p.spec.spec = spec_;
      // The wire spec describes the work, never the scheduling.
      p.spec.spec.workers = 0;
      p.spec.spec.task_order_seed = 0;
      queue.push_back(std::move(p));
    }
  if (options_.dispatch_order_seed != 0) {
    core::Rng rng(options_.dispatch_order_seed);
    for (std::size_t i = queue.size(); i > 1; --i)
      std::swap(queue[i - 1],
                queue[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }

  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    std::vector<bool> done;
    std::vector<PartialResult> partials;  // by canonical task index
    std::size_t remaining = 0;
    int alive_workers = 0;
    int retries = 0;
    std::string fatal;  // first unrecoverable fault; drains the pool
  } shared;
  shared.queue = std::move(queue);
  shared.done.assign(num_tasks, false);
  shared.partials.resize(num_tasks);
  shared.remaining = num_tasks;
  const int num_workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(options_.workers),
                                             std::max<std::size_t>(num_tasks, 1)));
  shared.alive_workers = num_workers;

  report_ = DispatchReport{};
  report_.workers.resize(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) report_.workers[static_cast<std::size_t>(w)].worker = w;

  auto spec_name = [](const Pending& p) {
    return "scenario=" + p.spec.scenario + " seed=" + std::to_string(p.spec.seed);
  };

  auto worker_main = [&](int slot) {
    WorkerStats& stats = report_.workers[static_cast<std::size_t>(slot)];
    std::unique_ptr<WorkerTransport> transport;
    int respawns_left = options_.max_respawns;
    for (;;) {
      Pending pending;
      {
        std::unique_lock<std::mutex> lock(shared.mu);
        shared.cv.wait(lock, [&] {
          return !shared.queue.empty() || shared.remaining == 0 || !shared.fatal.empty();
        });
        if (shared.remaining == 0 || !shared.fatal.empty()) break;
        pending = std::move(shared.queue.front());
        shared.queue.pop_front();
      }

      // A fault below must never lose the spec: requeue (or mark fatal)
      // before this thread can exit, so cv waiters always make progress.
      auto fail = [&](const std::string& fault) {
        transport.reset();  // kill + reap; a fresh worker respawns below
        stats.faults += 1;
        pending.attempts += 1;
        pending.last_fault = fault;
        std::lock_guard<std::mutex> lock(shared.mu);
        if (pending.attempts >= options_.max_attempts) {
          if (shared.fatal.empty())
            shared.fatal = "sweep dispatch: " + spec_name(pending) + " failed after " +
                           std::to_string(pending.attempts) + " attempts (last fault: " +
                           fault + ")";
        } else {
          shared.retries += 1;
          shared.queue.push_back(std::move(pending));
        }
        shared.cv.notify_all();
      };

      if (!transport) {
        if (stats.tasks_completed + stats.faults > 0) {
          // Not the first transport on this slot: spend a respawn.
          if (respawns_left == 0) {
            std::lock_guard<std::mutex> lock(shared.mu);
            shared.queue.push_front(std::move(pending));
            shared.cv.notify_all();
            break;  // slot retired; survivors drain the queue
          }
          respawns_left -= 1;
          stats.respawns += 1;
        }
        try {
          transport = factory_();
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(shared.mu);
          shared.queue.push_front(std::move(pending));
          if (shared.alive_workers == 1 && shared.fatal.empty())
            shared.fatal = std::string("sweep dispatch: worker spawn failed: ") + e.what();
          shared.cv.notify_all();
          break;
        }
      }

      const double task_started = now_seconds();
      try {
        transport->send(to_json_line(pending.spec));
      } catch (const std::exception& e) {
        fail(e.what());
        continue;
      }
      std::string line;
      const WorkerTransport::Recv status = transport->recv(line, options_.task_timeout_sec);
      if (status == WorkerTransport::Recv::eof) {
        fail("worker exited before answering");
        continue;
      }
      if (status == WorkerTransport::Recv::timeout) {
        fail("no answer within " + std::to_string(options_.task_timeout_sec) + "s");
        continue;
      }
      PartialResult partial;
      try {
        partial = partial_result_from_text(line);
      } catch (const std::exception& e) {
        fail(e.what());
        continue;
      }
      if (partial.scenario != pending.spec.scenario || partial.seed != pending.spec.seed) {
        fail("answer for scenario=" + partial.scenario + " seed=" +
             std::to_string(partial.seed) + " does not match the dispatched spec");
        continue;
      }
      if (partial.records.size() != spec_.sim_threads.size()) {
        fail("answer carries " + std::to_string(partial.records.size()) +
             " records, expected " + std::to_string(spec_.sim_threads.size()));
        continue;
      }

      stats.busy_seconds += now_seconds() - task_started;
      stats.tasks_completed += 1;
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (!shared.done[pending.task]) {
          shared.done[pending.task] = true;
          shared.partials[pending.task] = std::move(partial);
          shared.remaining -= 1;
        }
        shared.cv.notify_all();
      }
    }
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.alive_workers -= 1;
    shared.cv.notify_all();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) threads.emplace_back(worker_main, w);
  for (auto& t : threads) t.join();

  report_.retries = shared.retries;
  report_.seconds = now_seconds() - started;

  // Mirror the per-slot accounting into obs metrics so the standard
  // registry export (perf_report.h: registry_json) carries it.
  for (const WorkerStats& w : report_.workers) {
    const std::string prefix = "sweep.dispatch.worker." + std::to_string(w.worker) + ".";
    registry_.counter(prefix + "tasks").add(w.tasks_completed);
    registry_.counter(prefix + "faults").add(w.faults);
    registry_.counter(prefix + "respawns").add(w.respawns);
    registry_.gauge(prefix + "busy_seconds").set(w.busy_seconds);
  }
  registry_.counter("sweep.dispatch.retries").add(report_.retries);
  registry_.gauge("sweep.dispatch.seconds").set(report_.seconds);
  auto& task_hist = registry_.histogram("sweep.dispatch.task_seconds");
  for (std::size_t t = 0; t < num_tasks; ++t)
    if (shared.done[t]) task_hist.record(shared.partials[t].task_seconds);

  if (!shared.fatal.empty()) throw std::runtime_error(shared.fatal);
  if (shared.remaining != 0) {
    // Every slot retired (spawn failures / respawn budgets) with work left.
    std::string first;
    for (const Pending& p : shared.queue) {
      first = spec_name(p);
      break;
    }
    throw std::runtime_error("sweep dispatch: all workers died with " +
                             std::to_string(shared.remaining) + " specs unfinished (next: " +
                             first + ")");
  }

  // The order-invariant reduction — identical to SweepRunner::run's.
  const std::size_t variants = spec_.sim_threads.size();
  std::vector<RunRecord> runs(num_tasks * variants);
  std::vector<std::string> violations;
  std::vector<double> task_seconds(num_tasks, 0.0);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    PartialResult& partial = shared.partials[t];
    for (std::size_t v = 0; v < variants; ++v) runs[t * variants + v] = std::move(partial.records[v]);
    violations.insert(violations.end(), partial.determinism_violations.begin(),
                      partial.determinism_violations.end());
    task_seconds[t] = partial.task_seconds;
  }
  return assemble_sweep_result(spec_, std::move(runs), std::move(violations),
                               std::move(task_seconds));
}

}  // namespace titan::sweep
