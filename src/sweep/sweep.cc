#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/rng.h"
#include "core/stats.h"

namespace titan::sweep {

const std::vector<std::string>& metric_names() {
  static const std::vector<std::string> names = {
      "calls",
      "replans",
      "dc_migrations",
      "migration_rate",
      "route_changes",
      "forced_migrations",
      "transit_failovers",
      "out_of_plan",
      "out_of_plan_rate",
      "fallback_assignments",
      "leaked_calls",
      "internet_share",
      "mean_mos",
      "wan_sum_of_peaks_mbps",
      "wan_worst_day_mbps",
      "wan_total_traffic_gb",
      // Per-region slices for the three planning regions (schema v2):
      // arrivals by the first joiner's continent, WAN GB by the serving
      // DC's continent. Out-of-scope regions report 0.
      "calls_na",
      "calls_eu",
      "calls_asia",
      "wan_gb_na",
      "wan_gb_eu",
      "wan_gb_asia",
      // Replan-latency surface of the warm-start loop (schema v3). The
      // iteration counts are deterministic; plan_solve_seconds is the one
      // wall-clock metric in the schema — reported for observability, and
      // exempted from baseline comparison (infinite tolerance), since
      // timings are machine-dependent.
      "replan_iterations",
      "replan_phase1_iterations",
      "warm_replans",
      "plan_solve_seconds",
      // LP scale-out counters (schema v4): dual-simplex pivots across all
      // replans, region blocks solved by the decomposed path, and structural
      // columns excluded from pricing by the candidate mask. Deterministic.
      "replan_dual_iterations",
      "replan_blocks_solved",
      "replan_pruned_columns",
      // Overload regime (schema v5): admission-control sheds and media
      // step-downs, plus the realized per-region shed fraction (rejected /
      // offered arrivals) for the three planning regions. All zero outside
      // the overload scenarios.
      "rejected_calls",
      "degraded_calls",
      "shed_fraction_na",
      "shed_fraction_eu",
      "shed_fraction_asia",
  };
  return names;
}

std::vector<double> metric_values(const sim::SimResult& r) {
  double worst_day = 0.0;
  for (const double d : r.wan.per_day_sum_of_peaks_mbps) worst_day = std::max(worst_day, d);
  std::int64_t replan_iterations = 0, replan_phase1 = 0, warm_replans = 0;
  std::int64_t replan_dual = 0, replan_blocks = 0, replan_pruned = 0;
  for (const auto& stat : r.replan_stats) {
    replan_iterations += stat.iterations;
    replan_phase1 += stat.phase1_iterations;
    warm_replans += stat.warm_started ? 1 : 0;
    replan_dual += stat.dual_iterations;
    replan_blocks += stat.blocks_solved;
    replan_pruned += stat.pruned_columns;
  }
  return {
      static_cast<double>(r.calls),
      static_cast<double>(r.replans),
      static_cast<double>(r.dc_migrations),
      r.migration_rate(),
      static_cast<double>(r.route_changes),
      static_cast<double>(r.forced_migrations),
      static_cast<double>(r.transit_failovers),
      static_cast<double>(r.out_of_plan),
      r.out_of_plan_rate(),
      static_cast<double>(r.fallback_assignments),
      static_cast<double>(r.leaked_calls),
      r.internet_share,
      r.mean_mos,
      r.wan.sum_of_peaks_mbps,
      worst_day,
      r.wan.total_traffic_gb,
      static_cast<double>(
          r.calls_by_region[static_cast<std::size_t>(geo::Continent::kNorthAmerica)]),
      static_cast<double>(r.calls_by_region[static_cast<std::size_t>(geo::Continent::kEurope)]),
      static_cast<double>(r.calls_by_region[static_cast<std::size_t>(geo::Continent::kAsia)]),
      r.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kNorthAmerica)],
      r.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kEurope)],
      r.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kAsia)],
      static_cast<double>(replan_iterations),
      static_cast<double>(replan_phase1),
      static_cast<double>(warm_replans),
      r.plan_seconds,
      static_cast<double>(replan_dual),
      static_cast<double>(replan_blocks),
      static_cast<double>(replan_pruned),
      static_cast<double>(r.rejected_calls),
      static_cast<double>(r.degraded_calls),
      r.shed_fraction(geo::Continent::kNorthAmerica),
      r.shed_fraction(geo::Continent::kEurope),
      r.shed_fraction(geo::Continent::kAsia),
  };
}

const std::vector<std::size_t>& timing_metric_indices() {
  static const std::vector<std::size_t> indices = [] {
    std::vector<std::size_t> out;
    const auto& names = metric_names();
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == "plan_solve_seconds") out.push_back(i);
    return out;
  }();
  return indices;
}

void mask_timing_metrics(SweepResult& result) {
  for (auto& run : result.runs)
    for (const std::size_t m : timing_metric_indices())
      if (m < run.values.size()) run.values[m] = 0.0;
  for (auto& agg : result.aggregates)
    for (const std::size_t m : timing_metric_indices())
      if (m < agg.stats.size()) agg.stats[m] = MetricStats{};
  std::fill(result.task_seconds.begin(), result.task_seconds.end(), 0.0);
}

MetricStats compute_stats(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("compute_stats: empty sample");
  MetricStats s;
  s.count = samples.size();
  s.mean = core::mean(samples);
  const auto qs = core::quantiles(samples, {0.5, 0.95});
  s.p50 = qs[0];
  s.p95 = qs[1];
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  s.stddev = core::stddev(samples);
  return s;
}

sim::Scenario sweep_scenario(const SweepSpec& spec, const std::string& name,
                             std::uint64_t seed) {
  sim::Scenario s = sim::make_scenario(name);
  s.seed = seed;
  if (spec.peak_slot_calls > 0.0) s.peak_slot_calls = spec.peak_slot_calls;
  if (spec.training_weeks > 0) s.training_weeks = spec.training_weeks;
  if (spec.eval_days > 0) s.eval_days = spec.eval_days;
  if (spec.replan_interval_slots > 0) {
    s.replan_interval_slots = spec.replan_interval_slots;
    s.pipeline.scope.timeslots = spec.replan_interval_slots;
  }
  if (spec.shards > 0) s.shards = spec.shards;
  // A cap, not a replacement: scenarios whose own default is already
  // tighter (the multi-region scopes trade LP size for DC count) keep it.
  if (spec.max_reduced_configs > 0)
    s.pipeline.scope.max_reduced_configs =
        std::min(s.pipeline.scope.max_reduced_configs, spec.max_reduced_configs);
  if (spec.oracle_counts) s.oracle_counts = true;
  return s;
}

SweepSpec validate_sweep_spec(SweepSpec spec) {
  if (spec.scenarios.empty()) spec.scenarios = sim::scenario_names();
  const auto& known = sim::scenario_names();
  for (const auto& name : spec.scenarios)
    if (std::find(known.begin(), known.end(), name) == known.end())
      throw std::invalid_argument("unknown scenario: " + name);
  if (spec.num_seeds < 1) throw std::invalid_argument("sweep needs num_seeds >= 1");
  if (spec.sim_threads.empty()) throw std::invalid_argument("sweep needs sim_threads");
  for (const int t : spec.sim_threads)
    if (t < 1) throw std::invalid_argument("sim_threads entries must be >= 1");
  return spec;
}

const std::vector<std::string>& lp_mode_names() {
  static const std::vector<std::string> names = {"auto", "primal", "dual", "decomposed"};
  return names;
}

namespace {

// Same mapping as the bench --lp-mode flag (bench_sim_scenarios): "auto"
// leaves the scenario's solver defaults untouched.
void apply_lp_mode(const std::string& mode, titannext::PipelineOptions& pipeline) {
  if (mode == "auto") return;
  if (mode == "primal") {
    pipeline.lp.solver.pivot_mode = lp::PivotMode::kPrimal;
    pipeline.lp.decomposition = titannext::Decomposition::kOff;
  } else if (mode == "dual") {
    pipeline.lp.solver.pivot_mode = lp::PivotMode::kDual;
    pipeline.lp.decomposition = titannext::Decomposition::kOff;
  } else if (mode == "decomposed") {
    pipeline.lp.decomposition = titannext::Decomposition::kForce;
  } else {
    throw std::invalid_argument("unknown lp_mode '" + mode + "'");
  }
}

}  // namespace

SweepTaskResult run_sweep_task(const SweepSpec& spec, const std::string& scenario,
                               std::uint64_t seed, const std::string& lp_mode) {
  const auto task_start = std::chrono::steady_clock::now();
  sim::Scenario resolved = sweep_scenario(spec, scenario, seed);
  apply_lp_mode(lp_mode, resolved.pipeline);
  sim::SimEngine engine(resolved);

  SweepTaskResult task;
  const std::size_t variants = spec.sim_threads.size();
  task.records.resize(variants);
  std::vector<sim::SimResult> sims;
  sims.reserve(variants);
  for (std::size_t v = 0; v < variants; ++v) {
    sims.push_back(engine.run(spec.sim_threads[v]));
    sim::SimResult& r = sims.back();
    RunRecord& record = task.records[v];
    record.scenario = scenario;
    record.seed = seed;
    record.threads = spec.sim_threads[v];
    record.checksum = r.checksum;
    record.values = metric_values(r);
    // Mask the wall-clock fields in place (the record has already captured
    // everything it needs): what remains must be bit-identical across
    // thread counts.
    r.zero_wallclock();
  }
  // The engine's core promise: thread count changes nothing. Compare the
  // full SimResult (streams included) bit-for-bit.
  for (std::size_t v = 1; v < variants; ++v) {
    if (!(sims[0] == sims[v])) {
      task.determinism_violations.push_back(
          scenario + " seed " + std::to_string(seed) + ": threads " +
          std::to_string(spec.sim_threads[0]) + " vs " +
          std::to_string(spec.sim_threads[v]) + " diverged");
    }
  }
  task.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - task_start).count();
  return task;
}

SweepResult assemble_sweep_result(const SweepSpec& spec, std::vector<RunRecord> runs,
                                  std::vector<std::string> determinism_violations,
                                  std::vector<double> task_seconds) {
  SweepResult result;
  result.spec = spec;
  // The result's spec echo describes *what* was swept, never how it was
  // scheduled: normalize the execution knobs so equality (and baseline
  // comparison) across differently-scheduled sweeps holds, matching the
  // serialized form, which omits them.
  result.spec.workers = 0;
  result.spec.task_order_seed = 0;
  result.runs = std::move(runs);
  result.task_seconds = std::move(task_seconds);
  // Violations arrive in completion order; canonicalize.
  std::sort(determinism_violations.begin(), determinism_violations.end());
  result.determinism_violations = std::move(determinism_violations);

  // Aggregate across seeds, per scenario, from the first-variant runs.
  const std::size_t seeds = static_cast<std::size_t>(spec.num_seeds);
  const std::size_t variants = spec.sim_threads.size();
  result.aggregates.reserve(spec.scenarios.size());
  for (std::size_t sc = 0; sc < spec.scenarios.size(); ++sc) {
    ScenarioAggregate agg;
    agg.scenario = spec.scenarios[sc];
    agg.seeds = spec.num_seeds;
    for (std::size_t m = 0; m < metric_names().size(); ++m) {
      std::vector<double> samples;
      samples.reserve(seeds);
      for (std::size_t sd = 0; sd < seeds; ++sd)
        samples.push_back(result.runs[(sc * seeds + sd) * variants].values[m]);
      agg.stats.push_back(compute_stats(samples));
    }
    result.aggregates.push_back(std::move(agg));
  }
  return result;
}

SweepRunner::SweepRunner(SweepSpec spec) : spec_(validate_sweep_spec(std::move(spec))) {}

SweepResult SweepRunner::run() const {
  const std::size_t num_scenarios = spec_.scenarios.size();
  const std::size_t seeds = static_cast<std::size_t>(spec_.num_seeds);
  const std::size_t variants = spec_.sim_threads.size();

  // One task per (scenario, seed): the task builds the engine once and runs
  // it at every requested thread count, writing each record into its
  // canonical slot — execution order can never reorder the output.
  struct Task {
    std::size_t scenario_index;
    std::size_t seed_index;
  };
  std::vector<Task> tasks;
  tasks.reserve(num_scenarios * seeds);
  for (std::size_t sc = 0; sc < num_scenarios; ++sc)
    for (std::size_t sd = 0; sd < seeds; ++sd) tasks.push_back({sc, sd});
  if (spec_.task_order_seed != 0) {
    core::Rng rng(spec_.task_order_seed);
    for (std::size_t i = tasks.size(); i > 1; --i)
      std::swap(tasks[i - 1],
                tasks[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }

  std::vector<RunRecord> runs(tasks.size() * variants);
  std::vector<double> task_seconds(tasks.size(), 0.0);
  std::vector<std::string> violations;
  std::mutex violations_mu;

  std::exception_ptr first_error;
  std::mutex error_mu;
  std::atomic<std::size_t> next{0};
  const auto work = [&] {
    for (std::size_t i = next.fetch_add(1); i < tasks.size(); i = next.fetch_add(1)) {
      try {
        const Task& task = tasks[i];
        const std::string& name = spec_.scenarios[task.scenario_index];
        const std::uint64_t seed = spec_.base_seed + task.seed_index;
        SweepTaskResult done = run_sweep_task(spec_, name, seed);

        // Canonical slots: workers never race here because each task index
        // is claimed by exactly one worker.
        const std::size_t base =
            (task.scenario_index * seeds + task.seed_index) * variants;
        for (std::size_t v = 0; v < variants; ++v)
          runs[base + v] = std::move(done.records[v]);
        task_seconds[task.scenario_index * seeds + task.seed_index] = done.seconds;
        if (!done.determinism_violations.empty()) {
          std::lock_guard<std::mutex> lock(violations_mu);
          for (auto& violation : done.determinism_violations)
            violations.push_back(std::move(violation));
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  int workers = spec_.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  workers = std::max(1, std::min<int>(workers, static_cast<int>(tasks.size())));
  if (workers == 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  return assemble_sweep_result(spec_, std::move(runs), std::move(violations),
                               std::move(task_seconds));
}

}  // namespace titan::sweep
