#include "sweep/protocol.h"

#include <algorithm>
#include <stdexcept>

#include "sweep/serialize.h"

namespace titan::sweep {

namespace {

// Version gate. Runs BEFORE the unknown-field check: a future protocol may
// legitimately add fields, and "version 2 (this binary speaks 1)" is the
// actionable error, not "unknown field 'new_thing'".
void check_protocol(const Json& j, const char* what) {
  const long long version = j.at("protocol").as_int();
  if (version != kWorkProtocolVersion)
    throw std::invalid_argument(std::string(what) + ": protocol version " +
                                std::to_string(version) + " (this binary speaks " +
                                std::to_string(kWorkProtocolVersion) + ")");
}

void reject_unknown_keys(const Json& j, std::initializer_list<const char*> known,
                         const char* what) {
  for (const auto& [key, value] : j.members()) {
    (void)value;
    bool ok = false;
    for (const char* k : known)
      if (key == k) {
        ok = true;
        break;
      }
    if (!ok)
      throw std::invalid_argument(std::string(what) + ": unknown field '" + key + "'");
  }
}

}  // namespace

Json to_json(const WorkSpec& spec) {
  Json j = Json::object();
  j.set("protocol", Json::number(spec.protocol));
  j.set("scenario", Json::string(spec.scenario));
  j.set("seed", seed_to_json(spec.seed));
  j.set("lp_mode", Json::string(spec.lp_mode));
  j.set("spec", sweep_spec_to_json(spec.spec));
  return j;
}

Json to_json(const PartialResult& partial) {
  Json j = Json::object();
  j.set("protocol", Json::number(partial.protocol));
  j.set("scenario", Json::string(partial.scenario));
  j.set("seed", seed_to_json(partial.seed));
  j.set("task_seconds", Json::number(partial.task_seconds));
  Json records = Json::array();
  for (const auto& r : partial.records) records.push_back(run_record_to_json(r));
  j.set("records", std::move(records));
  Json violations = Json::array();
  for (const auto& v : partial.determinism_violations) violations.push_back(Json::string(v));
  j.set("determinism_violations", std::move(violations));
  return j;
}

std::string to_json_line(const WorkSpec& spec) { return to_json(spec).dump(-1); }

std::string to_json_line(const PartialResult& partial) { return to_json(partial).dump(-1); }

WorkSpec work_spec_from_json(const Json& j) {
  static constexpr const char* kWhat = "work spec json";
  check_protocol(j, kWhat);
  reject_unknown_keys(j, {"protocol", "scenario", "seed", "lp_mode", "spec"}, kWhat);
  WorkSpec spec;
  spec.protocol = static_cast<int>(j.at("protocol").as_int());
  spec.scenario = j.at("scenario").as_string();
  spec.seed = seed_from_json(j.at("seed"));
  spec.lp_mode = j.at("lp_mode").as_string();
  const auto& modes = lp_mode_names();
  if (std::find(modes.begin(), modes.end(), spec.lp_mode) == modes.end())
    throw std::invalid_argument(std::string(kWhat) + ": unknown lp_mode '" + spec.lp_mode +
                                "'");
  spec.spec = sweep_spec_from_json(j.at("spec"), /*strict=*/true);
  return spec;
}

WorkSpec work_spec_from_text(const std::string& text) {
  return work_spec_from_json(Json::parse(text));
}

PartialResult partial_result_from_json(const Json& j) {
  static constexpr const char* kWhat = "partial result json";
  check_protocol(j, kWhat);
  reject_unknown_keys(
      j, {"protocol", "scenario", "seed", "task_seconds", "records", "determinism_violations"},
      kWhat);
  PartialResult partial;
  partial.protocol = static_cast<int>(j.at("protocol").as_int());
  partial.scenario = j.at("scenario").as_string();
  partial.seed = seed_from_json(j.at("seed"));
  partial.task_seconds = j.at("task_seconds").as_number();
  const Json& records = j.at("records");
  partial.records.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    partial.records.push_back(run_record_from_json(records.at(i), /*strict=*/true));
  const Json& violations = j.at("determinism_violations");
  for (std::size_t i = 0; i < violations.size(); ++i)
    partial.determinism_violations.push_back(violations.at(i).as_string());
  return partial;
}

PartialResult partial_result_from_text(const std::string& text) {
  return partial_result_from_json(Json::parse(text));
}

PartialResult run_work_spec(const WorkSpec& spec) {
  SweepTaskResult task = run_sweep_task(spec.spec, spec.scenario, spec.seed, spec.lp_mode);
  PartialResult partial;
  partial.scenario = spec.scenario;
  partial.seed = spec.seed;
  partial.task_seconds = task.seconds;
  partial.records = std::move(task.records);
  partial.determinism_violations = std::move(task.determinism_violations);
  return partial;
}

}  // namespace titan::sweep
