// Distributed-sweep wire protocol: work specs and partial results.
//
// The sweep's task seam (sweep/sweep.h: one (scenario, seed) task, an
// order-invariant reduction) becomes a process boundary here: a dispatcher
// (sweep/dispatch.h) sends one `WorkSpec` per task to a worker process
// (`bench_sim_sweep --worker`) as a single JSON line on its stdin, and the
// worker answers with one `PartialResult` line on its stdout. The framing
// is newline-delimited JSON through the same sweep/json writer the
// committed baselines use, so encode -> decode -> encode is byte-stable
// and doubles survive exactly.
//
// Versioning and strictness: both message types carry an explicit
// `protocol` version, and decoding is *strict* — an unknown protocol
// version or an unknown field is rejected with exact, pinned error text
// instead of being ignored. A dispatcher and worker from different builds
// must fail loudly at the first message, never merge subtly mismatched
// metrics (the metric schema itself is checked per record, the way the
// baseline reader does).
#pragma once

#include <string>

#include "sweep/json.h"
#include "sweep/sweep.h"

namespace titan::sweep {

// v1: initial protocol — WorkSpec{protocol, scenario, seed, lp_mode, spec},
// PartialResult{protocol, scenario, seed, task_seconds, records,
// determinism_violations}. Bump on any field rename/removal or semantic
// change; dispatcher and workers are always the same binary today, but the
// version check is what makes pointing the dispatcher at remote workers
// safe later (docs/sweep.md).
inline constexpr int kWorkProtocolVersion = 1;

// One task of a sweep: everything a worker needs to reproduce the
// dispatcher's simulation bit-for-bit — the sweep-wide overrides (`spec`;
// execution knobs are not serialized), the (scenario, seed) coordinate,
// the sim-thread counts (inside `spec`), and the pinned LP solver mode.
struct WorkSpec {
  int protocol = kWorkProtocolVersion;
  std::string scenario;
  std::uint64_t seed = 0;
  std::string lp_mode = "auto";  // one of lp_mode_names()
  SweepSpec spec;

  bool operator==(const WorkSpec&) const = default;
};

// A worker's answer to one WorkSpec: the task's run records (one per
// spec.sim_threads entry, in that order), any determinism violations the
// worker's own thread-count audit found, and the task's wall seconds
// (observability only — never compared).
struct PartialResult {
  int protocol = kWorkProtocolVersion;
  std::string scenario;
  std::uint64_t seed = 0;
  double task_seconds = 0.0;
  std::vector<RunRecord> records;
  std::vector<std::string> determinism_violations;

  bool operator==(const PartialResult&) const = default;
};

[[nodiscard]] Json to_json(const WorkSpec& spec);
[[nodiscard]] Json to_json(const PartialResult& partial);

// Single-line (no embedded newline) encodings — the wire framing.
[[nodiscard]] std::string to_json_line(const WorkSpec& spec);
[[nodiscard]] std::string to_json_line(const PartialResult& partial);

// Strict decoders. Throw std::invalid_argument with exact text:
//   "work spec json: protocol version N (this binary speaks 1)"
//   "work spec json: unknown field 'x'"
//   "work spec json: unknown lp_mode 'x'"
// and the "partial result json: ..." equivalents. Nested spec / record
// objects are parsed strict too.
[[nodiscard]] WorkSpec work_spec_from_json(const Json& j);
[[nodiscard]] WorkSpec work_spec_from_text(const std::string& text);
[[nodiscard]] PartialResult partial_result_from_json(const Json& j);
[[nodiscard]] PartialResult partial_result_from_text(const std::string& text);

// Executes a work spec in this process — the entire body of a worker's
// loop, also the reference implementation fault-injection tests compare
// against. Throws std::invalid_argument on an invalid spec (unknown
// scenario/lp_mode, bad sim_threads).
[[nodiscard]] PartialResult run_work_spec(const WorkSpec& spec);

}  // namespace titan::sweep
