// Distributed sweep dispatcher: the in-process SweepRunner's task matrix,
// executed by a fleet of worker subprocesses over the sweep/protocol.h
// wire format — with the same bytes coming out.
//
// Shape: the dispatcher partitions the sweep into its canonical (scenario,
// seed) WorkSpecs, hands each to whichever worker is free (one feeder
// thread per worker slot pulling from a shared queue), and assembles the
// returned PartialResults through the exact reduction SweepRunner uses
// (sweep.h: assemble_sweep_result). Because records land in canonical
// slots and the reduction is order-invariant, the aggregate bit-compares
// equal to the single-process run for any worker count and any dispatch
// order — tests/sweep_dispatch_test.cc proves it byte-for-byte.
//
// Fault model: a worker may die mid-task, hang past the per-task timeout,
// or answer with truncated/corrupt/mis-versioned JSON. Any such fault
// kills that worker's transport, counts one failed attempt against the
// in-flight spec, and requeues the spec for the surviving workers (a fresh
// transport is respawned for the slot, within budget). A spec that
// exhausts its attempts fails the whole sweep loudly, naming the offending
// (scenario, seed). Faults never change result bytes — only wall time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sweep/protocol.h"
#include "sweep/sweep.h"

namespace titan::sweep {

// One worker connection, as the dispatcher sees it: a line out, lines
// back. Implementations need not be thread-safe — each transport is owned
// by exactly one feeder thread. Destruction must reap the peer (kill the
// subprocess); it is the dispatcher's fault-recovery primitive.
class WorkerTransport {
 public:
  enum class Recv { ok, eof, timeout };

  virtual ~WorkerTransport() = default;

  // Writes one work-spec line. Throws std::runtime_error when the peer is
  // gone (broken pipe).
  virtual void send(const std::string& line) = 0;

  // Reads one result line (without the trailing newline) into `line`,
  // waiting at most `timeout_sec`. `eof` = peer closed its end (died or
  // finished); `timeout` = deadline expired with no complete line.
  [[nodiscard]] virtual Recv recv(std::string& line, double timeout_sec) = 0;
};

// Creates a fresh worker connection. Called once per worker slot at
// startup and again on respawn after a fault. Throwing marks the slot
// dead (its queued work migrates to surviving workers).
using WorkerFactory = std::function<std::unique_ptr<WorkerTransport>()>;

// Transport over a subprocess: spawns `argv` (argv[0] = binary path) with
// stdin/stdout piped, speaks one JSON line per task, SIGKILLs and reaps
// the child on destruction. recv() polls, so a hung or dead child costs
// the caller at most its timeout.
[[nodiscard]] WorkerFactory process_worker_factory(std::vector<std::string> argv);

struct DispatchOptions {
  int workers = 2;                 // worker slots (subprocesses); must be >= 1
  double task_timeout_sec = 600.0; // per-task recv deadline; must be > 0
  int max_attempts = 3;            // per-spec tries before the sweep fails
  int max_respawns = 3;            // per-slot transport respawns after faults
  // != 0: dispatch specs in a seeded shuffle of canonical order. Results
  // are identical either way — the knob exists so tests can prove it.
  std::uint64_t dispatch_order_seed = 0;
};

// Per-slot accounting for the perf artifact (perf_report.h:
// dispatch_report_json). Wall-clock only — never part of result bytes.
struct WorkerStats {
  int worker = 0;           // slot index
  int tasks_completed = 0;
  int faults = 0;           // timeouts + EOFs + protocol errors on this slot
  int respawns = 0;         // transports created beyond the first
  double busy_seconds = 0.0;  // send -> accepted-result wall time, summed
};

struct DispatchReport {
  std::vector<WorkerStats> workers;  // one per slot, in slot order
  int retries = 0;                   // specs re-dispatched after a fault
  double seconds = 0.0;              // whole dispatch phase wall time
};

// Runs one sweep through worker subprocesses. Not reusable: one dispatcher
// per sweep, run() at most once.
class SweepDispatcher {
 public:
  // Validates the spec exactly like SweepRunner (validate_sweep_spec) and
  // the options (workers >= 1, task_timeout_sec > 0, max_attempts >= 1);
  // throws std::invalid_argument otherwise.
  SweepDispatcher(SweepSpec spec, WorkerFactory factory, DispatchOptions options);

  [[nodiscard]] const SweepSpec& spec() const { return spec_; }

  // Blocking. Returns the assembled sweep — byte-identical (after
  // mask_timing_metrics) to SweepRunner::run() on the same spec. Throws
  // std::runtime_error when a spec exhausts max_attempts or every worker
  // slot dies with work remaining; the message names the offending
  // (scenario, seed) and the last fault.
  [[nodiscard]] SweepResult run();

  // Valid after run() returns (or throws). Also mirrored into `registry`
  // as obs counters/histograms for the standard registry_json export.
  [[nodiscard]] const DispatchReport& report() const { return report_; }
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }

 private:
  SweepSpec spec_;
  WorkerFactory factory_;
  DispatchOptions options_;
  DispatchReport report_;
  obs::Registry registry_;
  bool ran_ = false;
};

}  // namespace titan::sweep
