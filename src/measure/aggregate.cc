#include "measure/aggregate.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace titan::measure {

std::string granularity_name(Granularity g) {
  switch (g) {
    case Granularity::kCountry: return "country";
    case Granularity::kAsn: return "ASN";
    case Granularity::kCountryAsn: return "country+ASN";
    case Granularity::kCity: return "city";
    case Granularity::kCityAsn: return "city+ASN";
  }
  return "?";
}

namespace {

ClusterKey cluster_of(const geo::SubnetRecord& rec, Granularity g) {
  switch (g) {
    case Granularity::kCountry: return {rec.country.value(), -1};
    case Granularity::kAsn: return {rec.asn.value(), -1};
    case Granularity::kCountryAsn: return {rec.country.value(), rec.asn.value()};
    case Granularity::kCity: return {rec.city.value(), -1};
    case Granularity::kCityAsn: return {rec.city.value(), rec.asn.value()};
  }
  return {};
}

}  // namespace

HourlyMedianTable hourly_medians(const MeasurementCorpus& corpus, Granularity granularity,
                                 int hours) {
  // Collect raw samples per (cluster, dc, path, hour), then reduce.
  struct CellSamples {
    std::vector<std::vector<float>> wan;       // per hour
    std::vector<std::vector<float>> internet;  // per hour
    std::size_t count = 0;
    core::CountryId country = core::CountryId::invalid();
  };
  std::map<PairSeriesKey, CellSamples> cells;

  for (const auto& r : corpus.records()) {
    if (r.hour >= hours) continue;
    const auto rec = corpus.geodb().lookup(r.subnet);
    if (!rec) continue;
    const PairSeriesKey key{cluster_of(*rec, granularity), r.dc.value()};
    auto& cell = cells[key];
    if (cell.wan.empty()) {
      cell.wan.resize(static_cast<std::size_t>(hours));
      cell.internet.resize(static_cast<std::size_t>(hours));
      cell.country = rec->country;
    }
    auto& bucket = (r.path == net::PathType::kWan) ? cell.wan : cell.internet;
    bucket[static_cast<std::size_t>(r.hour)].push_back(r.rtt_ms);
    ++cell.count;
  }

  HourlyMedianTable out;
  for (auto& [key, cell] : cells) {
    HourlySeries series;
    series.wan.resize(static_cast<std::size_t>(hours));
    series.internet.resize(static_cast<std::size_t>(hours));
    series.sample_count = cell.count;
    series.country = cell.country;
    for (int h = 0; h < hours; ++h) {
      auto reduce = [](std::vector<float>& v) -> std::optional<double> {
        if (v.empty()) return std::nullopt;
        std::vector<double> d(v.begin(), v.end());
        return core::median(std::move(d));
      };
      series.wan[static_cast<std::size_t>(h)] = reduce(cell.wan[static_cast<std::size_t>(h)]);
      series.internet[static_cast<std::size_t>(h)] =
          reduce(cell.internet[static_cast<std::size_t>(h)]);
    }
    out.emplace(key, std::move(series));
  }
  return out;
}

std::vector<double> pair_differences(const HourlySeries& series) {
  std::vector<double> diffs;
  const std::size_t hours = std::min(series.wan.size(), series.internet.size());
  for (std::size_t h = 0; h < hours; ++h) {
    if (series.wan[h] && series.internet[h])
      diffs.push_back(*series.internet[h] - *series.wan[h]);
  }
  return diffs;
}

DifferenceBuckets bucket_differences(const std::vector<double>& diffs) {
  DifferenceBuckets b;
  if (diffs.empty()) return b;
  for (double d : diffs) {
    if (d < 0.0)
      b.strictly_better += 1;
    else if (d <= 10.0)
      b.within_10ms += 1;
    else if (d <= 25.0)
      b.within_25ms += 1;
    else
      b.beyond_25ms += 1;
  }
  const double n = static_cast<double>(diffs.size()) / 100.0;
  b.strictly_better /= n;
  b.within_10ms /= n;
  b.within_25ms /= n;
  b.beyond_25ms /= n;
  return b;
}

double fraction_f(const std::vector<double>& diffs, double threshold_ms) {
  if (diffs.empty()) return 0.0;
  std::size_t good = 0;
  for (double d : diffs)
    if (d <= threshold_ms) ++good;
  return static_cast<double>(good) / static_cast<double>(diffs.size());
}

std::vector<HeatmapCell> fraction_heatmap(const HourlyMedianTable& table, double threshold_ms) {
  std::vector<HeatmapCell> out;
  for (const auto& [key, series] : table) {
    const auto diffs = pair_differences(series);
    if (diffs.empty()) continue;
    out.push_back({core::CountryId(key.cluster.primary), core::DcId(key.dc),
                   fraction_f(diffs, threshold_ms)});
  }
  return out;
}

GranularityDifference granularity_difference(const MeasurementCorpus& corpus, Granularity fine,
                                             int hours, double threshold_ms,
                                             std::size_t min_samples) {
  const auto coarse = hourly_medians(corpus, Granularity::kCountry, hours);
  const auto fine_table = hourly_medians(corpus, fine, hours);

  // Country-level F per (country, dc).
  std::map<std::pair<int, int>, double> f_country;
  for (const auto& [key, series] : coarse) {
    const auto diffs = pair_differences(series);
    if (!diffs.empty())
      f_country[{key.cluster.primary, key.dc}] = fraction_f(diffs, threshold_ms);
  }

  // Fine clusters grouped by (country, dc) with measurement-share weights.
  struct FineAgg {
    double weighted_abs_dev = 0.0;
    double weight = 0.0;
  };
  std::map<std::pair<int, int>, FineAgg> agg;
  for (const auto& [key, series] : fine_table) {
    if (series.sample_count < min_samples) continue;
    const auto diffs = pair_differences(series);
    if (diffs.size() < 8) continue;  // need several hours with both arms
    const auto country_key = std::make_pair(series.country.value(), key.dc);
    const auto it = f_country.find(country_key);
    if (it == f_country.end() || it->second <= 0.0) continue;
    const double f_fine = fraction_f(diffs, threshold_ms);
    auto& a = agg[country_key];
    const double w = static_cast<double>(series.sample_count);
    a.weighted_abs_dev += std::abs(f_fine - it->second) * w;
    a.weight += w;
  }

  GranularityDifference out;
  for (const auto& [key, a] : agg) {
    if (a.weight <= 0.0) continue;
    const double fc = f_country[key];
    out.all.push_back((a.weighted_abs_dev / a.weight) / fc);
  }
  if (!out.all.empty()) {
    out.p50 = core::quantile(out.all, 0.5);
    out.p90 = core::quantile(out.all, 0.9);
  }
  return out;
}

std::vector<WeeklyMedian> weekly_medians(const MeasurementCorpus& corpus, int hours) {
  struct Samples {
    std::vector<double> wan, internet;
  };
  std::map<std::pair<int, int>, Samples> cells;
  for (const auto& r : corpus.records()) {
    if (r.hour >= hours) continue;
    const auto rec = corpus.geodb().lookup(r.subnet);
    if (!rec) continue;
    auto& cell = cells[{rec->country.value(), r.dc.value()}];
    ((r.path == net::PathType::kWan) ? cell.wan : cell.internet)
        .push_back(static_cast<double>(r.rtt_ms));
  }
  std::vector<WeeklyMedian> out;
  for (auto& [key, cell] : cells) {
    if (cell.wan.empty() || cell.internet.empty()) continue;
    out.push_back({core::CountryId(key.first), core::DcId(key.second),
                   core::median(std::move(cell.wan)), core::median(std::move(cell.internet))});
  }
  return out;
}

}  // namespace titan::measure
