#include "measure/probe_platform.h"

#include <unordered_set>

#include "core/timegrid.h"

namespace titan::measure {

ProbePlatform::ProbePlatform(const geo::World& world, const geo::GeoDb& geodb,
                             const net::LatencyModel& latency)
    : world_(&world), geodb_(&geodb), latency_(&latency) {
  for (const auto& dc : world.dcs()) {
    vms_.push_back({dc.id, net::PathType::kInternet});
    vms_.push_back({dc.id, net::PathType::kWan});
  }
}

MeasurementCorpus ProbePlatform::run(const StudyOptions& options) const {
  MeasurementCorpus corpus(*world_, *geodb_);
  core::Rng rng(options.seed);
  std::size_t rr = 0;  // round-robin cursor over the VM fleet

  const int hours = options.days * core::kHoursPerDay;
  for (int hour = 0; hour < hours; ++hour) {
    for (int i = 0; i < options.probes_per_hour; ++i) {
      const core::CountryId country = world_->sample_country(rng);
      const geo::SubnetKey subnet = geodb_->sample_subnet(country, rng);
      const auto rec = geodb_->lookup(subnet);
      const ProbeVm& vm = vms_[rr];
      rr = (rr + 1) % vms_.size();
      const double rtt =
          latency_->probe_rtt_ms(rec->city, rec->asn, vm.dc, vm.path, hour, rng);
      corpus.add(ProbeRecord{hour, subnet, vm.dc, vm.path, static_cast<float>(rtt)});
    }
  }
  return corpus;
}

MeasurementCorpus::ScaleStats MeasurementCorpus::scale_stats(int days) const {
  ScaleStats s;
  std::unordered_set<int> countries, cities, asns, dcs;
  std::unordered_set<geo::SubnetKey> subnets;
  for (const auto& r : records_) {
    const auto rec = geodb_->lookup(r.subnet);
    if (!rec) continue;
    countries.insert(rec->country.value());
    cities.insert(rec->city.value());
    asns.insert(rec->asn.value());
    subnets.insert(r.subnet);
    dcs.insert(r.dc.value());
  }
  s.avg_measurements_per_day =
      days > 0 ? static_cast<double>(records_.size()) / days : 0.0;
  s.source_countries = countries.size();
  s.source_cities = cities.size();
  s.source_asns = asns.size();
  s.ip_subnets = subnets.size();
  s.destination_dcs = dcs.size();
  return s;
}

}  // namespace titan::measure
