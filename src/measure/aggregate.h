// Measurement aggregation and analysis (§3).
//
// All analyses in the paper's measurement section reduce the probe corpus
// to *hourly medians per (client cluster, DC, routing option)* and then
// compare the two routing options:
//   - Fig. 3: CDFs of (Internet - WAN) hourly-median differences,
//     plus the global four-bucket breakdown (<0, 0-10, 10-25, >25 msec);
//   - Fig. 4 / Fig. 19: fraction F of hours where the Internet is better or
//     within 10 msec, per (client country, destination DC);
//   - Fig. 5: how F changes when clustering clients by ASN / city /
//     city+ASN instead of country (weighted difference D, §A.4);
//   - Fig. 18: week-over-year latency change per (country, DC, option).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/ids.h"
#include "core/stats.h"
#include "measure/probe_platform.h"

namespace titan::measure {

// Client clustering granularity (Fig. 5). In the synthetic world each ASN
// and each city belong to exactly one country, so kAsn and kCountryAsn give
// identical clusters (the paper's production data has multi-country ASNs;
// ours does not — documented substitution).
enum class Granularity { kCountry, kAsn, kCountryAsn, kCity, kCityAsn };

[[nodiscard]] std::string granularity_name(Granularity g);

// Cluster key: packs the ids relevant to the granularity.
struct ClusterKey {
  std::int32_t primary = -1;    // country / asn / city id
  std::int32_t secondary = -1;  // asn for the composite granularities
  auto operator<=>(const ClusterKey&) const = default;
};

struct PairSeriesKey {
  ClusterKey cluster;
  std::int32_t dc = -1;
  auto operator<=>(const PairSeriesKey&) const = default;
};

// Hourly medians for one (cluster, DC): wan[h] / internet[h] may be missing
// when no probe hit the cell in hour h.
struct HourlySeries {
  std::vector<std::optional<double>> wan;
  std::vector<std::optional<double>> internet;
  std::size_t sample_count = 0;  // total probes contributing
  core::CountryId country = core::CountryId::invalid();
};

using HourlyMedianTable = std::map<PairSeriesKey, HourlySeries>;

// Reduces the corpus to hourly medians at the requested granularity.
[[nodiscard]] HourlyMedianTable hourly_medians(const MeasurementCorpus& corpus,
                                               Granularity granularity, int hours);

// Per-pair vector of hourly (Internet - WAN) differences, hours where both
// options have a median.
[[nodiscard]] std::vector<double> pair_differences(const HourlySeries& series);

// Fig. 3 buckets over a set of differences (percentages summing to ~100).
struct DifferenceBuckets {
  double strictly_better = 0;   // diff < 0
  double within_10ms = 0;       // 0 <= diff <= 10
  double within_25ms = 0;       // 10 < diff <= 25
  double beyond_25ms = 0;       // diff > 25
};
[[nodiscard]] DifferenceBuckets bucket_differences(const std::vector<double>& diffs);

// Fraction F: share of hours where Internet is better or within
// `threshold_ms` of WAN (Fig. 4 uses 10 msec).
[[nodiscard]] double fraction_f(const std::vector<double>& diffs, double threshold_ms = 10.0);

// F per (country, DC) over the whole table (requires kCountry granularity).
struct HeatmapCell {
  core::CountryId country;
  core::DcId dc;
  double f = 0.0;
};
[[nodiscard]] std::vector<HeatmapCell> fraction_heatmap(const HourlyMedianTable& table,
                                                        double threshold_ms = 10.0);

// Fig. 5: weighted difference D between fine-grained F and country-level F,
// per (client country, destination DC), per §A.4:
//   D = sum_i |F_i - F_c| * w_i / F_c
// with w_i the cluster's share of the country's measurements.
struct GranularityDifference {
  double p50 = 0.0;
  double p90 = 0.0;
  std::vector<double> all;  // D per (country, DC)
};
// Fine clusters with fewer than `min_samples` probes are excluded (their
// hourly medians are too noisy to say anything about F).
[[nodiscard]] GranularityDifference granularity_difference(const MeasurementCorpus& corpus,
                                                           Granularity fine, int hours,
                                                           double threshold_ms = 10.0,
                                                           std::size_t min_samples = 60);

// Fig. 18: weekly median latency per (country, DC, option) for one corpus;
// callers subtract across two epochs.
struct WeeklyMedian {
  core::CountryId country;
  core::DcId dc;
  double wan_ms = 0.0;
  double internet_ms = 0.0;
};
[[nodiscard]] std::vector<WeeklyMedian> weekly_medians(const MeasurementCorpus& corpus,
                                                       int hours);

}  // namespace titan::measure
