// Latency measurement platform (§3, "Methodology").
//
// The production study runs 2 VMs per DC — one reachable over the Internet
// routing option, one over the WAN — serving a 1x1 image over HTTPS. A
// load balancer spreads client requests across the 42 VMs round-robin, and
// each VM logs (timestamp, /24-masked client IP, request RTT). We reproduce
// the pipeline: synthetic clients are sampled from the GeoDb by call volume,
// a round-robin balancer assigns each probe to a VM, and the RTT is drawn
// from the latency ground truth. Analyses join the logged subnet against
// the GeoDb exactly as the offline production pipeline does.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "geo/geodb.h"
#include "geo/world.h"
#include "net/latency_model.h"

namespace titan::measure {

// One logged probe. RTT covers only the GET request/response round trip
// (connection setup excluded), matching the paper's definition.
struct ProbeRecord {
  std::int32_t hour;  // absolute hour since trace start
  geo::SubnetKey subnet;
  core::DcId dc;
  net::PathType path;
  float rtt_ms;
};

// A measurement VM: one per (DC, routing option).
struct ProbeVm {
  core::DcId dc;
  net::PathType path;
};

struct StudyOptions {
  std::uint64_t seed = 97;
  int days = 7;
  // Probes per hour across the whole platform. The paper logs ~3.5M/day
  // (~146K/hour); the default is scaled down but keeps every
  // (country, DC, path, hour) cell populated.
  int probes_per_hour = 40000;
};

class MeasurementCorpus {
 public:
  MeasurementCorpus(const geo::World& world, const geo::GeoDb& geodb)
      : world_(&world), geodb_(&geodb) {}

  void add(ProbeRecord r) { records_.push_back(r); }
  [[nodiscard]] const std::vector<ProbeRecord>& records() const { return records_; }
  [[nodiscard]] const geo::World& world() const { return *world_; }
  [[nodiscard]] const geo::GeoDb& geodb() const { return *geodb_; }

  struct ScaleStats {
    double avg_measurements_per_day = 0.0;
    std::size_t source_countries = 0;
    std::size_t source_cities = 0;
    std::size_t source_asns = 0;
    std::size_t ip_subnets = 0;
    std::size_t destination_dcs = 0;
  };
  // Table 1 statistics over the logged corpus.
  [[nodiscard]] ScaleStats scale_stats(int days) const;

 private:
  const geo::World* world_;
  const geo::GeoDb* geodb_;
  std::vector<ProbeRecord> records_;
};

class ProbePlatform {
 public:
  // Builds the 2-VMs-per-DC fleet.
  ProbePlatform(const geo::World& world, const geo::GeoDb& geodb,
                const net::LatencyModel& latency);

  [[nodiscard]] const std::vector<ProbeVm>& vms() const { return vms_; }

  // Runs the study and returns the logged corpus.
  [[nodiscard]] MeasurementCorpus run(const StudyOptions& options) const;

 private:
  const geo::World* world_;
  const geo::GeoDb* geodb_;
  const net::LatencyModel* latency_;
  std::vector<ProbeVm> vms_;
};

}  // namespace titan::measure
