#include "media/relay_sim.h"

#include <algorithm>

namespace titan::media {

RelaySimulator::RelaySimulator(const net::NetworkDb& net, const MosModel& mos,
                               const RelaySimOptions& options)
    : net_(&net), mos_(&mos), options_(options) {}

CallTelemetry RelaySimulator::simulate_call(const Call& call, core::SlotIndex slot,
                                            const OfferedLoadFn& offered,
                                            core::Rng& rng) const {
  CallTelemetry out;
  out.call = call.id;
  out.dc = call.mp_dc;
  out.slot = slot;

  const int hour = slot / core::kSlotsPerHour;
  double loss_sum = 0.0;
  std::vector<double> one_way_ms;
  one_way_ms.reserve(call.participants.size());

  for (const auto& part : call.participants) {
    ParticipantTelemetry t;
    t.call = call.id;
    t.participant = part.id;
    t.country = part.country;
    t.dc = call.mp_dc;
    t.path = part.path;
    t.slot = slot;

    // Leg metrics from the ground truth (Internet legs see the elasticity
    // response when offered load is provided).
    double rtt;
    double leg_loss;
    if (part.path == net::PathType::kInternet) {
      const core::Mbps load = offered ? offered(part.country, call.mp_dc) : 0.0;
      rtt = net_->effective_internet_rtt(part.country, call.mp_dc, slot, load);
      leg_loss = net_->effective_internet_loss(part.country, call.mp_dc, slot, load);
    } else {
      rtt = net_->latency().hourly_rtt_ms(part.country, call.mp_dc, net::PathType::kWan, hour);
      leg_loss = net_->loss().slot_loss(part.country, call.mp_dc, net::PathType::kWan, slot);
    }
    const double jitter =
        net_->loss().slot_jitter_ms(part.country, call.mp_dc, part.path, slot);

    // Packet-level RTP on both legs (uplink client->MP, downlink MP->client).
    RtpLegParams leg;
    leg.packet_rate_pps = packet_rate_pps(call.media);
    leg.duration_s = options_.leg_duration_s;
    leg.loss = leg_loss;
    leg.one_way_delay_ms = rtt / 2.0;
    leg.jitter_ms = jitter;
    const RtpStats up = simulate_leg(leg, rng);
    const RtpStats down = simulate_leg(leg, rng);

    t.rtp_loss = combine_leg_loss(up.loss_fraction, down.loss_fraction);
    t.rtt_ms = rtt;
    t.jitter_ms = down.interarrival_jitter_ms;

    loss_sum += t.rtp_loss;
    one_way_ms.push_back(rtt / 2.0);
    out.participants.push_back(std::move(t));
  }

  // Max end-to-end latency across participant pairs: one-way(i) + one-way(j)
  // through the MP (Fig. 10). With a single participant, the E2E latency is
  // its round trip to the MP.
  if (one_way_ms.size() >= 2) {
    std::partial_sort(one_way_ms.begin(), one_way_ms.begin() + 2, one_way_ms.end(),
                      std::greater<>());
    out.max_e2e_ms = one_way_ms[0] + one_way_ms[1];
  } else if (one_way_ms.size() == 1) {
    out.max_e2e_ms = 2.0 * one_way_ms[0];
  }
  out.mean_loss = call.participants.empty()
                      ? 0.0
                      : loss_sum / static_cast<double>(call.participants.size());

  if (mos_->collects_rating(rng)) out.mos = mos_->sample(out.max_e2e_ms, out.mean_loss, rng);
  return out;
}

std::vector<CallTelemetry> RelaySimulator::simulate_slot(const std::vector<Call>& calls,
                                                         core::SlotIndex slot,
                                                         const OfferedLoadFn& offered,
                                                         core::Rng& rng) const {
  std::vector<CallTelemetry> out;
  out.reserve(calls.size());
  for (const auto& call : calls) out.push_back(simulate_call(call, slot, offered, rng));
  return out;
}

}  // namespace titan::media
