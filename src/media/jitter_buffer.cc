#include "media/jitter_buffer.h"

#include <algorithm>
#include <cmath>

namespace titan::media {

JitterBufferStats JitterBuffer::run(const std::vector<RtpArrival>& arrivals) {
  JitterBufferStats stats;
  if (arrivals.empty()) return stats;

  // Base one-way delay estimate: the minimum observed network delay anchors
  // the playout clock (standard NetEQ-style trick).
  double min_delay = arrivals.front().arrival_time_ms - arrivals.front().send_time_ms;
  for (const auto& a : arrivals)
    min_delay = std::min(min_delay, a.arrival_time_ms - a.send_time_ms);

  double jitter_est = 0.0;
  double prev_transit = 0.0;
  bool have_prev = false;
  double delay_sum = 0.0;

  for (const auto& a : arrivals) {
    const double transit = a.arrival_time_ms - a.send_time_ms;
    if (have_prev) {
      const double d = std::abs(transit - prev_transit);
      jitter_est += params_.ewma_weight * (d - jitter_est);
    }
    prev_transit = transit;
    have_prev = true;

    const double target = std::clamp(params_.multiplier * jitter_est,
                                     params_.min_delay_ms, params_.max_delay_ms);
    const double playout_time = a.send_time_ms + min_delay + target;
    if (a.arrival_time_ms > playout_time) {
      ++stats.late_dropped;
    } else {
      ++stats.played;
      // Experienced buffering delay: how long this packet actually sat in
      // the buffer before playout. (The previous `playout - arrival +
      // (transit - min_delay)` form telescoped to exactly `target`, so the
      // stat reported the *configured* delay, blind to arrival timing.)
      delay_sum += playout_time - a.arrival_time_ms;
    }
  }
  const std::size_t total = stats.played + stats.late_dropped;
  stats.late_rate = total == 0 ? 0.0 : static_cast<double>(stats.late_dropped) /
                                           static_cast<double>(total);
  stats.mean_playout_delay_ms =
      stats.played == 0 ? 0.0 : delay_sum / static_cast<double>(stats.played);
  return stats;
}

}  // namespace titan::media
