#include "media/mos.h"

#include <algorithm>

namespace titan::media {

double MosModel::expected(core::Millis max_e2e_ms, core::LossFraction loss,
                          int degrade_steps) const {
  double mos = params_.base_mos;
  if (max_e2e_ms > params_.flat_until_ms)
    mos -= params_.slope_per_ms * (max_e2e_ms - params_.flat_until_ms);
  const double visible_loss = std::max(0.0, loss - params_.fec_absorbs);
  mos -= params_.loss_coeff * visible_loss;
  if (degrade_steps > 0) mos -= params_.degrade_penalty_per_step * degrade_steps;
  return std::clamp(mos, params_.min_mos, 5.0);
}

double MosModel::sample(core::Millis max_e2e_ms, core::LossFraction loss,
                        core::Rng& rng, int degrade_steps) const {
  const double rating =
      expected(max_e2e_ms, loss, degrade_steps) + rng.normal(0.0, params_.rating_noise);
  return std::clamp(rating, params_.min_mos, 5.0);
}

bool MosModel::collects_rating(core::Rng& rng) const {
  return rng.chance(params_.sampling_rate);
}

}  // namespace titan::media
