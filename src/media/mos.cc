#include "media/mos.h"

#include <algorithm>

namespace titan::media {

double MosModel::expected(core::Millis max_e2e_ms, core::LossFraction loss) const {
  double mos = params_.base_mos;
  if (max_e2e_ms > params_.flat_until_ms)
    mos -= params_.slope_per_ms * (max_e2e_ms - params_.flat_until_ms);
  const double visible_loss = std::max(0.0, loss - params_.fec_absorbs);
  mos -= params_.loss_coeff * visible_loss;
  return std::clamp(mos, params_.min_mos, 5.0);
}

double MosModel::sample(core::Millis max_e2e_ms, core::LossFraction loss,
                        core::Rng& rng) const {
  const double rating = expected(max_e2e_ms, loss) + rng.normal(0.0, params_.rating_noise);
  return std::clamp(rating, 1.0, 5.0);
}

bool MosModel::collects_rating(core::Rng& rng) const {
  return rng.chance(params_.sampling_rate);
}

}  // namespace titan::media
