// Adaptive jitter buffer (§2.2: "Teams ... tackle[s] jitter to a large
// extent using jitter buffers").
//
// The buffer delays playout by an adaptive target so that late packets are
// rare; the paper's point is that the Internet's slightly worse jitter
// (3.52 vs 3.40 msec) is absorbed by the buffer and does not affect user
// experience. The simulation reproduces that: given an arrival stream, it
// tracks an EWMA jitter estimate, sets playout delay to `multiplier x
// estimate`, and reports late-drop rate and average added delay.
#pragma once

#include <vector>

#include "core/units.h"
#include "media/rtp.h"

namespace titan::media {

struct JitterBufferParams {
  // Playout delay = multiplier * jitter estimate. The EWMA estimate tracks
  // the mean |transit difference| (~1.1 sigma for Gaussian noise), while the
  // playout clock is anchored at the *minimum* observed transit, so the
  // target must cover most of the transit distribution's span — hence a
  // generous default.
  double multiplier = 8.0;
  core::Millis min_delay_ms = 10.0;
  core::Millis max_delay_ms = 200.0;
  double ewma_weight = 1.0 / 16.0;
};

struct JitterBufferStats {
  std::size_t played = 0;
  std::size_t late_dropped = 0;   // missed their playout deadline
  double late_rate = 0.0;
  core::Millis mean_playout_delay_ms = 0.0;  // mean experienced buffering delay
                                             // (playout time - arrival time)
};

class JitterBuffer {
 public:
  explicit JitterBuffer(const JitterBufferParams& params = {}) : params_(params) {}

  // Feeds a full arrival stream (sorted by sequence) and returns playout
  // statistics. Playout time for packet i is send_time + current target
  // delay; a packet arriving after its playout time is a late drop.
  [[nodiscard]] JitterBufferStats run(const std::vector<RtpArrival>& arrivals);

 private:
  JitterBufferParams params_;
};

}  // namespace titan::media
