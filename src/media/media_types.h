// Media stream types and their resource footprints (§2.1, §6).
//
// Each participant can generate up to three streams — audio, video, and
// screen-share. Call configs are keyed by the most resource-hungry media
// type present (audio < screen-share < video), and the LP's computeUsed()
// and networkUsed() functions derive from these per-type footprints.
#pragma once

#include <string>

#include "core/units.h"

namespace titan::media {

enum class MediaType { kAudio = 0, kScreenShare = 1, kVideo = 2 };
constexpr int kMediaTypeCount = 3;

[[nodiscard]] inline std::string media_type_name(MediaType m) {
  switch (m) {
    case MediaType::kAudio: return "audio";
    case MediaType::kScreenShare: return "screenshare";
    case MediaType::kVideo: return "video";
  }
  return "?";
}

// Resource ordering used when assigning call configs (audio < screen-share
// < video).
[[nodiscard]] inline MediaType dominant(MediaType a, MediaType b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

// Degradation ladder used by admission control: one codec/bitrate step-down
// moves a stream to the next cheaper media shape (video -> screen-share ->
// audio). Audio is the floor — it has no cheaper shape, so the ladder
// saturates there instead of wrapping.
[[nodiscard]] inline MediaType step_down(MediaType m) {
  switch (m) {
    case MediaType::kVideo: return MediaType::kScreenShare;
    case MediaType::kScreenShare: return MediaType::kAudio;
    case MediaType::kAudio: return MediaType::kAudio;
  }
  return MediaType::kAudio;
}

[[nodiscard]] inline MediaType step_down(MediaType m, int steps) {
  for (; steps > 0; --steps) m = step_down(m);
  return m;
}

// How many step-downs a media type can absorb before hitting the audio floor.
[[nodiscard]] inline int degrade_headroom(MediaType m) { return static_cast<int>(m); }

// Per-participant bandwidth between the client and the MP (up + down
// aggregate), in Mbps. Synthetic but in realistic conferencing ranges.
[[nodiscard]] inline core::Mbps bandwidth_per_participant(MediaType m) {
  switch (m) {
    case MediaType::kAudio: return 0.12;
    case MediaType::kScreenShare: return 1.0;
    case MediaType::kVideo: return 2.2;
  }
  return 0.0;
}

// MP compute per participant, in cores.
[[nodiscard]] inline core::Cores compute_per_participant(MediaType m) {
  switch (m) {
    case MediaType::kAudio: return 0.02;
    case MediaType::kScreenShare: return 0.06;
    case MediaType::kVideo: return 0.12;
  }
  return 0.0;
}

// Nominal RTP packet rate per participant stream (packets/second), used by
// the packet-level relay simulation.
[[nodiscard]] inline double packet_rate_pps(MediaType m) {
  switch (m) {
    case MediaType::kAudio: return 50.0;
    case MediaType::kScreenShare: return 120.0;
    case MediaType::kVideo: return 300.0;
  }
  return 0.0;
}

}  // namespace titan::media
