#include "media/rtp.h"

#include <algorithm>
#include <cmath>

namespace titan::media {

std::vector<RtpArrival> simulate_arrivals(const RtpLegParams& params, core::Rng& rng) {
  std::vector<RtpArrival> arrivals;
  const auto n = static_cast<std::uint32_t>(params.packet_rate_pps * params.duration_s);
  arrivals.reserve(n);
  const double interval_ms = 1000.0 / params.packet_rate_pps;
  for (std::uint32_t seq = 0; seq < n; ++seq) {
    if (rng.chance(params.loss)) continue;
    RtpArrival a;
    a.sequence = seq;
    a.send_time_ms = seq * interval_ms;
    // Delay noise: truncated normal keeps arrival causal.
    const double noise = std::max(-params.one_way_delay_ms * 0.5,
                                  rng.normal(0.0, params.jitter_ms));
    a.arrival_time_ms = a.send_time_ms + params.one_way_delay_ms + noise;
    arrivals.push_back(a);
  }
  return arrivals;
}

RtpStats simulate_leg(const RtpLegParams& params, core::Rng& rng) {
  RtpStats stats;
  const auto arrivals = simulate_arrivals(params, rng);
  stats.packets_sent =
      static_cast<std::uint32_t>(params.packet_rate_pps * params.duration_s);
  stats.packets_received = static_cast<std::uint32_t>(arrivals.size());

  // RFC 3550: cumulative lost = extended highest seq received + 1 - received.
  if (!arrivals.empty()) {
    std::uint32_t highest = 0;
    for (const auto& a : arrivals) highest = std::max(highest, a.sequence);
    const std::uint32_t expected = highest + 1;
    stats.cumulative_lost =
        expected > stats.packets_received ? expected - stats.packets_received : 0;
  }
  stats.loss_fraction =
      stats.packets_sent == 0
          ? 0.0
          : static_cast<double>(stats.packets_sent - stats.packets_received) /
                static_cast<double>(stats.packets_sent);

  // RFC 3550 interarrival jitter: J += (|D(i-1,i)| - J) / 16 where
  // D compares arrival spacing to send spacing.
  double j = 0.0;
  double delay_sum = 0.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    delay_sum += arrivals[i].arrival_time_ms - arrivals[i].send_time_ms;
    if (i == 0) continue;
    const double d = (arrivals[i].arrival_time_ms - arrivals[i - 1].arrival_time_ms) -
                     (arrivals[i].send_time_ms - arrivals[i - 1].send_time_ms);
    j += (std::abs(d) - j) / 16.0;
  }
  stats.interarrival_jitter_ms = j;
  stats.mean_delay_ms =
      arrivals.empty() ? 0.0 : delay_sum / static_cast<double>(arrivals.size());
  return stats;
}

}  // namespace titan::media
