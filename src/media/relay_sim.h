// MP relay simulation: calls, participants, and per-call telemetry.
//
// Each call is hosted by an MP server in a DC; every participant exchanges
// RTP with the MP over its assigned routing option. The simulator runs the
// packet-level RTP legs against the network ground truth (latency, loss,
// jitter — including load-dependent Internet congestion) and produces the
// telemetry records Titan's control loop and the paper's quality figures
// consume: per-participant RTP loss / RTT / jitter, per-call maximum
// end-to-end latency, and sampled MOS ratings.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "core/timegrid.h"
#include "core/units.h"
#include "media/media_types.h"
#include "media/mos.h"
#include "media/rtp.h"
#include "net/network_db.h"

namespace titan::media {

struct Participant {
  core::ParticipantId id;
  core::CountryId country;
  net::PathType path = net::PathType::kWan;
};

struct Call {
  core::CallId id;
  core::DcId mp_dc;
  MediaType media = MediaType::kAudio;
  std::vector<Participant> participants;
};

struct ParticipantTelemetry {
  core::CallId call;
  core::ParticipantId participant;
  core::CountryId country;
  core::DcId dc;
  net::PathType path = net::PathType::kWan;
  core::SlotIndex slot = 0;
  double rtp_loss = 0.0;         // end-to-end through the relay
  core::Millis rtt_ms = 0.0;     // client <-> MP round trip
  core::Millis jitter_ms = 0.0;  // RFC 3550 estimate on the downlink
};

struct CallTelemetry {
  core::CallId call;
  core::DcId dc;
  core::SlotIndex slot = 0;
  core::Millis max_e2e_ms = 0.0;
  double mean_loss = 0.0;
  std::optional<double> mos;  // present only for sampled calls
  std::vector<ParticipantTelemetry> participants;
};

// Offered Internet load (Mbps) per (client country, DC) pair — drives the
// elasticity response. Return 0 when unknown.
using OfferedLoadFn = std::function<core::Mbps(core::CountryId, core::DcId)>;

struct RelaySimOptions {
  std::uint64_t seed = 55;
  // Seconds of RTP simulated per participant leg (shorter than the slot;
  // a statistically sufficient sample).
  double leg_duration_s = 10.0;
};

class RelaySimulator {
 public:
  RelaySimulator(const net::NetworkDb& net, const MosModel& mos,
                 const RelaySimOptions& options = {});

  // Simulates one call in one slot. `offered` may be null (no elasticity).
  [[nodiscard]] CallTelemetry simulate_call(const Call& call, core::SlotIndex slot,
                                            const OfferedLoadFn& offered, core::Rng& rng) const;

  // Convenience for a batch of calls.
  [[nodiscard]] std::vector<CallTelemetry> simulate_slot(const std::vector<Call>& calls,
                                                         core::SlotIndex slot,
                                                         const OfferedLoadFn& offered,
                                                         core::Rng& rng) const;

 private:
  const net::NetworkDb* net_;
  const MosModel* mos_;
  RelaySimOptions options_;
};

}  // namespace titan::media
