// Mean Opinion Score model (Fig. 11).
//
// The paper's telemetry shows average MOS is flat (~4.86) while the call's
// maximum end-to-end latency stays under ~75 msec and then degrades roughly
// linearly, reaching ~4.65 around 250 msec. Loss adds an extra penalty
// (application-layer FEC absorbs small loss; heavy loss hurts). The model
// below is the synthetic stand-in for user feedback: expected MOS is the
// deterministic curve; sampled MOS adds heavy user-rating noise and is only
// collected for a subset of calls, mirroring production sampling.
#pragma once

#include "core/rng.h"
#include "core/units.h"

namespace titan::media {

struct MosModelParams {
  double base_mos = 4.87;
  core::Millis flat_until_ms = 75.0;
  // Linear slope beyond the knee, MOS per msec.
  double slope_per_ms = 0.00125;
  double min_mos = 1.0;
  // Loss penalty: MOS points per unit loss fraction beyond what FEC hides.
  double loss_coeff = 8.0;
  core::LossFraction fec_absorbs = 0.005;  // loss below this is invisible
  double rating_noise = 0.35;              // stddev of individual ratings
  double sampling_rate = 0.08;             // fraction of calls rated
  // MOS cost of each admission-control codec/bitrate step-down (video ->
  // screen-share -> audio). Roughly the Fig. 11 spread between a pristine
  // call and one at the latency knee: noticeable, not catastrophic.
  double degrade_penalty_per_step = 0.18;
};

class MosModel {
 public:
  explicit MosModel(const MosModelParams& params = {}) : params_(params) {}

  // Deterministic expected MOS for a call with the given maximum end-to-end
  // latency, end-to-end loss fraction, and number of admission-control
  // codec/bitrate step-downs applied to the call.
  [[nodiscard]] double expected(core::Millis max_e2e_ms, core::LossFraction loss = 0.0,
                                int degrade_steps = 0) const;

  // One sampled user rating. Clamped to the same [min_mos, 5] range as
  // `expected`: a sampled rating must not escape the model's configured
  // floor/ceiling, or sampled and expected distributions diverge at the
  // edges for reasons that have nothing to do with user noise.
  [[nodiscard]] double sample(core::Millis max_e2e_ms, core::LossFraction loss,
                              core::Rng& rng, int degrade_steps = 0) const;

  // Whether this call gets rated at all (MOS is heavily sampled).
  [[nodiscard]] bool collects_rating(core::Rng& rng) const;

  [[nodiscard]] const MosModelParams& params() const { return params_; }

 private:
  MosModelParams params_;
};

}  // namespace titan::media
