// RTP-like packet stream simulation (RFC 3550 accounting).
//
// Titan's quality signals come from RTP receiver reports: loss is inferred
// from missing sequence numbers and jitter is the RFC 3550 interarrival
// jitter estimate. We simulate a packet stream between a participant and an
// MP leg: packets are emitted at the media type's nominal rate, each is
// dropped i.i.d. with the leg's loss probability, and arrival times get
// one-way delay plus jitter noise. The receiver-side accounting then runs
// exactly as a real RTP stack would: cumulative-lost from extended highest
// sequence number, and the J += (|D| - J)/16 jitter filter.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/units.h"

namespace titan::media {

struct RtpLegParams {
  double packet_rate_pps = 50.0;
  double duration_s = 30.0;
  core::LossFraction loss = 0.0;       // i.i.d. drop probability per packet
  core::Millis one_way_delay_ms = 30;  // propagation + queueing mean
  core::Millis jitter_ms = 3.4;        // stddev of per-packet delay noise
};

// Receiver-report statistics for one leg.
struct RtpStats {
  std::uint32_t packets_sent = 0;
  std::uint32_t packets_received = 0;
  std::uint32_t cumulative_lost = 0;   // from sequence-number gaps
  double loss_fraction = 0.0;          // cumulative_lost / packets_sent
  core::Millis interarrival_jitter_ms = 0.0;  // RFC 3550 J estimate
  core::Millis mean_delay_ms = 0.0;
};

// Simulates one leg and returns the receiver-report statistics.
[[nodiscard]] RtpStats simulate_leg(const RtpLegParams& params, core::Rng& rng);

// Arrival record used by the jitter buffer simulation.
struct RtpArrival {
  std::uint32_t sequence = 0;
  double send_time_ms = 0.0;
  double arrival_time_ms = 0.0;
};

// Simulates one leg and returns raw arrivals (lost packets omitted).
[[nodiscard]] std::vector<RtpArrival> simulate_arrivals(const RtpLegParams& params,
                                                        core::Rng& rng);

// Combines independent up/down leg loss into the end-to-end relay loss a
// participant pair experiences through the MP.
[[nodiscard]] inline core::LossFraction combine_leg_loss(core::LossFraction up,
                                                         core::LossFraction down) {
  return 1.0 - (1.0 - up) * (1.0 - down);
}

}  // namespace titan::media
