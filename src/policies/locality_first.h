// Locality First baseline (§7.2 / §8.1).
//
// Oracle mode formulates the same LP as Titan-Next but minimizes total
// latency (or, in the E2E variant, total max-E2E latency) with no C4 bound,
// then draws per-call assignments from the plan weights. First-joiner mode
// ranks (DC, routing) buckets by latency from the first joiner's country
// and takes the closest bucket with compute/Internet capacity left.
#pragma once

#include "policies/policy.h"
#include "titannext/pipeline.h"

namespace titan::policies {

struct LocalityFirstOptions {
  bool oracle = true;
  bool use_max_e2e_objective = false;  // the "LF using E2E latency" variant
  titannext::PlanScope scope;
  lp::SolveOptions solver;
};

class LocalityFirstPolicy : public Policy {
 public:
  LocalityFirstPolicy(const PolicyContext& ctx, const LocalityFirstOptions& options)
      : ctx_(&ctx), options_(options) {}

  [[nodiscard]] std::string name() const override {
    if (!options_.oracle) return "LF-online";
    return options_.use_max_e2e_objective ? "LF-maxE2E" : "LF";
  }
  [[nodiscard]] PolicyRun run(const workload::Trace& eval_trace,
                              const workload::Trace& history, core::Rng& rng) override;

 private:
  [[nodiscard]] PolicyRun run_oracle(const workload::Trace& eval_trace, core::Rng& rng) const;
  [[nodiscard]] PolicyRun run_online(const workload::Trace& eval_trace,
                                     const workload::Trace& history, core::Rng& rng) const;

  const PolicyContext* ctx_;
  LocalityFirstOptions options_;
};

}  // namespace titan::policies
