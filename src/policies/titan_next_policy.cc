#include "policies/titan_next_policy.h"

namespace titan::policies {

PolicyRun TitanNextPolicy::run(const workload::Trace& eval_trace,
                               const workload::Trace& history, core::Rng& rng) {
  PolicyRun out;
  out.policy_name = name();
  out.assignments.resize(eval_trace.calls().size());

  const titannext::TitanNextPipeline pipeline(*ctx_->net, ctx_->internet_fractions,
                                              options_.pipeline);
  const int slots_per_day = options_.pipeline.scope.timeslots;
  const int days = (eval_trace.num_slots() + slots_per_day - 1) / slots_per_day;

  // Combined count history (training weeks + already-elapsed eval days)
  // for the practical mode's forecasts.
  const auto hist_counts = history.config_active_counts();
  const auto eval_counts = eval_trace.config_active_counts();
  const std::size_t n_configs = eval_counts.size();

  for (int day = 0; day < days; ++day) {
    const int day_begin = day * slots_per_day;
    titannext::DayPlan plan;
    if (options_.oracle) {
      plan = pipeline.plan_day_oracle(eval_trace, day_begin);
    } else {
      std::vector<std::vector<double>> combined(n_configs);
      for (std::size_t c = 0; c < n_configs; ++c) {
        combined[c] = c < hist_counts.size() ? hist_counts[c] : std::vector<double>{};
        combined[c].resize(hist_counts.empty() ? 0 : hist_counts[0].size(), 0.0);
        combined[c].insert(combined[c].end(), eval_counts[c].begin(),
                           eval_counts[c].begin() + day_begin);
      }
      const int history_end = static_cast<int>(combined.empty() ? 0 : combined[0].size());
      const auto fc = titannext::forecast_counts(combined, history_end, slots_per_day,
                                                 options_.pipeline.top_k_forecast);
      plan = pipeline.plan_from_counts(eval_trace, fc.counts, fc.seconds);
    }
    out.plan_seconds += plan.lp_seconds + plan.forecast_seconds;

    titannext::ControllerOptions copts;
    copts.use_reduction = options_.pipeline.use_reduction;
    titannext::OnlineController controller(*plan.inputs, plan.plan, copts);

    // Pinned-ILP approximation: each country's dominant DC across the
    // day's plan (all shapes touching the country, all slots).
    std::map<int, core::DcId> pinned_dc;
    if (options_.pin_intra_country && plan.valid()) {
      std::map<int, std::map<int, double>> units_by_country_dc;
      const auto& demands = plan.inputs->demands();
      for (const auto& slot_weights : plan.plan.result().weights) {
        for (std::size_t c = 0; c < slot_weights.size(); ++c) {
          for (const auto& e : slot_weights[c].entries)
            for (const auto& [country, count] : demands[c].config.participants)
              units_by_country_dc[country.value()][e.dc.value()] += e.units * count;
        }
      }
      for (const auto& [country, by_dc] : units_by_country_dc) {
        int best_dc = -1;
        double best_units = -1.0;
        for (const auto& [dc, units] : by_dc)
          if (units > best_units) {
            best_units = units;
            best_dc = dc;
          }
        if (best_dc >= 0) pinned_dc[country] = core::DcId(best_dc);
      }
    }

    for (std::size_t i = 0; i < eval_trace.calls().size(); ++i) {
      const auto& call = eval_trace.calls()[i];
      if (call.start_slot / slots_per_day != day) continue;
      const auto& config = eval_trace.configs().get(call.config);
      const int slot_in_day = call.start_slot - day_begin;

      if (options_.oracle) {
        // Full config known up front: assign straight from the plan. A call
        // whose exact shape fell outside the planned top-K still follows
        // the plan for the first joiner's intra-country shape (the dominant
        // shape for that country) before resorting to nearest-DC fallback.
        const auto reduced = options_.pipeline.use_reduction
                                 ? workload::reduce(config).config
                                 : config;
        auto picked = plan.plan.pick(reduced, slot_in_day, rng);
        if (!picked) {
          workload::CallConfig intra;
          intra.participants = {{call.first_joiner, 1}};
          intra.media = config.media;
          picked = plan.plan.pick(intra, slot_in_day, rng);
        }
        if (picked) {
          out.assignments[i] = {picked->dc, picked->path};
        } else {
          const auto fb = controller.fallback(call.first_joiner);
          out.assignments[i] = {fb.dc, fb.path};
          ++out.fallback_assignments;
        }
        // Pinning overrides the DC; the routing option survives only where
        // the plan supports the pinned DC for this shape.
        if (options_.pin_intra_country) {
          const auto it = pinned_dc.find(call.first_joiner.value());
          if (it != pinned_dc.end() && out.assignments[i].dc != it->second) {
            out.assignments[i].dc = it->second;
            if (!plan.plan.supports(reduced, slot_in_day, it->second))
              out.assignments[i].path = net::PathType::kWan;
          }
        }
      } else {
        const auto initial =
            controller.assign_initial(call.first_joiner, config.media, slot_in_day, rng);
        const auto converged = controller.converge(initial, config, slot_in_day, rng);
        out.assignments[i] = {converged.final_assignment.dc, converged.final_assignment.path};
        if (converged.dc_migration) ++out.dc_migrations;
        if (converged.route_change) ++out.route_changes;
        if (!initial.from_plan) ++out.fallback_assignments;
      }
    }
  }
  return out;
}

}  // namespace titan::policies
