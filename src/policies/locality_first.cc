#include "policies/locality_first.h"

#include <algorithm>
#include <limits>

namespace titan::policies {

PolicyRun LocalityFirstPolicy::run(const workload::Trace& eval_trace,
                                   const workload::Trace& history, core::Rng& rng) {
  return options_.oracle ? run_oracle(eval_trace, rng) : run_online(eval_trace, history, rng);
}

PolicyRun LocalityFirstPolicy::run_oracle(const workload::Trace& eval_trace,
                                          core::Rng& rng) const {
  PolicyRun out;
  out.policy_name = name();
  out.assignments.resize(eval_trace.calls().size());

  titannext::PipelineOptions popts;
  popts.scope = options_.scope;
  popts.lp.objective = options_.use_max_e2e_objective
                           ? titannext::Objective::kMinimizeTotalMaxE2e
                           : titannext::Objective::kMinimizeTotalLatency;
  popts.lp.e2e_bound_ms = 0.0;  // LF has no C4 bound
  popts.lp.solver = options_.solver;
  const titannext::TitanNextPipeline pipeline(*ctx_->net, ctx_->internet_fractions, popts);

  const int slots_per_day = options_.scope.timeslots;
  const int days = (eval_trace.num_slots() + slots_per_day - 1) / slots_per_day;
  for (int day = 0; day < days; ++day) {
    const titannext::DayPlan plan = pipeline.plan_day_oracle(eval_trace, day * slots_per_day);
    out.plan_seconds += plan.lp_seconds;
    for (std::size_t i = 0; i < eval_trace.calls().size(); ++i) {
      const auto& call = eval_trace.calls()[i];
      if (call.start_slot / slots_per_day != day) continue;
      const auto& config = eval_trace.configs().get(call.config);
      const auto reduced = workload::reduce(config).config;
      const auto picked =
          plan.plan.pick(reduced, call.start_slot - day * slots_per_day, rng);
      if (picked) {
        out.assignments[i] = {picked->dc, picked->path};
      } else {
        // Nearest DC by WAN latency.
        core::DcId best = ctx_->dcs.front();
        double best_rtt = std::numeric_limits<double>::infinity();
        for (const auto dc : ctx_->dcs) {
          const double rtt = ctx_->net->latency().base_rtt_ms(call.first_joiner, dc,
                                                              net::PathType::kWan);
          if (rtt < best_rtt) {
            best_rtt = rtt;
            best = dc;
          }
        }
        out.assignments[i] = {best, net::PathType::kWan};
        ++out.fallback_assignments;
      }
    }
  }
  return out;
}

PolicyRun LocalityFirstPolicy::run_online(const workload::Trace& eval_trace,
                                          const workload::Trace& history,
                                          core::Rng& rng) const {
  (void)rng;
  PolicyRun out;
  out.policy_name = name();
  out.assignments.resize(eval_trace.calls().size());

  // Capacities provisioned from the training window (never the eval week).
  const int hist_slots = std::min(history.num_slots(), core::kSlotsPerWeek);
  auto hist_counts = history.config_active_counts();
  // Use the trailing training week to size capacity.
  for (auto& series : hist_counts) {
    if (static_cast<int>(series.size()) > hist_slots)
      series.erase(series.begin(), series.end() - hist_slots);
  }
  titannext::PlanScope prov_scope = options_.scope;
  prov_scope.timeslots = hist_slots;
  titannext::PlanInputs prov(*ctx_->net, prov_scope, ctx_->internet_fractions);
  prov.set_demand(history.configs(), hist_counts, true);

  // Per-slot usage trackers.
  const int slots = eval_trace.num_slots();
  std::vector<std::vector<double>> cores_used(
      static_cast<std::size_t>(slots), std::vector<double>(ctx_->dcs.size(), 0.0));
  std::vector<std::vector<double>> inet_used(
      static_cast<std::size_t>(slots), std::vector<double>(ctx_->dcs.size(), 0.0));

  for (std::size_t i = 0; i < eval_trace.calls().size(); ++i) {
    const auto& call = eval_trace.calls()[i];
    const auto& config = eval_trace.configs().get(call.config);

    // Buckets sorted by latency from the first joiner.
    struct Bucket {
      std::size_t dc_idx;
      net::PathType path;
      double latency;
    };
    std::vector<Bucket> buckets;
    for (std::size_t d = 0; d < ctx_->dcs.size(); ++d) {
      const auto dc = ctx_->dcs[d];
      buckets.push_back({d, net::PathType::kWan,
                         ctx_->net->latency().base_rtt_ms(call.first_joiner, dc,
                                                          net::PathType::kWan)});
      if (ctx_->fraction(call.first_joiner, dc) > 0.0)
        buckets.push_back({d, net::PathType::kInternet,
                           ctx_->net->latency().base_rtt_ms(call.first_joiner, dc,
                                                            net::PathType::kInternet)});
    }
    std::sort(buckets.begin(), buckets.end(),
              [](const Bucket& a, const Bucket& b) { return a.latency < b.latency; });

    const double cores = config.compute_cores();
    const double mbps = config.network_mbps();
    auto fits = [&](const Bucket& b) {
      const auto dc = ctx_->dcs[b.dc_idx];
      for (int s = call.start_slot;
           s < std::min(slots, call.start_slot + call.duration_slots); ++s) {
        if (cores_used[static_cast<std::size_t>(s)][b.dc_idx] + cores > prov.dc_capacity(dc))
          return false;
        if (b.path == net::PathType::kInternet &&
            inet_used[static_cast<std::size_t>(s)][b.dc_idx] + mbps >
                prov.internet_capacity(dc))
          return false;
      }
      return true;
    };

    const Bucket* chosen = nullptr;
    for (const auto& b : buckets)
      if (fits(b)) {
        chosen = &b;
        break;
      }
    if (chosen == nullptr) {
      chosen = &buckets.front();  // overflow: nearest bucket regardless
      ++out.fallback_assignments;
    }
    for (int s = call.start_slot; s < std::min(slots, call.start_slot + call.duration_slots);
         ++s) {
      cores_used[static_cast<std::size_t>(s)][chosen->dc_idx] += cores;
      if (chosen->path == net::PathType::kInternet)
        inet_used[static_cast<std::size_t>(s)][chosen->dc_idx] += mbps;
    }
    out.assignments[i] = {ctx_->dcs[chosen->dc_idx], chosen->path};
  }
  return out;
}

}  // namespace titan::policies
