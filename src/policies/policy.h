// Assignment policy interface (§7.2 oracle mode, §8.1 first-joiner mode).
//
// A policy maps every call of a trace to an (MP DC, routing option) pair —
// one routing option per call, as in the paper's LP. Oracle policies see
// the full call config (ground truth); online policies may only use the
// first joiner's country and media type at assignment time, and may
// migrate later (counted, because migrations are user-visible glitches).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "geo/region.h"
#include "net/network_db.h"
#include "workload/callgen.h"

namespace titan::policies {

struct CallAssignment {
  core::DcId dc;
  net::PathType path = net::PathType::kWan;
};

struct PolicyRun {
  std::string policy_name;
  std::vector<CallAssignment> assignments;  // indexed like trace.calls()
  // Online-mode accounting.
  std::int64_t dc_migrations = 0;
  std::int64_t route_changes = 0;
  std::int64_t fallback_assignments = 0;
  double plan_seconds = 0.0;  // LP + forecast time
};

// Shared inputs every policy may use. Capacities and fractions are
// "provisioned in advance": derived from the *training* window, never from
// the evaluation week.
struct PolicyContext {
  const net::NetworkDb* net = nullptr;
  geo::RegionSet regions = geo::Continent::kEurope;
  std::vector<core::DcId> dcs;
  // Safe Internet fraction per (country id, dc id) as learnt by Titan.
  std::map<std::pair<int, int>, double> internet_fractions;

  [[nodiscard]] double fraction(core::CountryId c, core::DcId d) const {
    const auto it = internet_fractions.find({c.value(), d.value()});
    return it == internet_fractions.end() ? 0.0 : it->second;
  }
  [[nodiscard]] double dc_cores(core::DcId d) const { return net->world().dc(d).cores; }

  // Builds the standard context for a region set (a bare Continent
  // converts) with uniform Titan fractions (pairs with unusable Internet
  // get 0).
  static PolicyContext make(const net::NetworkDb& net, const geo::RegionSet& regions,
                            double uniform_fraction = 0.20);
};

class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  // Assigns every call in `eval_trace`. `history` is the training window
  // (may be ignored); both traces share a config registry.
  [[nodiscard]] virtual PolicyRun run(const workload::Trace& eval_trace,
                                      const workload::Trace& history, core::Rng& rng) = 0;
};

}  // namespace titan::policies
