#include "policies/policy.h"

namespace titan::policies {

PolicyContext PolicyContext::make(const net::NetworkDb& net, const geo::RegionSet& regions,
                                  double uniform_fraction) {
  regions.validate();
  PolicyContext ctx;
  ctx.net = &net;
  ctx.regions = regions;
  ctx.dcs = geo::dcs_in(net.world(), regions);
  for (const auto c : geo::countries_in(net.world(), regions)) {
    const double f = net.loss().internet_unusable(c) ? 0.0 : uniform_fraction;
    for (const auto d : ctx.dcs) ctx.internet_fractions[{c.value(), d.value()}] = f;
  }
  return ctx;
}

}  // namespace titan::policies
