#include "policies/policy.h"

namespace titan::policies {

PolicyContext PolicyContext::make(const net::NetworkDb& net, geo::Continent continent,
                                  double uniform_fraction) {
  PolicyContext ctx;
  ctx.net = &net;
  ctx.continent = continent;
  ctx.dcs = net.world().dcs_in(continent);
  for (const auto c : net.world().countries_in(continent)) {
    const double f = net.loss().internet_unusable(c) ? 0.0 : uniform_fraction;
    for (const auto d : ctx.dcs) ctx.internet_fractions[{c.value(), d.value()}] = f;
  }
  return ctx;
}

}  // namespace titan::policies
