// Titan baseline policy (§7.2 / §8.1).
//
// Titan does not choose MP DCs intelligently: the DC comes from a weighted
// random draw proportional to provisioned cores, and the routing option is
// a coin flip at the pair's learnt safe Internet fraction for the first
// joiner's (or, in oracle mode, the call's primary) country.
#pragma once

#include "policies/policy.h"

namespace titan::policies {

class TitanPolicy : public Policy {
 public:
  explicit TitanPolicy(const PolicyContext& ctx) : ctx_(&ctx) {}

  [[nodiscard]] std::string name() const override { return "Titan"; }
  [[nodiscard]] PolicyRun run(const workload::Trace& eval_trace,
                              const workload::Trace& history, core::Rng& rng) override;

 private:
  const PolicyContext* ctx_;
};

}  // namespace titan::policies
