#include "policies/wrr.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace titan::policies {

PolicyRun WrrPolicy::run(const workload::Trace& eval_trace, const workload::Trace& history,
                         core::Rng& rng) {
  (void)history;
  PolicyRun out;
  out.policy_name = name();
  out.assignments.resize(eval_trace.calls().size());

  for (std::size_t i = 0; i < eval_trace.calls().size(); ++i) {
    const auto& call = eval_trace.calls()[i];
    const auto& config = eval_trace.configs().get(call.config);

    // Effective Internet fraction for this call.
    double fraction_for_dc_min = std::numeric_limits<double>::infinity();
    std::vector<double> weights;
    std::vector<CallAssignment> buckets;
    for (const auto dc : ctx_->dcs) {
      double f;
      if (oracle_) {
        f = std::numeric_limits<double>::infinity();
        for (const auto& [country, count] : config.participants)
          f = std::min(f, ctx_->fraction(country, dc));
        if (!std::isfinite(f)) f = 0.0;
      } else {
        f = ctx_->fraction(call.first_joiner, dc);
      }
      fraction_for_dc_min = std::min(fraction_for_dc_min, f);
      const double w = ctx_->dc_cores(dc);
      buckets.push_back({dc, net::PathType::kInternet});
      weights.push_back(w * f);
      buckets.push_back({dc, net::PathType::kWan});
      weights.push_back(w * (1.0 - f));
    }
    out.assignments[i] = buckets[rng.weighted_pick(weights)];
  }
  return out;
}

}  // namespace titan::policies
