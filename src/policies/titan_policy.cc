#include "policies/titan_policy.h"

namespace titan::policies {

PolicyRun TitanPolicy::run(const workload::Trace& eval_trace, const workload::Trace& history,
                           core::Rng& rng) {
  (void)history;
  PolicyRun out;
  out.policy_name = name();
  out.assignments.resize(eval_trace.calls().size());

  std::vector<double> dc_weights;
  dc_weights.reserve(ctx_->dcs.size());
  for (const auto dc : ctx_->dcs) dc_weights.push_back(ctx_->dc_cores(dc));

  for (std::size_t i = 0; i < eval_trace.calls().size(); ++i) {
    const auto& call = eval_trace.calls()[i];
    const auto dc = ctx_->dcs[rng.weighted_pick(dc_weights)];
    const double f = ctx_->fraction(call.first_joiner, dc);
    out.assignments[i] = {dc,
                          rng.chance(f) ? net::PathType::kInternet : net::PathType::kWan};
  }
  return out;
}

}  // namespace titan::policies
