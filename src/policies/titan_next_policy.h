// Titan-Next policy (§7.2 oracle / §8.1 practical).
//
// Oracle mode solves the Fig. 13 LP per day on ground-truth call counts and
// draws per-call assignments from the plan weights (no migrations — the
// config is known up front). Practical mode trains Holt-Winters on the
// history, plans on the forecast, assigns by first joiner through the
// online controller, and counts the inter-DC migrations discovered at
// config convergence (Table 4).
#pragma once

#include "policies/policy.h"
#include "titannext/pipeline.h"

namespace titan::policies {

struct TitanNextPolicyOptions {
  bool oracle = true;
  titannext::PipelineOptions pipeline;
  // §6.3 "What did not work": pin every call from a country to a single MP
  // DC (the paper's ILP experiment). Intra-country migrations vanish, but
  // calls can no longer be split across DCs and the peak savings collapse.
  // The ILP is approximated by rounding each country to its plan-dominant
  // DC. Oracle mode only.
  bool pin_intra_country = false;
};

class TitanNextPolicy : public Policy {
 public:
  TitanNextPolicy(const PolicyContext& ctx, const TitanNextPolicyOptions& options)
      : ctx_(&ctx), options_(options) {}

  [[nodiscard]] std::string name() const override {
    return options_.oracle ? "TN" : "TN-online";
  }
  [[nodiscard]] PolicyRun run(const workload::Trace& eval_trace,
                              const workload::Trace& history, core::Rng& rng) override;

 private:
  const PolicyContext* ctx_;
  TitanNextPolicyOptions options_;
};

}  // namespace titan::policies
