// Weighted Round Robin baseline (§7.2 / §8.1).
//
// Buckets are distinct (MP DC, routing option) combinations. A DC's weight
// is its share of compute; the Internet bucket gets the Titan fraction of
// that share and the WAN bucket the rest. In oracle mode the fraction for a
// multi-country config is the minimum across its countries (per §7.2's
// example); in first-joiner mode it is the first joiner's fraction.
#pragma once

#include "policies/policy.h"

namespace titan::policies {

class WrrPolicy : public Policy {
 public:
  WrrPolicy(const PolicyContext& ctx, bool oracle) : ctx_(&ctx), oracle_(oracle) {}

  [[nodiscard]] std::string name() const override {
    return oracle_ ? "WRR" : "WRR-online";
  }
  [[nodiscard]] PolicyRun run(const workload::Trace& eval_trace,
                              const workload::Trace& history, core::Rng& rng) override;

 private:
  const PolicyContext* ctx_;
  bool oracle_;
};

}  // namespace titan::policies
