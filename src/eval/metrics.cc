#include "eval/metrics.h"

#include <algorithm>
#include <map>

#include "core/stats.h"

namespace titan::eval {

WanUsage wan_usage(const workload::Trace& trace,
                   const std::vector<policies::CallAssignment>& assignments,
                   const net::NetworkDb& net) {
  WanUsage out;
  const int slots = trace.num_slots();
  const int days = (slots + core::kSlotsPerDay - 1) / core::kSlotsPerDay;

  // usage[slot][link] built sparsely.
  std::vector<std::map<int, double>> usage(static_cast<std::size_t>(slots));
  for (std::size_t i = 0; i < trace.calls().size(); ++i) {
    const auto& call = trace.calls()[i];
    const auto& a = assignments[i];
    if (a.path != net::PathType::kWan) continue;
    const auto& config = trace.configs().get(call.config);
    for (const auto& [country, count] : config.participants) {
      const double bw = config.network_mbps_from(country);
      const auto& path = net.topology().path(country, a.dc);
      for (int s = call.start_slot;
           s < std::min(slots, call.start_slot + call.duration_slots); ++s)
        for (const auto lid : path.links) usage[static_cast<std::size_t>(s)][lid.value()] += bw;
    }
  }

  std::map<int, double> whole_peak;
  std::vector<std::map<int, double>> day_peak(static_cast<std::size_t>(days));
  for (int s = 0; s < slots; ++s) {
    const int day = s / core::kSlotsPerDay;
    for (const auto& [link, mbps] : usage[static_cast<std::size_t>(s)]) {
      whole_peak[link] = std::max(whole_peak[link], mbps);
      auto& dp = day_peak[static_cast<std::size_t>(day)][link];
      dp = std::max(dp, mbps);
      // Mbps over a 30-min slot -> bytes: Mbps * 1800 s / 8 = MB.
      out.total_traffic_gb += mbps * core::kSlotSeconds / 8.0 / 1000.0;
    }
  }
  for (const auto& [link, peak] : whole_peak) out.sum_of_peaks_mbps += peak;
  out.per_day_sum_of_peaks_mbps.resize(static_cast<std::size_t>(days), 0.0);
  for (int d = 0; d < days; ++d)
    for (const auto& [link, peak] : day_peak[static_cast<std::size_t>(d)])
      out.per_day_sum_of_peaks_mbps[static_cast<std::size_t>(d)] += peak;
  return out;
}

namespace {

double call_max_e2e(const workload::CallConfig& config, core::DcId dc, net::PathType path,
                    const net::NetworkDb& net) {
  double top1 = 0.0, top2 = 0.0;
  int total = 0;
  for (const auto& [country, count] : config.participants) {
    const double one_way = net.latency().base_rtt_ms(country, dc, path) / 2.0;
    total += count;
    const int reps = std::min(count, 2);
    for (int r = 0; r < reps; ++r) {
      if (one_way > top1) {
        top2 = top1;
        top1 = one_way;
      } else if (one_way > top2) {
        top2 = one_way;
      }
    }
  }
  return total >= 2 ? top1 + top2 : 2.0 * top1;
}

LatencyStats summarize(std::vector<double>& values) {
  LatencyStats s;
  s.calls = values.size();
  if (values.empty()) return s;
  s.mean = core::mean(values);
  const auto qs = core::quantiles(values, {0.5, 0.95});
  s.median = qs[0];
  s.p95 = qs[1];
  return s;
}

}  // namespace

std::vector<LatencyStats> e2e_latency_per_day(
    const workload::Trace& trace, const std::vector<policies::CallAssignment>& assignments,
    const net::NetworkDb& net) {
  const int days = (trace.num_slots() + core::kSlotsPerDay - 1) / core::kSlotsPerDay;
  std::vector<std::vector<double>> per_day(static_cast<std::size_t>(days));
  for (std::size_t i = 0; i < trace.calls().size(); ++i) {
    const auto& call = trace.calls()[i];
    const auto& config = trace.configs().get(call.config);
    const int day = call.start_slot / core::kSlotsPerDay;
    per_day[static_cast<std::size_t>(day)].push_back(
        call_max_e2e(config, assignments[i].dc, assignments[i].path, net));
  }
  std::vector<LatencyStats> out;
  out.reserve(per_day.size());
  for (auto& v : per_day) out.push_back(summarize(v));
  return out;
}

LatencyStats e2e_latency_overall(const workload::Trace& trace,
                                 const std::vector<policies::CallAssignment>& assignments,
                                 const net::NetworkDb& net) {
  std::vector<double> values;
  values.reserve(trace.calls().size());
  for (std::size_t i = 0; i < trace.calls().size(); ++i) {
    const auto& call = trace.calls()[i];
    const auto& config = trace.configs().get(call.config);
    values.push_back(call_max_e2e(config, assignments[i].dc, assignments[i].path, net));
  }
  return summarize(values);
}

double internet_share(const workload::Trace& trace,
                      const std::vector<policies::CallAssignment>& assignments) {
  double internet = 0.0, total = 0.0;
  for (std::size_t i = 0; i < trace.calls().size(); ++i) {
    const auto& config = trace.configs().get(trace.calls()[i].config);
    const double participants = config.total_participants();
    total += participants;
    if (assignments[i].path == net::PathType::kInternet) internet += participants;
  }
  return total <= 0.0 ? 0.0 : internet / total;
}

}  // namespace titan::eval
