// Evaluation metrics (§7.1).
//
//  (a) sum of peak bandwidth across WAN links — the paper's cost proxy,
//      computed per day (peaks are taken within each day, matching Fig. 14
//      / Fig. 15 which report a value per weekday);
//  (b) total WAN traffic across peak and off-peak times;
//  (c) end-to-end latency — per-call maximum E2E latency, summarized per
//      day as mean / median / P95 (Table 3);
//  (d) migrations — counted by the online controller, reported in PolicyRun.
#pragma once

#include <string>
#include <vector>

#include "core/timegrid.h"
#include "net/network_db.h"
#include "policies/policy.h"
#include "workload/callgen.h"

namespace titan::eval {

struct WanUsage {
  // Sum over links of the link's peak within each day (Mbps).
  std::vector<double> per_day_sum_of_peaks_mbps;
  // Sum over links of the whole-trace peak (Mbps).
  double sum_of_peaks_mbps = 0.0;
  // Total WAN bytes over the trace, in gigabytes.
  double total_traffic_gb = 0.0;

  // Bitwise (not approximate): the sim engine promises bit-identical
  // results across thread counts, and the sweep harness checks it.
  bool operator==(const WanUsage&) const = default;
};

// Aggregates per-slot per-link WAN bandwidth from the call assignments.
// Internet-routed calls contribute nothing to WAN links (hot potato).
[[nodiscard]] WanUsage wan_usage(const workload::Trace& trace,
                                 const std::vector<policies::CallAssignment>& assignments,
                                 const net::NetworkDb& net);

struct LatencyStats {
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  std::size_t calls = 0;
};

// Per-day distribution of per-call max-E2E latency (planning latencies,
// consistent with what the LP optimizes).
[[nodiscard]] std::vector<LatencyStats> e2e_latency_per_day(
    const workload::Trace& trace, const std::vector<policies::CallAssignment>& assignments,
    const net::NetworkDb& net);

// Whole-trace summary.
[[nodiscard]] LatencyStats e2e_latency_overall(
    const workload::Trace& trace, const std::vector<policies::CallAssignment>& assignments,
    const net::NetworkDb& net);

// Fraction of participant-slots routed over the Internet (sanity metric).
[[nodiscard]] double internet_share(const workload::Trace& trace,
                                    const std::vector<policies::CallAssignment>& assignments);

}  // namespace titan::eval
