// Experiment runner shared by the §7/§8 benches and the examples: runs a
// set of policies on the same (history, eval-week) split and renders the
// per-day comparison tables the paper's figures report.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "policies/policy.h"

namespace titan::eval {

struct PolicyResult {
  policies::PolicyRun run;
  WanUsage wan;
  std::vector<LatencyStats> latency_per_day;
  LatencyStats latency_overall;
  double internet_share = 0.0;
};

struct ComparisonResult {
  std::vector<PolicyResult> results;  // in the order the policies were given
  // Renders the Fig. 14/15-style per-day sum-of-peaks table, normalized to
  // the first policy's maximum day (the paper normalizes to WRR's peak).
  [[nodiscard]] std::string render_peaks_table() const;
  // Renders the Table 3-style latency summary (across-days ranges).
  [[nodiscard]] std::string render_latency_table() const;
  // Average reduction of policy `i` vs policy `j` over weekdays, in percent
  // of j's value (positive = i is cheaper).
  [[nodiscard]] double weekday_reduction_pct(std::size_t i, std::size_t j) const;
};

[[nodiscard]] ComparisonResult compare_policies(
    const std::vector<policies::Policy*>& policy_list, const workload::Trace& eval_trace,
    const workload::Trace& history, const net::NetworkDb& net, std::uint64_t seed);

}  // namespace titan::eval
