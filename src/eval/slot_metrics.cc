#include "eval/slot_metrics.h"

#include <algorithm>
#include <cassert>

namespace titan::eval {

SlotMetricsSink::SlotMetricsSink(int num_slots, int num_links)
    : num_slots_(num_slots), num_links_(num_links) {
  link_mbps_.assign(static_cast<std::size_t>(num_slots) * static_cast<std::size_t>(num_links),
                    0.0);
  const auto n = static_cast<std::size_t>(num_slots);
  internet_mbps_.assign(n, 0.0);
  arrivals_.assign(n, 0.0);
  dc_migrations_.assign(n, 0.0);
  route_changes_.assign(n, 0.0);
  forced_migrations_.assign(n, 0.0);
  transit_failovers_.assign(n, 0.0);
  out_of_plan_.assign(n, 0.0);
  rejected_.assign(n, 0.0);
  degraded_.assign(n, 0.0);
  internet_participants_.assign(n, 0.0);
  participants_.assign(n, 0.0);
  mos_sum_.assign(n, 0.0);
  mos_count_.assign(n, 0.0);
  const auto rn = static_cast<std::size_t>(geo::kNumContinents) * n;
  region_arrivals_.assign(rn, 0.0);
  region_active_calls_.assign(rn, 0.0);
  region_wan_mbps_.assign(rn, 0.0);
  region_rejected_.assign(rn, 0.0);
  region_degraded_.assign(rn, 0.0);
}

void SlotMetricsSink::add_wan_mbps(core::SlotIndex s, core::LinkId link, double mbps) {
  link_mbps_[cell(s, link)] += mbps;
}
void SlotMetricsSink::add_internet_mbps(core::SlotIndex s, double mbps) {
  internet_mbps_[static_cast<std::size_t>(s)] += mbps;
}
void SlotMetricsSink::add_arrival(core::SlotIndex s) {
  arrivals_[static_cast<std::size_t>(s)] += 1.0;
}
void SlotMetricsSink::add_dc_migration(core::SlotIndex s) {
  dc_migrations_[static_cast<std::size_t>(s)] += 1.0;
}
void SlotMetricsSink::add_route_change(core::SlotIndex s) {
  route_changes_[static_cast<std::size_t>(s)] += 1.0;
}
void SlotMetricsSink::add_forced_migration(core::SlotIndex s) {
  forced_migrations_[static_cast<std::size_t>(s)] += 1.0;
}
void SlotMetricsSink::add_transit_failover(core::SlotIndex s) {
  transit_failovers_[static_cast<std::size_t>(s)] += 1.0;
}
void SlotMetricsSink::add_out_of_plan(core::SlotIndex s) {
  out_of_plan_[static_cast<std::size_t>(s)] += 1.0;
}
void SlotMetricsSink::add_participants(core::SlotIndex s, int internet, int total) {
  internet_participants_[static_cast<std::size_t>(s)] += internet;
  participants_[static_cast<std::size_t>(s)] += total;
}
void SlotMetricsSink::add_mos(core::SlotIndex s, double mos) {
  mos_sum_[static_cast<std::size_t>(s)] += mos;
  mos_count_[static_cast<std::size_t>(s)] += 1.0;
}
void SlotMetricsSink::add_region_arrival(core::SlotIndex s, geo::Continent region) {
  region_arrivals_[region_cell(s, region)] += 1.0;
}
void SlotMetricsSink::add_region_active_call(core::SlotIndex s, geo::Continent region) {
  region_active_calls_[region_cell(s, region)] += 1.0;
}
void SlotMetricsSink::add_region_wan_mbps(core::SlotIndex s, geo::Continent region,
                                          double mbps) {
  region_wan_mbps_[region_cell(s, region)] += mbps;
}
void SlotMetricsSink::add_rejected(core::SlotIndex s, geo::Continent region) {
  rejected_[static_cast<std::size_t>(s)] += 1.0;
  region_rejected_[region_cell(s, region)] += 1.0;
}
void SlotMetricsSink::add_degraded(core::SlotIndex s, geo::Continent region) {
  degraded_[static_cast<std::size_t>(s)] += 1.0;
  region_degraded_[region_cell(s, region)] += 1.0;
}

namespace {
void add_into(std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}
}  // namespace

void SlotMetricsSink::merge(const SlotMetricsSink& other) {
  assert(num_slots_ == other.num_slots_ && num_links_ == other.num_links_);
  add_into(link_mbps_, other.link_mbps_);
  add_into(internet_mbps_, other.internet_mbps_);
  add_into(arrivals_, other.arrivals_);
  add_into(dc_migrations_, other.dc_migrations_);
  add_into(route_changes_, other.route_changes_);
  add_into(forced_migrations_, other.forced_migrations_);
  add_into(transit_failovers_, other.transit_failovers_);
  add_into(out_of_plan_, other.out_of_plan_);
  add_into(rejected_, other.rejected_);
  add_into(degraded_, other.degraded_);
  add_into(internet_participants_, other.internet_participants_);
  add_into(participants_, other.participants_);
  add_into(mos_sum_, other.mos_sum_);
  add_into(mos_count_, other.mos_count_);
  add_into(region_arrivals_, other.region_arrivals_);
  add_into(region_active_calls_, other.region_active_calls_);
  add_into(region_wan_mbps_, other.region_wan_mbps_);
  add_into(region_rejected_, other.region_rejected_);
  add_into(region_degraded_, other.region_degraded_);
}

std::vector<double> SlotMetricsSink::region_slice(const std::vector<double>& stream,
                                                  geo::Continent region) const {
  const auto begin = stream.begin() + static_cast<std::ptrdiff_t>(region_cell(0, region));
  return {begin, begin + num_slots_};
}

std::vector<double> SlotMetricsSink::region_arrivals(geo::Continent region) const {
  return region_slice(region_arrivals_, region);
}
std::vector<double> SlotMetricsSink::region_active_calls(geo::Continent region) const {
  return region_slice(region_active_calls_, region);
}
std::vector<double> SlotMetricsSink::region_wan_mbps(geo::Continent region) const {
  return region_slice(region_wan_mbps_, region);
}
std::vector<double> SlotMetricsSink::region_rejected(geo::Continent region) const {
  return region_slice(region_rejected_, region);
}
std::vector<double> SlotMetricsSink::region_degraded(geo::Continent region) const {
  return region_slice(region_degraded_, region);
}

double SlotMetricsSink::region_arrivals_total(geo::Continent region) const {
  double total = 0.0;
  for (int s = 0; s < num_slots_; ++s) total += region_arrivals_[region_cell(s, region)];
  return total;
}
double SlotMetricsSink::region_wan_mbps_total(geo::Continent region) const {
  double total = 0.0;
  for (int s = 0; s < num_slots_; ++s) total += region_wan_mbps_[region_cell(s, region)];
  return total;
}
double SlotMetricsSink::region_rejected_total(geo::Continent region) const {
  double total = 0.0;
  for (int s = 0; s < num_slots_; ++s) total += region_rejected_[region_cell(s, region)];
  return total;
}
double SlotMetricsSink::region_degraded_total(geo::Continent region) const {
  double total = 0.0;
  for (int s = 0; s < num_slots_; ++s) total += region_degraded_[region_cell(s, region)];
  return total;
}
double SlotMetricsSink::region_shed_fraction(geo::Continent region) const {
  const double arrivals = region_arrivals_total(region);
  return arrivals > 0.0 ? region_rejected_total(region) / arrivals : 0.0;
}

WanUsage SlotMetricsSink::wan_usage() const {
  WanUsage out;
  const int days = (num_slots_ + core::kSlotsPerDay - 1) / core::kSlotsPerDay;
  out.per_day_sum_of_peaks_mbps.assign(static_cast<std::size_t>(days), 0.0);
  for (int l = 0; l < num_links_; ++l) {
    double whole_peak = 0.0;
    std::vector<double> day_peak(static_cast<std::size_t>(days), 0.0);
    for (int s = 0; s < num_slots_; ++s) {
      const double v = link_mbps_[cell(s, core::LinkId(l))];
      whole_peak = std::max(whole_peak, v);
      auto& dp = day_peak[static_cast<std::size_t>(s / core::kSlotsPerDay)];
      dp = std::max(dp, v);
      out.total_traffic_gb += v * core::kSlotSeconds / 8.0 / 1000.0;
    }
    out.sum_of_peaks_mbps += whole_peak;
    for (int d = 0; d < days; ++d)
      out.per_day_sum_of_peaks_mbps[static_cast<std::size_t>(d)] +=
          day_peak[static_cast<std::size_t>(d)];
  }
  return out;
}

std::vector<double> SlotMetricsSink::wan_total_mbps_per_slot() const {
  std::vector<double> out(static_cast<std::size_t>(num_slots_), 0.0);
  for (int s = 0; s < num_slots_; ++s)
    for (int l = 0; l < num_links_; ++l)
      out[static_cast<std::size_t>(s)] += link_mbps_[cell(s, core::LinkId(l))];
  return out;
}

double SlotMetricsSink::link_peak_mbps(core::LinkId link) const {
  double peak = 0.0;
  for (int s = 0; s < num_slots_; ++s) peak = std::max(peak, link_mbps_[cell(s, link)]);
  return peak;
}

namespace {
std::vector<double> ratio(const std::vector<double>& num, const std::vector<double>& den) {
  std::vector<double> out(num.size(), 0.0);
  for (std::size_t i = 0; i < num.size(); ++i)
    if (den[i] > 0.0) out[i] = num[i] / den[i];
  return out;
}
double ratio_total(const std::vector<double>& num, const std::vector<double>& den) {
  double n = 0.0, d = 0.0;
  for (std::size_t i = 0; i < num.size(); ++i) {
    n += num[i];
    d += den[i];
  }
  return d > 0.0 ? n / d : 0.0;
}
}  // namespace

std::vector<double> SlotMetricsSink::out_of_plan_rate_per_slot() const {
  return ratio(out_of_plan_, arrivals_);
}
std::vector<double> SlotMetricsSink::internet_share_per_slot() const {
  return ratio(internet_participants_, participants_);
}
double SlotMetricsSink::internet_share_overall() const {
  return ratio_total(internet_participants_, participants_);
}
std::vector<double> SlotMetricsSink::mean_mos_per_slot() const {
  return ratio(mos_sum_, mos_count_);
}
double SlotMetricsSink::mean_mos_overall() const { return ratio_total(mos_sum_, mos_count_); }

}  // namespace titan::eval
