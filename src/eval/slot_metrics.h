// Per-slot metric streams for the closed-loop simulator (src/sim/).
//
// The static evaluators in eval/metrics.h summarize a finished trace; the
// simulator instead emits metrics *as slots elapse*: per-slot per-link WAN
// bandwidth, Internet offload bandwidth, arrivals, migrations, out-of-plan
// convergences, the Internet participant share, and a MOS proxy — plus
// per-continent slices (arrivals by the first joiner's continent; in-flight
// calls and offered WAN bandwidth by the serving DC's continent) so
// cross-region load shifts are assertable per slot. Sinks are
// accumulated per shard during a simulation and merged in shard order, so
// the totals are bit-identical regardless of worker-thread count, then
// finalized into the same WanUsage shape the §7/§8 benches report.
#pragma once

#include <vector>

#include "core/ids.h"
#include "core/timegrid.h"
#include "eval/metrics.h"
#include "geo/world.h"

namespace titan::eval {

class SlotMetricsSink {
 public:
  SlotMetricsSink() = default;
  SlotMetricsSink(int num_slots, int num_links);

  [[nodiscard]] int num_slots() const { return num_slots_; }

  void add_wan_mbps(core::SlotIndex s, core::LinkId link, double mbps);
  void add_internet_mbps(core::SlotIndex s, double mbps);
  void add_arrival(core::SlotIndex s);
  void add_dc_migration(core::SlotIndex s);
  void add_route_change(core::SlotIndex s);
  void add_forced_migration(core::SlotIndex s);  // network-event evictions
  void add_transit_failover(core::SlotIndex s);  // pair steered to alt transit
  void add_out_of_plan(core::SlotIndex s);
  void add_participants(core::SlotIndex s, int internet, int total);
  void add_mos(core::SlotIndex s, double mos);
  // Per-continent slices. Arrivals are sliced by the *first joiner's*
  // continent (where demand originates); in-flight calls and offered WAN
  // bandwidth by the *serving DC's* continent (where load lands) — the
  // pair that makes a cross-region load shift measurable.
  void add_region_arrival(core::SlotIndex s, geo::Continent region);
  void add_region_active_call(core::SlotIndex s, geo::Continent region);
  void add_region_wan_mbps(core::SlotIndex s, geo::Continent region, double mbps);
  // Overload regime (admission control): calls refused outright and calls
  // admitted with a degraded media shape, sliced by the first joiner's
  // continent (where the demand — and the shed — originates).
  void add_rejected(core::SlotIndex s, geo::Continent region);
  void add_degraded(core::SlotIndex s, geo::Continent region);

  // Element-wise accumulation of another sink with identical dimensions.
  void merge(const SlotMetricsSink& other);

  // Bitwise equality over every stream — the check behind the engine's
  // "identical at any thread count" guarantee.
  bool operator==(const SlotMetricsSink&) const = default;

  // --- finalized views --------------------------------------------------
  // Day-peak summary in the shape of the §7 cost metric.
  [[nodiscard]] WanUsage wan_usage() const;
  // Sum across links of the slot's WAN bandwidth.
  [[nodiscard]] std::vector<double> wan_total_mbps_per_slot() const;
  [[nodiscard]] double link_peak_mbps(core::LinkId link) const;
  [[nodiscard]] double link_mbps_at(core::SlotIndex s, core::LinkId link) const {
    return link_mbps_[cell(s, link)];
  }
  // Out-of-plan convergences / arrivals, per slot (0 where no arrivals).
  [[nodiscard]] std::vector<double> out_of_plan_rate_per_slot() const;
  // Internet participants / all participants, per slot.
  [[nodiscard]] std::vector<double> internet_share_per_slot() const;
  [[nodiscard]] double internet_share_overall() const;
  // Mean MOS proxy of calls arriving in the slot (0 where none sampled).
  [[nodiscard]] std::vector<double> mean_mos_per_slot() const;
  [[nodiscard]] double mean_mos_overall() const;

  [[nodiscard]] const std::vector<double>& arrivals() const { return arrivals_; }
  [[nodiscard]] const std::vector<double>& internet_mbps() const { return internet_mbps_; }
  [[nodiscard]] const std::vector<double>& dc_migrations() const { return dc_migrations_; }
  [[nodiscard]] const std::vector<double>& route_changes() const { return route_changes_; }
  [[nodiscard]] const std::vector<double>& forced_migrations() const {
    return forced_migrations_;
  }
  [[nodiscard]] const std::vector<double>& transit_failovers() const {
    return transit_failovers_;
  }
  [[nodiscard]] const std::vector<double>& out_of_plan() const { return out_of_plan_; }
  [[nodiscard]] const std::vector<double>& rejected() const { return rejected_; }
  [[nodiscard]] const std::vector<double>& degraded() const { return degraded_; }

  // Per-slot copies of one continent's slice.
  [[nodiscard]] std::vector<double> region_arrivals(geo::Continent region) const;
  [[nodiscard]] std::vector<double> region_active_calls(geo::Continent region) const;
  [[nodiscard]] std::vector<double> region_wan_mbps(geo::Continent region) const;
  [[nodiscard]] std::vector<double> region_rejected(geo::Continent region) const;
  [[nodiscard]] std::vector<double> region_degraded(geo::Continent region) const;
  // Whole-window totals of a continent's slice.
  [[nodiscard]] double region_arrivals_total(geo::Continent region) const;
  [[nodiscard]] double region_wan_mbps_total(geo::Continent region) const;
  [[nodiscard]] double region_rejected_total(geo::Continent region) const;
  [[nodiscard]] double region_degraded_total(geo::Continent region) const;
  // Rejected calls / arrivals for one continent over the whole window — the
  // per-region shed fraction the fairness bound is asserted on.
  [[nodiscard]] double region_shed_fraction(geo::Continent region) const;

 private:
  [[nodiscard]] std::size_t cell(core::SlotIndex s, core::LinkId link) const {
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(num_links_) +
           static_cast<std::size_t>(link.value());
  }
  // Region streams are stored contiguously per continent so slicing one
  // continent out is a plain subrange copy.
  [[nodiscard]] std::size_t region_cell(core::SlotIndex s, geo::Continent region) const {
    return static_cast<std::size_t>(region) * static_cast<std::size_t>(num_slots_) +
           static_cast<std::size_t>(s);
  }
  [[nodiscard]] std::vector<double> region_slice(const std::vector<double>& stream,
                                                 geo::Continent region) const;

  int num_slots_ = 0;
  int num_links_ = 0;
  std::vector<double> link_mbps_;  // [slot * num_links + link]
  std::vector<double> internet_mbps_;
  std::vector<double> arrivals_;
  std::vector<double> dc_migrations_;
  std::vector<double> route_changes_;
  std::vector<double> forced_migrations_;
  std::vector<double> transit_failovers_;
  std::vector<double> out_of_plan_;
  std::vector<double> rejected_;
  std::vector<double> degraded_;
  std::vector<double> internet_participants_;
  std::vector<double> participants_;
  std::vector<double> mos_sum_;
  std::vector<double> mos_count_;
  // [continent * num_slots + slot]
  std::vector<double> region_arrivals_;
  std::vector<double> region_active_calls_;
  std::vector<double> region_wan_mbps_;
  std::vector<double> region_rejected_;
  std::vector<double> region_degraded_;
};

}  // namespace titan::eval
