#include "eval/runner.h"

#include <algorithm>

#include "core/rng.h"
#include "core/table.h"

namespace titan::eval {

ComparisonResult compare_policies(const std::vector<policies::Policy*>& policy_list,
                                  const workload::Trace& eval_trace,
                                  const workload::Trace& history, const net::NetworkDb& net,
                                  std::uint64_t seed) {
  ComparisonResult out;
  core::Rng root(seed);
  for (std::size_t p = 0; p < policy_list.size(); ++p) {
    core::Rng rng = root.fork(p);
    PolicyResult r;
    r.run = policy_list[p]->run(eval_trace, history, rng);
    r.wan = wan_usage(eval_trace, r.run.assignments, net);
    r.latency_per_day = e2e_latency_per_day(eval_trace, r.run.assignments, net);
    r.latency_overall = e2e_latency_overall(eval_trace, r.run.assignments, net);
    r.internet_share = internet_share(eval_trace, r.run.assignments);
    out.results.push_back(std::move(r));
  }
  return out;
}

std::string ComparisonResult::render_peaks_table() const {
  if (results.empty()) return {};
  std::vector<std::string> header = {"day"};
  for (const auto& r : results) header.push_back(r.run.policy_name);
  core::TextTable table(std::move(header));

  // Normalize to the first policy's worst day (the paper normalizes to the
  // peak BW observed for WRR).
  double norm = 0.0;
  for (const double v : results.front().wan.per_day_sum_of_peaks_mbps)
    norm = std::max(norm, v);
  if (norm <= 0.0) norm = 1.0;

  const std::size_t days = results.front().wan.per_day_sum_of_peaks_mbps.size();
  for (std::size_t d = 0; d < days; ++d) {
    std::vector<std::string> row;
    row.push_back(core::weekday_short_name(
        core::weekday_of(static_cast<core::SlotIndex>(d * core::kSlotsPerDay))));
    for (const auto& r : results)
      row.push_back(core::TextTable::num(
          r.wan.per_day_sum_of_peaks_mbps[d] / norm, 3));
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string ComparisonResult::render_latency_table() const {
  core::TextTable table({"policy", "mean (msec)", "median (msec)", "P95 (msec)"});
  for (const auto& r : results) {
    double mean_lo = 1e18, mean_hi = 0, med_lo = 1e18, med_hi = 0, p95_lo = 1e18, p95_hi = 0;
    for (const auto& day : r.latency_per_day) {
      if (day.calls == 0) continue;
      mean_lo = std::min(mean_lo, day.mean);
      mean_hi = std::max(mean_hi, day.mean);
      med_lo = std::min(med_lo, day.median);
      med_hi = std::max(med_hi, day.median);
      p95_lo = std::min(p95_lo, day.p95);
      p95_hi = std::max(p95_hi, day.p95);
    }
    auto range = [](double lo, double hi) {
      return core::TextTable::num(lo, 0) + " - " + core::TextTable::num(hi, 0);
    };
    table.add_row({r.run.policy_name, range(mean_lo, mean_hi), range(med_lo, med_hi),
                   range(p95_lo, p95_hi)});
  }
  return table.render();
}

double ComparisonResult::weekday_reduction_pct(std::size_t i, std::size_t j) const {
  const auto& a = results.at(i).wan.per_day_sum_of_peaks_mbps;
  const auto& b = results.at(j).wan.per_day_sum_of_peaks_mbps;
  double acc = 0.0;
  int n = 0;
  for (std::size_t d = 0; d < std::min(a.size(), b.size()); ++d) {
    if (core::is_weekend(static_cast<core::SlotIndex>(d * core::kSlotsPerDay))) continue;
    if (b[d] <= 0.0) continue;
    acc += (1.0 - a[d] / b[d]) * 100.0;
    ++n;
  }
  return n == 0 ? 0.0 : acc / n;
}

}  // namespace titan::eval
