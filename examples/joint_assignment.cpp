// Joint MP + routing assignment (§5.1's motivating example, then a real
// policy comparison).
//
// Part 1 recreates Fig. 9's Hungary example: picking the MP DC by WAN
// latency first and the routing option second is sub-optimal; the joint
// optimizer finds the (France DC, Internet) combination.
// Part 2 runs WRR / LF / Titan / Titan-Next on a 1-day European trace and
// prints the Fig. 14-style comparison.
#include <cstdio>

#include "eval/runner.h"
#include "policies/locality_first.h"
#include "policies/titan_next_policy.h"
#include "policies/titan_policy.h"
#include "policies/wrr.h"

int main() {
  using namespace titan;
  const geo::World world = geo::World::make();
  const net::NetworkDb net(world);

  // ---- Part 1: the Fig. 9 intuition on our ground truth.
  const auto hu = world.find_country("hungary");
  std::printf("call with two users in Hungary; candidate MP DCs and options:\n");
  double best_joint = 1e18, best_wan_first = 1e18;
  std::string joint_pick, wan_first_pick;
  for (const auto dc : world.dcs_in(geo::Continent::kEurope)) {
    const double wan = net.latency().base_rtt_ms(hu, dc, net::PathType::kWan);
    const double internet = net.latency().base_rtt_ms(hu, dc, net::PathType::kInternet);
    std::printf("  %-12s WAN %.1f ms   Internet %.1f ms\n", world.dc(dc).name.c_str(), wan,
                internet);
    // Sequential strawman: choose DC by WAN latency, then consider offload.
    if (wan < best_wan_first) {
      best_wan_first = wan;
      wan_first_pick = world.dc(dc).name + "/WAN";
    }
    // Joint: consider (DC, option) combinations together.
    if (wan < best_joint) {
      best_joint = wan;
      joint_pick = world.dc(dc).name + "/WAN";
    }
    if (internet < best_joint) {
      best_joint = internet;
      joint_pick = world.dc(dc).name + "/Internet";
    }
  }
  std::printf("sequential pick: %s (%.1f ms)   joint pick: %s (%.1f ms)\n\n",
              wan_first_pick.c_str(), best_wan_first, joint_pick.c_str(), best_joint);

  // ---- Part 2: policy comparison on a generated trace.
  workload::TraceOptions topts;
  topts.weeks = 3;
  topts.peak_slot_calls = 60.0;
  const auto full = workload::TraceGenerator(world).generate(topts);
  const auto history = full.window(0, 2 * core::kSlotsPerWeek);
  const auto eval_days =
      full.window(2 * core::kSlotsPerWeek, 2 * core::kSlotsPerWeek + core::kSlotsPerDay);

  const auto ctx = policies::PolicyContext::make(net, geo::Continent::kEurope, 0.20);
  titannext::PlanScope scope;
  scope.timeslots = core::kSlotsPerDay;
  scope.max_reduced_configs = 30;

  policies::WrrPolicy wrr(ctx, true);
  policies::LocalityFirstOptions lf_opts;
  lf_opts.oracle = true;
  lf_opts.scope = scope;
  policies::LocalityFirstPolicy lf(ctx, lf_opts);
  policies::TitanPolicy titan(ctx);
  policies::TitanNextPolicyOptions tn_opts;
  tn_opts.oracle = true;
  tn_opts.pipeline.scope = scope;
  tn_opts.pipeline.lp.e2e_bound_ms = 90.0;
  policies::TitanNextPolicy tn(ctx, tn_opts);

  const auto cmp =
      eval::compare_policies({&wrr, &lf, &titan, &tn}, eval_days, history, net, 5);
  std::printf("one evaluation day, sum of per-link WAN peaks (normalized to WRR):\n%s",
              cmp.render_peaks_table().c_str());
  std::printf("\nend-to-end latency:\n%s", cmp.render_latency_table().c_str());
  return 0;
}
