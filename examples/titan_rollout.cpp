// Titan rollout simulation (§4): the full production control loop.
//
// Every epoch, calls are generated for European (country, DC) pairs, each
// participant's routing option is drawn at the pair's current Internet
// fraction, the RTP relay simulator produces telemetry, ECS scorecards are
// built, and the ramp controllers react — incrementing healthy pairs 1-3%
// at a time toward the 20% cap, braking on severe loss, and steering
// around congested transit ISPs.
#include <cstdio>

#include "core/table.h"
#include "media/relay_sim.h"
#include "titan/titan.h"
#include "workload/callgen.h"

int main() {
  using namespace titan;
  const geo::World world = geo::World::make();
  net::NetworkDb net(world);
  titan_sys::TitanSystem titan(net, geo::Continent::kEurope);
  const media::MosModel mos;
  const media::RelaySimulator relay(net, mos);
  core::Rng rng(17);

  const auto eu_countries = world.countries_in(geo::Continent::kEurope);
  const auto eu_dcs = world.dcs_in(geo::Continent::kEurope);

  std::printf("managing %zu (country, DC) pairs in Europe\n\n", titan.pairs().size());
  std::printf("epoch  avg fraction  holding  backoff  disabled  brakes\n");

  for (int epoch = 0; epoch < 16; ++epoch) {
    // Generate a batch of calls: each pair gets a couple of 2-party calls.
    std::vector<media::Call> calls;
    std::int64_t id = epoch * 100000;
    for (const auto c : eu_countries) {
      for (const auto d : eu_dcs) {
        for (int k = 0; k < 2; ++k) {
          media::Call call;
          call.id = core::CallId(id++);
          call.mp_dc = d;
          call.media = media::MediaType::kAudio;
          for (int p = 0; p < 2; ++p)
            call.participants.push_back(
                {core::ParticipantId(id * 4 + p), c, titan.assign_path(c, d, rng)});
          calls.push_back(std::move(call));
        }
      }
    }
    const auto telemetry =
        relay.simulate_slot(calls, epoch * core::kSlotsPerDay, nullptr, rng);

    // Per-user reaction (§6.4): participants with bad Internet legs would be
    // moved to WAN immediately; count them.
    int user_failovers = 0;
    for (const auto& call : telemetry)
      for (const auto& p : call.participants) user_failovers += titan.should_failover_user(p);

    titan.control_step(telemetry);

    // Summarize ramp state.
    double total_fraction = 0.0;
    int holding = 0, backoff = 0, disabled = 0;
    for (const auto& [c, d] : titan.pairs()) {
      total_fraction += titan.internet_fraction(c, d);
      switch (titan.pair_state(c, d)) {
        case titan_sys::RampState::kHolding: ++holding; break;
        case titan_sys::RampState::kBackoff: ++backoff; break;
        case titan_sys::RampState::kDisabled: ++disabled; break;
        default: break;
      }
    }
    std::printf("%5d  %11.1f%%  %7d  %7d  %8d  %6d   (user failovers this epoch: %d)\n",
                epoch, 100.0 * total_fraction / static_cast<double>(titan.pairs().size()),
                holding, backoff, disabled, titan.transit_failovers(), user_failovers);
  }

  // Final per-pair capacities exported to Titan-Next.
  std::printf("\nsample of exported Internet capacities (Titan -> Titan-Next):\n");
  core::TextTable t({"client country", "DC", "fraction", "capacity (Mbps)"});
  int shown = 0;
  for (const auto& [c, d] : titan.pairs()) {
    if (titan.internet_fraction(c, d) <= 0.0 || ++shown > 8) continue;
    t.add_row({world.country(c).name, world.dc(d).name,
               core::TextTable::pct(titan.internet_fraction(c, d), 0),
               core::TextTable::num(titan.internet_capacity_mbps(c, d), 0)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
