// Measurement study walkthrough (§3): stand up the 2-VMs-per-DC probe
// fleet, collect a day of round-robin probes, and run the paper's analyses
// — hourly medians, the Internet-minus-WAN difference buckets, and the
// fraction-F view that motivated picking Europe for Titan.
#include <cstdio>

#include "core/table.h"
#include "measure/aggregate.h"
#include "measure/probe_platform.h"
#include "net/network_db.h"

int main() {
  using namespace titan;
  const geo::World world = geo::World::make();
  const geo::GeoDb geodb = geo::GeoDb::make(world);
  const net::NetworkDb net(world);

  const measure::ProbePlatform platform(world, geodb, net.latency());
  std::printf("probe fleet: %zu VMs (2 per DC: one Internet, one WAN)\n",
              platform.vms().size());

  measure::StudyOptions opts;
  opts.days = 1;
  opts.probes_per_hour = 20000;
  const measure::MeasurementCorpus corpus = platform.run(opts);
  const auto stats = corpus.scale_stats(opts.days);
  std::printf("collected %.0f probes/day from %zu countries / %zu cities / %zu ASNs\n\n",
              stats.avg_measurements_per_day, stats.source_countries, stats.source_cities,
              stats.source_asns);

  const auto table =
      measure::hourly_medians(corpus, measure::Granularity::kCountry, opts.days * 24);

  // Global buckets (Fig. 3's headline numbers).
  std::vector<double> all;
  for (const auto& [key, series] : table) {
    const auto d = measure::pair_differences(series);
    all.insert(all.end(), d.begin(), d.end());
  }
  const auto buckets = measure::bucket_differences(all);
  std::printf("Internet vs WAN hourly medians across all pairs:\n");
  std::printf("  strictly better: %5.1f%%   within 10ms: %5.1f%%\n", buckets.strictly_better,
              buckets.within_10ms);
  std::printf("  10-25ms worse:   %5.1f%%   >25ms worse: %5.1f%%\n\n", buckets.within_25ms,
              buckets.beyond_25ms);

  // Where is offload safe? Average F per client continent toward EU DCs.
  core::TextTable t({"client continent", "avg F toward EU DCs", "pairs"});
  std::map<geo::Continent, std::pair<double, int>> agg;
  for (const auto& cell : measure::fraction_heatmap(table)) {
    if (world.dc(cell.dc).continent != geo::Continent::kEurope) continue;
    auto& [sum, n] = agg[world.country(cell.country).continent];
    sum += cell.f;
    ++n;
  }
  for (const auto& [continent, acc] : agg)
    t.add_row({geo::continent_name(continent), core::TextTable::num(acc.first / acc.second, 2),
               std::to_string(acc.second)});
  std::printf("%s", t.render().c_str());
  std::printf("\nEurope's high F toward its own DCs is why Titan's rollout\n"
              "started with European client countries and MP DCs (§4).\n");
  return 0;
}
