// Fiber-cut fallback (§4.2 finding 7).
//
// Production story: WAN cables to Africa were cut and took months to
// repair; because the Internet option performed comparably, Titan moved
// Teams traffic to the Internet, freeing the surviving WAN capacity for
// other services. This example reproduces the sequence: cut the
// highest-capacity WAN link on the South-Africa path, compare quality on
// both options via the relay simulator, and let Titan ramp the offload.
#include <cstdio>

#include "core/stats.h"
#include "media/relay_sim.h"
#include "titan/titan.h"

int main() {
  using namespace titan;
  const geo::World world = geo::World::make();
  net::NetworkDb net(world);

  // Pick an African client country whose WAN path to the South Africa DC
  // crosses multiple backbone links (the long-haul segment the paper's
  // fiber cut severed).
  const auto za_dc = world.find_dc("southafrica");
  core::CountryId za = world.find_country("southafrica");
  for (const auto c : world.countries_in(geo::Continent::kAfrica)) {
    if (world.country(c).name == "southafrica") continue;
    if (net.topology().path(c, za_dc).links.size() >= 2) {
      za = c;
      break;
    }
  }
  std::printf("client country: %s\n", world.country(za).name.c_str());

  std::printf("before the cut: WAN path uses %zu links, RTT %.1f ms; Internet RTT %.1f ms\n",
              net.topology().path(za, za_dc).links.size(),
              net.latency().base_rtt_ms(za, za_dc, net::PathType::kWan),
              net.latency().base_rtt_ms(za, za_dc, net::PathType::kInternet));

  const auto cut = net.cut_wan_link_on_path(za, za_dc, /*remaining_scale=*/0.0);
  const auto& link = net.topology().link(cut);
  std::printf("fiber cut: severed link %d (capacity %.0f Gbps) on the WAN path\n",
              cut.value(), core::mbps_to_gbps(link.capacity_mbps));

  // With the severed link at zero, the WAN path is capacity-bound by the
  // surviving links (the paper: "our WAN capacity to Africa dropped to just
  // a few hundreds of Gbps"). Report the bottleneck among survivors — the
  // headroom other services regain when Teams departs to the Internet.
  double bottleneck = 1e18;
  for (const auto lid : net.topology().path(za, za_dc).links) {
    const auto& l = net.topology().link(lid);
    if (l.capacity_scale <= 0.0) continue;  // the severed segment
    bottleneck = std::min(bottleneck, l.capacity_mbps * l.capacity_scale);
  }
  std::printf("surviving-link bottleneck on the WAN path: %.0f Gbps\n\n",
              core::mbps_to_gbps(bottleneck));

  // Quality check over the Internet option: simulate relayed calls.
  const media::MosModel mos;
  const media::RelaySimulator relay(net, mos);
  core::Rng rng(3);
  core::Accumulator internet_loss, internet_rtt;
  for (int slot = 0; slot < 48; slot += 4) {
    media::Call call;
    call.id = core::CallId(slot);
    call.mp_dc = za_dc;
    call.media = media::MediaType::kAudio;
    call.participants = {{core::ParticipantId(0), za, net::PathType::kInternet},
                         {core::ParticipantId(1), za, net::PathType::kInternet}};
    const auto t = relay.simulate_call(call, slot, nullptr, rng);
    internet_loss.add(t.mean_loss);
    internet_rtt.add(t.participants[0].rtt_ms);
  }
  std::printf("Internet option quality: mean loss %.3f%%, mean RTT %.1f ms -> usable\n",
              internet_loss.mean() * 100.0, internet_rtt.mean());

  // Titan ramps the offload for the affected pair (no degradation seen).
  titan_sys::TitanSystem titan(net, geo::Continent::kAfrica);
  for (int epoch = 0; epoch < 12; ++epoch) titan.control_step({});
  std::printf("after %d control epochs Titan offloads %.0f%% of ZA traffic "
              "(capacity %.0f Mbps back on the WAN for other services)\n",
              titan.control_epochs(), 100.0 * titan.internet_fraction(za, za_dc),
              titan.internet_capacity_mbps(za, za_dc));
  return 0;
}
