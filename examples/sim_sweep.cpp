// Walkthrough: judging a controller change against distributions, not a
// single run.
//
// A single (seed, scenario) simulation is one sample from a distribution;
// the paper's evaluation reports weeks of traffic. This example sweeps two
// disturbance scenarios across several seeds with the sweep harness, prints
// the per-metric distributions, and shows the regression verdict machinery
// `bench_sim_sweep --check` applies to the committed baseline.
#include <cstdio>

#include "sweep/baseline.h"
#include "sweep/serialize.h"
#include "sweep/sweep.h"

int main() {
  using namespace titan;

  std::printf("== Seed x scenario sweep: distributions over seeds ==\n\n");

  sweep::SweepSpec spec;
  // Both scenarios disturb day 1 (Tuesday), inside the shrunk two-day
  // window below — a walkthrough window that truncated the disturbance
  // away would just re-measure steady-week twice.
  spec.scenarios = {"flash-crowd", "transit-degrade-failover"};
  spec.num_seeds = 4;
  spec.sim_threads = {1, 2};  // every run is also a determinism audit
  // Shrink to walkthrough cost; bench_sim_sweep runs paper-shaped volume.
  spec.peak_slot_calls = 40.0;
  spec.training_weeks = 1;
  spec.eval_days = 2;
  spec.replan_interval_slots = 12;
  spec.shards = 8;
  spec.max_reduced_configs = 20;
  spec.oracle_counts = true;

  const sweep::SweepRunner runner(spec);
  const sweep::SweepResult result = runner.run();

  std::printf("%zu runs (%zu scenarios x %d seeds x %zu thread counts), "
              "determinism violations: %zu\n",
              result.runs.size(), spec.scenarios.size(), spec.num_seeds,
              spec.sim_threads.size(), result.determinism_violations.size());

  for (const auto& agg : result.aggregates) {
    std::printf("\n-- %s, across %d seeds\n", agg.scenario.c_str(), agg.seeds);
    std::printf("   %-22s %10s %10s %10s %10s\n", "metric", "mean", "p50", "p95", "stddev");
    const auto& names = sweep::metric_names();
    for (std::size_t m = 0; m < names.size(); ++m) {
      const auto& s = agg.stats[m];
      std::printf("   %-22s %10.3f %10.3f %10.3f %10.3f\n", names[m].c_str(), s.mean,
                  s.p50, s.p95, s.stddev);
    }
  }

  // The regression check: a sweep against itself is green; nudge one
  // metric past its tolerance and the diff names the exact regression.
  const sweep::Tolerances tol = sweep::default_tolerances();
  std::printf("\nself-check regressions: %zu\n",
              sweep::compare_to_baseline(result, result, tol).size());

  sweep::SweepResult drifted = result;
  for (std::size_t m = 0; m < sweep::metric_names().size(); ++m)
    if (sweep::metric_names()[m] == "internet_share")
      drifted.aggregates[0].stats[m].mean *= 1.25;
  std::printf("after +25%% internet_share drift:\n");
  for (const auto& r : sweep::compare_to_baseline(drifted, result, tol))
    std::printf("  REGRESSION %s\n", r.describe().c_str());

  // The sweep JSON is what bench_sim_sweep commits as a baseline.
  std::printf("\nserialized sweep: %zu bytes of JSON (runs + aggregates)\n",
              sweep::to_json_text(result).size());
  return 0;
}
