// Quickstart: the smallest end-to-end tour of the library.
//
//   1. Build the synthetic world and network ground truth.
//   2. Compare Internet vs WAN latency for one pair (the §3 question).
//   3. Generate a small European call trace.
//   4. Plan one day with the Titan-Next LP and assign a call online.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "geo/world.h"
#include "net/network_db.h"
#include "titannext/controller.h"
#include "titannext/pipeline.h"
#include "workload/callgen.h"

int main() {
  using namespace titan;

  // 1. World + network ground truth (deterministic; all knobs in options).
  const geo::World world = geo::World::make();
  const net::NetworkDb net(world);
  std::printf("world: %zu countries, %zu cities, %zu ASNs, %zu DCs; WAN: %zu links\n",
              world.countries().size(), world.cities().size(), world.asns().size(),
              world.dcs().size(), net.topology().link_count());

  // 2. Is the Internet path good enough for France -> Netherlands DC?
  const auto fr = world.find_country("france");
  const auto nl = world.find_dc("netherlands");
  std::printf("France -> Netherlands DC: WAN %.1f ms, Internet %.1f ms (RTT)\n",
              net.latency().base_rtt_ms(fr, nl, net::PathType::kWan),
              net.latency().base_rtt_ms(fr, nl, net::PathType::kInternet));

  // 3. A 3-week European trace (2 training weeks + 1 evaluation week).
  workload::TraceOptions topts;
  topts.weeks = 3;
  topts.peak_slot_calls = 60.0;
  const workload::Trace trace = workload::TraceGenerator(world).generate(topts);
  std::printf("trace: %zu calls, %zu distinct call configs\n", trace.calls().size(),
              trace.configs().size());

  // 4. Plan one evaluation day jointly (MP DC + routing) and assign a call.
  std::map<std::pair<int, int>, double> fractions;  // Titan-learnt safe fractions
  for (const auto c : world.countries_in(geo::Continent::kEurope))
    for (const auto d : world.dcs_in(geo::Continent::kEurope))
      fractions[{c.value(), d.value()}] = net.loss().internet_unusable(c) ? 0.0 : 0.20;

  titannext::PipelineOptions popts;
  popts.scope.timeslots = core::kSlotsPerDay;
  popts.scope.max_reduced_configs = 30;
  popts.lp.e2e_bound_ms = 90.0;
  const titannext::TitanNextPipeline pipeline(net, fractions, popts);
  const titannext::DayPlan day =
      pipeline.plan_day_oracle(trace, 2 * core::kSlotsPerWeek);
  if (!day.valid()) {
    std::printf("plan failed\n");
    return 1;
  }
  std::printf("LP plan: sum of WAN link peaks %.1f Mbps, solved in %.2f s\n",
              day.plan.result().sum_of_wan_peaks_mbps, day.lp_seconds);

  titannext::OnlineController controller(*day.inputs, day.plan);
  core::Rng rng(1);
  const auto initial =
      controller.assign_initial(fr, media::MediaType::kVideo, /*slot=*/20, rng);
  std::printf("first joiner from France (video) -> DC %s over %s%s\n",
              world.dc(initial.assignment.dc).name.c_str(),
              net::path_type_name(initial.assignment.path).c_str(),
              initial.from_plan ? "" : " (fallback)");

  // The call turns out to be France+UK; converge and maybe migrate.
  workload::CallConfig truth;
  truth.participants = {{fr, 2}, {world.find_country("uk"), 1}};
  truth.media = media::MediaType::kVideo;
  truth.canonicalize();
  const auto converged = controller.converge(initial, truth, 20, rng);
  std::printf("converged config %s -> DC %s over %s (%s)\n",
              truth.key(world).c_str(),
              world.dc(converged.final_assignment.dc).name.c_str(),
              net::path_type_name(converged.final_assignment.path).c_str(),
              converged.dc_migration ? "migrated" : "no migration");
  return 0;
}
