// Closed-loop simulation in ~40 lines: build a scenario, disturb it, run
// it, and read the per-slot metric streams.
//
// This is the programmatic counterpart of bench_sim_scenarios — start here
// when composing a new scenario (an unlisted disturbance schedule, a
// different replan cadence, a custom surge).
#include <cstdio>

#include "sim/engine.h"

int main() {
  using namespace titan;

  // A small custom scenario: two simulated days, a Tuesday flash crowd in
  // France, and a forecast-miss regime across the surge window.
  sim::Scenario scenario = sim::make_scenario("flash-crowd");
  scenario.training_weeks = 2;
  scenario.eval_days = 2;
  scenario.peak_slot_calls = 120.0;

  sim::SimEngine engine(scenario);
  std::printf("scenario %s: %zu calls, %d slots\n", scenario.name.c_str(),
              engine.eval_trace().calls().size(), scenario.eval_slots());

  const auto r = engine.run(/*threads=*/2);
  std::printf("replans=%d migrations=%lld out-of-plan=%.1f%% internet=%.1f%% MOS=%.2f\n",
              r.replans, static_cast<long long>(r.dc_migrations),
              100.0 * r.out_of_plan_rate(), 100.0 * r.internet_share, r.mean_mos);

  // Per-slot streams: print the surge window (Tuesday 09:00-13:00).
  const auto wan = r.streams.wan_total_mbps_per_slot();
  const auto oop = r.streams.out_of_plan_rate_per_slot();
  std::printf("\n%-10s %12s %10s %12s\n", "slot", "arrivals", "WAN Mbps", "out-of-plan");
  for (int s = core::kSlotsPerDay + 16; s < core::kSlotsPerDay + 28; ++s)
    std::printf("%-10s %12.0f %10.0f %11.1f%%\n", core::slot_label(s).c_str(),
                r.streams.arrivals()[static_cast<std::size_t>(s)],
                wan[static_cast<std::size_t>(s)], 100.0 * oop[static_cast<std::size_t>(s)]);
  return 0;
}
