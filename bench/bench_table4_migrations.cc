// Table 4: percentage of calls needing an inter-DC migration when the
// offline LP plans over full call configs versus §6.2's reduced call
// configs. The paper reports 11-34% (avg 31%) without reduction versus
// 11-19% (avg 15%) with it — a 38-66% cut on weekdays.
#include "bench/common.h"
#include "policies/titan_next_policy.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Call migrations: full vs reduced call configs", "Table 4");

  const auto split = env.workload(600.0);
  const auto ctx = policies::PolicyContext::make(env.db, geo::Continent::kEurope, 0.20);

  titannext::PlanScope scope;
  scope.timeslots = core::kSlotsPerDay;
  scope.max_reduced_configs = 60;

  auto run_mode = [&](bool use_reduction) {
    policies::TitanNextPolicyOptions opts;
    opts.oracle = false;
    opts.pipeline.scope = scope;
    opts.pipeline.lp.e2e_bound_ms = 22.0;
    opts.pipeline.top_k_forecast = 200;
    opts.pipeline.use_reduction = use_reduction;
    policies::TitanNextPolicy tn(ctx, opts);
    core::Rng rng(4);
    return tn.run(split.eval, split.history, rng);
  };

  const auto with = run_mode(true);
  const auto without = run_mode(false);
  const double n = static_cast<double>(split.eval.calls().size());

  core::TextTable t({"mode", "inter-DC migrations", "% of calls", "paper"});
  t.add_row({"full call configs", std::to_string(without.dc_migrations),
             core::TextTable::num(100.0 * without.dc_migrations / n, 1) + "%",
             "11-34% (avg 31%)"});
  t.add_row({"reduced call configs", std::to_string(with.dc_migrations),
             core::TextTable::num(100.0 * with.dc_migrations / n, 1) + "%",
             "11-19% (avg 15%)"});
  std::printf("%s\n", t.render().c_str());
  const double cut = 100.0 * (1.0 - static_cast<double>(with.dc_migrations) /
                                        static_cast<double>(std::max<std::int64_t>(
                                            1, without.dc_migrations)));
  std::printf("reduction in migrations: %.1f%% (paper: 38-66%% on weekdays)\n", cut);
  std::printf("route-option-only changes (not counted above): with=%lld, without=%lld\n",
              static_cast<long long>(with.route_changes),
              static_cast<long long>(without.route_changes));
  return 0;
}
