// Closed-loop scenario simulation (§8 end-to-end).
//
// Drives the full Titan-Next stack through the discrete-event engine: the
// online controller assigns every call in real time while the offline LP
// re-plans on fresh Holt-Winters forecasts, under the scenario's
// disturbances. Default: the fiber-cut-failover week at production-shape
// volume (>= 100k calls), daily replans. `--scenario all` sweeps the whole
// library; `--threads N` exercises the sharded executor (results are
// bit-identical across thread counts for a fixed seed).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/common.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sweep/perf_report.h"

namespace {

// --lp-mode: pin the solver strategy for A/B runs. "auto" keeps the solver
// defaults (dual warm starts when the seed is dual-feasible, decomposition
// on multi-region scopes); "primal" is the historical primal-only path;
// "dual" demands dual warm repairs (cold fallback otherwise); "decomposed"
// forces region-block decomposition even on single-region scopes.
void apply_lp_mode(const titan::bench::Cli& cli, titan::titannext::PipelineOptions* pipeline) {
  using titan::lp::PivotMode;
  using titan::titannext::Decomposition;
  if (cli.lp_mode == "primal") {
    pipeline->lp.solver.pivot_mode = PivotMode::kPrimal;
    pipeline->lp.decomposition = Decomposition::kOff;
  } else if (cli.lp_mode == "dual") {
    pipeline->lp.solver.pivot_mode = PivotMode::kDual;
    pipeline->lp.decomposition = Decomposition::kOff;
  } else if (cli.lp_mode == "decomposed") {
    pipeline->lp.decomposition = Decomposition::kForce;
  }
}

titan::sim::SimResult run_one(const std::string& name, const titan::bench::Cli& cli,
                              titan::obs::TraceRecorder* trace) {
  using namespace titan;
  sim::Scenario scenario = sim::make_scenario(name);
  scenario.seed = cli.seed;
  scenario.training_weeks = cli.training_weeks();
  scenario.peak_slot_calls = cli.peak_or(1200.0);  // paper-shaped volume
  apply_lp_mode(cli, &scenario.pipeline);

  sim::SimEngine engine(scenario);
  engine.set_trace(trace);
  std::printf("\n-- %s: %s\n", scenario.name.c_str(), scenario.description.c_str());
  std::printf("   %zu calls over %d days, replan every %d slots, %d shards, %d threads\n",
              engine.eval_trace().calls().size(), scenario.eval_days,
              scenario.replan_interval_slots, scenario.shards, cli.threads);
  const auto r = engine.run(cli.threads);

  core::TextTable t({"metric", "value"});
  t.add_row({"calls simulated", std::to_string(r.calls)});
  t.add_row({"replans", std::to_string(r.replans)});
  t.add_row({"inter-DC migrations",
             std::to_string(r.dc_migrations) + "  (" +
                 core::TextTable::pct(r.migration_rate()) + " of calls)"});
  t.add_row({"forced evacuations", std::to_string(r.forced_migrations)});
  t.add_row({"route failovers (Internet->WAN)", std::to_string(r.route_changes)});
  t.add_row({"transit failovers (pair steering)", std::to_string(r.transit_failovers)});
  t.add_row({"out-of-plan convergences",
             std::to_string(r.out_of_plan) + "  (" + core::TextTable::pct(r.out_of_plan_rate()) +
                 ")"});
  t.add_row({"fallback assignments", std::to_string(r.fallback_assignments)});
  if (r.rejected_calls > 0 || r.degraded_calls > 0) {
    t.add_row({"rejected calls (admission shed)",
               std::to_string(r.rejected_calls) + "  (" +
                   core::TextTable::pct(r.calls > 0 ? static_cast<double>(r.rejected_calls) /
                                                          static_cast<double>(r.calls)
                                                    : 0.0) +
                   " of offered)"});
    t.add_row({"degraded admissions (media step-down)", std::to_string(r.degraded_calls)});
    t.add_row({"admission latency",
               "p50 " + core::TextTable::num(r.perf.admission_latency_us.quantile(0.5), 2) +
                   " us, p99 " +
                   core::TextTable::num(r.perf.admission_latency_us.quantile(0.99), 2) + " us"});
  }
  t.add_row({"internet share", core::TextTable::pct(r.internet_share)});
  t.add_row({"mean MOS proxy", core::TextTable::num(r.mean_mos, 3)});
  t.add_row({"sum of WAN day-peaks (worst day)",
             core::TextTable::num(*std::max_element(r.wan.per_day_sum_of_peaks_mbps.begin(),
                                                    r.wan.per_day_sum_of_peaks_mbps.end()),
                                  0) +
                 " Mbps"});
  t.add_row({"plan time (LP)", core::TextTable::num(r.plan_seconds, 2) + " s"});
  t.add_row({"forecast time", core::TextTable::num(r.forecast_seconds, 2) + " s"});
  t.add_row({"wall time", core::TextTable::num(r.wall_seconds, 2) + " s"});
  t.add_row({"throughput", core::TextTable::num(r.calls_per_sec(), 0) + " calls/s, " +
                               core::TextTable::num(r.events_per_sec(), 0) + " events/s"});
  t.add_row({"assign latency",
             "p50 " + core::TextTable::num(r.perf.assign_latency_us.quantile(0.5), 1) +
                 " us, p99 " + core::TextTable::num(r.perf.assign_latency_us.quantile(0.99), 1) +
                 " us, max " + core::TextTable::num(r.perf.assign_latency_us.max(), 1) + " us"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(r.checksum));
  t.add_row({"determinism checksum", buf});
  std::printf("%s", t.render().c_str());

  if (r.leaked_calls != 0)
    std::printf("WARNING: %lld leaked calls (lifecycle bug)\n",
                static_cast<long long>(r.leaked_calls));
  for (const auto& [slot, link] : r.severed_links) {
    double peak_before = 0.0, peak_after = 0.0;
    for (int s = 0; s <= slot; ++s)
      peak_before = std::max(peak_before, r.streams.link_mbps_at(s, link));
    for (int s = slot + 1; s < r.eval_slots; ++s)
      peak_after = std::max(peak_after, r.streams.link_mbps_at(s, link));
    std::printf("severed link %d at %s: post-cut peak %.1f Mbps (pre-cut peak %.1f)\n",
                link.value(), core::slot_label(slot).c_str(), peak_after, peak_before);
  }
  return r;
}

// Rolling-horizon replan-latency drill: the production cadence (§6 replans
// every 30 minutes on a day-long horizon) makes consecutive plan LPs
// overlap in all but a few slots, which is exactly where the warm-start
// cache pays. Each scenario runs twice over a short window — warm replans
// on, then off — and the drill reports per-replan simplex iterations. At
// the scenario default cadence (disjoint windows) nothing transfers and
// warm == cold by construction, so the drill is the surface that shows the
// win.
struct ReplanDrill {
  std::string name;
  int interval = 0;
  int horizon = 0;
  titan::sim::SimResult warm;
  titan::sim::SimResult cold;
};

ReplanDrill run_replan_drill(const std::string& name, const titan::bench::Cli& cli) {
  using namespace titan;
  sim::Scenario s = sim::make_scenario(name);
  s.seed = cli.seed;
  // The drill is a solver-latency instrument, not a traffic study: half the
  // smoke volume, one eval day, a 12-hour horizon cap, oracle counts — so
  // the per-replan iteration ratio is measured without paying for another
  // full behavioural run of every scenario.
  s.training_weeks = 1;
  s.eval_days = 1;
  s.peak_slot_calls = 0.5 * cli.peak_or(200.0);
  s.oracle_counts = true;
  apply_lp_mode(cli, &s.pipeline);
  s.pipeline.scope.timeslots = std::min(s.pipeline.scope.timeslots, core::kSlotsPerDay / 2);
  s.pipeline.scope.max_reduced_configs = std::min(s.pipeline.scope.max_reduced_configs, 20);
  // Production-style rolling cadence: replan every eighth of the horizon
  // (~88% window overlap) — a fresh tail small enough to sit well inside
  // the solver's warm_repair_limit, sixteen replans over the drill day.
  s.replan_interval_slots = std::max(1, s.pipeline.scope.timeslots / 8);

  ReplanDrill drill;
  drill.name = name;
  drill.interval = s.replan_interval_slots;
  drill.horizon = s.pipeline.scope.timeslots;
  sim::Scenario cold = s;
  cold.warm_replans = false;
  drill.warm = sim::SimEngine(s).run(cli.threads);
  drill.cold = sim::SimEngine(cold).run(cli.threads);
  return drill;
}

struct ReplanTotals {
  long long iterations = 0;
  long long phase1 = 0;
  int warm_started = 0;
  double seconds = 0.0;
};

ReplanTotals totals_after_first(const titan::sim::SimResult& r) {
  ReplanTotals t;
  for (std::size_t i = 1; i < r.replan_stats.size(); ++i) {
    const auto& stat = r.replan_stats[i];
    t.iterations += stat.iterations;
    t.phase1 += stat.phase1_iterations;
    t.warm_started += stat.warm_started ? 1 : 0;
    t.seconds += stat.solve_seconds;
  }
  return t;
}

void write_replan_stats_json(std::FILE* f, const char* key, const titan::sim::SimResult& r) {
  const auto t = totals_after_first(r);
  std::fprintf(f,
               "      \"%s\": {\"replans\": %d, \"first_replan_iterations\": %d, "
               "\"later_iterations\": %lld, \"later_phase1_iterations\": %lld, "
               "\"warm_started\": %d, \"later_solve_seconds\": %.3f, \"iterations\": [",
               key, r.replans,
               r.replan_stats.empty() ? 0 : r.replan_stats.front().iterations, t.iterations,
               t.phase1, t.warm_started, t.seconds);
  for (std::size_t i = 0; i < r.replan_stats.size(); ++i)
    std::fprintf(f, "%s%d", i == 0 ? "" : ", ", r.replan_stats[i].iterations);
  std::fprintf(f, "]}");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace titan;
  // The scenario-aware parser validates --scenario against the library
  // (exit 2 with the valid list on an unknown name) and serves
  // --list-scenarios.
  const bench::Cli cli = bench::parse_cli(argc, argv, sim::scenario_names());
  bench::print_header("Closed-loop scenario simulation", "§8 long-term / stability setup");

  std::vector<std::string> names;
  if (cli.scenario.empty()) {
    names = {"fiber-cut-failover"};
  } else if (cli.scenario == "all") {
    names = sim::scenario_names();
  } else {
    names = bench::split_csv(cli.scenario);  // one name or a comma list
  }
  // One recorder across the whole run: scenarios sequence on a shared
  // timeline, so the exported trace shows the full bench end to end.
  obs::TraceRecorder trace;
  obs::TraceRecorder* trace_ptr = cli.trace_out_path.empty() ? nullptr : &trace;

  std::vector<sim::SimResult> results;
  results.reserve(names.size());
  for (const auto& name : names) results.push_back(run_one(name, cli, trace_ptr));

  // Machine-readable per-scenario summary (CI uploads this as an artifact;
  // the determinism checksums double as cheap golden values).
  if (!cli.json_path.empty()) {
    std::FILE* f = std::fopen(cli.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"seed\": %llu,\n  \"threads\": %d,\n  \"scenarios\": [\n",
                 static_cast<unsigned long long>(cli.seed), cli.threads);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      const auto region_count = [&r](geo::Continent region) {
        return static_cast<long long>(r.calls_by_region[static_cast<std::size_t>(region)]);
      };
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"checksum\": \"%016llx\", \"calls\": %lld, "
                   "\"replans\": %d, \"dc_migrations\": %lld, \"route_changes\": %lld, "
                   "\"transit_failovers\": %lld, \"forced_migrations\": %lld, "
                   "\"out_of_plan\": %lld, \"leaked_calls\": %lld, "
                   "\"rejected_calls\": %lld, \"degraded_calls\": %lld, "
                   "\"shed_na\": %.6f, \"shed_eu\": %.6f, \"shed_asia\": %.6f, "
                   "\"internet_share\": %.6f, \"mean_mos\": %.4f, "
                   "\"wan_sum_of_peaks_mbps\": %.3f, "
                   "\"calls_na\": %lld, \"calls_eu\": %lld, \"calls_asia\": %lld, "
                   "\"wan_gb_na\": %.3f, \"wan_gb_eu\": %.3f, \"wan_gb_asia\": %.3f,%s\n",
                   r.scenario.c_str(), static_cast<unsigned long long>(r.checksum),
                   static_cast<long long>(r.calls), r.replans,
                   static_cast<long long>(r.dc_migrations),
                   static_cast<long long>(r.route_changes),
                   static_cast<long long>(r.transit_failovers),
                   static_cast<long long>(r.forced_migrations),
                   static_cast<long long>(r.out_of_plan),
                   static_cast<long long>(r.leaked_calls),
                   static_cast<long long>(r.rejected_calls),
                   static_cast<long long>(r.degraded_calls),
                   r.shed_fraction(geo::Continent::kNorthAmerica),
                   r.shed_fraction(geo::Continent::kEurope),
                   r.shed_fraction(geo::Continent::kAsia), r.internet_share, r.mean_mos,
                   r.wan.sum_of_peaks_mbps, region_count(geo::Continent::kNorthAmerica),
                   region_count(geo::Continent::kEurope), region_count(geo::Continent::kAsia),
                   r.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kNorthAmerica)],
                   r.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kEurope)],
                   r.wan_gb_by_region[static_cast<std::size_t>(geo::Continent::kAsia)],
                   "");
      std::fprintf(f, "     \"calls_per_sec\": %.3f, \"events_per_sec\": %.3f}%s\n",
                   r.calls_per_sec(), r.events_per_sec(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", cli.json_path.c_str());
  }

  // Cold-vs-warm replan latency at the production (rolling-horizon)
  // cadence, reported per scenario and written as a JSON artifact.
  if (!cli.replan_json_path.empty()) {
    std::printf("\n-- replan-latency drill (rolling horizon, warm vs cold)\n");
    core::TextTable t({"scenario", "cadence", "warm replans", "iters warm", "iters cold",
                       "saved"});
    std::vector<ReplanDrill> drills;
    drills.reserve(names.size());
    for (const auto& name : names) {
      drills.push_back(run_replan_drill(name, cli));
      const auto& d = drills.back();
      const auto w = totals_after_first(d.warm);
      const auto c = totals_after_first(d.cold);
      const double saved =
          c.iterations > 0
              ? 1.0 - static_cast<double>(w.iterations) / static_cast<double>(c.iterations)
              : 0.0;
      t.add_row({d.name,
                 std::to_string(d.interval) + "/" + std::to_string(d.horizon) + " slots",
                 std::to_string(w.warm_started) + "/" + std::to_string(d.warm.replans - 1),
                 std::to_string(w.iterations), std::to_string(c.iterations),
                 core::TextTable::pct(saved)});
    }
    std::printf("%s", t.render().c_str());

    std::FILE* f = std::fopen(cli.replan_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cli.replan_json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"seed\": %llu,\n  \"scenarios\": [\n",
                 static_cast<unsigned long long>(cli.seed));
    for (std::size_t i = 0; i < drills.size(); ++i) {
      const auto& d = drills[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"replan_interval_slots\": %d, "
                   "\"horizon_slots\": %d,\n",
                   d.name.c_str(), d.interval, d.horizon);
      write_replan_stats_json(f, "warm", d.warm);
      std::fprintf(f, ",\n");
      write_replan_stats_json(f, "cold", d.cold);
      std::fprintf(f, "}%s\n", i + 1 < drills.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", cli.replan_json_path.c_str());
  }

  // Performance-trajectory report (docs/observability.md): stable schema
  // with throughput, assignment-latency quantiles, phase timings, and the
  // deterministic anchors that make cross-machine diffs interpretable.
  if (!cli.perf_json_path.empty()) {
    sweep::Json report = sweep::perf_report_json(results, cli.peak_or(1200.0), cli.weeks,
                                                 cli.threads, cli.seed);
    // Cross-scenario aggregate registry: one merged latency histogram and
    // the run-total counters, exported alongside the per-scenario entries.
    obs::Registry registry;
    for (const auto& r : results) {
      registry.counter("calls").add(r.calls);
      registry.counter("events").add(r.perf.events_processed);
      registry.counter("replans").add(r.replans);
      registry.counter("rejected_calls").add(r.rejected_calls);
      registry.counter("degraded_calls").add(r.degraded_calls);
      registry.gauge("wall_seconds_last").set(r.wall_seconds);
      registry
          .histogram("assign_latency_us", r.perf.assign_latency_us.options())
          .merge(r.perf.assign_latency_us);
      registry
          .histogram("admission_latency_us", r.perf.admission_latency_us.options())
          .merge(r.perf.admission_latency_us);
    }
    report.set("registry", sweep::registry_json(registry));

    std::ofstream out(cli.perf_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.perf_json_path.c_str());
      return 1;
    }
    out << report.dump(2) << "\n";
    out.close();
    std::printf("wrote %s\n", cli.perf_json_path.c_str());

    // Informational diff against a committed baseline: printed, never
    // fatal — wall clock is machine-dependent, the trajectory is the point.
    if (!cli.perf_baseline_path.empty()) {
      std::ifstream in(cli.perf_baseline_path);
      if (!in) {
        std::fprintf(stderr, "perf baseline %s unreadable; skipping diff\n",
                     cli.perf_baseline_path.c_str());
      } else {
        std::ostringstream text;
        text << in.rdbuf();
        try {
          const sweep::Json baseline = sweep::Json::parse(text.str());
          std::printf("\n%s", sweep::perf_diff_text(baseline, report).c_str());
        } catch (const std::exception& e) {
          std::fprintf(stderr, "perf baseline %s unparsable (%s); skipping diff\n",
                       cli.perf_baseline_path.c_str(), e.what());
        }
      }
    }
  }

  // Chrome trace_event export of the runs' phase spans (Perfetto-loadable).
  if (!cli.trace_out_path.empty()) {
    std::ofstream out(cli.trace_out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.trace_out_path.c_str());
      return 1;
    }
    out << trace.chrome_json();
    out.close();
    std::printf("wrote %s (%zu spans)\n", cli.trace_out_path.c_str(), trace.size());
  }

  // Leaked calls mean corrupted usage streams; fail the smoke run loudly.
  for (const auto& r : results)
    if (r.leaked_calls != 0) return 1;
  return 0;
}
