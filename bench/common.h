// Shared setup for the benchmark binaries: the standard world, network
// ground truth, Titan fractions, and the 5-week workload split the paper's
// evaluation uses (4 weeks training + 1 week evaluation, Europe-contained
// calls). All seeds are fixed so every bench is reproducible.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/table.h"
#include "geo/geodb.h"
#include "geo/world.h"
#include "net/network_db.h"
#include "workload/callgen.h"

namespace titan::bench {

// Shared command-line interface of every bench binary:
//   --seed N      workload seed               (default 2024)
//   --weeks N     total workload weeks, last one evaluated (default 5).
//                 Forecasting needs at least one training week, so
//                 --weeks 1 still generates one: it is equivalent to
//                 --weeks 2 and is the cheapest smoke-run setting.
//   --threads N   sim worker threads          (default 1)
//   --peak X      busiest-slot call volume    (default: per bench)
//   --scenario S  named scenario              (sim bench only)
//   --json PATH   machine-readable per-scenario results (sim bench only)
// The workload knobs apply to the benches that generate call traces
// (fig14/15/20, table3/4, sim); pure measurement-study benches accept but
// do not consume them.
struct Cli {
  std::uint64_t seed = 2024;
  int weeks = 5;
  int threads = 1;
  double peak_slot_calls = -1.0;  // < 0: keep the bench's default
  std::string scenario;
  std::string json_path;

  [[nodiscard]] double peak_or(double fallback) const {
    return peak_slot_calls > 0.0 ? peak_slot_calls : fallback;
  }
  [[nodiscard]] int training_weeks() const { return weeks > 1 ? weeks - 1 : 1; }
};

inline Cli parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) { return std::strcmp(argv[i], flag) == 0; };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--seed")) {
      cli.seed = std::strtoull(value(), nullptr, 10);
    } else if (is("--weeks")) {
      cli.weeks = std::atoi(value());
      if (cli.weeks < 1) {
        std::fprintf(stderr, "--weeks must be >= 1 (smoke runs train on one week)\n");
        std::exit(2);
      }
    } else if (is("--threads")) {
      cli.threads = std::atoi(value());
    } else if (is("--peak")) {
      cli.peak_slot_calls = std::atof(value());
    } else if (is("--scenario")) {
      cli.scenario = value();
    } else if (is("--json")) {
      cli.json_path = value();
    } else if (is("--help") || is("-h")) {
      std::printf("usage: %s [--seed N] [--weeks N] [--threads N] [--peak X] [--scenario S]"
                  " [--json PATH]\n",
                  argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return cli;
}

struct Env {
  Cli cli;  // seed/weeks/threads/peak overrides (workload-level knobs)
  geo::World world = geo::World::make();
  net::NetworkDb db{world};

  // Titan-learnt safe fractions: 20% for usable European pairs (the
  // production cap), 0 for countries with unusable Internet paths.
  [[nodiscard]] std::map<std::pair<int, int>, double> titan_fractions(
      double cap = 0.20) const {
    std::map<std::pair<int, int>, double> fractions;
    for (const auto c : world.countries_in(geo::Continent::kEurope)) {
      const double f = db.loss().internet_unusable(c) ? 0.0 : cap;
      for (const auto d : world.dcs_in(geo::Continent::kEurope))
        fractions[{c.value(), d.value()}] = f;
    }
    return fractions;
  }

  // The standard split with the CLI's seed/weeks/peak applied on top of the
  // bench's default peak. (Declared after WorkloadSplit below.)
  [[nodiscard]] struct WorkloadSplit workload(double default_peak) const;
};

struct WorkloadSplit {
  workload::Trace history;  // 4 training weeks
  workload::Trace eval;     // 1 evaluation week
};

inline WorkloadSplit make_workload(const geo::World& world, double peak_slot_calls = 150.0,
                                   std::uint64_t seed = 2024, int weeks = 5) {
  // Training history can never be empty (forecast-driven benches would emit
  // NaNs): --weeks 1 generates one training week anyway, same as --weeks 2.
  weeks = std::max(weeks, 2);
  workload::TraceOptions opts;
  opts.weeks = weeks;
  opts.peak_slot_calls = peak_slot_calls;
  opts.seed = seed;
  auto full = workload::TraceGenerator(world).generate(opts);
  const int split = (weeks - 1) * core::kSlotsPerWeek;
  return {full.window(0, split), full.window(split, weeks * core::kSlotsPerWeek)};
}

// Workload from the shared CLI: seed/weeks/peak overrides applied on top of
// the bench's own default peak.
inline WorkloadSplit make_workload(const geo::World& world, const Cli& cli,
                                   double default_peak) {
  return make_workload(world, cli.peak_or(default_peak), cli.seed, cli.weeks);
}

inline WorkloadSplit Env::workload(double default_peak) const {
  return make_workload(world, cli, default_peak);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace titan::bench
