// Shared setup for the benchmark binaries: the standard world, network
// ground truth, Titan fractions, and the 5-week workload split the paper's
// evaluation uses (4 weeks training + 1 week evaluation, Europe-contained
// calls). All seeds are fixed so every bench is reproducible.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/table.h"
#include "geo/geodb.h"
#include "geo/world.h"
#include "net/network_db.h"
#include "workload/callgen.h"

namespace titan::bench {

// Shared command-line interface of every bench binary:
//   --seed N      workload seed               (default 2024)
//   --weeks N     total workload weeks, last one evaluated (default 5).
//                 Forecasting needs at least one training week, so
//                 --weeks 1 still generates one: it is equivalent to
//                 --weeks 2 and is the cheapest smoke-run setting.
//   --threads N   sim worker threads          (default 1)
//   --peak X      busiest-slot call volume    (default: per bench)
//   --scenario S  named scenario, a comma list of names, or "all"
//                 (sim benches only)
//   --json PATH   machine-readable per-scenario results (sim benches only)
//   --replan-json PATH  per-scenario cold-vs-warm replan-latency report
//                 from the rolling-horizon drill (bench_sim_scenarios only)
//   --perf-json PATH  throughput / latency / phase-timing performance
//                 report (bench_sim_scenarios; docs/observability.md
//                 documents the schema). In bench_sim_sweep's distributed
//                 mode (--workers-proc) it writes the per-worker dispatch
//                 timing report instead (docs/sweep.md)
//   --perf-baseline PATH  committed perf JSON to diff against,
//                 informationally — never changes the exit code
//   --trace-out PATH  Chrome trace_event JSON of the runs' phase spans,
//                 loadable in Perfetto (bench_sim_scenarios only)
//   --lp-mode M   LP solve strategy (sim benches only): auto (default:
//                 solver picks dual-vs-primal warm starts and decomposes
//                 multi-region scopes), primal (historical primal-only
//                 path, no decomposition), dual (force dual warm starts,
//                 no decomposition), decomposed (force region-block
//                 decomposition even on single-region scopes)
//   --list-scenarios  print the scenario library and exit (sim benches only)
// Open-loop latency harness (`bench_assign_latency`) extras
// (docs/observability.md, "Assignment-latency budget"):
//   --rate X        sustained arrival rate, controller calls per second
//   --warmup-sec X  leading window whose samples are excluded
//   --measure-sec X measured window length (the reported distribution)
//   --cooldown-sec X trailing window whose samples are excluded
//   (--baseline / --check / --out are shared with the sweep bench: the
//   baseline is the committed latency-budget JSON, --check exits 1 when
//   the measured p99 exceeds it, --out writes the perf-report-schema
//   latency report)
// Sweep bench (`bench_sim_sweep`) extras:
//   --seeds N     sweep N consecutive seeds starting at --seed
//   --scenarios L comma-separated scenario names, or "all"
//   --sim-threads L  comma list of per-sim thread counts (default "1")
//   --workers N   sweep worker pool size (default: hardware threads)
//   --workers-proc N  distribute the sweep across N worker *subprocesses*
//                 (bench_sim_sweep re-executed with --worker) instead of
//                 in-process threads; byte-identical results (docs/sweep.md)
//   --worker-timeout-sec X  per-task answer deadline in the distributed
//                 mode; a silent worker is killed and its task re-dispatched
//                 (default 600)
//   --worker      run as a sweep worker: read work-spec JSON lines on
//                 stdin, write partial-result lines on stdout, exit on EOF.
//                 For the dispatcher's use; mutually exclusive with
//                 --workers-proc
//   --worker-fault MODE[:N]  fault injection for the worker protocol tests
//                 (requires --worker): after N answered tasks (default 0)
//                 die | hang | truncate | corrupt | bad-version
//   --baseline P  baseline JSON to diff against with --check
//   --check       compare against --baseline; exit 1 on regression
//   --out P       write the sweep JSON (runs + aggregates)
// The workload knobs apply to the benches that generate call traces
// (fig14/15/20, table3/4, sim); pure measurement-study benches accept but
// do not consume them.
struct Cli {
  std::uint64_t seed = 2024;
  int weeks = 5;
  int threads = 1;
  double peak_slot_calls = -1.0;  // < 0: keep the bench's default
  std::string scenario;
  std::string json_path;
  std::string replan_json_path;
  std::string perf_json_path;
  std::string perf_baseline_path;
  std::string trace_out_path;
  std::string lp_mode = "auto";  // auto | primal | dual | decomposed
  // Open-loop latency harness (bench_assign_latency) only.
  double rate_per_sec = 50000.0;
  double warmup_sec = 0.5;
  double measure_sec = 2.0;
  double cooldown_sec = 0.25;
  // Sweep bench only.
  int seeds = 1;
  std::string scenarios;    // comma list; "" or "all" = whole library
  std::string sim_threads;  // comma list; "" = {1}
  int workers = 0;          // <= 0: hardware threads
  int workers_proc = 0;     // > 0: distribute across N worker subprocesses
  double worker_timeout_sec = 600.0;  // distributed-mode per-task deadline
  bool worker = false;      // run as a protocol worker (stdin/stdout)
  std::string worker_fault;  // fault injection: MODE[:N] (tests only)
  std::string baseline_path;
  bool check = false;
  std::string out_path;

  [[nodiscard]] double peak_or(double fallback) const {
    return peak_slot_calls > 0.0 ? peak_slot_calls : fallback;
  }
  [[nodiscard]] int training_weeks() const { return weeks > 1 ? weeks - 1 : 1; }
};

// Outcome of parsing an argv. `exit_code` < 0 means "proceed with `cli`";
// >= 0 means "print `message` and exit with that code" (0 for --help /
// --list-scenarios, 2 for usage errors). Separated from the exiting
// wrapper below so tests can invoke the parser.
struct CliParse {
  Cli cli;
  int exit_code = -1;
  std::string message;
};

// Splits on commas, trimming surrounding whitespace and dropping empty
// tokens, so "a, b" and "a,b" parse identically.
inline std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    std::size_t end = comma == std::string::npos ? list.size() : comma;
    std::size_t from = begin;
    while (from < end && std::isspace(static_cast<unsigned char>(list[from]))) ++from;
    while (end > from && std::isspace(static_cast<unsigned char>(list[end - 1]))) --end;
    if (end > from) out.push_back(list.substr(from, end - from));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

// `known_scenarios` non-empty enables the scenario-aware behaviour: the
// --scenario / --scenarios values are validated against it (the literal
// "all" is always accepted), an unknown name fails with the valid list,
// and --list-scenarios prints the library.
inline CliParse parse_cli_args(int argc, char** argv,
                               const std::vector<std::string>& known_scenarios = {}) {
  CliParse parse;
  Cli& cli = parse.cli;
  const char* argv0 = argc > 0 ? argv[0] : "bench";

  const auto fail = [&](std::string message) {
    parse.exit_code = 2;
    parse.message = std::move(message);
  };
  const auto scenario_list = [&] {
    std::string names;
    for (const auto& n : known_scenarios) names += " " + n;
    return names + " all";
  };
  const auto check_scenario = [&](const std::string& name) {
    if (known_scenarios.empty() || name == "all") return true;
    if (std::find(known_scenarios.begin(), known_scenarios.end(), name) !=
        known_scenarios.end())
      return true;
    fail("unknown scenario '" + name + "'; available:" + scenario_list());
    return false;
  };

  for (int i = 1; i < argc && parse.exit_code < 0; ++i) {
    const auto is = [&](const char* flag) { return std::strcmp(argv[i], flag) == 0; };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        fail(std::string("missing value for ") + argv[i]);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (is("--seed")) {
      if ((v = value())) cli.seed = std::strtoull(v, nullptr, 10);
    } else if (is("--weeks")) {
      if ((v = value())) {
        cli.weeks = std::atoi(v);
        if (cli.weeks < 1) fail("--weeks must be >= 1 (smoke runs train on one week)");
      }
    } else if (is("--threads")) {
      if ((v = value())) cli.threads = std::atoi(v);
    } else if (is("--peak")) {
      if ((v = value())) cli.peak_slot_calls = std::atof(v);
    } else if (is("--scenario")) {
      if ((v = value())) {
        cli.scenario = v;
        const auto names = split_csv(cli.scenario);
        for (const auto& name : names) {
          // "all" only makes sense as the entire value.
          if (name == "all" && names.size() > 1) {
            fail("'all' cannot be combined with other --scenario names");
            break;
          }
          if (!check_scenario(name)) break;
        }
      }
    } else if (is("--scenarios")) {
      if ((v = value())) {
        cli.scenarios = v;
        const auto names = split_csv(cli.scenarios);
        for (const auto& name : names) {
          // "all" only makes sense as the entire value.
          if (name == "all" && names.size() > 1) {
            fail("'all' cannot be combined with other --scenarios names");
            break;
          }
          if (!check_scenario(name)) break;
        }
      }
    } else if (is("--json")) {
      if ((v = value())) cli.json_path = v;
    } else if (is("--replan-json")) {
      if ((v = value())) cli.replan_json_path = v;
    } else if (is("--perf-json")) {
      if ((v = value())) cli.perf_json_path = v;
    } else if (is("--perf-baseline")) {
      if ((v = value())) cli.perf_baseline_path = v;
    } else if (is("--trace-out")) {
      if ((v = value())) cli.trace_out_path = v;
    } else if (is("--lp-mode")) {
      if ((v = value())) {
        cli.lp_mode = v;
        if (cli.lp_mode != "auto" && cli.lp_mode != "primal" && cli.lp_mode != "dual" &&
            cli.lp_mode != "decomposed")
          fail("--lp-mode must be one of: auto primal dual decomposed");
      }
    } else if (is("--rate")) {
      if ((v = value())) {
        cli.rate_per_sec = std::atof(v);
        if (cli.rate_per_sec <= 0.0) fail("--rate must be > 0 calls/sec");
      }
    } else if (is("--warmup-sec")) {
      if ((v = value())) {
        cli.warmup_sec = std::atof(v);
        if (cli.warmup_sec < 0.0) fail("--warmup-sec must be >= 0");
      }
    } else if (is("--measure-sec")) {
      if ((v = value())) {
        cli.measure_sec = std::atof(v);
        if (cli.measure_sec <= 0.0) fail("--measure-sec must be > 0");
      }
    } else if (is("--cooldown-sec")) {
      if ((v = value())) {
        cli.cooldown_sec = std::atof(v);
        if (cli.cooldown_sec < 0.0) fail("--cooldown-sec must be >= 0");
      }
    } else if (is("--seeds")) {
      if ((v = value())) {
        cli.seeds = std::atoi(v);
        if (cli.seeds < 1) fail("--seeds must be >= 1");
      }
    } else if (is("--sim-threads")) {
      if ((v = value())) cli.sim_threads = v;
    } else if (is("--workers")) {
      if ((v = value())) cli.workers = std::atoi(v);
    } else if (is("--workers-proc")) {
      if ((v = value())) {
        cli.workers_proc = std::atoi(v);
        if (cli.workers_proc < 1) fail("--workers-proc must be >= 1 worker processes");
      }
    } else if (is("--worker-timeout-sec")) {
      if ((v = value())) {
        cli.worker_timeout_sec = std::atof(v);
        if (!(cli.worker_timeout_sec > 0.0)) fail("--worker-timeout-sec must be > 0");
      }
    } else if (is("--worker")) {
      cli.worker = true;
    } else if (is("--worker-fault")) {
      if ((v = value())) {
        cli.worker_fault = v;
        const std::string spec = cli.worker_fault;
        const std::size_t colon = spec.find(':');
        const std::string mode = spec.substr(0, colon);
        bool ok = mode == "die" || mode == "hang" || mode == "truncate" ||
                  mode == "corrupt" || mode == "bad-version";
        if (ok && colon != std::string::npos) {
          const std::string after = spec.substr(colon + 1);
          ok = !after.empty();
          for (const char c : after) ok = ok && c >= '0' && c <= '9';
        }
        if (!ok)
          fail("--worker-fault must be MODE[:N] with MODE one of: die hang truncate "
               "corrupt bad-version");
      }
    } else if (is("--baseline")) {
      if ((v = value())) cli.baseline_path = v;
    } else if (is("--check")) {
      cli.check = true;
    } else if (is("--out")) {
      if ((v = value())) cli.out_path = v;
    } else if (is("--list-scenarios")) {
      if (known_scenarios.empty()) {
        fail("this bench has no scenario library");
      } else {
        parse.exit_code = 0;
        for (const auto& n : known_scenarios) parse.message += n + "\n";
      }
    } else if (is("--help") || is("-h")) {
      parse.exit_code = 0;
      parse.message = std::string("usage: ") + argv0 +
                      " [--seed N] [--weeks N] [--threads N] [--peak X] [--scenario S]"
                      " [--json PATH] [--replan-json PATH] [--perf-json PATH]"
                      " [--perf-baseline PATH] [--trace-out PATH]"
                      " [--lp-mode auto|primal|dual|decomposed]"
                      " [--rate X] [--warmup-sec X] [--measure-sec X] [--cooldown-sec X]"
                      " [--seeds N] [--scenarios A,B|all]"
                      " [--sim-threads L]"
                      " [--workers N] [--workers-proc N] [--worker-timeout-sec X]"
                      " [--worker] [--worker-fault MODE[:N]]"
                      " [--baseline PATH] [--check] [--out PATH]"
                      " [--list-scenarios]\n";
    } else {
      fail(std::string("unknown flag ") + argv[i] + " (try --help)");
    }
  }
  // Cross-flag constraints, checked after the loop so they hold in any
  // argument order.
  if (parse.exit_code < 0 && cli.worker && cli.workers_proc > 0)
    fail("--worker and --workers-proc are mutually exclusive (a worker never dispatches)");
  if (parse.exit_code < 0 && !cli.worker_fault.empty() && !cli.worker)
    fail("--worker-fault requires --worker");
  return parse;
}

// The exiting wrapper every bench main() uses: prints the parse message
// (stderr for errors, stdout for --help / --list-scenarios) and exits when
// the parser asked for it.
inline Cli parse_cli(int argc, char** argv,
                     const std::vector<std::string>& known_scenarios = {}) {
  CliParse parse = parse_cli_args(argc, argv, known_scenarios);
  if (parse.exit_code >= 0) {
    std::FILE* out = parse.exit_code == 0 ? stdout : stderr;
    std::fprintf(out, "%s%s", parse.message.c_str(),
                 parse.message.empty() || parse.message.back() == '\n' ? "" : "\n");
    std::exit(parse.exit_code);
  }
  return parse.cli;
}

struct Env {
  Cli cli;  // seed/weeks/threads/peak overrides (workload-level knobs)
  geo::World world = geo::World::make();
  net::NetworkDb db{world};

  // Titan-learnt safe fractions: 20% for usable European pairs (the
  // production cap), 0 for countries with unusable Internet paths.
  [[nodiscard]] std::map<std::pair<int, int>, double> titan_fractions(
      double cap = 0.20) const {
    std::map<std::pair<int, int>, double> fractions;
    for (const auto c : world.countries_in(geo::Continent::kEurope)) {
      const double f = db.loss().internet_unusable(c) ? 0.0 : cap;
      for (const auto d : world.dcs_in(geo::Continent::kEurope))
        fractions[{c.value(), d.value()}] = f;
    }
    return fractions;
  }

  // The standard split with the CLI's seed/weeks/peak applied on top of the
  // bench's default peak. (Declared after WorkloadSplit below.)
  [[nodiscard]] struct WorkloadSplit workload(double default_peak) const;
};

struct WorkloadSplit {
  workload::Trace history;  // 4 training weeks
  workload::Trace eval;     // 1 evaluation week
};

inline WorkloadSplit make_workload(const geo::World& world, double peak_slot_calls = 150.0,
                                   std::uint64_t seed = 2024, int weeks = 5) {
  // Training history can never be empty (forecast-driven benches would emit
  // NaNs): --weeks 1 generates one training week anyway, same as --weeks 2.
  weeks = std::max(weeks, 2);
  workload::TraceOptions opts;
  opts.weeks = weeks;
  opts.peak_slot_calls = peak_slot_calls;
  opts.seed = seed;
  auto full = workload::TraceGenerator(world).generate(opts);
  const int split = (weeks - 1) * core::kSlotsPerWeek;
  return {full.window(0, split), full.window(split, weeks * core::kSlotsPerWeek)};
}

// Workload from the shared CLI: seed/weeks/peak overrides applied on top of
// the bench's own default peak.
inline WorkloadSplit make_workload(const geo::World& world, const Cli& cli,
                                   double default_peak) {
  return make_workload(world, cli.peak_or(default_peak), cli.seed, cli.weeks);
}

inline WorkloadSplit Env::workload(double default_peak) const {
  return make_workload(world, cli, default_peak);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace titan::bench
