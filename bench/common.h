// Shared setup for the benchmark binaries: the standard world, network
// ground truth, Titan fractions, and the 5-week workload split the paper's
// evaluation uses (4 weeks training + 1 week evaluation, Europe-contained
// calls). All seeds are fixed so every bench is reproducible.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "core/table.h"
#include "geo/geodb.h"
#include "geo/world.h"
#include "net/network_db.h"
#include "workload/callgen.h"

namespace titan::bench {

struct Env {
  geo::World world = geo::World::make();
  net::NetworkDb db{world};

  // Titan-learnt safe fractions: 20% for usable European pairs (the
  // production cap), 0 for countries with unusable Internet paths.
  [[nodiscard]] std::map<std::pair<int, int>, double> titan_fractions(
      double cap = 0.20) const {
    std::map<std::pair<int, int>, double> fractions;
    for (const auto c : world.countries_in(geo::Continent::kEurope)) {
      const double f = db.loss().internet_unusable(c) ? 0.0 : cap;
      for (const auto d : world.dcs_in(geo::Continent::kEurope))
        fractions[{c.value(), d.value()}] = f;
    }
    return fractions;
  }
};

struct WorkloadSplit {
  workload::Trace history;  // 4 training weeks
  workload::Trace eval;     // 1 evaluation week
};

inline WorkloadSplit make_workload(const geo::World& world, double peak_slot_calls = 150.0,
                                   std::uint64_t seed = 2024) {
  workload::TraceOptions opts;
  opts.weeks = 5;
  opts.peak_slot_calls = peak_slot_calls;
  opts.seed = seed;
  auto full = workload::TraceGenerator(world).generate(opts);
  return {full.window(0, 4 * core::kSlotsPerWeek),
          full.window(4 * core::kSlotsPerWeek, 5 * core::kSlotsPerWeek)};
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace titan::bench
