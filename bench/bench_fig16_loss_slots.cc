// Fig. 16: CDF, across all European (client country, MP DC) pairs, of the
// percentage of 30-minute slots in a week sustaining at least 0.1% (and
// 1%) loss, for WAN and Internet. The paper: half of the pairs see >= 0.1%
// Internet loss in at least 2% of slots, while WAN loss >= 0.1% is rare.
#include <vector>

#include "bench/common.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Share of 30-min slots with sustained loss, EU pairs", "Fig. 16");

  const auto eu_countries = env.world.countries_in(geo::Continent::kEurope);
  const auto eu_dcs = env.world.dcs_in(geo::Continent::kEurope);
  const int slots = 7 * core::kSlotsPerDay;

  core::TextTable t({"series", "P50", "P90", "P100", "pairs"});
  for (const auto path : {net::PathType::kWan, net::PathType::kInternet}) {
    for (const double threshold : {0.001, 0.01}) {
      std::vector<double> spike_shares;
      for (const auto c : eu_countries) {
        if (path == net::PathType::kInternet && env.db.loss().internet_unusable(c)) continue;
        for (const auto d : eu_dcs) {
          int spiking = 0;
          for (core::SlotIndex s = 0; s < slots; ++s)
            spiking += env.db.loss().slot_loss(c, d, path, s) >= threshold;
          spike_shares.push_back(100.0 * spiking / slots);
        }
      }
      const auto qs = core::quantiles(spike_shares, {0.5, 0.9, 1.0});
      t.add_row({path_type_name(path) + ", loss >= " +
                     core::TextTable::num(threshold * 100, 1) + "%",
                 core::TextTable::num(qs[0], 2) + "%", core::TextTable::num(qs[1], 2) + "%",
                 core::TextTable::num(qs[2], 2) + "%", std::to_string(spike_shares.size())});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: 50%% of pairs sustain >= 0.1%% Internet loss in >= 2%% of\n"
              "slots; WAN >= 0.1%% is bounded by ~2%% of slots even at P100.\n");
  return 0;
}
