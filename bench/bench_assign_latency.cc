// Open-loop assignment-latency harness (ROADMAP: "Controller
// assignment-latency budget").
//
// Hammers one OnlineController — the sim's per-shard hot path — at a
// sustained arrival rate (--rate calls/sec) the way the Basil artifact's
// benchmark clients drive their stores: arrivals fire on a fixed schedule
// regardless of how long the previous call took (open loop, so a slow
// controller cannot hide by slowing the offered load), a leading warmup
// and trailing cooldown window are excluded from the measurement, and the
// measured window reduces to p50/p90/p99/max microseconds.
//
// The op stream replays the standard evaluation trace through the real
// controller API: every call is an assign_initial at its arrival and a
// converge with its true config a few ops later, so the measured mix is
// the engine's (plan picks, recent-config guesses, miss-path media
// variants, fallbacks, out-of-plan convergences).
//
// --out writes the report in the perf-report schema; --baseline names the
// committed budget JSON (bench/baselines/assign_latency_budget.json) and
// --check enforces it: exit 1 when the measured p99 exceeds the budget,
// when too few samples were measured, or when the run's config does not
// match the budget's pinned arrival rate / window layout
// (sweep::latency_budget_check; docs/observability.md).
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>

#include "bench/common.h"
#include "core/hash.h"
#include "obs/metrics.h"
#include "sweep/perf_report.h"
#include "titannext/controller.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Op {
  std::uint32_t call = 0;
  bool converge = false;
  titan::core::SlotIndex t = 0;
};

titan::sweep::Json histogram_json(const titan::obs::Histogram& h) {
  using titan::sweep::Json;
  Json out = Json::object();
  out.set("count", Json::number(static_cast<double>(h.total_count())));
  out.set("mean", Json::number(h.mean()));
  out.set("p50", Json::number(h.quantile(0.50)));
  out.set("p90", Json::number(h.quantile(0.90)));
  out.set("p99", Json::number(h.quantile(0.99)));
  out.set("max", Json::number(h.max()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::print_header("Open-loop assignment-latency harness",
                      "§6.4 online controller, per-call latency budget");

  // The controller under test is one sim shard's: a Europe plan solved on
  // the trace's own counts (oracle; forecasting is not what is measured)
  // over a half-day horizon — big enough to be the production lookup
  // shape, small enough that the one-off LP solve stays out of the way.
  bench::Env env;
  env.cli = cli;
  const auto split = env.workload(300.0);
  titannext::PlanScope scope;
  scope.timeslots = core::kSlotsPerDay / 2;
  scope.max_reduced_configs = 40;
  titannext::PlanInputs inputs(env.db, scope, env.titan_fractions());
  inputs.set_demand(split.eval.configs(), split.eval.config_counts(), true);
  const titannext::OfflinePlan plan(&inputs, titannext::solve_plan(inputs, {}));
  if (!plan.valid()) {
    std::fprintf(stderr, "plan LP did not solve to optimality; cannot measure\n");
    return 1;
  }
  titannext::OnlineController controller(inputs, plan, {});

  // Pregenerate the op stream so nothing but the controller call sits
  // inside the timed region. Arrivals cycle through the eval trace; each
  // arrival's converge (with the call's true config) fires once 16 older
  // arrivals are in flight — the sim's arrival/convergence interleaving at
  // a fixed small pipeline depth.
  const auto& calls = split.eval.calls();
  if (calls.empty()) {
    std::fprintf(stderr, "empty eval trace\n");
    return 1;
  }
  const double total_seconds = cli.warmup_sec + cli.measure_sec + cli.cooldown_sec;
  const std::size_t total_ops =
      static_cast<std::size_t>(cli.rate_per_sec * total_seconds) + 1;
  std::vector<Op> ops;
  ops.reserve(total_ops);
  {
    std::deque<std::uint32_t> in_flight;
    std::uint32_t next_call = 0;
    for (std::size_t i = 0; i < total_ops; ++i) {
      Op op;
      if (in_flight.size() >= 16) {
        op.call = in_flight.front();
        op.converge = true;
        in_flight.pop_front();
      } else {
        op.call = next_call;
        in_flight.push_back(next_call);
        next_call = (next_call + 1) % static_cast<std::uint32_t>(calls.size());
      }
      op.t = calls[op.call].start_slot % scope.timeslots;
      ops.push_back(op);
    }
  }

  // Pending initial assignments by call index (the convergence input).
  std::vector<titannext::InitialAssignment> pending(calls.size());
  core::Rng rng(core::hash_key(cli.seed, 0xA551, 0));
  const obs::Histogram::Options lat_opts{0.01, 1e6, 8};
  obs::Histogram measured(lat_opts), excluded(lat_opts);
  std::int64_t arrivals = 0, converges = 0, fallbacks = 0, out_of_plan = 0;
  std::int64_t behind_schedule = 0;
  const double interval = 1.0 / cli.rate_per_sec;

  std::printf("rate %.0f calls/sec, windows %.2fs warmup + %.2fs measure + %.2fs cooldown"
              " (%zu ops)\n",
              cli.rate_per_sec, cli.warmup_sec, cli.measure_sec, cli.cooldown_sec, total_ops);

  const auto start = Clock::now();
  for (std::size_t i = 0; i < total_ops; ++i) {
    const double offset = static_cast<double>(i) * interval;
    const auto sched = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(offset));
    // Open loop: spin until the scheduled arrival. If the previous op ran
    // long we are already past it — issue immediately and count the slip.
    auto now = Clock::now();
    while (now < sched) now = Clock::now();
    if (now - sched > std::chrono::milliseconds(1)) ++behind_schedule;

    const Op& op = ops[i];
    const auto& call = calls[op.call];
    const auto t0 = Clock::now();
    if (op.converge) {
      const auto& config = split.eval.configs().get(call.config);
      const auto conv = controller.converge(pending[op.call], config, op.t, rng);
      if (conv.out_of_plan) ++out_of_plan;
      ++converges;
    } else {
      const auto& config = split.eval.configs().get(call.config);
      pending[op.call] = controller.assign_initial(call.first_joiner, config.media, op.t, rng);
      if (!pending[op.call].from_plan) ++fallbacks;
      ++arrivals;
    }
    const auto t1 = Clock::now();
    const double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    const bool in_window =
        offset >= cli.warmup_sec && offset < cli.warmup_sec + cli.measure_sec;
    (in_window ? measured : excluded).record(us);
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  core::TextTable table({"metric", "value"});
  table.add_row({"ops issued", std::to_string(arrivals + converges) + "  (" +
                                   std::to_string(arrivals) + " assign_initial, " +
                                   std::to_string(converges) + " converge)"});
  table.add_row({"fallback assignments", std::to_string(fallbacks)});
  table.add_row({"out-of-plan convergences", std::to_string(out_of_plan)});
  table.add_row({"behind schedule (>1ms)", std::to_string(behind_schedule)});
  table.add_row({"measured samples", std::to_string(measured.total_count())});
  table.add_row({"p50", core::TextTable::num(measured.quantile(0.50), 2) + " us"});
  table.add_row({"p90", core::TextTable::num(measured.quantile(0.90), 2) + " us"});
  table.add_row({"p99", core::TextTable::num(measured.quantile(0.99), 2) + " us"});
  table.add_row({"max", core::TextTable::num(measured.max(), 2) + " us"});
  table.add_row({"wall time", core::TextTable::num(wall, 2) + " s"});
  std::printf("%s", table.render().c_str());

  // Perf-report-schema output: config echoes the knobs the budget pins.
  sweep::Json config = sweep::Json::object();
  config.set("rate_per_sec", sweep::Json::number(cli.rate_per_sec));
  config.set("warmup_seconds", sweep::Json::number(cli.warmup_sec));
  config.set("measure_seconds", sweep::Json::number(cli.measure_sec));
  config.set("cooldown_seconds", sweep::Json::number(cli.cooldown_sec));
  config.set("seed", sweep::Json::number(static_cast<double>(cli.seed)));
  config.set("peak_slot_calls", sweep::Json::number(cli.peak_or(300.0)));

  sweep::Json det = sweep::Json::object();
  det.set("arrivals", sweep::Json::number(static_cast<double>(arrivals)));
  det.set("converges", sweep::Json::number(static_cast<double>(converges)));
  det.set("fallbacks", sweep::Json::number(static_cast<double>(fallbacks)));
  det.set("out_of_plan", sweep::Json::number(static_cast<double>(out_of_plan)));
  det.set("demands", sweep::Json::number(static_cast<double>(inputs.demands().size())));
  det.set("dcs", sweep::Json::number(static_cast<double>(inputs.dcs().size())));

  sweep::Json thr = sweep::Json::object();
  thr.set("offered_per_sec", sweep::Json::number(cli.rate_per_sec));
  thr.set("behind_schedule", sweep::Json::number(static_cast<double>(behind_schedule)));
  thr.set("wall_seconds", sweep::Json::number(wall));

  sweep::Json scenario = sweep::Json::object();
  scenario.set("scenario", sweep::Json::string("assign-open-loop"));
  scenario.set("deterministic", std::move(det));
  scenario.set("throughput", std::move(thr));
  scenario.set("assign_latency_us", histogram_json(measured));
  scenario.set("excluded_latency_us", histogram_json(excluded));

  sweep::Json report = sweep::Json::object();
  report.set("schema_version", sweep::Json::number(sweep::kPerfSchemaVersion));
  report.set("kind", sweep::Json::string("assign_latency"));
  report.set("config", std::move(config));
  sweep::Json scenarios = sweep::Json::array();
  scenarios.push_back(std::move(scenario));
  report.set("scenarios", std::move(scenarios));

  if (!cli.out_path.empty()) {
    std::ofstream out(cli.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.out_path.c_str());
      return 1;
    }
    out << report.dump(2) << "\n";
    std::printf("wrote %s\n", cli.out_path.c_str());
  }

  // Budget enforcement: unlike the perf-report diff this one gates CI.
  if (cli.check) {
    if (cli.baseline_path.empty()) {
      std::fprintf(stderr, "--check needs --baseline <budget.json>\n");
      return 2;
    }
    std::ifstream in(cli.baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read budget %s\n", cli.baseline_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    sweep::Json budget;
    try {
      budget = sweep::Json::parse(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "budget %s unparsable: %s\n", cli.baseline_path.c_str(), e.what());
      return 1;
    }
    const auto check = sweep::latency_budget_check(budget, report);
    std::printf("%s", check.text.c_str());
    if (!check.ok) return 1;
  }
  return 0;
}
