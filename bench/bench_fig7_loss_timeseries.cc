// Fig. 7: time series of hourly median loss between clients in France and
// the Netherlands DC over one week. The Internet shows taller and more
// frequent spikes; WAN peaks stay bounded (~0.02%).
#include <algorithm>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Loss time series, France -> Netherlands DC", "Fig. 7");

  const auto fr = env.world.find_country("france");
  const auto nl = env.world.find_dc("netherlands");

  double wan_peak = 0.0, internet_peak = 0.0;
  int internet_spikes = 0, wan_spikes = 0;
  std::printf("day  hour  WAN loss%%   Internet loss%%\n");
  for (int hour = 0; hour < 7 * 24; ++hour) {
    const core::SlotIndex slot = hour * core::kSlotsPerHour;
    const double wan = env.db.loss().slot_loss(fr, nl, net::PathType::kWan, slot);
    const double internet = env.db.loss().slot_loss(fr, nl, net::PathType::kInternet, slot);
    wan_peak = std::max(wan_peak, wan);
    internet_peak = std::max(internet_peak, internet);
    wan_spikes += wan >= 0.0001;
    internet_spikes += internet >= 0.0001;
    if (hour % 6 == 0)  // print a readable subsample of the series
      std::printf("d%02d  %02d    %8.4f    %8.4f\n", hour / 24, hour % 24, wan * 100,
                  internet * 100);
  }
  std::printf("\nWAN peak: %.4f%%   Internet peak: %.4f%% (ratio %.1fx)\n", wan_peak * 100,
              internet_peak * 100, internet_peak / std::max(1e-12, wan_peak));
  std::printf("hours >= 0.01%% loss: WAN %d, Internet %d\n", wan_spikes, internet_spikes);
  std::printf("paper: Internet spikes higher (up to 3x) and more frequent;\n"
              "WAN peak loss bounded by ~0.02%%.\n");
  return 0;
}
