// Fig. 17: CDFs, across European (client country, MP DC) pairs, of the
// change in latency and loss when the Internet offload fraction grows from
// 1% to 20%. The paper: latency delta under 20 msec even at P90; loss
// delta under 0.01% at P90 — the Internet is elastic at Titan's scale.
#include <vector>

#include "bench/common.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Elasticity CDFs across EU pairs (1% -> 20% offload)", "Fig. 17");

  const auto eu_countries = env.world.countries_in(geo::Continent::kEurope);
  const auto eu_dcs = env.world.dcs_in(geo::Continent::kEurope);

  std::vector<double> latency_delta_ms, loss_delta_pct;
  for (const auto c : eu_countries) {
    if (env.db.loss().internet_unusable(c)) continue;
    for (const auto d : eu_dcs) {
      const double demand = env.db.pair_peak_demand(c, d);
      core::Accumulator rtt_lo, rtt_hi, loss_lo, loss_hi;
      for (core::SlotIndex s = 0; s < 7 * core::kSlotsPerDay; s += 4) {
        rtt_lo.add(env.db.effective_internet_rtt(c, d, s, 0.01 * demand));
        rtt_hi.add(env.db.effective_internet_rtt(c, d, s, 0.20 * demand));
        loss_lo.add(env.db.effective_internet_loss(c, d, s, 0.01 * demand));
        loss_hi.add(env.db.effective_internet_loss(c, d, s, 0.20 * demand));
      }
      latency_delta_ms.push_back(rtt_hi.mean() - rtt_lo.mean());
      loss_delta_pct.push_back((loss_hi.mean() - loss_lo.mean()) * 100.0);
    }
  }

  core::TextTable t({"metric", "P50", "P90", "P99", "pairs"});
  {
    auto qs = core::quantiles(latency_delta_ms, {0.5, 0.9, 0.99});
    t.add_row({"latency delta (msec)", core::TextTable::num(qs[0], 3),
               core::TextTable::num(qs[1], 3), core::TextTable::num(qs[2], 3),
               std::to_string(latency_delta_ms.size())});
    qs = core::quantiles(loss_delta_pct, {0.5, 0.9, 0.99});
    t.add_row({"loss delta (%)", core::TextTable::num(qs[0], 4),
               core::TextTable::num(qs[1], 4), core::TextTable::num(qs[2], 4),
               std::to_string(loss_delta_pct.size())});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: latency delta < 20 msec at P90; loss delta < 0.01%% at P90.\n");
  return 0;
}
