// Fig. 8: loss and RTT versus the fraction of Teams traffic moved to the
// Internet between UK clients and the Netherlands DC. The paper observes no
// systematic inflation up to the production cap of 20%; our ground truth
// additionally shows the congestion knee the paper warns about beyond it.
#include "bench/common.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Elasticity: loss & RTT vs % of calls on the Internet",
                      "Fig. 8 (UK -> Netherlands DC)");

  const auto uk = env.world.find_country("uk");
  const auto nl = env.world.find_dc("netherlands");
  const double demand = env.db.pair_peak_demand(uk, nl);

  core::TextTable t({"% on Internet", "loss (%)", "RTT (msec)"});
  for (int pct = 0; pct <= 60; pct += (pct < 20 ? 2 : 5)) {
    const double offered = demand * pct / 100.0;
    // Average across a week of slots for a stable reading.
    core::Accumulator loss, rtt;
    for (core::SlotIndex s = 0; s < 7 * core::kSlotsPerDay; s += 3) {
      loss.add(env.db.effective_internet_loss(uk, nl, s, offered));
      rtt.add(env.db.effective_internet_rtt(uk, nl, s, offered));
    }
    t.add_row({std::to_string(pct), core::TextTable::num(loss.mean() * 100, 4),
               core::TextTable::num(rtt.mean(), 1)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: flat loss and RTT through 20%% (production never went\n"
              "beyond); the knee past ~30%% is the congestion risk the paper\n"
              "cites for not exceeding the cap.\n");
  return 0;
}
