// Fig. 15: prediction-based (first-joiner) comparison of the per-day sum of
// peak WAN bandwidth. None of the policies see ground truth: WRR/LF/Titan
// assign on the first joiner's country; TN assigns from the Holt-Winters +
// LP precomputed plan through the online controller. The paper reports TN
// cutting 55-61% vs WRR and 38-44% vs LF here — much more than in oracle
// mode, because the baselines lose their knowledge of future call configs.
#include "bench/common.h"
#include "eval/runner.h"
#include "policies/locality_first.h"
#include "policies/titan_next_policy.h"
#include "policies/titan_policy.h"
#include "policies/wrr.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Prediction-based: sum of per-day peak WAN bandwidth", "Fig. 15");

  const auto split = env.workload(600.0);
  const auto ctx = policies::PolicyContext::make(env.db, geo::Continent::kEurope, 0.20);

  titannext::PlanScope scope;
  scope.timeslots = core::kSlotsPerDay;
  scope.max_reduced_configs = 60;
  scope.compute_headroom = 1.15;  // realistic provisioning (§8's regime)

  policies::WrrPolicy wrr(ctx, /*oracle=*/false);
  policies::LocalityFirstOptions lf_opts;
  lf_opts.oracle = false;
  lf_opts.scope = scope;
  policies::LocalityFirstPolicy lf(ctx, lf_opts);
  policies::TitanPolicy titan(ctx);
  policies::TitanNextPolicyOptions tn_opts;
  tn_opts.oracle = false;
  tn_opts.pipeline.scope = scope;
  tn_opts.pipeline.lp.e2e_bound_ms = 22.0;
  tn_opts.pipeline.top_k_forecast = 200;
  policies::TitanNextPolicy tn(ctx, tn_opts);

  const auto cmp =
      eval::compare_policies({&wrr, &lf, &titan, &tn}, split.eval, split.history, env.db, 16);
  std::printf("%s\n", cmp.render_peaks_table().c_str());
  std::printf("TN vs WRR weekday reduction: %.1f%% (paper: 55-61%%)\n",
              cmp.weekday_reduction_pct(3, 0));
  std::printf("TN vs LF  weekday reduction: %.1f%% (paper: 38-44%%)\n",
              cmp.weekday_reduction_pct(3, 1));
  std::printf("\nTN plan time (forecast + LP across the week): %.1f s\n",
              cmp.results[3].run.plan_seconds);
  std::printf("TN inter-DC migrations: %lld of %zu calls (%.1f%%)\n",
              static_cast<long long>(cmp.results[3].run.dc_migrations),
              split.eval.calls().size(),
              100.0 * static_cast<double>(cmp.results[3].run.dc_migrations) /
                  static_cast<double>(split.eval.calls().size()));
  return 0;
}
