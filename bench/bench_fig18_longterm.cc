// Fig. 18: CDFs of the change in weekly median latency between two weeks 12
// months apart, for WAN and Internet paths between the top-volume countries
// and all DCs. The paper: 80+% of paths improved, Internet slightly more.
#include <map>
#include <vector>

#include "bench/common.h"
#include "core/stats.h"
#include "measure/aggregate.h"
#include "measure/probe_platform.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("12-month latency change, weekly medians", "Fig. 18");

  const geo::GeoDb geodb = geo::GeoDb::make(env.world);

  // Two epochs: the reference week and the same week 12 months earlier.
  net::NetworkDbOptions old_opts;
  old_opts.latency.epoch_months = -12.0;
  const net::NetworkDb old_db(env.world, old_opts);

  measure::StudyOptions sopts;
  sopts.days = 7;
  sopts.probes_per_hour = 20000;
  const auto now_corpus =
      measure::ProbePlatform(env.world, geodb, env.db.latency()).run(sopts);
  sopts.seed += 1;
  const auto old_corpus =
      measure::ProbePlatform(env.world, geodb, old_db.latency()).run(sopts);

  const auto now = measure::weekly_medians(now_corpus, sopts.days * 24);
  const auto old = measure::weekly_medians(old_corpus, sopts.days * 24);
  std::map<std::pair<int, int>, measure::WeeklyMedian> old_by_pair;
  for (const auto& m : old) old_by_pair[{m.country.value(), m.dc.value()}] = m;

  std::vector<double> wan_changes, internet_changes;
  for (const auto& m : now) {
    const auto it = old_by_pair.find({m.country.value(), m.dc.value()});
    if (it == old_by_pair.end()) continue;
    wan_changes.push_back(m.wan_ms - it->second.wan_ms);
    internet_changes.push_back(m.internet_ms - it->second.internet_ms);
  }

  auto improved = [](const std::vector<double>& v) {
    int n = 0;
    for (const double x : v) n += x < 0.0;
    return 100.0 * n / static_cast<double>(v.size());
  };
  core::TextTable t({"path", "P10 change", "P50 change", "P90 change", "% improved"});
  auto row = [&](const std::string& name, std::vector<double> v) {
    const double imp = improved(v);
    const auto qs = core::quantiles(std::move(v), {0.1, 0.5, 0.9});
    t.add_row({name, core::TextTable::num(qs[0], 1) + " ms",
               core::TextTable::num(qs[1], 1) + " ms", core::TextTable::num(qs[2], 1) + " ms",
               core::TextTable::num(imp, 1) + "%"});
  };
  row("WAN", wan_changes);
  row("Internet", internet_changes);
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: 80+%% of paths improved over 12 months for both options;\n"
              "Internet paths improved slightly more.\n");
  return 0;
}
