// Table 1: scale of the measurement study.
//
// The production platform logs ~3.5M probes/day from 241K cities / 61K ASNs
// across 244 countries to 21 DCs. Our synthetic world is smaller by design;
// this bench runs the same pipeline (round-robin fleet, /24-masked logging,
// offline geolocation joins) for one day and prints the same table rows.
#include "bench/common.h"
#include "measure/probe_platform.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Scale of the measurement study", "Table 1");

  const geo::GeoDb geodb = geo::GeoDb::make(env.world);
  const measure::ProbePlatform platform(env.world, geodb, env.db.latency());

  measure::StudyOptions opts;
  opts.days = 1;
  opts.probes_per_hour = 60000;
  const auto corpus = platform.run(opts);
  const auto stats = corpus.scale_stats(opts.days);

  core::TextTable table({"Geography", "Unique values", "paper"});
  table.add_row({"Avg. #measurements/day",
                 core::TextTable::num(stats.avg_measurements_per_day, 0), "3.5 million"});
  table.add_row({"Source country", std::to_string(stats.source_countries), "244"});
  table.add_row({"Source city", std::to_string(stats.source_cities), "241,777"});
  table.add_row({"Source ASN", std::to_string(stats.source_asns), "61,675"});
  table.add_row({"IP subnets", std::to_string(stats.ip_subnets), "4,731,110"});
  table.add_row({"Destination DCs", std::to_string(stats.destination_dcs), "21"});
  std::printf("%s\n", table.render().c_str());
  std::printf("note: synthetic world is intentionally smaller; the pipeline\n"
              "(fleet, LB, /24 logging, geo joins) is the reproduction target.\n");
  return 0;
}
