// Seed x scenario sweep with distribution stats and baseline regression
// checking.
//
// One (seed, scenario) simulation is a single sample; this bench sweeps
// every requested scenario across --seeds consecutive seeds (in parallel
// across --workers), reduces each SimResult metric to mean / p50 / p95 /
// min / max / stddev across seeds, and reports the distributions — the
// regression-grade comparison surface the paper's week-scale evaluation
// implies. Modes:
//
//   generate:  bench_sim_sweep --seeds 8 --out sweep.json
//   refresh:   bench_sim_sweep --seeds 5 --weeks 1 --peak 200
//                --out bench/baselines/sweep_baseline.json
//   check:     bench_sim_sweep --seeds 5 --weeks 1 --peak 200
//                --baseline bench/baselines/sweep_baseline.json --check
//   distribute: bench_sim_sweep --seeds 8 --workers-proc 4 --out sweep.json
//                (byte-identical to the in-process run; docs/sweep.md)
//   worker:    bench_sim_sweep --worker   (dispatcher-spawned; speaks the
//                sweep/protocol.h line protocol on stdin/stdout)
//
// --check re-runs the sweep with the baseline's spec expected to match the
// CLI-derived spec, diffs the aggregates under per-metric relative
// tolerances, and exits 1 on any regression (2 on an incomparable
// baseline). Determinism is audited on every run: each (seed, scenario)
// simulates at every --sim-threads count and any divergence fails the run.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench/common.h"
#include "core/table.h"
#include "sweep/baseline.h"
#include "sweep/dispatch.h"
#include "sweep/perf_report.h"
#include "sweep/protocol.h"
#include "sweep/serialize.h"
#include "sweep/sweep.h"

namespace {

using namespace titan;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The worker half of the distributed sweep: one work-spec JSON line in,
// one partial-result line out, exit 0 on stdin EOF. stdout is the protocol
// channel, so this runs before any banner printing. Protocol errors are
// fatal on purpose — a worker that cannot parse its dispatcher's spec must
// die loudly, not guess (the dispatcher re-dispatches and eventually
// surfaces the fault).
//
// --worker-fault MODE[:N] arms one injected fault for the protocol tests:
// after N clean answers (default 0) the worker, instead of answering,
//   die        exits without a byte of the answer
//   hang       never answers (the dispatcher's timeout must fire)
//   truncate   writes half the answer line, no newline, and exits
//   corrupt    writes a full line that is not valid JSON
//   bad-version answers with an unknown protocol version
int worker_main(const bench::Cli& cli) {
  std::string fault_mode;
  int fault_after = 0;
  if (!cli.worker_fault.empty()) {
    const std::size_t colon = cli.worker_fault.find(':');
    fault_mode = cli.worker_fault.substr(0, colon);
    if (colon != std::string::npos)
      fault_after = std::atoi(cli.worker_fault.c_str() + colon + 1);
  }

  int answered = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    try {
      const sweep::WorkSpec spec = sweep::work_spec_from_text(line);
      sweep::PartialResult partial = sweep::run_work_spec(spec);
      if (!fault_mode.empty() && answered == fault_after) {
        if (fault_mode == "die") return 3;
        if (fault_mode == "hang") {
          for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
        }
        if (fault_mode == "truncate") {
          const std::string out = sweep::to_json_line(partial);
          std::fwrite(out.data(), 1, out.size() / 2, stdout);
          std::fflush(stdout);
          return 3;
        }
        if (fault_mode == "corrupt") {
          std::fputs("{\"protocol\":1,this is not json}\n", stdout);
          std::fflush(stdout);
          ++answered;
          continue;
        }
        // bad-version: a well-formed answer from a future protocol.
        partial.protocol = sweep::kWorkProtocolVersion + 98;
      }
      const std::string out = sweep::to_json_line(partial);
      std::fwrite(out.data(), 1, out.size(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
      ++answered;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "worker error: %s\n", e.what());
      return 2;
    }
  }
  return 0;
}

// Path of the running binary — the dispatcher re-executes itself as its
// workers, so the distributed sweep needs no install location.
std::string self_binary_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;  // non-procfs fallback
}

void print_aggregates(const sweep::SweepResult& result) {
  // One table per scenario: every metric's distribution across seeds.
  for (const auto& agg : result.aggregates) {
    std::printf("\n-- %s (%d seeds)\n", agg.scenario.c_str(), agg.seeds);
    core::TextTable t({"metric", "mean", "p50", "p95", "min", "max", "stddev"});
    const auto& names = sweep::metric_names();
    for (std::size_t m = 0; m < names.size(); ++m) {
      const auto& s = agg.stats[m];
      t.add_row({names[m], core::TextTable::num(s.mean, 3), core::TextTable::num(s.p50, 3),
                 core::TextTable::num(s.p95, 3), core::TextTable::num(s.min, 3),
                 core::TextTable::num(s.max, 3), core::TextTable::num(s.stddev, 3)});
    }
    std::printf("%s", t.render().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli = bench::parse_cli(argc, argv, sim::scenario_names());
  // Worker mode owns stdout as its protocol channel: no banner, no tables.
  if (cli.worker) return worker_main(cli);
  bench::print_header("Seed x scenario sweep: metric distributions + regression check",
                      "§8 evaluated as distributions, not single runs");

  sweep::SweepSpec spec;
  // --scenarios wins; the shared singular --scenario also narrows the
  // sweep so no documented sim-bench flag is silently ignored.
  if (!cli.scenarios.empty() && cli.scenarios != "all") {
    spec.scenarios = bench::split_csv(cli.scenarios);
  } else if (!cli.scenario.empty() && cli.scenario != "all") {
    spec.scenarios = bench::split_csv(cli.scenario);
  }
  spec.base_seed = cli.seed;
  spec.num_seeds = cli.seeds;
  if (!cli.sim_threads.empty()) {
    spec.sim_threads.clear();
    for (const auto& token : bench::split_csv(cli.sim_threads))
      spec.sim_threads.push_back(std::atoi(token.c_str()));
  } else {
    // The shared --threads flag means "sim worker threads" everywhere
    // else; honor it here as the single per-sim thread count.
    spec.sim_threads = {std::max(1, cli.threads)};
  }
  spec.peak_slot_calls = cli.peak_or(200.0);
  spec.training_weeks = cli.training_weeks();
  spec.workers = cli.workers;
  // Distribution sweeps trade single-run LP fidelity for seed coverage:
  // a reduced LP keeps the full forecast -> plan -> controller loop while
  // making seeds x scenarios x replans tractable in CI. The value is part
  // of the spec, so a baseline pins it.
  spec.max_reduced_configs = 30;

  try {
    const sweep::SweepSpec resolved = sweep::validate_sweep_spec(spec);

    // Validate --check prerequisites before burning minutes of sweeping:
    // a missing flag or an unreadable/malformed baseline is a CLI error,
    // not something a simulation can fix. (Spec comparison happens after
    // the run, on the result.)
    sweep::SweepResult baseline;
    if (cli.check) {
      if (cli.baseline_path.empty()) {
        std::fprintf(stderr, "--check requires --baseline PATH\n");
        return 2;
      }
      baseline = sweep::from_json_text(read_file(cli.baseline_path));
    }
    std::printf("\nsweeping %zu scenarios x %d seeds (base seed %llu), "
                "sim threads {%s}, peak %.0f, %d training week(s)\n",
                resolved.scenarios.size(), resolved.num_seeds,
                static_cast<unsigned long long>(resolved.base_seed),
                cli.sim_threads.empty() ? "1" : cli.sim_threads.c_str(),
                resolved.peak_slot_calls, resolved.training_weeks);

    sweep::SweepResult result;
    if (cli.workers_proc > 0) {
      // Distributed mode: this binary re-executed as --worker subprocesses.
      // Same spec, same reduction, same bytes — only the scheduling (and
      // the fault tolerance) differs. docs/sweep.md has the protocol.
      sweep::DispatchOptions opts;
      opts.workers = cli.workers_proc;
      opts.task_timeout_sec = cli.worker_timeout_sec;
      sweep::SweepDispatcher dispatcher(
          resolved,
          sweep::process_worker_factory({self_binary_path(argv[0]), "--worker"}), opts);
      std::printf("\ndistributing across %d worker process(es), %.0f s/task timeout\n",
                  cli.workers_proc, cli.worker_timeout_sec);
      result = dispatcher.run();

      const sweep::DispatchReport& dispatch = dispatcher.report();
      std::printf("dispatch: %.2f s wall, %d retried spec(s)\n", dispatch.seconds,
                  dispatch.retries);
      for (const auto& w : dispatch.workers)
        std::printf("  worker %d: %d task(s), %d fault(s), %d respawn(s), %.2f s busy\n",
                    w.worker, w.tasks_completed, w.faults, w.respawns, w.busy_seconds);
      // Per-worker timing artifact (CI uploads it; wall-clock only, never
      // compared against anything).
      if (!cli.perf_json_path.empty()) {
        std::ofstream out(cli.perf_json_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", cli.perf_json_path.c_str());
          return 1;
        }
        out << sweep::dispatch_report_json(dispatch, dispatcher.registry()).dump(2) << "\n";
        std::printf("wrote %s\n", cli.perf_json_path.c_str());
      }
    } else {
      const sweep::SweepRunner runner(spec);
      result = runner.run();
    }
    print_aggregates(result);

    // Per-task wall time (canonical order: scenario-major, seed-minor) —
    // the sweep's share of the observability surface. Reporting only;
    // never serialized into the sweep JSON.
    if (!result.task_seconds.empty()) {
      double total = 0.0, slowest = 0.0;
      for (const double s : result.task_seconds) {
        total += s;
        slowest = std::max(slowest, s);
      }
      std::printf("\ntask timing: %zu tasks, %.2f s total, %.2f s mean, %.2f s slowest\n",
                  result.task_seconds.size(),
                  total, total / static_cast<double>(result.task_seconds.size()), slowest);
    }

    // Write the JSON before any failure exit: on a red run it is exactly
    // the artifact that diagnoses the failure (CI uploads it regardless).
    // The shared --json flag is honored as an alias for --out.
    const std::string& out_path = !cli.out_path.empty() ? cli.out_path : cli.json_path;
    if (!out_path.empty()) {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      out << sweep::to_json_text(result);
      std::printf("\nwrote %s\n", out_path.c_str());
    }

    if (!result.determinism_violations.empty()) {
      std::fprintf(stderr, "\nDETERMINISM VIOLATIONS (engine bug):\n");
      for (const auto& v : result.determinism_violations)
        std::fprintf(stderr, "  %s\n", v.c_str());
      return 1;
    }

    // Leaked calls mean corrupted usage streams (same contract as
    // bench_sim_scenarios): fail before a leak can be compared — or worse,
    // baked into a refreshed baseline and green-lit by --check forever.
    const auto& names = sweep::metric_names();
    const std::size_t leaked_index = static_cast<std::size_t>(
        std::find(names.begin(), names.end(), "leaked_calls") - names.begin());
    for (const auto& run : result.runs) {
      if (run.values[leaked_index] != 0.0) {
        std::fprintf(stderr, "\nLEAKED CALLS: %s seed %llu leaked %.0f calls (engine bug)\n",
                     run.scenario.c_str(), static_cast<unsigned long long>(run.seed),
                     run.values[leaked_index]);
        return 1;
      }
    }

    if (cli.check) {
      const auto regressions =
          sweep::compare_to_baseline(result, baseline, sweep::default_tolerances());
      if (!regressions.empty()) {
        std::fprintf(stderr, "\n%zu metric regression(s) vs %s:\n", regressions.size(),
                     cli.baseline_path.c_str());
        for (const auto& r : regressions) std::fprintf(stderr, "  %s\n", r.describe().c_str());
        std::fprintf(stderr,
                     "If the change is intentional, refresh the baseline (see README, "
                     "\"Sweep workflow\").\n");
        return 1;
      }
      std::printf("\nbaseline check PASSED against %s\n", cli.baseline_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
