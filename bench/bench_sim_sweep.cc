// Seed x scenario sweep with distribution stats and baseline regression
// checking.
//
// One (seed, scenario) simulation is a single sample; this bench sweeps
// every requested scenario across --seeds consecutive seeds (in parallel
// across --workers), reduces each SimResult metric to mean / p50 / p95 /
// min / max / stddev across seeds, and reports the distributions — the
// regression-grade comparison surface the paper's week-scale evaluation
// implies. Modes:
//
//   generate:  bench_sim_sweep --seeds 8 --out sweep.json
//   refresh:   bench_sim_sweep --seeds 5 --weeks 1 --peak 200
//                --out bench/baselines/sweep_baseline.json
//   check:     bench_sim_sweep --seeds 5 --weeks 1 --peak 200
//                --baseline bench/baselines/sweep_baseline.json --check
//
// --check re-runs the sweep with the baseline's spec expected to match the
// CLI-derived spec, diffs the aggregates under per-metric relative
// tolerances, and exits 1 on any regression (2 on an incomparable
// baseline). Determinism is audited on every run: each (seed, scenario)
// simulates at every --sim-threads count and any divergence fails the run.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/common.h"
#include "core/table.h"
#include "sweep/baseline.h"
#include "sweep/serialize.h"
#include "sweep/sweep.h"

namespace {

using namespace titan;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_aggregates(const sweep::SweepResult& result) {
  // One table per scenario: every metric's distribution across seeds.
  for (const auto& agg : result.aggregates) {
    std::printf("\n-- %s (%d seeds)\n", agg.scenario.c_str(), agg.seeds);
    core::TextTable t({"metric", "mean", "p50", "p95", "min", "max", "stddev"});
    const auto& names = sweep::metric_names();
    for (std::size_t m = 0; m < names.size(); ++m) {
      const auto& s = agg.stats[m];
      t.add_row({names[m], core::TextTable::num(s.mean, 3), core::TextTable::num(s.p50, 3),
                 core::TextTable::num(s.p95, 3), core::TextTable::num(s.min, 3),
                 core::TextTable::num(s.max, 3), core::TextTable::num(s.stddev, 3)});
    }
    std::printf("%s", t.render().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli = bench::parse_cli(argc, argv, sim::scenario_names());
  bench::print_header("Seed x scenario sweep: metric distributions + regression check",
                      "§8 evaluated as distributions, not single runs");

  sweep::SweepSpec spec;
  // --scenarios wins; the shared singular --scenario also narrows the
  // sweep so no documented sim-bench flag is silently ignored.
  if (!cli.scenarios.empty() && cli.scenarios != "all") {
    spec.scenarios = bench::split_csv(cli.scenarios);
  } else if (!cli.scenario.empty() && cli.scenario != "all") {
    spec.scenarios = bench::split_csv(cli.scenario);
  }
  spec.base_seed = cli.seed;
  spec.num_seeds = cli.seeds;
  if (!cli.sim_threads.empty()) {
    spec.sim_threads.clear();
    for (const auto& token : bench::split_csv(cli.sim_threads))
      spec.sim_threads.push_back(std::atoi(token.c_str()));
  } else {
    // The shared --threads flag means "sim worker threads" everywhere
    // else; honor it here as the single per-sim thread count.
    spec.sim_threads = {std::max(1, cli.threads)};
  }
  spec.peak_slot_calls = cli.peak_or(200.0);
  spec.training_weeks = cli.training_weeks();
  spec.workers = cli.workers;
  // Distribution sweeps trade single-run LP fidelity for seed coverage:
  // a reduced LP keeps the full forecast -> plan -> controller loop while
  // making seeds x scenarios x replans tractable in CI. The value is part
  // of the spec, so a baseline pins it.
  spec.max_reduced_configs = 30;

  try {
    const sweep::SweepRunner runner(spec);
    const auto& resolved = runner.spec();

    // Validate --check prerequisites before burning minutes of sweeping:
    // a missing flag or an unreadable/malformed baseline is a CLI error,
    // not something a simulation can fix. (Spec comparison happens after
    // the run, on the result.)
    sweep::SweepResult baseline;
    if (cli.check) {
      if (cli.baseline_path.empty()) {
        std::fprintf(stderr, "--check requires --baseline PATH\n");
        return 2;
      }
      baseline = sweep::from_json_text(read_file(cli.baseline_path));
    }
    std::printf("\nsweeping %zu scenarios x %d seeds (base seed %llu), "
                "sim threads {%s}, peak %.0f, %d training week(s)\n",
                resolved.scenarios.size(), resolved.num_seeds,
                static_cast<unsigned long long>(resolved.base_seed),
                cli.sim_threads.empty() ? "1" : cli.sim_threads.c_str(),
                resolved.peak_slot_calls, resolved.training_weeks);

    const sweep::SweepResult result = runner.run();
    print_aggregates(result);

    // Per-task wall time (canonical order: scenario-major, seed-minor) —
    // the sweep's share of the observability surface. Reporting only;
    // never serialized into the sweep JSON.
    if (!result.task_seconds.empty()) {
      double total = 0.0, slowest = 0.0;
      for (const double s : result.task_seconds) {
        total += s;
        slowest = std::max(slowest, s);
      }
      std::printf("\ntask timing: %zu tasks, %.2f s total, %.2f s mean, %.2f s slowest\n",
                  result.task_seconds.size(),
                  total, total / static_cast<double>(result.task_seconds.size()), slowest);
    }

    // Write the JSON before any failure exit: on a red run it is exactly
    // the artifact that diagnoses the failure (CI uploads it regardless).
    // The shared --json flag is honored as an alias for --out.
    const std::string& out_path = !cli.out_path.empty() ? cli.out_path : cli.json_path;
    if (!out_path.empty()) {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      out << sweep::to_json_text(result);
      std::printf("\nwrote %s\n", out_path.c_str());
    }

    if (!result.determinism_violations.empty()) {
      std::fprintf(stderr, "\nDETERMINISM VIOLATIONS (engine bug):\n");
      for (const auto& v : result.determinism_violations)
        std::fprintf(stderr, "  %s\n", v.c_str());
      return 1;
    }

    // Leaked calls mean corrupted usage streams (same contract as
    // bench_sim_scenarios): fail before a leak can be compared — or worse,
    // baked into a refreshed baseline and green-lit by --check forever.
    const auto& names = sweep::metric_names();
    const std::size_t leaked_index = static_cast<std::size_t>(
        std::find(names.begin(), names.end(), "leaked_calls") - names.begin());
    for (const auto& run : result.runs) {
      if (run.values[leaked_index] != 0.0) {
        std::fprintf(stderr, "\nLEAKED CALLS: %s seed %llu leaked %.0f calls (engine bug)\n",
                     run.scenario.c_str(), static_cast<unsigned long long>(run.seed),
                     run.values[leaked_index]);
        return 1;
      }
    }

    if (cli.check) {
      const auto regressions =
          sweep::compare_to_baseline(result, baseline, sweep::default_tolerances());
      if (!regressions.empty()) {
        std::fprintf(stderr, "\n%zu metric regression(s) vs %s:\n", regressions.size(),
                     cli.baseline_path.c_str());
        for (const auto& r : regressions) std::fprintf(stderr, "  %s\n", r.describe().c_str());
        std::fprintf(stderr,
                     "If the change is intentional, refresh the baseline (see README, "
                     "\"Sweep workflow\").\n");
        return 1;
      }
      std::printf("\nbaseline check PASSED against %s\n", cli.baseline_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
