// Fig. 3: CDFs of hourly-median (Internet - WAN) latency differences for
// DCs grouped by continent, plus the paper's global four-bucket breakdown:
// 33.73% strictly better / 23.98% within 10ms / 19.61% in 10-25ms /
// 22.68% beyond 25ms.
#include <map>
#include <vector>

#include "bench/common.h"
#include "core/stats.h"
#include "measure/aggregate.h"
#include "measure/probe_platform.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Internet - WAN latency difference CDFs", "Fig. 3 + global buckets");

  const geo::GeoDb geodb = geo::GeoDb::make(env.world);
  const measure::ProbePlatform platform(env.world, geodb, env.db.latency());
  measure::StudyOptions opts;
  opts.days = 7;
  opts.probes_per_hour = 30000;
  const auto corpus = platform.run(opts);
  const int hours = opts.days * 24;
  const auto table = measure::hourly_medians(corpus, measure::Granularity::kCountry, hours);

  // Group per-pair differences by destination DC continent.
  std::map<geo::Continent, std::vector<double>> by_continent;
  std::vector<double> all;
  for (const auto& [key, series] : table) {
    const auto diffs = measure::pair_differences(series);
    const auto& dc = env.world.dc(core::DcId(key.dc));
    auto& bucket = by_continent[dc.continent];
    bucket.insert(bucket.end(), diffs.begin(), diffs.end());
    all.insert(all.end(), diffs.begin(), diffs.end());
  }

  core::TextTable cdf({"DC continent", "P10", "P25", "P50", "P75", "P90"});
  for (const auto& [continent, diffs] : by_continent) {
    const auto qs = core::quantiles(diffs, {0.1, 0.25, 0.5, 0.75, 0.9});
    cdf.add_row({geo::continent_name(continent), core::TextTable::num(qs[0], 1),
                 core::TextTable::num(qs[1], 1), core::TextTable::num(qs[2], 1),
                 core::TextTable::num(qs[3], 1), core::TextTable::num(qs[4], 1)});
  }
  std::printf("%s\n", cdf.render().c_str());

  const auto buckets = measure::bucket_differences(all);
  core::TextTable b({"bucket", "measured", "paper"});
  b.add_row({"Internet strictly better", core::TextTable::num(buckets.strictly_better, 2) + "%",
             "33.73%"});
  b.add_row({"worse by <= 10 msec", core::TextTable::num(buckets.within_10ms, 2) + "%",
             "23.98%"});
  b.add_row({"worse by 10-25 msec", core::TextTable::num(buckets.within_25ms, 2) + "%",
             "19.61%"});
  b.add_row({"worse by > 25 msec", core::TextTable::num(buckets.beyond_25ms, 2) + "%",
             "22.68%"});
  std::printf("%s\n", b.render().c_str());
  return 0;
}
