// Fig. 6: CDFs of hourly median RTP loss between European client countries
// and 3 European MP DCs (Ireland, Netherlands, France) for WAN vs Internet
// over 7 days. The loss is measured exactly as production does: from RTP
// sequence-number accounting on relay legs of simulated Teams calls.
#include <vector>

#include "bench/common.h"
#include "core/stats.h"
#include "media/relay_sim.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("RTP loss CDFs, Internet vs WAN, 3 EU DCs", "Fig. 6");

  const media::MosModel mos;
  media::RelaySimOptions ropts;
  ropts.leg_duration_s = 60.0;  // 3000 packets/leg: 0.03% loss resolution
  const media::RelaySimulator relay(env.db, mos, ropts);
  core::Rng rng(606);

  const auto eu = env.world.countries_in(geo::Continent::kEurope);
  const std::vector<std::string> dc_names = {"ireland", "netherlands", "france"};

  core::TextTable t({"series", "P25", "P50", "P75", "P90", "P99", "share >= 0.1%"});
  for (const auto& dc_name : dc_names) {
    const auto dc = env.world.find_dc(dc_name);
    for (const auto path : {net::PathType::kWan, net::PathType::kInternet}) {
      std::vector<double> hourly_losses;
      for (const auto c : eu) {
        if (path == net::PathType::kInternet && env.db.loss().internet_unusable(c)) continue;
        // One representative relayed call per pair per 2 hours over 7 days.
        for (int hour = 0; hour < 7 * 24; hour += 2) {
          media::Call call;
          call.id = core::CallId(hour);
          call.mp_dc = dc;
          call.media = media::MediaType::kAudio;
          call.participants = {{core::ParticipantId(0), c, path}};
          const auto tele =
              relay.simulate_call(call, hour * core::kSlotsPerHour, nullptr, rng);
          hourly_losses.push_back(tele.participants[0].rtp_loss);
        }
      }
      const auto qs = core::quantiles(hourly_losses, {0.25, 0.5, 0.75, 0.9, 0.99});
      int heavy = 0;
      for (const double l : hourly_losses) heavy += l >= 0.001;
      t.add_row({path_type_name(path) + " " + dc_name, core::TextTable::pct(qs[0], 3),
                 core::TextTable::pct(qs[1], 3), core::TextTable::pct(qs[2], 3),
                 core::TextTable::pct(qs[3], 3), core::TextTable::pct(qs[4], 3),
                 core::TextTable::pct(static_cast<double>(heavy) / hourly_losses.size(), 1)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: both options mostly clean (<=0.01%%), Internet has a\n"
              "heavier tail (~10%% of cases >= 0.1%%; WAN almost never).\n");
  return 0;
}
