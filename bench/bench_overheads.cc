// §8.5 overheads, as google-benchmark micro-benchmarks:
//   - Holt-Winters prediction per call config (paper: 1.2-4.7 s/config on
//     production-size series; ours are scaled down),
//   - call config grouping (paper: under a minute),
//   - the plan LP (paper: ~1 minute),
//   - online controller assignment per call (paper: < 1 msec).
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "forecast/holt_winters.h"
#include "titannext/controller.h"
#include "titannext/pipeline.h"

namespace {

using namespace titan;

struct Fixture {
  bench::Env env;
  bench::WorkloadSplit split = bench::make_workload(env.world, 120.0);
  std::map<std::pair<int, int>, double> fractions = env.titan_fractions();

  titannext::PlanScope scope() const {
    titannext::PlanScope s;
    s.timeslots = core::kSlotsPerDay;
    s.max_reduced_configs = 40;
    return s;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_HoltWintersFitPerConfig(benchmark::State& state) {
  auto& f = fixture();
  const auto counts = f.split.history.config_counts();
  const auto by_volume = f.split.history.configs_by_volume();
  const auto& series =
      counts[static_cast<std::size_t>(by_volume.front().value())];
  for (auto _ : state) {
    const auto fit = forecast::HoltWinters::fit_auto(series, core::kSlotsPerWeek);
    benchmark::DoNotOptimize(fit.training_sse);
  }
}
BENCHMARK(BM_HoltWintersFitPerConfig)->Unit(benchmark::kMillisecond);

void BM_ConfigGrouping(benchmark::State& state) {
  auto& f = fixture();
  const auto counts = f.split.eval.config_active_counts();
  for (auto _ : state) {
    titannext::PlanInputs inputs(f.env.db, f.scope(), f.fractions);
    inputs.set_demand(f.split.eval.configs(), counts, true);
    benchmark::DoNotOptimize(inputs.demands().size());
  }
}
BENCHMARK(BM_ConfigGrouping)->Unit(benchmark::kMillisecond);

void BM_PlanLp(benchmark::State& state) {
  auto& f = fixture();
  titannext::PipelineOptions popts;
  popts.scope = f.scope();
  popts.lp.e2e_bound_ms = 80.0;
  const titannext::TitanNextPipeline pipeline(f.env.db, f.fractions, popts);
  for (auto _ : state) {
    const auto plan = pipeline.plan_day_oracle(f.split.eval, 2 * core::kSlotsPerDay);
    benchmark::DoNotOptimize(plan.plan.result().objective);
  }
}
BENCHMARK(BM_PlanLp)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_ControllerAssignPerCall(benchmark::State& state) {
  auto& f = fixture();
  titannext::PipelineOptions popts;
  popts.scope = f.scope();
  popts.lp.e2e_bound_ms = 80.0;
  const titannext::TitanNextPipeline pipeline(f.env.db, f.fractions, popts);
  static const auto day = pipeline.plan_day_oracle(f.split.eval, 2 * core::kSlotsPerDay);
  titannext::OnlineController controller(*day.inputs, day.plan);
  core::Rng rng(1);
  const auto fr = f.env.world.find_country("france");
  for (auto _ : state) {
    const auto a =
        controller.assign_initial(fr, media::MediaType::kAudio, 20, rng);
    benchmark::DoNotOptimize(a.assignment.dc);
  }
}
BENCHMARK(BM_ControllerAssignPerCall)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
