// Fig. 4: fraction F of hours in which the Internet path is better than or
// within 10 msec of the WAN path, for the paper's 22 client countries x 6
// representative destination DCs (1 week of hourly medians).
#include <map>

#include "bench/common.h"
#include "measure/aggregate.h"
#include "measure/probe_platform.h"

namespace {

// The Fig. 4 column order.
constexpr const char* kClientCountries[] = {
    "mexico", "us", "canada", "brazil", "colombia", "southafrica", "egypt", "nigeria",
    "india", "japan", "philippines", "singapore", "australia", "uk", "germany", "france",
    "netherlands", "italy", "spain", "sweden", "poland", "switzerland"};

}  // namespace

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Fraction F heatmap: 22 client countries x 6 DCs", "Fig. 4");

  const geo::GeoDb geodb = geo::GeoDb::make(env.world);
  const measure::ProbePlatform platform(env.world, geodb, env.db.latency());
  measure::StudyOptions opts;
  opts.days = 7;
  opts.probes_per_hour = 30000;
  const auto corpus = platform.run(opts);
  const auto table =
      measure::hourly_medians(corpus, measure::Granularity::kCountry, opts.days * 24);

  std::map<std::pair<int, int>, double> f;
  for (const auto& cell : measure::fraction_heatmap(table))
    f[{cell.country.value(), cell.dc.value()}] = cell.f;

  std::vector<std::string> header = {"DC \\ client"};
  for (const auto* name : kClientCountries)
    header.push_back(env.world.country(env.world.find_country(name)).iso);
  core::TextTable t(header);
  for (const auto dc_id : env.world.representative_dcs()) {
    std::vector<std::string> row = {env.world.dc(dc_id).name};
    for (const auto* name : kClientCountries) {
      const auto c = env.world.find_country(name);
      const auto it = f.find({c.value(), dc_id.value()});
      row.push_back(it == f.end() ? "-" : core::TextTable::num(it->second, 2));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("expected shape (paper): NA-EU corridor dark (F ~0.4-0.85),\n"
              "Europe->Hong Kong light (F ~0.31-0.56), Europe->South Africa dark.\n");
  return 0;
}
