// Fig. 19: the Fig. 4 fraction-F heatmap recomputed on a week of data from
// 6 months earlier (December 2023). The paper finds the broad structure
// unchanged, with the NA-EU corridor slightly better in the newer data.
#include <map>

#include "bench/common.h"
#include "measure/aggregate.h"
#include "measure/probe_platform.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Fraction F heatmap, 6 months earlier + corridor drift", "Fig. 19");

  const geo::GeoDb geodb = geo::GeoDb::make(env.world);
  net::NetworkDbOptions old_opts;
  old_opts.latency.epoch_months = -6.0;
  const net::NetworkDb old_db(env.world, old_opts);

  measure::StudyOptions sopts;
  sopts.days = 7;
  sopts.probes_per_hour = 25000;

  auto heatmap = [&](const net::LatencyModel& latency, std::uint64_t seed) {
    measure::StudyOptions o = sopts;
    o.seed = seed;
    const auto corpus = measure::ProbePlatform(env.world, geodb, latency).run(o);
    const auto table =
        measure::hourly_medians(corpus, measure::Granularity::kCountry, o.days * 24);
    std::map<std::pair<int, int>, double> f;
    for (const auto& cell : measure::fraction_heatmap(table))
      f[{cell.country.value(), cell.dc.value()}] = cell.f;
    return f;
  };
  const auto f_old = heatmap(old_db.latency(), 31);
  const auto f_new = heatmap(env.db.latency(), 32);

  // Average F for the NA-EU corridor then and now.
  double old_sum = 0, new_sum = 0;
  int n = 0;
  for (const auto c : env.world.countries_in(geo::Continent::kNorthAmerica)) {
    for (const auto d : env.world.dcs_in(geo::Continent::kEurope)) {
      const auto key = std::make_pair(c.value(), d.value());
      if (!f_old.count(key) || !f_new.count(key)) continue;
      old_sum += f_old.at(key);
      new_sum += f_new.at(key);
      ++n;
    }
  }
  std::printf("NA -> EU corridor average F: Dec'23 %.3f -> Jun'24 %.3f\n", old_sum / n,
              new_sum / n);
  std::printf("paper: the corridor improved slightly over the 6 months.\n\n");

  // Full Dec'23 heatmap for the representative DCs.
  std::vector<std::string> header = {"DC \\ client (Dec'23)"};
  std::vector<core::CountryId> clients;
  for (const auto& country : env.world.countries())
    if (country.call_volume >= 0.9) clients.push_back(country.id);
  for (const auto c : clients) header.push_back(env.world.country(c).iso);
  core::TextTable t(header);
  for (const auto dc : env.world.representative_dcs()) {
    std::vector<std::string> row = {env.world.dc(dc).name};
    for (const auto c : clients) {
      const auto it = f_old.find({c.value(), dc.value()});
      row.push_back(it == f_old.end() ? "-" : core::TextTable::num(it->second, 2));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
