// Fig. 5: weighted difference D of the fraction F when clients are
// clustered by ASN / country+ASN / city / city+ASN instead of by country.
// The paper finds D bounded by ~8% at P50 (11% at P90 for city+ASN),
// justifying country-granularity control in Titan.
#include "bench/common.h"
#include "measure/aggregate.h"
#include "measure/probe_platform.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("F difference across clustering granularities", "Fig. 5");

  const geo::GeoDb geodb = geo::GeoDb::make(env.world);
  const measure::ProbePlatform platform(env.world, geodb, env.db.latency());
  measure::StudyOptions opts;
  opts.days = 7;
  opts.probes_per_hour = 60000;  // fine granularities need dense cells
  const auto corpus = platform.run(opts);
  const int hours = opts.days * 24;

  core::TextTable t({"granularity", "P50 D", "P90 D", "pairs"});
  for (const auto g : {measure::Granularity::kAsn, measure::Granularity::kCountryAsn,
                       measure::Granularity::kCity, measure::Granularity::kCityAsn}) {
    const auto d = measure::granularity_difference(corpus, g, hours);
    t.add_row({measure::granularity_name(g), core::TextTable::pct(d.p50),
               core::TextTable::pct(d.p90), std::to_string(d.all.size())});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: P50 bounded by ~8%%, P90 by ~11-20%% depending on granularity.\n"
              "note: synthetic ASNs/cities are single-country, so ASN and\n"
              "country+ASN coincide (documented substitution).\n");
  return 0;
}
