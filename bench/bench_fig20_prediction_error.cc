// Fig. 20: CDF of Holt-Winters forecast error across call configs,
// normalized to each config's peak so elephants and mice weigh equally.
// The paper reports median MAE 4.9% and median RMSE 10.6%, with 95.6%
// (89.7%) of configs under 20% normalized MAE (RMSE).
#include <algorithm>

#include "bench/common.h"
#include "core/stats.h"
#include "forecast/holt_winters.h"
#include "titannext/pipeline.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Holt-Winters prediction error across call configs", "Fig. 20");

  // 4 weeks of training + 1 day evaluated, per the paper's cadence. The
  // paper predicts call counts per *call config* (not reduced).
  const auto split = env.workload(700.0);
  const auto history = split.history.config_counts();
  const auto eval_counts = split.eval.config_counts();
  const int horizon = core::kSlotsPerDay;
  const int train_end = split.history.num_slots();

  const int top_k = 300;
  const auto fc = titannext::forecast_counts(history, train_end, horizon, top_k);

  const auto by_volume = split.history.configs_by_volume();
  std::vector<double> maes, rmses;
  for (int rank = 0; rank < top_k && rank < static_cast<int>(by_volume.size()); ++rank) {
    const auto cfg =
        static_cast<std::size_t>(by_volume[static_cast<std::size_t>(rank)].value());
    std::vector<double> actual(eval_counts[cfg].begin(), eval_counts[cfg].begin() + horizon);
    double peak = 0.0;
    for (const double v : actual) peak = std::max(peak, v);
    if (peak < 10.0) continue;  // skip configs with no meaningful eval-day volume
    const auto err = forecast::evaluate_forecast(actual, fc.counts[cfg]);
    maes.push_back(err.mae_normalized);
    rmses.push_back(err.rmse_normalized);
  }

  core::TextTable t({"metric", "P25", "P50", "P75", "P90", "share < 20%"});
  auto row = [&](const std::string& name, std::vector<double> v) {
    int under = 0;
    for (const double x : v) under += x < 0.20;
    const double share = static_cast<double>(under) / static_cast<double>(v.size());
    const auto qs = core::quantiles(std::move(v), {0.25, 0.5, 0.75, 0.9});
    t.add_row({name, core::TextTable::pct(qs[0]), core::TextTable::pct(qs[1]),
               core::TextTable::pct(qs[2]), core::TextTable::pct(qs[3]),
               core::TextTable::pct(share)});
  };
  row("MAE (normalized)", maes);
  row("RMSE (normalized)", rmses);
  std::printf("%s\n", t.render().c_str());
  std::printf("configs evaluated: %zu (with >= 10 calls in the peak eval slot)\n", maes.size());
  std::printf("paper: median MAE 4.9%%, median RMSE 10.6%%; 95.6%% of configs\n"
              "under 20%% MAE, 89.7%% under 20%% RMSE.\n");
  return 0;
}
