// Table 3: daily average / median / P95 of per-call max end-to-end latency
// for WRR, LF and Titan-Next over the oracle evaluation week, plus the E
// sweep the paper describes (§7.5: below a minimum E the LP is infeasible;
// above it the peak savings plateau).
#include "bench/common.h"
#include "eval/runner.h"
#include "policies/locality_first.h"
#include "policies/titan_next_policy.h"
#include "policies/wrr.h"
#include "titannext/lp_builder.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Daily max-E2E latency per policy", "Table 3 + E sweep");

  const auto split = env.workload(600.0);
  const auto ctx = policies::PolicyContext::make(env.db, geo::Continent::kEurope, 0.20);

  titannext::PlanScope scope;
  scope.timeslots = core::kSlotsPerDay;
  scope.max_reduced_configs = 60;
  scope.compute_headroom = 1.3;

  policies::WrrPolicy wrr(ctx, true);
  policies::LocalityFirstOptions lf_opts;
  lf_opts.oracle = true;
  lf_opts.scope = scope;
  policies::LocalityFirstPolicy lf(ctx, lf_opts);
  policies::TitanNextPolicyOptions tn_opts;
  tn_opts.oracle = true;
  tn_opts.pipeline.scope = scope;
  tn_opts.pipeline.lp.e2e_bound_ms = 20.0;
  policies::TitanNextPolicy tn(ctx, tn_opts);

  const auto cmp =
      eval::compare_policies({&wrr, &lf, &tn}, split.eval, split.history, env.db, 3);
  std::printf("%s\n", cmp.render_latency_table().c_str());
  std::printf("paper: WRR 82-86 / 75-78 / 120; LF 71-75 / 70 / 100-103;\n"
              "TN 74-80 / 70-76 / 103-122 (mean/median/P95, msec)\n\n");

  // E sweep on one weekday: feasibility boundary and savings plateau.
  titannext::PipelineOptions popts;
  popts.scope = scope;
  const titannext::TitanNextPipeline pipeline(env.db, ctx.internet_fractions, popts);
  core::TextTable sweep({"E bound (msec)", "status", "sum of peaks (norm.)"});
  double norm = -1.0;
  for (const double e : {6.0, 10.0, 14.0, 18.0, 24.0, 40.0, 80.0}) {
    titannext::PipelineOptions o = popts;
    o.lp.e2e_bound_ms = e;
    const titannext::TitanNextPipeline pl(env.db, ctx.internet_fractions, o);
    const auto day = pl.plan_day_oracle(split.eval, 2 * core::kSlotsPerDay);  // Wednesday
    if (!day.valid()) {
      sweep.add_row({core::TextTable::num(e, 0), "infeasible", "-"});
      continue;
    }
    const double peaks = day.plan.result().sum_of_wan_peaks_mbps;
    if (norm < 0.0) norm = peaks;
    sweep.add_row({core::TextTable::num(e, 0), "optimal",
                   core::TextTable::num(peaks / norm, 3)});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf("paper: infeasible below the minimum E (75 weekdays / 80 weekends);\n"
              "savings roughly constant for all E above it. Our synthetic Europe\n"
              "is geographically compact, so the same shape appears at smaller E.\n");
  return 0;
}
