// Fig. 11: average user MOS versus the call's maximum end-to-end latency,
// in 5-msec buckets between 50 and 250 msec. Ratings come from the sampled
// MOS telemetry of relayed calls spanning the latency spectrum; the curve
// is flat until ~75 msec and declines roughly linearly after.
#include <map>
#include <vector>

#include "bench/common.h"
#include "core/stats.h"
#include "media/relay_sim.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Average MOS vs max end-to-end latency", "Fig. 11");

  media::MosModelParams mos_params;
  mos_params.sampling_rate = 1.0;  // rate every call so buckets fill quickly
  const media::MosModel mos(mos_params);
  const media::RelaySimulator relay(env.db, mos);
  core::Rng rng(1111);

  // Calls between all (pairs of) countries and all DCs span the E2E range.
  std::map<int, core::Accumulator> buckets;  // bucket -> ratings
  const auto countries = env.world.countries();
  const auto dcs = env.world.dcs();
  std::int64_t call_id = 0;
  for (int round = 0; round < 6; ++round) {
    for (const auto& a : countries) {
      for (const auto& dc : dcs) {
        const auto& b = countries[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(countries.size()) - 1))];
        media::Call call;
        call.id = core::CallId(call_id++);
        call.mp_dc = dc.id;
        call.media = media::MediaType::kAudio;
        call.participants = {{core::ParticipantId(0), a.id, net::PathType::kWan},
                             {core::ParticipantId(1), b.id, net::PathType::kWan}};
        const auto tele = relay.simulate_call(
            call, static_cast<core::SlotIndex>(call_id % core::kSlotsPerWeek), nullptr, rng);
        if (!tele.mos) continue;
        const int bucket = static_cast<int>(tele.max_e2e_ms / 5.0) * 5;
        if (bucket >= 50 && bucket <= 250) buckets[bucket].add(*tele.mos);
      }
    }
  }

  core::TextTable t({"max E2E (msec)", "avg MOS", "samples"});
  for (const auto& [bucket, acc] : buckets) {
    if (acc.count() < 20) continue;
    t.add_row({std::to_string(bucket), core::TextTable::num(acc.mean(), 3),
               std::to_string(acc.count())});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: flat ~4.85 under 75 msec, then a mostly linear decline\n"
              "to ~4.65 around 250 msec.\n");
  return 0;
}
