// Fig. 14 (+ §7.4 ablations): oracle-mode comparison of the sum of per-link
// peak WAN bandwidth, per day of the evaluation week, normalized to WRR's
// worst day. Policies: WRR, LF, Titan, TN, plus the paper's ablations —
// TN with MP placement only (no Internet), TN with doubled Internet
// capacity, and the LF variant optimizing total max-E2E latency.
#include "bench/common.h"
#include "eval/runner.h"
#include "policies/locality_first.h"
#include "policies/titan_next_policy.h"
#include "policies/titan_policy.h"
#include "policies/wrr.h"

int main(int argc, char** argv) {
  using namespace titan;
  const bench::Cli cli = bench::parse_cli(argc, argv);
  bench::Env env{cli};
  bench::print_header("Oracle: sum of per-day peak WAN bandwidth", "Fig. 14 + ablations");

  const auto split = env.workload(600.0);
  const auto ctx = policies::PolicyContext::make(env.db, geo::Continent::kEurope, 0.20);

  titannext::PlanScope scope;
  scope.timeslots = core::kSlotsPerDay;
  scope.max_reduced_configs = 60;
  // Provisioned close to demand: peak-awareness only matters when the
  // preferred DCs cannot absorb everyone's peak (the production regime).
  scope.compute_headroom = 1.3;

  policies::WrrPolicy wrr(ctx, /*oracle=*/true);
  policies::LocalityFirstOptions lf_opts;
  lf_opts.oracle = true;
  lf_opts.scope = scope;
  policies::LocalityFirstPolicy lf(ctx, lf_opts);
  policies::TitanPolicy titan(ctx);

  policies::TitanNextPolicyOptions tn_opts;
  tn_opts.oracle = true;
  tn_opts.pipeline.scope = scope;
  tn_opts.pipeline.lp.e2e_bound_ms = 20.0;  // the paper's weekday E=75,
  // scaled to this compact synthetic Europe (see bench_table3's sweep)
  policies::TitanNextPolicy tn(ctx, tn_opts);

  const auto cmp =
      eval::compare_policies({&wrr, &lf, &titan, &tn}, split.eval, split.history, env.db, 14);
  std::printf("%s\n", cmp.render_peaks_table().c_str());
  std::printf("TN vs WRR weekday reduction: %.1f%% (paper: 24-28%%)\n",
              cmp.weekday_reduction_pct(3, 0));
  std::printf("TN vs LF  weekday reduction: %.1f%% (paper: 13-19%%)\n\n",
              cmp.weekday_reduction_pct(3, 1));

  // --- Ablation: MP DC placement only (Internet offload disabled). To
  // isolate the value of placement, the LF comparator also runs without
  // Internet capacity here.
  auto mp_only_opts = tn_opts;
  mp_only_opts.pipeline.scope.internet_capacity_scale = 0.0;
  policies::TitanNextPolicy tn_mp(ctx, mp_only_opts);
  auto lf_no_inet_opts = lf_opts;
  lf_no_inet_opts.scope.internet_capacity_scale = 0.0;
  policies::LocalityFirstPolicy lf_no_inet(ctx, lf_no_inet_opts);
  // --- Ablation: hypothetically double the Internet capacity.
  auto doubled_opts = tn_opts;
  doubled_opts.pipeline.scope.internet_capacity_scale = 2.0;
  policies::TitanNextPolicy tn_2x(ctx, doubled_opts);
  // --- LF variant optimizing total max-E2E latency.
  auto lf_e2e_opts = lf_opts;
  lf_e2e_opts.use_max_e2e_objective = true;
  policies::LocalityFirstPolicy lf_e2e(ctx, lf_e2e_opts);

  const auto abl = eval::compare_policies({&wrr, &lf_no_inet, &tn_mp, &tn_2x, &lf_e2e},
                                          split.eval, split.history, env.db, 15);
  std::printf("Ablations (same normalization style):\n%s\n",
              abl.render_peaks_table().c_str());
  std::printf("TN(MP-only) vs WRR: %.1f%% (paper: 16.7-20%%)\n",
              abl.weekday_reduction_pct(2, 0));
  std::printf("TN(MP-only) vs LF(no Internet): %.1f%% (paper: 3-8%%)\n",
              abl.weekday_reduction_pct(2, 1));
  auto daily_total = [](const eval::PolicyResult& r) {
    double acc = 0.0;
    int n = 0;
    for (std::size_t d = 0; d < r.wan.per_day_sum_of_peaks_mbps.size(); ++d) {
      if (core::is_weekend(static_cast<core::SlotIndex>(d * core::kSlotsPerDay))) continue;
      acc += r.wan.per_day_sum_of_peaks_mbps[d];
      ++n;
    }
    return acc / std::max(1, n);
  };
  std::printf("TN(2x Internet) vs WRR: %.1f%% (paper: 27-38%%)\n",
              abl.weekday_reduction_pct(3, 0));
  std::printf("TN(2x Internet) vs LF : %.1f%% (paper: 17-26.5%%)\n",
              (1.0 - daily_total(abl.results[3]) / daily_total(cmp.results[1])) * 100.0);
  // TN (from the first run) vs LF-maxE2E (index 4 here): compare on raw
  // per-day sums; both runs share the trace.
  double tn_total = 0.0, lfe_total = 0.0;
  for (const double v : cmp.results[3].wan.per_day_sum_of_peaks_mbps) tn_total += v;
  for (const double v : abl.results[4].wan.per_day_sum_of_peaks_mbps) lfe_total += v;
  std::printf("TN vs LF-maxE2E: %.1f%% (paper: 16-29%%)\n",
              (1.0 - tn_total / lfe_total) * 100.0);

  // Total WAN traffic reduction (§7.4 "Total WAN traffic reduction").
  std::printf("\nTotal WAN traffic: TN vs WRR %.1f%%, TN vs LF %.1f%% (paper: 24-28%% / 13.5-18%%)\n",
              (1.0 - cmp.results[3].wan.total_traffic_gb / cmp.results[0].wan.total_traffic_gb) *
                  100.0,
              (1.0 - cmp.results[3].wan.total_traffic_gb / cmp.results[1].wan.total_traffic_gb) *
                  100.0);
  return 0;
}
