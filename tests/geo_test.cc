// Tests for the geographic substrate: haversine distances, the synthetic
// world (countries, DCs, cities, ASNs), and the geolocation database.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/rng.h"
#include "geo/geodb.h"
#include "geo/location.h"
#include "geo/world.h"

namespace titan::geo {
namespace {

TEST(LocationTest, HaversineKnownDistances) {
  const LatLon london{51.5, -0.13};
  const LatLon paris{48.86, 2.35};
  const LatLon sydney{-33.87, 151.21};
  EXPECT_NEAR(haversine_km(london, paris), 344.0, 15.0);
  EXPECT_NEAR(haversine_km(london, sydney), 16990.0, 200.0);
  EXPECT_DOUBLE_EQ(haversine_km(london, london), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(haversine_km(london, paris), haversine_km(paris, london));
}

TEST(LocationTest, FiberDelayIsSpeedOfLightBound) {
  const LatLon ny{40.7, -74.0};
  const LatLon london{51.5, -0.13};
  // ~5,570 km geodesic; light in fibre ~200 km/ms -> ~28 ms one way.
  const double d = fiber_delay_ms(ny, london);
  EXPECT_GT(d, 24.0);
  EXPECT_LT(d, 32.0);
}

class WorldTest : public ::testing::Test {
 protected:
  World world_ = World::make();
};

TEST_F(WorldTest, HasTwentyOneDcs) {
  EXPECT_EQ(world_.dcs().size(), 21u);  // Fig. 2
  EXPECT_EQ(world_.representative_dcs().size(), 6u);  // Fig. 4 destinations
}

TEST_F(WorldTest, CoversFiveContinentsOfClients) {
  std::set<Continent> continents;
  for (const auto& c : world_.countries()) continents.insert(c.continent);
  EXPECT_GE(continents.size(), 5u);
}

TEST_F(WorldTest, EuropeHasDenseCoverage) {
  // The Titan-Next evaluation needs many in-Europe (country, DC) pairs.
  const auto eu_countries = world_.countries_in(Continent::kEurope);
  const auto eu_dcs = world_.dcs_in(Continent::kEurope);
  EXPECT_GE(eu_countries.size(), 20u);
  EXPECT_EQ(eu_dcs.size(), 5u);  // uk, france, netherlands, switzerland, ireland
  EXPECT_GE(eu_countries.size() * eu_dcs.size(), 100u);
}

TEST_F(WorldTest, LookupsAreConsistent) {
  const auto fr = world_.find_country("france");
  ASSERT_TRUE(fr.valid());
  EXPECT_EQ(world_.country(fr).iso, "FR");
  EXPECT_EQ(world_.find_country("FR"), fr);
  EXPECT_FALSE(world_.find_country("atlantis").valid());

  const auto nl_dc = world_.find_dc("netherlands");
  ASSERT_TRUE(nl_dc.valid());
  EXPECT_TRUE(world_.dc(nl_dc).representative);
  EXPECT_FALSE(world_.find_dc("moonbase").valid());
}

TEST_F(WorldTest, EveryCountryHasCitiesAndAsns) {
  for (const auto& c : world_.countries()) {
    EXPECT_GE(world_.cities_of(c.id).size(), 3u) << c.name;
    EXPECT_GE(world_.asns_of(c.id).size(), 3u) << c.name;
    // ASN shares sum to ~1.
    double share = 0.0;
    for (const auto a : world_.asns_of(c.id)) share += world_.asn(a).share;
    EXPECT_NEAR(share, 1.0, 1e-9) << c.name;
  }
}

TEST_F(WorldTest, CitiesBelongToTheirCountryAndStayNearCentroid) {
  for (const auto& city : world_.cities()) {
    const auto& country = world_.country(city.country);
    EXPECT_LT(haversine_km(city.position, country.centroid), 4000.0) << city.name;
  }
}

TEST_F(WorldTest, DeterministicForSameSeed) {
  const World again = World::make();
  ASSERT_EQ(again.cities().size(), world_.cities().size());
  for (std::size_t i = 0; i < world_.cities().size(); ++i) {
    EXPECT_EQ(again.cities()[i].name, world_.cities()[i].name);
    EXPECT_DOUBLE_EQ(again.cities()[i].position.lat_deg, world_.cities()[i].position.lat_deg);
  }
}

TEST_F(WorldTest, SamplersRespectWeights) {
  core::Rng rng(5);
  const auto us = world_.find_country("us");
  // City sampling: the largest city should be sampled most often.
  std::map<int, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[world_.sample_city(us, rng).value()];
  const auto& cities = world_.cities_of(us);
  int first_count = counts[cities.front().value()];
  for (const auto c : cities) EXPECT_LE(counts[c.value()], first_count + 500);

  // Country sampling restricted to a continent stays on it.
  const Continent eu = Continent::kEurope;
  for (int i = 0; i < 200; ++i) {
    const auto c = world_.sample_country(rng, &eu);
    EXPECT_EQ(world_.country(c).continent, eu);
  }
}

TEST(GeoDbTest, LookupRoundTrips) {
  const World world = World::make();
  const GeoDb db = GeoDb::make(world);
  EXPECT_GT(db.subnet_count(), 1000u);  // Table 1's "IP subnets" row
  for (const auto& rec : db.records()) {
    const auto found = db.lookup(rec.subnet);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->country, rec.country);
    EXPECT_EQ(found->city, rec.city);
    EXPECT_EQ(found->asn, rec.asn);
    // City and ASN belong to the subnet's country.
    EXPECT_EQ(world.city(rec.city).country, rec.country);
    EXPECT_EQ(world.asn(rec.asn).country, rec.country);
    if (rec.subnet > 500) break;  // spot-check a prefix of the corpus
  }
  EXPECT_FALSE(db.lookup(0).has_value());
}

TEST(GeoDbTest, SampleSubnetStaysInCountry) {
  const World world = World::make();
  const GeoDb db = GeoDb::make(world);
  core::Rng rng(9);
  const auto de = world.find_country("germany");
  for (int i = 0; i < 200; ++i) {
    const auto rec = db.lookup(db.sample_subnet(de, rng));
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->country, de);
  }
}

}  // namespace
}  // namespace titan::geo
