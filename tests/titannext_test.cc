// Tests for Titan-Next: plan inputs (reduction/grouping, capacities,
// latency helpers), the Fig. 13 LP (constraint satisfaction, offload
// behaviour, ablations), the offline plan, the online controller, and the
// forecasting pipeline.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "titannext/controller.h"
#include "titannext/pipeline.h"

namespace titan::titannext {
namespace {

class TitanNextTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new geo::World(geo::World::make());
    db_ = new net::NetworkDb(*world_);
    workload::TraceOptions topts;
    topts.weeks = 3;  // 2 training + 1 eval
    topts.peak_slot_calls = 80.0;
    trace_ = new workload::Trace(workload::TraceGenerator(*world_).generate(topts));

    fractions_ = new std::map<std::pair<int, int>, double>();
    for (const auto c : world_->countries_in(geo::Continent::kEurope)) {
      const double f = db_->loss().internet_unusable(c) ? 0.0 : 0.20;
      for (const auto d : world_->dcs_in(geo::Continent::kEurope))
        (*fractions_)[{c.value(), d.value()}] = f;
    }
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete fractions_;
    delete db_;
    delete world_;
    world_ = nullptr;
    db_ = nullptr;
    trace_ = nullptr;
    fractions_ = nullptr;
  }

  static PlanScope small_scope() {
    PlanScope scope;
    scope.timeslots = 12;
    scope.max_reduced_configs = 25;
    return scope;
  }

  static geo::World* world_;
  static net::NetworkDb* db_;
  static workload::Trace* trace_;
  static std::map<std::pair<int, int>, double>* fractions_;
};

geo::World* TitanNextTest::world_ = nullptr;
net::NetworkDb* TitanNextTest::db_ = nullptr;
workload::Trace* TitanNextTest::trace_ = nullptr;
std::map<std::pair<int, int>, double>* TitanNextTest::fractions_ = nullptr;

// --- PlanInputs -----------------------------------------------------------------

TEST_F(TitanNextTest, DemandGroupingPreservesResources) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  const auto counts = trace_->config_counts();
  inputs.set_demand(trace_->configs(), counts, /*use_reduction=*/true);

  ASSERT_FALSE(inputs.demands().empty());
  ASSERT_LE(static_cast<int>(inputs.demands().size()), small_scope().max_reduced_configs);

  // Compare total bandwidth demand in slot 9 (a busy morning slot) between
  // grouped demands and raw configs restricted to the kept shapes.
  double grouped_bw = 0.0;
  for (const auto& d : inputs.demands())
    grouped_bw += d.units_per_slot[9] * d.config.network_mbps();
  double raw_bw = 0.0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const auto& config = trace_->configs().get(core::ConfigId(static_cast<int>(c)));
    const auto reduced = workload::reduce(config);
    if (inputs.demand_index(reduced.config) < 0) continue;
    raw_bw += counts[c][9] * config.network_mbps();
  }
  EXPECT_NEAR(grouped_bw, raw_bw, 1e-6);
}

TEST_F(TitanNextTest, ReductionShrinksConfigSpace) {
  PlanScope scope = small_scope();
  scope.max_reduced_configs = 100000;  // no truncation
  PlanInputs with(*db_, scope, *fractions_);
  with.set_demand(trace_->configs(), trace_->config_counts(), true);
  PlanInputs without(*db_, scope, *fractions_);
  without.set_demand(trace_->configs(), trace_->config_counts(), false);
  EXPECT_LT(with.demands().size(), without.demands().size());
}

TEST_F(TitanNextTest, CapacitiesArePositiveAndScale) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  double total_cap = 0.0, total_inet = 0.0;
  for (const auto dc : inputs.dcs()) {
    EXPECT_GT(inputs.dc_capacity(dc), 0.0);
    total_cap += inputs.dc_capacity(dc);
    total_inet += inputs.internet_capacity(dc);
  }
  EXPECT_GT(total_inet, 0.0);

  // internet_capacity_scale = 0 disables offload capacity entirely.
  PlanScope no_inet = small_scope();
  no_inet.internet_capacity_scale = 0.0;
  PlanInputs inputs0(*db_, no_inet, *fractions_);
  inputs0.set_demand(trace_->configs(), trace_->config_counts(), true);
  for (const auto dc : inputs0.dcs()) EXPECT_DOUBLE_EQ(inputs0.internet_capacity(dc), 0.0);
}

TEST_F(TitanNextTest, MaxE2eLatencyHelper) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  const auto fr = world_->find_country("france");
  const auto se = world_->find_country("sweden");
  const auto nl = world_->find_dc("netherlands");

  workload::CallConfig solo{{{fr, 1}}, media::MediaType::kAudio};
  workload::CallConfig pair{{{fr, 2}}, media::MediaType::kAudio};
  workload::CallConfig intl{{{fr, 1}, {se, 1}}, media::MediaType::kAudio};
  intl.canonicalize();

  const double one_way_fr = db_->latency().base_rtt_ms(fr, nl, net::PathType::kWan) / 2.0;
  const double one_way_se = db_->latency().base_rtt_ms(se, nl, net::PathType::kWan) / 2.0;
  EXPECT_NEAR(inputs.max_e2e_ms(solo, nl, net::PathType::kWan), 2 * one_way_fr, 1e-9);
  EXPECT_NEAR(inputs.max_e2e_ms(pair, nl, net::PathType::kWan), 2 * one_way_fr, 1e-9);
  EXPECT_NEAR(inputs.max_e2e_ms(intl, nl, net::PathType::kWan), one_way_fr + one_way_se,
              1e-9);
  EXPECT_NEAR(inputs.total_latency_ms(intl, nl, net::PathType::kWan),
              2 * one_way_fr + 2 * one_way_se, 1e-9);
}

// --- LP plan ---------------------------------------------------------------------

class PlanTest : public TitanNextTest {
 protected:
  static LpBuildOptions lp_options() {
    LpBuildOptions o;
    o.e2e_bound_ms = 120.0;
    return o;
  }
};

TEST_F(PlanTest, SolvesAndSatisfiesConstraints) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  const LpPlanResult result = solve_plan(inputs, lp_options());
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(result.sum_of_wan_peaks_mbps, 0.0);

  // C1: every demand fully assigned in every slot.
  for (int t = 0; t < small_scope().timeslots; ++t) {
    for (std::size_t c = 0; c < inputs.demands().size(); ++c) {
      double assigned = 0.0;
      for (const auto& e : result.weights[static_cast<std::size_t>(t)][c].entries)
        assigned += e.units;
      EXPECT_NEAR(assigned, inputs.demands()[c].units_per_slot[static_cast<std::size_t>(t)],
                  1e-5);
    }
    // C2/C3: per-DC compute and Internet capacity.
    for (const auto dc : inputs.dcs()) {
      double cores = 0.0, inet = 0.0;
      for (std::size_t c = 0; c < inputs.demands().size(); ++c)
        for (const auto& e : result.weights[static_cast<std::size_t>(t)][c].entries) {
          if (e.dc != dc) continue;
          cores += e.units * inputs.demands()[c].config.compute_cores();
          if (e.path == net::PathType::kInternet)
            inet += e.units * inputs.demands()[c].config.network_mbps();
        }
      EXPECT_LE(cores, inputs.dc_capacity(dc) + 1e-4);
      EXPECT_LE(inet, inputs.internet_capacity(dc) + 1e-4);
    }
  }
}

TEST_F(PlanTest, OffloadReducesWanPeaks) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  const LpPlanResult with_offload = solve_plan(inputs, lp_options());

  PlanScope no_inet = small_scope();
  no_inet.internet_capacity_scale = 0.0;
  PlanInputs inputs0(*db_, no_inet, *fractions_);
  inputs0.set_demand(trace_->configs(), trace_->config_counts(), true);
  const LpPlanResult without = solve_plan(inputs0, lp_options());

  ASSERT_EQ(with_offload.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(without.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(with_offload.sum_of_wan_peaks_mbps, without.sum_of_wan_peaks_mbps);

  // Doubling the Internet envelope can only help (§7.4's 2x ablation).
  PlanScope doubled = small_scope();
  doubled.internet_capacity_scale = 2.0;
  PlanInputs inputs2(*db_, doubled, *fractions_);
  inputs2.set_demand(trace_->configs(), trace_->config_counts(), true);
  const LpPlanResult more = solve_plan(inputs2, lp_options());
  ASSERT_EQ(more.status, lp::SolveStatus::kOptimal);
  EXPECT_LE(more.sum_of_wan_peaks_mbps, with_offload.sum_of_wan_peaks_mbps + 1e-6);
}

TEST_F(PlanTest, TighterE2eBoundCostsPeaks) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);

  LpBuildOptions loose = lp_options();
  loose.e2e_bound_ms = 200.0;
  LpBuildOptions tight = lp_options();
  tight.e2e_bound_ms = 40.0;
  const auto l = solve_plan(inputs, loose);
  const auto t = solve_plan(inputs, tight);
  ASSERT_EQ(l.status, lp::SolveStatus::kOptimal);
  // Tight bound is either infeasible or at least as expensive.
  if (t.status == lp::SolveStatus::kOptimal)
    EXPECT_GE(t.sum_of_wan_peaks_mbps, l.sum_of_wan_peaks_mbps - 1e-6);
  // Unreasonably tight bound must be infeasible.
  LpBuildOptions impossible = lp_options();
  impossible.e2e_bound_ms = 1.0;
  EXPECT_EQ(solve_plan(inputs, impossible).status, lp::SolveStatus::kInfeasible);
}

TEST_F(PlanTest, LocalityObjectiveGetsLowerLatencyThanPeaksObjective) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);

  LpBuildOptions lf;
  lf.objective = Objective::kMinimizeTotalLatency;
  lf.e2e_bound_ms = 0.0;
  const auto lf_result = solve_plan(inputs, lf);
  const auto tn_result = solve_plan(inputs, lp_options());
  ASSERT_EQ(lf_result.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(tn_result.status, lp::SolveStatus::kOptimal);

  auto avg_latency = [&](const LpPlanResult& r) {
    double lat = 0.0, units = 0.0;
    for (int t = 0; t < small_scope().timeslots; ++t)
      for (std::size_t c = 0; c < inputs.demands().size(); ++c)
        for (const auto& e : r.weights[static_cast<std::size_t>(t)][c].entries) {
          lat += e.units *
                 inputs.total_latency_ms(inputs.demands()[c].config, e.dc, e.path);
          units += e.units;
        }
    return lat / units;
  };
  EXPECT_LE(avg_latency(lf_result), avg_latency(tn_result) + 1e-6);
  // And TN's WAN peaks are no worse than LF's.
  EXPECT_LE(tn_result.sum_of_wan_peaks_mbps, lf_result.sum_of_wan_peaks_mbps + 1e-6);
}

// --- Offline plan + controller ------------------------------------------------------

TEST_F(PlanTest, OfflinePlanPickFollowsWeights) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  OfflinePlan plan(&inputs, solve_plan(inputs, lp_options()));
  ASSERT_TRUE(plan.valid());

  // Find a demand with traffic in slot 9.
  const auto& demands = inputs.demands();
  int c = -1;
  for (std::size_t i = 0; i < demands.size(); ++i)
    if (demands[i].units_per_slot[9] > 0.5) {
      c = static_cast<int>(i);
      break;
    }
  ASSERT_GE(c, 0);
  core::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto a = plan.pick(demands[static_cast<std::size_t>(c)].config, 9, rng);
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(plan.supports(demands[static_cast<std::size_t>(c)].config, 9, a->dc));
  }
  // Unknown shape -> no pick.
  workload::CallConfig unknown{{{world_->find_country("japan"), 1}},
                               media::MediaType::kAudio};
  EXPECT_FALSE(plan.pick(unknown, 9, rng).has_value());
}

// Pins the single-resolution contract: the shape overload resolves the
// demand index exactly once and delegates, so a pick/supports sequence
// through shapes is bit-identical to the same sequence through demand ids
// (pick used to resolve the same shape twice per call — once in
// weights_for, once for the credit row).
TEST_F(PlanTest, OfflinePlanShapeAndIdLookupsAgree) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  const auto result = solve_plan(inputs, lp_options());
  OfflinePlan by_shape(&inputs, result);
  OfflinePlan by_id(&inputs, result);
  ASSERT_TRUE(by_shape.valid());

  core::Rng rng_shape(7), rng_id(7);
  const auto& demands = inputs.demands();
  for (int t = 0; t < small_scope().timeslots; ++t) {
    for (std::size_t c = 0; c < demands.size(); ++c) {
      const int idx = inputs.demand_index(demands[c].config);
      ASSERT_EQ(idx, static_cast<int>(c));
      const auto a = by_shape.pick(demands[c].config, t, rng_shape);
      const auto b = by_id.pick(idx, t, rng_id);
      ASSERT_EQ(a.has_value(), b.has_value()) << "t=" << t << " c=" << c;
      if (a.has_value()) {
        EXPECT_EQ(a->dc, b->dc);
        EXPECT_EQ(a->path, b->path);
        EXPECT_EQ(by_shape.supports(demands[c].config, t, a->dc),
                  by_id.supports(idx, t, b->dc));
      }
    }
  }
  // Both rngs consumed identically: the next draw agrees.
  EXPECT_DOUBLE_EQ(rng_shape.uniform(), rng_id.uniform());
}

// An all-zero-units weight row (the LP can emit ~0-weight entries) must be
// out of plan, not a division by zero: before the guard the zero total
// produced NaN credits that stuck to the WRR state and poisoned every
// later pick of that demand.
TEST_F(PlanTest, OfflinePlanZeroTotalWeightsAreOutOfPlan) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  ASSERT_GE(inputs.demands().size(), 2u);
  const auto dc0 = inputs.dcs().at(0);
  const auto dc1 = inputs.dcs().at(1);

  LpPlanResult result;
  result.status = lp::SolveStatus::kOptimal;
  result.weights.assign(static_cast<std::size_t>(small_scope().timeslots),
                        std::vector<AssignmentWeights>(inputs.demands().size()));
  for (auto& row : result.weights) {
    row[0].entries = {{dc0, net::PathType::kWan, 0.0}};  // zero total
    row[1].entries = {{dc0, net::PathType::kWan, 1.0}, {dc1, net::PathType::kWan, 1.0}};
  }
  const OfflinePlan plan(&inputs, std::move(result));
  core::Rng rng(11);

  // The zero-total demand is out of plan at every slot...
  EXPECT_FALSE(plan.pick(0, 0, rng).has_value());
  // ...and interleaving it does not disturb the healthy demand's WRR
  // state: 50/50 weights keep realizing an exact alternation.
  int at_dc0 = 0, at_dc1 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(plan.pick(0, i % small_scope().timeslots, rng).has_value());
    const auto a = plan.pick(1, i % small_scope().timeslots, rng);
    ASSERT_TRUE(a.has_value());
    (a->dc == dc0 ? at_dc0 : at_dc1) += 1;
  }
  EXPECT_EQ(at_dc0, 5);
  EXPECT_EQ(at_dc1, 5);
}

// The credit-carryover bugfix: at a rolling replan cadence the smoothing
// window per plan generation is short (here: two picks), and restarting
// the credits every swap degenerates smooth WRR toward round-robin — a
// 70/30 plan realizes 50/50. Carrying the (dc, path) credits across the
// swap keeps the realized shares tracking the plan weights.
TEST_F(PlanTest, CreditCarryoverKeepsRollingSharesOnPlan) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  const auto dc0 = inputs.dcs().at(0);
  const auto dc1 = inputs.dcs().at(1);

  const auto make_plan = [&] {
    LpPlanResult result;
    result.status = lp::SolveStatus::kOptimal;
    result.weights.assign(static_cast<std::size_t>(small_scope().timeslots),
                          std::vector<AssignmentWeights>(inputs.demands().size()));
    for (auto& row : result.weights)
      row[0].entries = {{dc0, net::PathType::kWan, 0.7}, {dc1, net::PathType::kWan, 0.3}};
    return OfflinePlan(&inputs, std::move(result));
  };

  constexpr int kGenerations = 10;   // replans
  constexpr int kPicksPerGen = 2;    // calls between replans (rolling cadence)
  const auto realized_dc0_share = [&](bool carry) {
    core::Rng rng(13);
    OfflinePlan current = make_plan();
    int at_dc0 = 0;
    for (int g = 0; g < kGenerations; ++g) {
      if (g > 0) {
        // The replan loop's swap: a freshly constructed plan generation.
        OfflinePlan fresh = make_plan();
        if (carry) fresh.carry_credits_from(current);
        current = std::move(fresh);
      }
      for (int k = 0; k < kPicksPerGen; ++k) {
        const auto a = current.pick(0, (g * kPicksPerGen + k) % small_scope().timeslots, rng);
        if (!a.has_value()) {
          ADD_FAILURE() << "no pick in generation " << g;
          return -1.0;
        }
        if (a->dc == dc0) ++at_dc0;
      }
    }
    return static_cast<double>(at_dc0) / (kGenerations * kPicksPerGen);
  };

  // Without the carry each two-pick generation starts from zero credits and
  // serves one call per DC: exactly the round-robin 50/50 drift.
  EXPECT_NEAR(realized_dc0_share(/*carry=*/false), 0.5, 1e-9);
  // With the carry the shares track the 70/30 plan weights (exact at this
  // pick count: smooth WRR realizes 14/6 over 20).
  EXPECT_NEAR(realized_dc0_share(/*carry=*/true), 0.7, 1e-9);
}

TEST_F(PlanTest, ControllerAssignsAndConverges) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  OfflinePlan plan(&inputs, solve_plan(inputs, lp_options()));
  ASSERT_TRUE(plan.valid());
  OnlineController controller(inputs, plan);
  core::Rng rng(6);

  const auto fr = world_->find_country("france");
  const auto initial = controller.assign_initial(fr, media::MediaType::kAudio, 9, rng);
  EXPECT_TRUE(initial.assignment.dc.valid());

  // Converging on the guessed intra-country config itself never migrates.
  workload::CallConfig intra{{{fr, 3}}, media::MediaType::kAudio};
  const auto same = controller.converge(initial, intra, 9, rng);
  EXPECT_FALSE(same.dc_migration);

  // Converging on an out-of-plan config keeps the call in place.
  workload::CallConfig unknown{{{world_->find_country("japan"), 1}},
                               media::MediaType::kAudio};
  const auto odd = controller.converge(initial, unknown, 9, rng);
  EXPECT_TRUE(odd.out_of_plan);
  EXPECT_FALSE(odd.dc_migration);
  EXPECT_EQ(odd.final_assignment.dc, initial.assignment.dc);
}

TEST_F(PlanTest, ControllerRouteFailoverThresholds) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  OfflinePlan plan(&inputs, solve_plan(inputs, lp_options()));
  OnlineController controller(inputs, plan);
  const auto fr = world_->find_country("france");
  const auto nl = world_->find_dc("netherlands");
  const double wan_rtt = db_->latency().base_rtt_ms(fr, nl, net::PathType::kWan);
  EXPECT_TRUE(controller.should_route_failover(fr, nl, 0.02, wan_rtt));
  EXPECT_TRUE(controller.should_route_failover(fr, nl, 0.0, wan_rtt * 2.0));
  EXPECT_FALSE(controller.should_route_failover(fr, nl, 0.001, wan_rtt * 1.1));
}

TEST_F(PlanTest, FallbackIsNearestDc) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  OfflinePlan plan(&inputs, solve_plan(inputs, lp_options()));
  OnlineController controller(inputs, plan);
  const auto ie = world_->find_country("ireland");
  const auto fb = controller.fallback(ie);
  EXPECT_EQ(fb.dc, world_->find_dc("ireland"));
  EXPECT_EQ(fb.path, net::PathType::kWan);
}

TEST_F(PlanTest, FallbackExcludePrefersLiveDcs) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  OfflinePlan plan(&inputs, solve_plan(inputs, lp_options()));
  OnlineController controller(inputs, plan);
  const auto ie = world_->find_country("ireland");
  const auto ie_dc = world_->find_dc("ireland");

  // Excluding the nearest DC moves the call to the next-best live DC.
  const auto fb = controller.fallback(ie, ie_dc);
  EXPECT_TRUE(fb.dc.valid());
  EXPECT_NE(fb.dc, ie_dc);

  // With every other DC fully drained, the excluded-but-live DC wins over
  // any drained one (a partial drain beats a dead DC).
  for (const auto dc : inputs.dcs())
    if (dc != ie_dc) db_->set_dc_compute_scale(dc, 0.0);
  EXPECT_EQ(controller.fallback(ie, ie_dc).dc, ie_dc);

  // Everything drained: the fallback refuses to land on dead capacity and
  // returns the explicit-reject invalid assignment instead.
  db_->set_dc_compute_scale(ie_dc, 0.0);
  EXPECT_FALSE(controller.fallback(ie, ie_dc).valid());

  // The fixture's NetworkDb is suite-shared; restore the scales.
  for (const auto dc : inputs.dcs()) db_->set_dc_compute_scale(dc, 1.0);
}

// --- warm-started replans --------------------------------------------------------

// Re-solving the same inputs through the warm cache transfers the full
// basis: the remap is the identity and the second solve finishes without a
// single pivot, at the same plan.
TEST_F(PlanTest, WarmCacheResolveOfSameInputsDoesZeroIterations) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);

  WarmStartCache cache;
  const LpPlanResult first = solve_plan(inputs, lp_options(), &cache);
  ASSERT_EQ(first.status, lp::SolveStatus::kOptimal);
  EXPECT_FALSE(first.warm_started);
  ASSERT_TRUE(cache.last.valid());
  EXPECT_EQ(cache.last.shapes.size(), inputs.demands().size());

  const auto remapped = remap_basis(cache.last, inputs, lp_options(), 0);
  ASSERT_TRUE(remapped.has_value());
  EXPECT_EQ(*remapped, cache.last.basis);

  const LpPlanResult again = solve_plan(inputs, lp_options(), &cache);
  ASSERT_EQ(again.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(again.warm_started);
  EXPECT_EQ(again.iterations, 0);
  EXPECT_NEAR(again.objective, first.objective, 1e-9);
}

// The shift-aware remap: a disjoint window (shift >= horizon) transfers
// nothing, an overlapping shift produces a full-size candidate basis, and a
// changed horizon refuses outright.
TEST_F(PlanTest, RemapBasisRespectsWindowOverlap) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);
  WarmStartCache cache;
  ASSERT_EQ(solve_plan(inputs, lp_options(), &cache).status, lp::SolveStatus::kOptimal);

  EXPECT_FALSE(remap_basis(cache.last, inputs, lp_options(), small_scope().timeslots)
                   .has_value());
  EXPECT_FALSE(remap_basis(cache.last, inputs, lp_options(), -1).has_value());

  const auto shifted = remap_basis(cache.last, inputs, lp_options(), 3);
  ASSERT_TRUE(shifted.has_value());
  EXPECT_EQ(shifted->entries.size(), cache.last.basis.entries.size());

  PlanScope longer = small_scope();
  longer.timeslots = 16;
  PlanInputs other(*db_, longer, *fractions_);
  other.set_demand(trace_->configs(), trace_->config_counts(), true);
  EXPECT_FALSE(remap_basis(cache.last, other, lp_options(), 0).has_value());
}

// The closed-loop contract on a steady-week trace at the production
// (rolling-horizon) cadence: replans after the first warm-start from the
// cached basis and spend strictly fewer simplex iterations than the cold
// first replan — and fewer than the same loop with warm replans disabled.
TEST_F(PlanTest, RollingReplansWarmStartWithFewerIterations) {
  sim::Scenario s = sim::make_scenario("steady-week");
  s.training_weeks = 1;
  s.eval_days = 1;
  s.peak_slot_calls = 40.0;
  s.shards = 8;
  s.oracle_counts = true;
  s.pipeline.scope.timeslots = 24;
  s.replan_interval_slots = 4;  // rolling horizon: windows overlap 20/24
  s.pipeline.scope.max_reduced_configs = 20;

  sim::SimEngine engine(s);
  const auto r = engine.run(2);
  ASSERT_GE(r.replans, 3);
  ASSERT_EQ(r.replan_stats.size(), static_cast<std::size_t>(r.replans));
  const auto& first = r.replan_stats.front();
  EXPECT_FALSE(first.warm_started);
  EXPECT_GT(first.iterations, 0);

  int warm = 0, cheaper_than_first = 0;
  long long later_iterations = 0;
  for (std::size_t i = 1; i < r.replan_stats.size(); ++i) {
    const auto& stat = r.replan_stats[i];
    later_iterations += stat.iterations;
    if (stat.warm_started) {
      ++warm;
      cheaper_than_first += stat.iterations < first.iterations;
    }
  }
  EXPECT_GT(warm, 0) << "no replan warm-started on an overlapping horizon";
  // Most warm replans individually undercut the cold first replan (an
  // occasional heavy-repair one may not — the demand set shifts hardest
  // around the night/day transition), and the aggregate strictly beats
  // repeating the first cold solve.
  EXPECT_GT(2 * cheaper_than_first, warm);
  EXPECT_LT(later_iterations,
            static_cast<long long>(r.replan_stats.size() - 1) * first.iterations);

  // ...and beats the identical loop with warm replans disabled.
  sim::Scenario cold_scenario = s;
  cold_scenario.warm_replans = false;
  sim::SimEngine cold_engine(cold_scenario);
  const auto cold = cold_engine.run(2);
  long long cold_later = 0;
  for (std::size_t i = 1; i < cold.replan_stats.size(); ++i) {
    cold_later += cold.replan_stats[i].iterations;
    EXPECT_FALSE(cold.replan_stats[i].warm_started);
  }
  EXPECT_LT(later_iterations, cold_later);
}

// --- region-block decomposition --------------------------------------------------

// A multi-region NA+EU world for the decomposition tests: trace, scope and
// a constant fractions map spanning both continents. The fixture trace is
// Europe-only, so these tests generate their own (small) one.
struct MultiRegionSetup {
  workload::Trace trace;
  // Per-config counts sliced to the plan window (see below) — feed these
  // to set_demand, not trace.config_counts().
  std::vector<std::vector<double>> counts;
  PlanScope scope;
  std::map<std::pair<int, int>, double> fractions;
};

MultiRegionSetup make_na_eu_setup(const geo::World& world, const net::NetworkDb& db) {
  const geo::RegionSet regions({geo::Continent::kNorthAmerica, geo::Continent::kEurope});
  workload::TraceOptions topts;
  topts.weeks = 2;
  topts.peak_slot_calls = 50.0;
  topts.regions = regions;
  topts.cross_region_fraction = 0.35;

  MultiRegionSetup s{workload::TraceGenerator(world).generate(topts), {}, {}, {}};
  s.scope.regions = regions;
  s.scope.timeslots = 12;
  s.scope.max_reduced_configs = 20;
  // Per-DC plan capacity is the global peak split by provisioned share, so
  // a region block is only standalone-feasible when its DCs' share covers
  // its regional peak — at the default headroom the EU block is not, its
  // demands get promoted to the coupling LP, and nothing decomposes. The
  // multi-region scenarios raise the headroom for the same reason.
  s.scope.compute_headroom = 3.0;
  // Window the demand onto UTC 16:00-22:00 (slot 32 on): EU evening and NA
  // midday, so the top-K demand set keeps shapes homed on both sides plus
  // a cross-continent shape for the coupling LP. A window at UTC midnight
  // would see only NA traffic and leave the EU block empty.
  s.counts = s.trace.config_counts();
  for (auto& series : s.counts) series.erase(series.begin(), series.begin() + 32);
  for (const auto c : geo::countries_in(world, regions)) {
    const double f = db.loss().internet_unusable(c) ? 0.0 : 0.20;
    for (const auto d : geo::dcs_in(world, regions)) s.fractions[{c.value(), d.value()}] = f;
  }
  return s;
}

// On a single-region scope the forced decomposition has exactly one block
// owning every DC and every demand, and that block's model IS the
// monolithic model — so kForce must reproduce the kOff plan bit for bit
// (the equivalence the single-region golden checksums rely on via kAuto).
TEST_F(PlanTest, ForcedDecompositionMatchesMonolithicOnSingleRegionScope) {
  PlanInputs inputs(*db_, small_scope(), *fractions_);
  inputs.set_demand(trace_->configs(), trace_->config_counts(), true);

  LpBuildOptions off = lp_options();
  off.decomposition = Decomposition::kOff;
  LpBuildOptions force = lp_options();
  force.decomposition = Decomposition::kForce;

  const LpPlanResult mono = solve_plan(inputs, off);
  const LpPlanResult dec = solve_plan(inputs, force);
  ASSERT_EQ(mono.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(dec.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(mono.blocks_solved, 0);
  EXPECT_EQ(dec.blocks_solved, 1);

  // Identical model + identical (cold) solve: exact equality, not "near".
  EXPECT_EQ(dec.objective, mono.objective);
  EXPECT_EQ(dec.sum_of_wan_peaks_mbps, mono.sum_of_wan_peaks_mbps);
  EXPECT_EQ(dec.iterations, mono.iterations);
  ASSERT_EQ(dec.weights.size(), mono.weights.size());
  for (std::size_t t = 0; t < mono.weights.size(); ++t) {
    ASSERT_EQ(dec.weights[t].size(), mono.weights[t].size());
    for (std::size_t c = 0; c < mono.weights[t].size(); ++c) {
      const auto& a = mono.weights[t][c].entries;
      const auto& b = dec.weights[t][c].entries;
      ASSERT_EQ(a.size(), b.size()) << "t=" << t << " c=" << c;
      for (std::size_t e = 0; e < a.size(); ++e) {
        EXPECT_EQ(a[e].dc, b[e].dc);
        EXPECT_EQ(a[e].path, b[e].path);
        EXPECT_EQ(a[e].units, b[e].units);
      }
    }
  }
}

// A genuine NA+EU scope under the default policy (kAuto) splits into two
// region blocks plus a coupling LP over the cross-continent demands. The
// composed plan is feasible for the monolithic LP, so its cost can only
// meet or exceed the monolithic optimum — and every demand stays fully
// assigned.
TEST_F(PlanTest, MultiRegionScopeDecomposesIntoRegionBlocks) {
  const auto setup = make_na_eu_setup(*world_, *db_);
  PlanInputs inputs(*db_, setup.scope, setup.fractions);
  inputs.set_demand(setup.trace.configs(), setup.counts, true);
  ASSERT_GT(inputs.demands().size(), 0u);

  // The demand set must actually exercise the partition: shapes homed on
  // each continent plus at least one cross-continent shape for the
  // coupling LP (deterministic — the trace seed is fixed).
  int cross_demands = 0;
  for (const auto& d : inputs.demands()) {
    bool na = false, eu = false;
    for (const auto& [country, count] : d.config.participants) {
      const auto cont = world_->country(country).continent;
      na = na || cont == geo::Continent::kNorthAmerica;
      eu = eu || cont == geo::Continent::kEurope;
    }
    if (na && eu) ++cross_demands;
  }
  ASSERT_GT(cross_demands, 0);

  const LpPlanResult dec = solve_plan(inputs, lp_options());  // kAuto default
  ASSERT_EQ(dec.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(dec.blocks_solved, 2) << "NA+EU scope did not decompose into two blocks";
  EXPECT_FALSE(dec.warm_started);

  LpBuildOptions off = lp_options();
  off.decomposition = Decomposition::kOff;
  const LpPlanResult mono = solve_plan(inputs, off);
  ASSERT_EQ(mono.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(mono.blocks_solved, 0);
  EXPECT_GE(dec.sum_of_wan_peaks_mbps, mono.sum_of_wan_peaks_mbps - 1e-6);

  // C1 on the composed plan: every demand fully assigned in every slot.
  for (int t = 0; t < setup.scope.timeslots; ++t)
    for (std::size_t c = 0; c < inputs.demands().size(); ++c) {
      double assigned = 0.0;
      for (const auto& e : dec.weights[static_cast<std::size_t>(t)][c].entries)
        assigned += e.units;
      EXPECT_NEAR(assigned,
                  inputs.demands()[c].units_per_slot[static_cast<std::size_t>(t)], 1e-5);
    }
}

// remap_basis across a region-set change: growing the scope (EU -> NA+EU)
// keeps the surviving EU labels and completes the new NA columns/rows with
// slacks, shrinking it drops the vanished NA labels — both directions
// produce a usable candidate and the warm solve lands on the cold
// objective. Both solves share one trace so the demand shapes overlap.
TEST_F(PlanTest, RemapBasisSurvivesRegionEnterAndLeave) {
  const auto setup = make_na_eu_setup(*world_, *db_);
  // Monolithic both ways (the decomposed path keeps per-block contexts
  // instead of `last`), C4 off so the EU-only solve of the NA-heavy trace
  // stays feasible.
  LpBuildOptions options = lp_options();
  options.decomposition = Decomposition::kOff;
  options.e2e_bound_ms = -1.0;

  PlanScope eu_scope = setup.scope;
  eu_scope.regions = geo::Continent::kEurope;
  PlanInputs eu(*db_, eu_scope, setup.fractions);
  eu.set_demand(setup.trace.configs(), setup.counts, true);
  PlanInputs both(*db_, setup.scope, setup.fractions);
  both.set_demand(setup.trace.configs(), setup.counts, true);
  ASSERT_GT(both.dcs().size(), eu.dcs().size());

  // Region enter: EU basis remapped onto the NA+EU model.
  WarmStartCache cache;
  ASSERT_EQ(solve_plan(eu, options, &cache).status, lp::SolveStatus::kOptimal);
  ASSERT_TRUE(cache.last.valid());
  const std::size_t eu_basis_size = cache.last.basis.entries.size();
  const auto entered = remap_basis(cache.last, both, options, 0);
  ASSERT_TRUE(entered.has_value()) << "region enter produced no candidate basis";
  EXPECT_GT(entered->entries.size(), eu_basis_size);

  const LpPlanResult cold_both = solve_plan(both, options);
  const LpPlanResult warm_both = solve_plan(both, options, &cache);
  ASSERT_EQ(warm_both.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(warm_both.objective, cold_both.objective,
              1e-6 * std::max(1.0, std::abs(cold_both.objective)));
  EXPECT_EQ(cache.last.dcs.size(), both.dcs().size());

  // Region leave: the NA+EU basis remapped back onto the EU-only model.
  const auto left = remap_basis(cache.last, eu, options, 0);
  ASSERT_TRUE(left.has_value()) << "region leave produced no candidate basis";
  EXPECT_LT(left->entries.size(), cache.last.basis.entries.size());

  const LpPlanResult cold_eu = solve_plan(eu, options);
  const LpPlanResult warm_eu = solve_plan(eu, options, &cache);
  ASSERT_EQ(warm_eu.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(warm_eu.objective, cold_eu.objective,
              1e-6 * std::max(1.0, std::abs(cold_eu.objective)));
}

// Decomposed replans carry one warm context per region block: re-solving
// the same NA+EU inputs warm-starts both blocks (identity remap) and beats
// the first solve's pivot count — only the small coupling LP stays cold.
TEST_F(PlanTest, DecomposedReplansWarmStartPerBlock) {
  const auto setup = make_na_eu_setup(*world_, *db_);
  PlanInputs inputs(*db_, setup.scope, setup.fractions);
  inputs.set_demand(setup.trace.configs(), setup.counts, true);

  WarmStartCache cache;
  const LpPlanResult first = solve_plan(inputs, lp_options(), &cache);
  ASSERT_EQ(first.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(first.blocks_solved, 2);
  EXPECT_FALSE(first.warm_started);
  EXPECT_EQ(cache.blocks.size(), 2u);
  for (const auto& [continent, ctx] : cache.blocks) EXPECT_TRUE(ctx.valid());

  const LpPlanResult again = solve_plan(inputs, lp_options(), &cache);
  ASSERT_EQ(again.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(again.blocks_solved, 2);
  EXPECT_TRUE(again.warm_started);
  EXPECT_LT(again.iterations, first.iterations);
  EXPECT_NEAR(again.objective, first.objective,
              1e-6 * std::max(1.0, std::abs(first.objective)));
}

// The LP scale-out acceptance pin: a disturbance-forced replan at a rolling
// cadence KEEPS the warm cache and repairs the rhs damage with dual-simplex
// pivots instead of re-solving cold. Before the dual path existed, forced
// replans dropped the cache — every forced stat was cold by construction.
TEST_F(PlanTest, DisturbanceForcedReplansWarmStartViaDualSimplex) {
  sim::Scenario s = sim::make_scenario("steady-week");
  s.training_weeks = 1;
  s.eval_days = 1;
  s.peak_slot_calls = 40.0;
  s.shards = 8;
  s.oracle_counts = true;
  s.pipeline.scope.timeslots = 24;
  s.replan_interval_slots = 4;  // rolling horizon: forced replans overlap
  s.pipeline.scope.max_reduced_configs = 20;

  // Partial drains of a busy DC mid-morning: pure rhs damage (plan compute
  // capacity shrinks), exactly what the dual pivot loop repairs.
  for (const int slot : {9, 13, 17}) {
    sim::Disturbance drain;
    drain.kind = sim::NetworkEventKind::kDcDrain;
    drain.day = 0;
    drain.slot_in_day = slot;
    drain.duration_slots = 2;
    drain.dc = "netherlands";
    drain.magnitude = 0.4;  // keep 40% of compute
    s.disturbances.push_back(drain);
  }

  sim::SimEngine engine(s);
  const auto r = engine.run(2);
  ASSERT_EQ(r.replan_stats.size(), static_cast<std::size_t>(r.replans));

  int forced = 0, forced_warm = 0;
  long long forced_dual = 0;
  for (const auto& stat : r.replan_stats) {
    if (!stat.forced) continue;
    ++forced;
    if (stat.warm_started) {
      ++forced_warm;
      forced_dual += stat.dual_iterations;
    }
  }
  ASSERT_GT(forced, 0) << "no disturbance forced a replan";
  EXPECT_GT(forced_warm, 0) << "forced replans all fell back cold";
  EXPECT_GT(forced_dual, 0) << "forced warm replans took no dual pivots";
}

// --- Pipeline / forecasting -----------------------------------------------------

TEST_F(TitanNextTest, ForecastCountsShapes) {
  const auto history = trace_->config_counts();
  const int train_slots = 2 * core::kSlotsPerWeek;
  const auto fc = forecast_counts(history, train_slots, core::kSlotsPerDay, 20);
  ASSERT_EQ(fc.counts.size(), history.size());
  EXPECT_EQ(fc.hw_configs, 20);
  for (const auto& series : fc.counts) {
    ASSERT_EQ(series.size(), static_cast<std::size_t>(core::kSlotsPerDay));
    for (const double v : series) EXPECT_GE(v, 0.0);
  }
}

TEST_F(TitanNextTest, ForecastAccuracyOnTopConfigs) {
  // Fig. 20's headline: small normalized errors for high-volume configs.
  const auto history = trace_->config_counts();
  const int train_slots = 2 * core::kSlotsPerWeek;
  const auto fc = forecast_counts(history, train_slots, core::kSlotsPerDay, 15);

  const auto by_volume = trace_->configs_by_volume();
  std::vector<double> maes;
  for (int rank = 0; rank < 10; ++rank) {
    const auto cfg = static_cast<std::size_t>(by_volume[static_cast<std::size_t>(rank)].value());
    std::vector<double> actual(history[cfg].begin() + train_slots,
                               history[cfg].begin() + train_slots + core::kSlotsPerDay);
    const auto err = forecast::evaluate_forecast(actual, fc.counts[cfg]);
    maes.push_back(err.mae_normalized);
  }
  // Median normalized MAE across the top configs should be small (paper:
  // 4.9% with 4 training weeks; this test trains on only 2).
  std::sort(maes.begin(), maes.end());
  EXPECT_LT(maes[maes.size() / 2], 0.2);
}

TEST_F(TitanNextTest, PipelinePlansOracleAndForecast) {
  PipelineOptions popts;
  popts.scope = small_scope();
  popts.lp.e2e_bound_ms = 120.0;
  popts.top_k_forecast = 15;
  const TitanNextPipeline pipeline(*db_, *fractions_, popts);

  const auto oracle = pipeline.plan_day_oracle(*trace_, 2 * core::kSlotsPerWeek);
  ASSERT_TRUE(oracle.valid());
  EXPECT_GT(oracle.plan.result().sum_of_wan_peaks_mbps, 0.0);

  const auto practical = pipeline.plan_day_forecast(*trace_, 2 * core::kSlotsPerWeek);
  ASSERT_TRUE(practical.valid());
  EXPECT_GT(practical.forecast_seconds, 0.0);
}

}  // namespace
}  // namespace titan::titannext
