// Tests for the obs:: observability primitives (src/obs): histogram bucket
// determinism and merge-order invariance, quantile behaviour, registry
// semantics, and the trace recorder's Chrome trace_event export. The
// engine-level wiring (SimPerf, zero_wallclock masking, golden checksums)
// is covered in sim_test.cc; the cross-thread histogram identity in
// sweep_test.cc.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sweep/json.h"

namespace titan::obs {
namespace {

TEST(ObsHistogramTest, BucketEdgesAreAPureFunctionOfOptions) {
  const Histogram::Options opts{0.01, 1e6, 8};
  const Histogram a(opts);
  const Histogram b(opts);
  ASSERT_EQ(a.num_buckets(), b.num_buckets());
  for (std::size_t i = 0; i < a.num_buckets(); ++i) {
    // Bitwise, not approximate: identical edges are what make merged
    // counts bit-identical across shardings.
    EXPECT_EQ(a.bucket_lower(i), b.bucket_lower(i)) << i;
    EXPECT_EQ(a.bucket_upper(i), b.bucket_upper(i)) << i;
  }
  // 8 decades at 8 buckets per decade, plus underflow and overflow.
  EXPECT_EQ(a.num_buckets(), 8u * 8u + 2u);
}

TEST(ObsHistogramTest, BucketIndexRespectsHalfOpenEdges) {
  const Histogram h(Histogram::Options{1.0, 100.0, 1});
  // Buckets: [0,1) underflow, [1,10), [10,100), [100,inf) overflow.
  EXPECT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_index(0.5), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 1u);  // lower edge is inclusive
  EXPECT_EQ(h.bucket_index(9.999), 1u);
  EXPECT_EQ(h.bucket_index(10.0), 2u);
  EXPECT_EQ(h.bucket_index(99.999), 2u);
  EXPECT_EQ(h.bucket_index(100.0), 3u);  // max lands in overflow
  EXPECT_EQ(h.bucket_index(1e12), 3u);
}

TEST(ObsHistogramTest, InvalidOptionsThrow) {
  EXPECT_THROW(Histogram(Histogram::Options{0.0, 10.0, 4}), std::invalid_argument);
  EXPECT_THROW(Histogram(Histogram::Options{-1.0, 10.0, 4}), std::invalid_argument);
  EXPECT_THROW(Histogram(Histogram::Options{10.0, 10.0, 4}), std::invalid_argument);
  EXPECT_THROW(Histogram(Histogram::Options{10.0, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW(Histogram(Histogram::Options{1.0, 10.0, 0}), std::invalid_argument);
}

TEST(ObsHistogramTest, MergeIsInvariantToSplitAndOrder) {
  // One stream of integer samples recorded three ways: single histogram,
  // round-robin across 4 shards merged 0..3, and the same shards merged in
  // reverse. All three must agree bit-for-bit (integer sums are exact, so
  // even `sum` is order-invariant).
  const Histogram::Options opts{1.0, 1e5, 4};
  core::Rng rng(1234);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i)
    samples.push_back(static_cast<double>(rng.uniform_int(0, 200000)));

  Histogram whole(opts);
  std::vector<Histogram> shards(4, Histogram(opts));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    whole.record(samples[i]);
    shards[i % 4].record(samples[i]);
  }

  Histogram forward(opts);
  for (const auto& s : shards) forward.merge(s);
  Histogram backward(opts);
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) backward.merge(*it);

  EXPECT_EQ(forward, whole);
  EXPECT_EQ(backward, whole);
  EXPECT_EQ(forward.total_count(), samples.size());
}

TEST(ObsHistogramTest, MergeRejectsMismatchedLayouts) {
  Histogram a(Histogram::Options{1.0, 100.0, 4});
  const Histogram b(Histogram::Options{1.0, 100.0, 8});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  // Merging an empty same-layout histogram is a no-op.
  const Histogram empty(Histogram::Options{1.0, 100.0, 4});
  a.record(5.0);
  a.merge(empty);
  EXPECT_EQ(a.total_count(), 1u);
}

TEST(ObsHistogramTest, QuantilesAndExtremes) {
  Histogram h(Histogram::Options{1.0, 1e4, 8});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_EQ(h.quantile(1.0), 1000.0);  // exact at q=1
  // Interpolated quantiles sit near the true values (log buckets are
  // coarse; a decade/8 bucket can be ~33% wide).
  EXPECT_NEAR(h.quantile(0.5), 500.0, 200.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 200.0);
  // Monotone in q.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.99), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(ObsHistogramTest, ResetKeepsLayoutAndZerosState) {
  Histogram h(Histogram::Options{1.0, 100.0, 2});
  Histogram pristine = h;
  h.record(5.0);
  h.record(50.0);
  ASSERT_NE(h, pristine);
  h.reset();
  EXPECT_EQ(h, pristine);  // the masking primitive: bitwise back to empty
  EXPECT_EQ(h.total_count(), 0u);
}

TEST(ObsRegistryTest, CountersGaugesAndLayoutConflicts) {
  Registry r;
  r.counter("calls").add(3);
  r.counter("calls").add(4);
  EXPECT_EQ(r.counter("calls").value(), 7);
  r.gauge("load").set(0.5);
  r.gauge("load").set(0.75);
  EXPECT_DOUBLE_EQ(r.gauge("load").value(), 0.75);

  const Histogram::Options opts{1.0, 100.0, 4};
  r.histogram("lat", opts).record(5.0);
  EXPECT_EQ(r.histogram("lat", opts).total_count(), 1u);
  // Same name, different layout: refused rather than silently corrupting.
  EXPECT_THROW(r.histogram("lat", Histogram::Options{1.0, 100.0, 8}),
               std::invalid_argument);
}

TEST(ObsRegistryTest, MergeAddsCountersMergesHistogramsOverwritesGauges) {
  const Histogram::Options opts{1.0, 100.0, 4};
  Registry a;
  a.counter("n").add(1);
  a.gauge("g").set(1.0);
  a.histogram("h", opts).record(2.0);

  Registry b;
  b.counter("n").add(10);
  b.counter("only_b").add(5);
  b.gauge("g").set(2.0);
  b.histogram("h", opts).record(20.0);
  b.histogram("only_b_h", opts).record(3.0);

  a.merge(b);
  EXPECT_EQ(a.counter("n").value(), 11);
  EXPECT_EQ(a.counter("only_b").value(), 5);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 2.0);
  EXPECT_EQ(a.histogram("h", opts).total_count(), 2u);
  EXPECT_EQ(a.histogram("only_b_h", opts).total_count(), 1u);
}

TEST(ObsTraceTest, NullRecorderSpansAreNoOps) {
  // Must not crash, read clocks, or record anywhere.
  Span s(nullptr, "phase");
  s.end();
  Span via_default;  // default-constructed == null recorder
  via_default.end();
}

TEST(ObsTraceTest, SpansRecordCompleteEventsOnTheirLanes) {
  TraceRecorder rec;
  rec.set_lane_name(0, "engine");
  rec.set_lane_name(3, "shard 2");
  {
    Span a(&rec, "replan", "engine", 0);
    Span b(&rec, "events", "shard", 3);
    b.end();
    b.end();  // idempotent: a second end() records nothing
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  // b ended first, a at scope exit: recording order is completion order.
  EXPECT_EQ(events[0].name, "events");
  EXPECT_EQ(events[0].lane, 3);
  EXPECT_EQ(events[1].name, "replan");
  EXPECT_EQ(events[1].category, "engine");
  EXPECT_EQ(events[1].lane, 0);
  for (const auto& e : events) {
    EXPECT_GE(e.start_us, 0.0);
    EXPECT_GE(e.duration_us, 0.0);
  }
}

TEST(ObsTraceTest, ChromeJsonIsValidAndCarriesMetadataAndSpans) {
  TraceRecorder rec;
  rec.set_lane_name(0, "engine");
  rec.add_complete("solve \"phase 1\"", "lp", 0, 10.0, 5.0);
  rec.add_complete("merge", "", 2, 20.0, 1.0);

  // The exporter promises loadable trace_event JSON; parse it with the
  // repo's own strict parser as the cheapest loadability check.
  const sweep::Json doc = sweep::Json::parse(rec.chrome_json());
  ASSERT_TRUE(doc.has("traceEvents"));
  const sweep::Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 3u);  // 1 thread_name metadata + 2 spans

  const sweep::Json& meta = events.at(0);
  EXPECT_EQ(meta.at("ph").as_string(), "M");
  EXPECT_EQ(meta.at("name").as_string(), "thread_name");
  EXPECT_EQ(meta.at("args").at("name").as_string(), "engine");

  const sweep::Json& span = events.at(1);
  EXPECT_EQ(span.at("ph").as_string(), "X");
  EXPECT_EQ(span.at("name").as_string(), "solve \"phase 1\"");  // escaping survived
  EXPECT_EQ(span.at("cat").as_string(), "lp");
  EXPECT_DOUBLE_EQ(span.at("ts").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(span.at("dur").as_number(), 5.0);
  // Empty category renders as "default" (Perfetto dislikes empty cats).
  EXPECT_EQ(events.at(2).at("cat").as_string(), "default");
}

}  // namespace
}  // namespace titan::obs
