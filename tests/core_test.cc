// Tests for core primitives: strong ids, deterministic RNG, statistics,
// the time grid, hashing, and table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/hash.h"
#include "core/ids.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"
#include "core/timegrid.h"

namespace titan::core {
namespace {

// --- Ids ---------------------------------------------------------------

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<CountryId, CityId>);
  CountryId a(3), b(3), c(4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(CountryId::invalid().valid());
}

TEST(IdsTest, HashableInUnorderedContainers) {
  std::unordered_set<DcId> set;
  set.insert(DcId(1));
  set.insert(DcId(1));
  set.insert(DcId(2));
  EXPECT_EQ(set.size(), 2u);
}

// --- Rng ----------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::unordered_set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.exponential(0.5));
  EXPECT_NEAR(acc.mean(), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(17);
  Accumulator small, large;
  for (int i = 0; i < 20000; ++i) small.add(rng.poisson(3.0));
  for (int i = 0; i < 20000; ++i) large.add(rng.poisson(200.0));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 200.0, 1.5);
}

TEST(RngTest, ZipfPrefersLowRanks) {
  Rng rng(19);
  int rank0 = 0, rank9 = 0;
  for (int i = 0; i < 10000; ++i) {
    const int r = rng.zipf(10, 1.0);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 10);
    rank0 += r == 0;
    rank9 += r == 9;
  }
  EXPECT_GT(rank0, rank9 * 3);
}

TEST(RngTest, WeightedPickRespectsWeightsAndSkipsZeros) {
  Rng rng(23);
  const std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_pick(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, WeightedPickThrowsOnZeroTotal) {
  Rng rng(29);
  EXPECT_THROW(rng.weighted_pick({0.0, 0.0}), std::invalid_argument);
}

TEST(RngTest, ForkedStreamsAreIndependentAndStable) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = Rng(99).fork(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

// --- Stats ----------------------------------------------------------------

TEST(StatsTest, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({3, 1, 2}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({3, 1, 2}, 1.0), 3.0);
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
}

TEST(StatsTest, MedianAndMean) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, RmseMae) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 4, 3};
  EXPECT_NEAR(rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(mae(a, b), 2.0 / 3.0, 1e-12);
  EXPECT_THROW(rmse(a, {1.0}), std::invalid_argument);
}

TEST(StatsTest, EmpiricalCdf) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  const auto curve = cdf.curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().p, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().p, 1.0);
}

TEST(StatsTest, AccumulatorMergeMatchesBulk) {
  Rng rng(31);
  Accumulator all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, HistogramBinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(-3.0);  // clamps into first bin
  h.add(42.0);  // clamps into last bin
  EXPECT_DOUBLE_EQ(h.bin_count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

// --- Time grid --------------------------------------------------------------

TEST(TimeGridTest, SlotArithmetic) {
  EXPECT_EQ(kSlotsPerDay, 48);
  EXPECT_EQ(kSlotsPerWeek, 336);
  const SlotIndex slot = slot_at(1, 13, 1);  // Tuesday 13:30
  EXPECT_EQ(day_of(slot), 1);
  EXPECT_EQ(hour_of(slot), 13);
  EXPECT_EQ(weekday_of(slot), Weekday::kTuesday);
  EXPECT_FALSE(is_weekend(slot));
  EXPECT_TRUE(is_weekend(slot_at(5, 10, 0)));
  EXPECT_TRUE(is_weekend(slot_at(6, 10, 0)));
  EXPECT_EQ(weekday_of(slot_at(7, 0, 0)), Weekday::kMonday);  // wraps weekly
}

TEST(TimeGridTest, Labels) {
  EXPECT_EQ(weekday_short_name(Weekday::kWednesday), "Wed");
  EXPECT_EQ(slot_label(slot_at(2, 9, 1)), "d02 09:30");
}

// --- Hash -----------------------------------------------------------------

TEST(HashTest, StablePureFunction) {
  EXPECT_EQ(hash_key(1, 2, 3), hash_key(1, 2, 3));
  EXPECT_NE(hash_key(1, 2, 3), hash_key(1, 3, 2));
  Rng a = rng_at(7, 1, 2);
  Rng b = rng_at(7, 1, 2);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

// --- Table -------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5)});
  t.add_row({"b", TextTable::pct(0.25)});
  const std::string s = t.render();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("25.0%"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

}  // namespace
}  // namespace titan::core
