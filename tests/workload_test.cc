// Tests for call configs, the §6.2 reduction, and the trace generator.
#include <gtest/gtest.h>

#include "workload/call_config.h"
#include "workload/callgen.h"

namespace titan::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  geo::World world_ = geo::World::make();
};

TEST_F(WorkloadTest, CallConfigCanonicalization) {
  const auto fr = world_.find_country("france");
  const auto uk = world_.find_country("uk");
  CallConfig c;
  c.participants = {{uk, 1}, {fr, 1}, {uk, 2}};
  c.canonicalize();
  ASSERT_EQ(c.participants.size(), 2u);
  // Sorted by country id (uk precedes france in the registry) with the uk
  // entries merged.
  EXPECT_EQ(c.participants[0].first, uk);
  EXPECT_EQ(c.participants[0].second, 3);
  EXPECT_EQ(c.participants[1].first, fr);
  EXPECT_EQ(c.total_participants(), 4);
  EXPECT_FALSE(c.intra_country());
}

TEST_F(WorkloadTest, ConfigKeyAndResources) {
  const auto fr = world_.find_country("france");
  const auto uk = world_.find_country("uk");
  CallConfig c;
  c.participants = {{fr, 2}, {uk, 1}};
  c.media = media::MediaType::kVideo;
  c.canonicalize();
  // Key mirrors the paper's ((France-2, UK-1), media) notation.
  EXPECT_NE(c.key(world_).find("FR:2"), std::string::npos);
  EXPECT_NE(c.key(world_).find("GB:1"), std::string::npos);
  EXPECT_NE(c.key(world_).find("video"), std::string::npos);
  EXPECT_DOUBLE_EQ(c.network_mbps(),
                   3 * media::bandwidth_per_participant(media::MediaType::kVideo));
  EXPECT_DOUBLE_EQ(c.network_mbps_from(fr),
                   2 * media::bandwidth_per_participant(media::MediaType::kVideo));
  EXPECT_DOUBLE_EQ(c.network_mbps_from(world_.find_country("spain")), 0.0);
  EXPECT_DOUBLE_EQ(c.compute_cores(),
                   3 * media::compute_per_participant(media::MediaType::kVideo));
}

TEST_F(WorkloadTest, IntraCountryReductionCollapsesToOne) {
  // (Germany-2, Audio) -> (Germany-1, Audio) x2 ; (Germany-3, Audio) ->
  // (Germany-1, Audio) x3 — the paper's §6.2 example.
  const auto de = world_.find_country("germany");
  CallConfig c2{{{de, 2}}, media::MediaType::kAudio};
  CallConfig c3{{{de, 3}}, media::MediaType::kAudio};
  const auto r2 = reduce(c2);
  const auto r3 = reduce(c3);
  EXPECT_EQ(r2.config, r3.config);
  EXPECT_EQ(r2.config.participants.front().second, 1);
  EXPECT_EQ(r2.multiplier, 2);
  EXPECT_EQ(r3.multiplier, 3);
  // Resources preserved: multiplier x reduced == original.
  EXPECT_DOUBLE_EQ(r3.multiplier * r3.config.network_mbps(), c3.network_mbps());
}

TEST_F(WorkloadTest, InternationalReductionUsesGcd) {
  const auto fr = world_.find_country("france");
  const auto uk = world_.find_country("uk");
  CallConfig c{{{fr, 4}, {uk, 2}}, media::MediaType::kVideo};
  const auto r = reduce(c);
  EXPECT_EQ(r.multiplier, 2);
  EXPECT_EQ(r.config.participants[0].second, 2);
  EXPECT_EQ(r.config.participants[1].second, 1);
  // Co-prime counts do not reduce.
  CallConfig odd{{{fr, 3}, {uk, 2}}, media::MediaType::kAudio};
  EXPECT_EQ(reduce(odd).multiplier, 1);
  EXPECT_EQ(reduce(odd).config, odd);
}

TEST_F(WorkloadTest, MediaTypesNeverGroupTogether) {
  const auto de = world_.find_country("germany");
  CallConfig audio{{{de, 2}}, media::MediaType::kAudio};
  CallConfig video{{{de, 2}}, media::MediaType::kVideo};
  EXPECT_NE(reduce(audio).config, reduce(video).config);
}

TEST_F(WorkloadTest, RegistryInternsStably) {
  ConfigRegistry reg;
  const auto fr = world_.find_country("france");
  CallConfig a{{{fr, 2}}, media::MediaType::kAudio};
  CallConfig b{{{fr, 2}}, media::MediaType::kAudio};
  CallConfig c{{{fr, 2}}, media::MediaType::kVideo};
  EXPECT_EQ(reg.intern(a), reg.intern(b));
  EXPECT_NE(reg.intern(a), reg.intern(c));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.get(reg.intern(a)), a);
}

class TraceTest : public ::testing::Test {
 protected:
  geo::World world_ = geo::World::make();
  TraceOptions opts_ = [] {
    TraceOptions o;
    o.weeks = 2;
    o.peak_slot_calls = 120.0;
    return o;
  }();
  Trace trace_ = TraceGenerator(world_).generate(opts_);
};

TEST_F(TraceTest, DiurnalShape) {
  // Business hours dominate night; weekends are quieter.
  const double noon = TraceGenerator::diurnal_factor(core::slot_at(2, 11, 0), 0.25);
  const double night = TraceGenerator::diurnal_factor(core::slot_at(2, 3, 0), 0.25);
  const double weekend_noon = TraceGenerator::diurnal_factor(core::slot_at(5, 11, 0), 0.25);
  EXPECT_GT(noon, 6.0 * night);
  EXPECT_NEAR(weekend_noon / noon, 0.25, 0.01);
}

TEST_F(TraceTest, CallsAreEuropeanAndWellFormed) {
  ASSERT_GT(trace_.calls().size(), 1000u);
  for (const auto& call : trace_.calls()) {
    const auto& config = trace_.configs().get(call.config);
    EXPECT_GE(config.total_participants(), 1);
    EXPECT_LE(config.total_participants(), 10);
    for (const auto& [country, count] : config.participants) {
      EXPECT_EQ(world_.country(country).continent, geo::Continent::kEurope);
      EXPECT_GT(count, 0);
    }
    EXPECT_GE(call.start_slot, 0);
    EXPECT_LT(call.start_slot, trace_.num_slots());
    // First joiner is one of the participating countries.
    bool found = false;
    for (const auto& [country, count] : config.participants)
      found |= country == call.first_joiner;
    EXPECT_TRUE(found);
  }
}

TEST_F(TraceTest, MostCallsAreIntraCountry) {
  int intra = 0;
  for (const auto& call : trace_.calls())
    intra += trace_.configs().get(call.config).intra_country();
  const double share = static_cast<double>(intra) / trace_.calls().size();
  EXPECT_GT(share, 0.7);  // §6.3: "majority of the calls today are intra-country"
}

TEST_F(TraceTest, ConfigCountsMatchCalls) {
  const auto counts = trace_.config_counts();
  double total = 0.0;
  for (const auto& series : counts)
    for (const double v : series) total += v;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(trace_.calls().size()));
  // Slot index agrees.
  for (const auto idx : trace_.calls_starting_in(100))
    EXPECT_EQ(trace_.calls()[idx].start_slot, 100);
}

TEST_F(TraceTest, TopConfigsCoverMostCalls) {
  const auto by_volume = trace_.configs_by_volume();
  const auto counts = trace_.config_counts();
  double total = 0.0, top = 0.0;
  std::vector<double> per_config(counts.size(), 0.0);
  for (std::size_t c = 0; c < counts.size(); ++c)
    for (const double v : counts[c]) per_config[c] += v;
  for (const double v : per_config) total += v;
  // Heavy-tailed popularity (paper: top 3,000 of all configs cover 90+%).
  const std::size_t k = std::min<std::size_t>(100, by_volume.size());
  for (std::size_t i = 0; i < k; ++i)
    top += per_config[static_cast<std::size_t>(by_volume[i].value())];
  EXPECT_GT(top / total, 0.6);
  double top_quarter = 0.0;
  const std::size_t q = by_volume.size() / 4;
  for (std::size_t i = 0; i < q; ++i)
    top_quarter += per_config[static_cast<std::size_t>(by_volume[i].value())];
  EXPECT_GT(top_quarter / total, 0.9);
}

TEST_F(TraceTest, WeekdayBusierThanWeekend) {
  std::vector<double> per_day(static_cast<std::size_t>(opts_.weeks * 7), 0.0);
  for (const auto& call : trace_.calls())
    per_day[static_cast<std::size_t>(core::day_of(call.start_slot))] += 1.0;
  EXPECT_GT(per_day[2], 2.0 * per_day[5]);  // Wed >> Sat
}

TEST_F(TraceTest, WindowRebasesSlots) {
  const Trace week2 = trace_.window(core::kSlotsPerWeek, 2 * core::kSlotsPerWeek);
  EXPECT_EQ(week2.num_slots(), core::kSlotsPerWeek);
  std::size_t expected = 0;
  for (const auto& call : trace_.calls())
    expected += call.start_slot >= core::kSlotsPerWeek;
  EXPECT_EQ(week2.calls().size(), expected);
  for (const auto& call : week2.calls()) {
    EXPECT_GE(call.start_slot, 0);
    EXPECT_LT(call.start_slot, core::kSlotsPerWeek);
  }
  // Registry shared: config ids still resolve.
  EXPECT_EQ(week2.configs().size(), trace_.configs().size());
}

TEST_F(TraceTest, DeterministicForSeed) {
  const Trace again = TraceGenerator(world_).generate(opts_);
  ASSERT_EQ(again.calls().size(), trace_.calls().size());
  for (std::size_t i = 0; i < 100 && i < trace_.calls().size(); ++i) {
    EXPECT_EQ(again.calls()[i].start_slot, trace_.calls()[i].start_slot);
    EXPECT_EQ(again.calls()[i].config, trace_.calls()[i].config);
  }
}

}  // namespace
}  // namespace titan::workload
