// Tests for the network substrate: WAN topology + routing, the latency
// ground truth (corridor calibration, epochs), the loss/jitter model
// (transit episodes, unusable countries), elasticity, and the NetworkDb
// façade (capacities, fiber cuts).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/stats.h"
#include "net/network_db.h"

namespace titan::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  geo::World world_ = geo::World::make();
  net::NetworkDb db_{world_};
};

// --- Topology ----------------------------------------------------------------

TEST_F(NetTest, TopologyIsConnected) {
  const auto& topo = db_.topology();
  EXPECT_EQ(topo.node_count(), world_.dcs().size() + world_.countries().size());
  // Every (country, DC) pair must have a finite path.
  for (const auto& c : world_.countries())
    for (const auto& d : world_.dcs()) {
      const WanPath& p = topo.path(c.id, d.id);
      EXPECT_TRUE(std::isfinite(p.one_way_ms)) << c.name << " -> " << d.name;
      EXPECT_GT(p.one_way_ms, 0.0);
    }
}

TEST_F(NetTest, PathsAreContiguousLinkSequences) {
  const auto& topo = db_.topology();
  const auto fr = world_.find_country("france");
  const auto hk = world_.find_dc("hongkong");
  const WanPath& p = topo.path(fr, hk);
  ASSERT_FALSE(p.links.empty());
  // Links chain from the DC node to the country PoP; verify total latency.
  double total = 0.0;
  for (const auto lid : p.links) total += topo.link(lid).latency_ms;
  EXPECT_NEAR(total, p.one_way_ms, 1e-6);
}

TEST_F(NetTest, NearbyDcHasShortPath) {
  const auto& topo = db_.topology();
  const auto nl = world_.find_country("netherlands");
  EXPECT_LT(topo.path(nl, world_.find_dc("netherlands")).one_way_ms,
            topo.path(nl, world_.find_dc("singapore")).one_way_ms);
}

TEST_F(NetTest, LinkCapacityScaleValidation) {
  auto& topo = db_.topology();
  const auto lid = topo.links().front().id;
  topo.set_link_capacity_scale(lid, 0.5);
  EXPECT_DOUBLE_EQ(topo.link(lid).capacity_scale, 0.5);
  EXPECT_THROW(topo.set_link_capacity_scale(lid, -1.0), std::invalid_argument);
}

// --- Latency model -----------------------------------------------------------

TEST_F(NetTest, LatencyIsDeterministicPerKey) {
  const auto fr = world_.find_country("france");
  const auto nl = world_.find_dc("netherlands");
  const double a = db_.latency().hourly_rtt_ms(fr, nl, PathType::kWan, 10);
  const double b = db_.latency().hourly_rtt_ms(fr, nl, PathType::kWan, 10);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, db_.latency().hourly_rtt_ms(fr, nl, PathType::kWan, 11));
}

TEST_F(NetTest, LatencyRespectsPhysicalBound) {
  for (const auto& c : world_.countries()) {
    for (const auto& d : world_.dcs()) {
      const double bound =
          2.0 * geo::fiber_delay_ms(c.centroid, d.position);
      for (const PathType p : {PathType::kWan, PathType::kInternet}) {
        const double rtt = db_.latency().hourly_rtt_ms(c.id, d.id, p, 42);
        EXPECT_GE(rtt, bound) << c.name << "->" << d.name;
      }
    }
  }
}

TEST_F(NetTest, IntraEuropeLatenciesAreSmall) {
  const auto fr = world_.find_country("france");
  const auto nl = world_.find_dc("netherlands");
  for (const PathType p : {PathType::kWan, PathType::kInternet})
    EXPECT_LT(db_.latency().base_rtt_ms(fr, nl, p), 60.0);
}

// Corridor calibration: the NA-EU corridor should have a high fraction F of
// hours where the Internet is within 10 msec of WAN; Europe->Hong Kong
// should be substantially worse (Fig. 4's structure).
TEST_F(NetTest, CorridorStructureMatchesPaper) {
  auto fraction_f = [&](const std::vector<core::CountryId>& clients, core::DcId dc) {
    int good = 0, total = 0;
    for (const auto c : clients) {
      for (int h = 0; h < 7 * 24; ++h) {
        const double diff = db_.latency().hourly_rtt_ms(c, dc, PathType::kInternet, h) -
                            db_.latency().hourly_rtt_ms(c, dc, PathType::kWan, h);
        good += diff <= 10.0;
        ++total;
      }
    }
    return static_cast<double>(good) / total;
  };

  const auto eu_clients = world_.countries_in(geo::Continent::kEurope);
  const auto na_clients = world_.countries_in(geo::Continent::kNorthAmerica);
  const double f_eu_to_us = fraction_f(eu_clients, world_.find_dc("us1"));
  const double f_na_to_nl = fraction_f(na_clients, world_.find_dc("netherlands"));
  const double f_eu_to_hk = fraction_f(eu_clients, world_.find_dc("hongkong"));
  const double f_eu_to_sa = fraction_f(eu_clients, world_.find_dc("southafrica"));

  EXPECT_GT(f_eu_to_us, 0.5);   // paper: 41-85% for Europe -> NA
  EXPECT_GT(f_na_to_nl, 0.5);   // paper: 64-74% for NA -> Europe
  EXPECT_LT(f_eu_to_hk, 0.55);  // paper: 31-56% Europe -> Hong Kong
  EXPECT_GT(f_eu_to_sa, 0.6);   // paper: Europe well connected to SA DC
  EXPECT_GT(f_eu_to_us, f_eu_to_hk + 0.1);
}

TEST_F(NetTest, PastEpochHasHigherLatencies) {
  // Fig. 18: latencies improved over 12 months for most paths, Internet a
  // bit more.
  net::NetworkDbOptions old_opts;
  old_opts.latency.epoch_months = -12.0;
  net::NetworkDb old_db(world_, old_opts);
  int wan_improved = 0, internet_improved = 0, total = 0;
  for (const auto& c : world_.countries()) {
    for (const auto& d : world_.dcs()) {
      ++total;
      wan_improved += db_.latency().base_rtt_ms(c.id, d.id, PathType::kWan) <
                      old_db.latency().base_rtt_ms(c.id, d.id, PathType::kWan);
      internet_improved += db_.latency().base_rtt_ms(c.id, d.id, PathType::kInternet) <
                           old_db.latency().base_rtt_ms(c.id, d.id, PathType::kInternet);
    }
  }
  EXPECT_GT(static_cast<double>(wan_improved) / total, 0.8);
  EXPECT_GT(static_cast<double>(internet_improved) / total, 0.8);
}

TEST_F(NetTest, ProbeRttHasNoiseAroundHourlyMedian) {
  const auto fr = world_.find_country("france");
  const auto city = world_.cities_of(fr).front();
  const auto asn = world_.asns_of(fr).front();
  const auto nl = world_.find_dc("netherlands");
  core::Rng rng(3);
  core::Accumulator acc;
  for (int i = 0; i < 500; ++i)
    acc.add(db_.latency().probe_rtt_ms(city, asn, nl, PathType::kWan, 5, rng));
  const double median = db_.latency().hourly_rtt_ms(fr, nl, PathType::kWan, 5);
  EXPECT_GT(acc.stddev(), 0.1);          // probes are noisy
  EXPECT_NEAR(acc.mean(), median, 15.0);  // but centred near the median
  EXPECT_GE(acc.min(), 1.0);
}

// --- Loss model ----------------------------------------------------------------

TEST_F(NetTest, WanLossIsNearZeroInternetHasTail) {
  const auto eu = world_.countries_in(geo::Continent::kEurope);
  const auto nl = world_.find_dc("netherlands");
  std::vector<double> wan_losses, internet_losses;
  for (const auto c : eu) {
    if (db_.loss().internet_unusable(c)) continue;
    for (core::SlotIndex s = 0; s < 7 * core::kSlotsPerDay; ++s) {
      wan_losses.push_back(db_.loss().slot_loss(c, nl, PathType::kWan, s));
      internet_losses.push_back(db_.loss().slot_loss(c, nl, PathType::kInternet, s));
    }
  }
  // WAN loss bounded by 0.02% everywhere (Fig. 7).
  for (const double l : wan_losses) EXPECT_LE(l, 0.0002);
  // Internet tail: some slots see >= 0.1% loss, but the median is clean.
  const double med = core::median(internet_losses);
  EXPECT_LE(med, 0.0005);
  int spikes = 0;
  for (const double l : internet_losses) spikes += l >= 0.001;
  EXPECT_GT(spikes, 0);
  const double spike_rate = static_cast<double>(spikes) / internet_losses.size();
  EXPECT_GT(spike_rate, 0.005);
  EXPECT_LT(spike_rate, 0.25);
}

TEST_F(NetTest, UnusableCountriesHaveHeavyInternetLoss) {
  const auto de = world_.find_country("germany");
  ASSERT_TRUE(db_.loss().internet_unusable(de));
  const auto nl = world_.find_dc("netherlands");
  for (core::SlotIndex s = 0; s < 20; ++s)
    EXPECT_GE(db_.loss().slot_loss(de, nl, PathType::kInternet, s), 0.01);
}

TEST_F(NetTest, TransitCongestionHitsManyCountriesAtOnce) {
  // Find a congested (transit, slot) and verify all countries homed on that
  // transit see elevated loss in that slot (the one-to-many signature).
  const auto nl = world_.find_dc("netherlands");
  const auto transits = db_.loss().transits_of(nl);
  ASSERT_EQ(transits.size(), 3u);
  const auto eu = world_.countries_in(geo::Continent::kEurope);

  for (core::SlotIndex s = 0; s < 2000; ++s) {
    for (const auto t : transits) {
      if (!db_.loss().transit_congested(t, s)) continue;
      for (const auto c : eu) {
        if (db_.loss().internet_unusable(c)) continue;
        if (db_.loss().transit_for(c, nl) != t) continue;
        EXPECT_GE(db_.loss().slot_loss(c, nl, PathType::kInternet, s), 0.0001);
      }
      return;  // verified one episode
    }
  }
  FAIL() << "no congestion episode found in 2000 slots";
}

TEST_F(NetTest, TransitFailoverMovesPairToAnotherIsp) {
  const auto fr = world_.find_country("france");
  const auto nl = world_.find_dc("netherlands");
  const auto before = db_.loss().transit_for(fr, nl);
  db_.loss().fail_over(fr, nl);
  const auto after = db_.loss().transit_for(fr, nl);
  EXPECT_NE(before, after);
  // Cycling through all transits returns to the original.
  db_.loss().fail_over(fr, nl);
  db_.loss().fail_over(fr, nl);
  EXPECT_EQ(db_.loss().transit_for(fr, nl), before);
  db_.loss().reset_failovers();
  EXPECT_EQ(db_.loss().transit_for(fr, nl), before);
}

TEST_F(NetTest, ForcedTransitDegradeAddsLossUntilFailOver) {
  const auto fr = world_.find_country("france");
  const auto nl = world_.find_dc("netherlands");
  const auto home = db_.loss().transit_for(fr, nl);
  ASSERT_FALSE(db_.loss().transit_degraded(home));

  // While degraded, the transit counts as congested in every slot and every
  // homed pair's loss carries the added floor — past the 1% failover bar.
  db_.loss().degrade_transit(home, 0.03);
  EXPECT_TRUE(db_.loss().transit_degraded(home));
  for (core::SlotIndex s = 0; s < 50; ++s) {
    EXPECT_TRUE(db_.loss().transit_congested(home, s));
    EXPECT_GE(db_.loss().slot_loss(fr, nl, PathType::kInternet, s), 0.03);
  }

  // Titan's §4.2-finding-6 answer: steer the pair to an alternate provider.
  // The pair recovers immediately even though the transit stays degraded.
  db_.loss().fail_over(fr, nl);
  EXPECT_NE(db_.loss().transit_for(fr, nl), home);
  int clean = 0;
  for (core::SlotIndex s = 0; s < 50; ++s)
    clean += db_.loss().slot_loss(fr, nl, PathType::kInternet, s) < 0.03;
  EXPECT_GT(clean, 40);  // only background episodes and spikes remain

  // Further steering (e.g. a background episode on the alternate) must
  // never rotate the pair back onto the provider known to be degraded.
  db_.loss().fail_over(fr, nl);
  EXPECT_NE(db_.loss().transit_for(fr, nl), home);
  db_.loss().fail_over(fr, nl);
  EXPECT_NE(db_.loss().transit_for(fr, nl), home);

  db_.loss().reset_failovers();
  db_.loss().clear_transit_degrade(home);
  EXPECT_FALSE(db_.loss().transit_degraded(home));
  db_.loss().degrade_transit(home, 0.05);
  db_.loss().reset_degrades();
  EXPECT_FALSE(db_.loss().transit_degraded(home));
}

TEST_F(NetTest, JitterSlightlyWorseOnInternet) {
  const auto eu = world_.countries_in(geo::Continent::kEurope);
  const auto nl = world_.find_dc("netherlands");
  core::Accumulator wan, internet;
  for (const auto c : eu)
    for (core::SlotIndex s = 0; s < 400; ++s) {
      wan.add(db_.loss().slot_jitter_ms(c, nl, PathType::kWan, s));
      internet.add(db_.loss().slot_jitter_ms(c, nl, PathType::kInternet, s));
    }
  EXPECT_NEAR(wan.mean(), 3.4, 0.5);
  EXPECT_GT(internet.mean(), wan.mean());
  EXPECT_LT(internet.mean() / wan.mean(), 1.25);  // "up to 10%" + episodes
}

// --- Elasticity / capacities -----------------------------------------------------

TEST_F(NetTest, ElasticityFlatThenKnee) {
  const auto uk = world_.find_country("uk");
  const auto nl = world_.find_dc("netherlands");
  const double demand = db_.pair_peak_demand(uk, nl);
  const double cap = db_.physical_internet_capacity(uk, nl);
  ASSERT_GT(cap, 0.0);

  // At 20% offload: no systematic inflation (Fig. 8).
  const double rtt_0 = db_.effective_internet_rtt(uk, nl, 10, 0.0);
  const double rtt_20 = db_.effective_internet_rtt(uk, nl, 10, 0.20 * demand);
  EXPECT_NEAR(rtt_20, rtt_0, 2.0);
  const double loss_0 = db_.effective_internet_loss(uk, nl, 10, 0.0);
  const double loss_20 = db_.effective_internet_loss(uk, nl, 10, 0.20 * demand);
  EXPECT_NEAR(loss_20, loss_0, 0.001);

  // Far past the knee both inflate hard.
  const double rtt_over = db_.effective_internet_rtt(uk, nl, 10, 3.0 * cap);
  const double loss_over = db_.effective_internet_loss(uk, nl, 10, 3.0 * cap);
  EXPECT_GT(rtt_over, rtt_0 + 20.0);
  EXPECT_GT(loss_over, loss_0 + 0.01);
}

TEST_F(NetTest, CapacityMonotoneInPriority) {
  // Higher call-volume countries get at least as much of the peering share.
  const auto nl = world_.find_dc("netherlands");
  const auto uk = world_.find_country("uk");          // high volume
  const auto lux = world_.find_country("luxembourg");  // low volume
  EXPECT_GT(db_.physical_internet_capacity(uk, nl),
            db_.physical_internet_capacity(lux, nl));
}

TEST_F(NetTest, FiberCutSeversHighestCapacityLink) {
  const auto za = world_.find_country("southafrica");
  const auto za_dc = world_.find_dc("southafrica");
  const auto cut = db_.cut_wan_link_on_path(za, za_dc, 0.0);
  EXPECT_DOUBLE_EQ(db_.topology().link(cut).capacity_scale, 0.0);
  // The cut link is on the pair's path.
  bool found = false;
  for (const auto lid : db_.topology().path(za, za_dc).links) found |= lid == cut;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace titan::net
