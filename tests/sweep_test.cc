// Tests for the seed x scenario sweep harness: the determinism property
// (bit-identical SimResults across thread counts for every named scenario,
// and sweep output invariant under task-order shuffling and worker count),
// distribution statistics, lossless JSON round-trips of per-run and
// aggregate results, and baseline regression comparison (passing on self,
// failing on perturbation beyond tolerance).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sweep/baseline.h"
#include "sweep/json.h"
#include "sweep/perf_report.h"
#include "sweep/protocol.h"
#include "sweep/serialize.h"
#include "sweep/sweep.h"

namespace titan::sweep {
namespace {

// Sweep-wide overrides that shrink every scenario to ctest cost while still
// replanning several times (mirrors sim_test's golden configuration).
SweepSpec small_spec() {
  SweepSpec spec;
  spec.num_seeds = 2;
  spec.peak_slot_calls = 25.0;
  spec.training_weeks = 1;
  spec.shards = 8;
  spec.replan_interval_slots = 12;
  spec.max_reduced_configs = 20;
  spec.oracle_counts = true;  // skip Holt-Winters: cheap and platform-stable
  return spec;
}

// --- stats ---------------------------------------------------------------

TEST(SweepStatsTest, ComputeStatsMatchesHandValues) {
  const auto s = compute_stats({4.0, 1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);       // type-7 interpolation
  EXPECT_DOUBLE_EQ(s.p95, 3.85);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_THROW((void)compute_stats({}), std::invalid_argument);
}

TEST(SweepStatsTest, MetricSchemaIsConsistent) {
  sim::SimResult r;
  r.calls = 10;
  r.dc_migrations = 2;
  const auto values = metric_values(r);
  ASSERT_EQ(values.size(), metric_names().size());
  // Spot-check the name -> value pairing for the rate metrics.
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (metric_names()[i] == "migration_rate") {
      EXPECT_DOUBLE_EQ(values[i], 0.2);
    }
    if (metric_names()[i] == "calls") {
      EXPECT_DOUBLE_EQ(values[i], 10.0);
    }
  }
}

// --- spec validation -----------------------------------------------------

TEST(SweepRunnerTest, RejectsBadSpecsUpFront) {
  {
    SweepSpec spec = small_spec();
    spec.scenarios = {"no-such-scenario"};
    EXPECT_THROW(SweepRunner runner(spec), std::invalid_argument);
  }
  {
    SweepSpec spec = small_spec();
    spec.num_seeds = 0;
    EXPECT_THROW(SweepRunner runner(spec), std::invalid_argument);
  }
  {
    SweepSpec spec = small_spec();
    spec.sim_threads = {};
    EXPECT_THROW(SweepRunner runner(spec), std::invalid_argument);
  }
  {
    SweepSpec spec = small_spec();
    spec.sim_threads = {1, 0};
    EXPECT_THROW(SweepRunner runner(spec), std::invalid_argument);
  }
}

TEST(SweepRunnerTest, EmptyScenarioListResolvesToWholeLibrary) {
  const SweepRunner runner(small_spec());
  EXPECT_EQ(runner.spec().scenarios, sim::scenario_names());
}

// --- the determinism property, engine level ------------------------------

// For every named scenario, the full SimResult — counters, WAN usage, and
// every per-slot stream — is bit-identical at 1, 2, and 8 worker threads.
// Stronger than the golden-checksum test: the checksum only fingerprints
// assignment decisions; this compares everything the engine reports.
TEST(SweepDeterminismTest, SimResultBitIdenticalAcrossThreadCountsForEveryScenario) {
  const SweepSpec spec = small_spec();
  for (const auto& name : sim::scenario_names()) {
    sim::SimEngine engine(sweep_scenario(spec, name, spec.base_seed));
    sim::SimResult r1 = engine.run(1);
    sim::SimResult r2 = engine.run(2);
    sim::SimResult r8 = engine.run(8);
    ASSERT_GT(r1.calls, 0) << name;
    for (sim::SimResult* r : {&r1, &r2, &r8}) {
      // Mask the only legitimately varying fields before the bitwise compare.
      r->zero_wallclock();
    }
    EXPECT_TRUE(r1 == r2) << name << ": threads 1 vs 2 diverged";
    EXPECT_TRUE(r1 == r8) << name << ": threads 1 vs 8 diverged";
  }
}

// --- the determinism property, sweep level -------------------------------

// One sweep over the whole library at sim_threads {1, 2, 8}: the runner's
// internal audit must find no divergence, and the thread-count replicas of
// each (scenario, seed) must carry identical metrics and checksums —
// identical up to the schema's declared timing metrics, which are wall
// clock and masked before the compare.
TEST(SweepDeterminismTest, SweepAuditsThreadInvarianceForEveryScenario) {
  SweepSpec spec = small_spec();
  spec.num_seeds = 1;
  spec.sim_threads = {1, 2, 8};
  SweepResult result = SweepRunner(spec).run();

  EXPECT_TRUE(result.determinism_violations.empty());
  ASSERT_EQ(result.runs.size(), sim::scenario_names().size() * 3);
  mask_timing_metrics(result);
  for (std::size_t i = 0; i < result.runs.size(); i += 3) {
    for (std::size_t v = 1; v < 3; ++v) {
      EXPECT_EQ(result.runs[i].checksum, result.runs[i + v].checksum)
          << result.runs[i].scenario;
      EXPECT_EQ(result.runs[i].values, result.runs[i + v].values) << result.runs[i].scenario;
    }
  }
}

// The timing mask is surgical: it has exactly the declared indices to
// touch (currently plan_solve_seconds), and every *other* metric of two
// thread-count replicas is already bit-identical unmasked.
TEST(SweepDeterminismTest, OnlyDeclaredTimingMetricsAreNondeterministic) {
  ASSERT_EQ(timing_metric_indices().size(), 1u);
  EXPECT_EQ(metric_names()[timing_metric_indices().front()], "plan_solve_seconds");

  SweepSpec spec = small_spec();
  spec.num_seeds = 1;
  spec.scenarios = {"steady-week"};
  spec.sim_threads = {1, 2};
  const SweepResult result = SweepRunner(spec).run();
  ASSERT_EQ(result.runs.size(), 2u);
  for (std::size_t m = 0; m < metric_names().size(); ++m) {
    if (m == timing_metric_indices().front()) continue;
    EXPECT_EQ(result.runs[0].values[m], result.runs[1].values[m]) << metric_names()[m];
  }
}

// Two invocations with shuffled task order and different worker-pool sizes
// must serialize to the exact same bytes once the declared timing metrics
// are masked: execution schedule is not data.
TEST(SweepDeterminismTest, ShuffledTaskOrderAndWorkerCountProduceIdenticalResults) {
  SweepSpec canonical = small_spec();
  canonical.scenarios = {"steady-week", "dc-drain", "flash-crowd"};
  canonical.workers = 1;
  canonical.task_order_seed = 0;

  SweepSpec shuffled = canonical;
  shuffled.workers = 4;
  shuffled.task_order_seed = 0xC0FFEE;

  SweepResult a = SweepRunner(canonical).run();
  SweepResult b = SweepRunner(shuffled).run();
  // The unmasked results still pass the tolerance-based baseline check
  // against each other (the timing metric has unbounded slack there)...
  EXPECT_TRUE(compare_to_baseline(a, b, default_tolerances()).empty());
  // ...and masked, they are the same result down to the byte.
  mask_timing_metrics(a);
  mask_timing_metrics(b);
  EXPECT_TRUE(a.runs == b.runs);
  EXPECT_TRUE(a.aggregates == b.aggregates);
  EXPECT_EQ(to_json_text(a), to_json_text(b));
  // Whole-struct equality: the result's spec echo normalizes the
  // execution knobs, so differently-scheduled sweeps compare equal — and
  // in particular compare_to_baseline never sees a spec mismatch from a
  // worker-count difference (the CI check passes --workers).
  EXPECT_TRUE(a == b);
}

// --- observability -------------------------------------------------------

// The sweep's per-task wall times are reporting-only state: populated for
// every task in canonical (scenario-major, seed-minor) order, zeroed by
// the same mask that hides the timing metrics, and absent from the JSON so
// the schema (and every committed baseline) is unaffected.
TEST(SweepObsTest, TaskSecondsArePopulatedMaskedAndNeverSerialized) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"steady-week", "dc-drain"};
  spec.num_seeds = 2;
  SweepResult result = SweepRunner(spec).run();

  ASSERT_EQ(result.task_seconds.size(), 4u);  // 2 scenarios x 2 seeds
  for (const double s : result.task_seconds) EXPECT_GT(s, 0.0);
  EXPECT_EQ(to_json_text(result).find("task_seconds"), std::string::npos);

  mask_timing_metrics(result);
  for (const double s : result.task_seconds) EXPECT_EQ(s, 0.0);
}

// Satellite of the obs:: histogram contract at sweep scale: for every
// scenario in the library, the deterministic call-duration histogram the
// engine merges out of its shards is bit-identical at 1, 2, and 8 sim
// threads — bucket counts, sum, and recorded extremes included. (The
// pure-histogram merge-order property lives in obs_test; this drives it
// through the real sharded executor for every workload shape we ship.)
TEST(SweepObsTest, MergedHistogramsBitIdenticalAcrossThreadCounts) {
  const SweepSpec spec = small_spec();
  for (const auto& name : sim::scenario_names()) {
    sim::SimEngine engine(sweep_scenario(spec, name, spec.base_seed));
    const sim::SimResult r1 = engine.run(1);
    const sim::SimResult r2 = engine.run(2);
    const sim::SimResult r8 = engine.run(8);
    ASSERT_GT(r1.perf.call_duration_slots.total_count(), 0u) << name;
    EXPECT_TRUE(r1.perf.call_duration_slots == r2.perf.call_duration_slots) << name;
    EXPECT_TRUE(r1.perf.call_duration_slots == r8.perf.call_duration_slots) << name;
    EXPECT_EQ(r1.perf.events_processed, r8.perf.events_processed) << name;
  }
}

// --- aggregation over seeds ----------------------------------------------

TEST(SweepRunnerTest, AggregatesReduceAcrossSeeds) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"steady-week"};
  spec.num_seeds = 3;
  const SweepResult result = SweepRunner(spec).run();

  ASSERT_EQ(result.runs.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(result.runs[static_cast<std::size_t>(i)].seed,
              spec.base_seed + static_cast<std::uint64_t>(i));
  // Different seeds, different workloads: call counts must actually vary.
  EXPECT_NE(result.runs[0].checksum, result.runs[1].checksum);

  ASSERT_EQ(result.aggregates.size(), 1u);
  const auto& agg = result.aggregates[0];
  EXPECT_EQ(agg.scenario, "steady-week");
  EXPECT_EQ(agg.seeds, 3);
  ASSERT_EQ(agg.stats.size(), metric_names().size());
  for (std::size_t m = 0; m < metric_names().size(); ++m) {
    const auto& s = agg.stats[m];
    EXPECT_EQ(s.count, 3u) << metric_names()[m];
    EXPECT_LE(s.min, s.p50) << metric_names()[m];
    EXPECT_LE(s.p50, s.p95) << metric_names()[m];
    EXPECT_LE(s.p95, s.max) << metric_names()[m];
    EXPECT_GE(s.mean, s.min) << metric_names()[m];
    EXPECT_LE(s.mean, s.max) << metric_names()[m];
    // Re-derive the stats from the runs: must agree exactly.
    std::vector<double> samples;
    for (const auto& run : result.runs) samples.push_back(run.values[m]);
    EXPECT_TRUE(s == compute_stats(samples)) << metric_names()[m];
  }
}

// --- JSON round-trips (guards the baseline file format) ------------------

TEST(SweepJsonTest, ValueRoundTripIsLossless) {
  const std::string text =
      "{\"a\": [1, 2.5, -3e-2, true, false, null], \"s\": \"q\\\"\\\\\\n\\u0007end\","
      " \"nested\": {\"k\": 0.1234567890123456789}}";
  const Json parsed = Json::parse(text);
  // parse -> dump -> parse -> dump stabilizes after the first dump.
  const std::string once = parsed.dump();
  const std::string twice = Json::parse(once).dump();
  EXPECT_EQ(once, twice);
  EXPECT_TRUE(parsed == Json::parse(once));
  // 0.1 is not representable; 17 significant digits must reconstruct it.
  EXPECT_DOUBLE_EQ(Json::parse(Json::number(0.1).dump()).as_number(), 0.1);

  EXPECT_THROW((void)Json::parse("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("[1, 2] trailing"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{\"a\": 1,}"), std::invalid_argument);
  // Surrogate escapes would decode to invalid UTF-8; the parser fails loud.
  EXPECT_THROW((void)Json::parse("\"\\ud83d\\ude00\""), std::invalid_argument);
}

TEST(SweepJsonTest, SweepResultRoundTripIsLossless) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"steady-week", "weekend-transition"};
  spec.sim_threads = {1, 2};
  const SweepResult result = SweepRunner(spec).run();

  // Struct-level: parse(serialize(x)) == x, spec and violations included.
  const std::string text = to_json_text(result);
  const SweepResult parsed = from_json_text(text);
  EXPECT_TRUE(parsed == result);

  // Byte-level: serialize -> parse -> re-serialize is the identity.
  EXPECT_EQ(to_json_text(parsed), text);

  // Aggregate-only documents (CI artifacts) round-trip the same way.
  const std::string aggregate_text = to_json_text(result, /*include_runs=*/false);
  const SweepResult aggregate_parsed = from_json_text(aggregate_text);
  EXPECT_TRUE(aggregate_parsed.runs.empty());
  EXPECT_TRUE(aggregate_parsed.aggregates == result.aggregates);
  EXPECT_EQ(to_json_text(aggregate_parsed, /*include_runs=*/false), aggregate_text);
}

// Seeds are full uint64 values; JSON numbers would corrupt them past 2^53,
// so they travel as decimal strings and survive exactly.
TEST(SweepJsonTest, FullRangeSeedsRoundTripExactly) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"steady-week"};
  spec.num_seeds = 1;
  spec.base_seed = 18446744073709551615ULL;  // 2^64 - 1
  const SweepResult result = SweepRunner(spec).run();
  const SweepResult parsed = from_json_text(to_json_text(result));
  EXPECT_EQ(parsed.spec.base_seed, spec.base_seed);
  ASSERT_EQ(parsed.runs.size(), 1u);
  EXPECT_EQ(parsed.runs[0].seed, spec.base_seed);
  EXPECT_TRUE(parsed == result);
}

TEST(SweepJsonTest, SchemaAndMetricMismatchesAreRejected) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"steady-week"};
  const SweepResult result = SweepRunner(spec).run();
  Json doc = to_json(result);

  Json bad_schema = doc;
  bad_schema.set("schema", Json::number(99));
  EXPECT_THROW((void)from_json(bad_schema), std::invalid_argument);

  Json bad_metrics = doc;
  Json metrics = Json::array();
  metrics.push_back(Json::string("not-a-metric"));
  bad_metrics.set("metrics", std::move(metrics));
  EXPECT_THROW((void)from_json(bad_metrics), std::invalid_argument);
}

// --- baseline comparison -------------------------------------------------

TEST(SweepBaselineTest, SelfComparePassesAndPerturbationFails) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"steady-week", "dc-drain"};
  const SweepResult result = SweepRunner(spec).run();
  const Tolerances tol = default_tolerances();

  // A sweep compared against itself can never regress.
  EXPECT_TRUE(compare_to_baseline(result, result, tol).empty());

  // Perturb one metric's mean past its tolerance: exactly that (scenario,
  // metric, stat) must be flagged.
  const auto& names = metric_names();
  const std::size_t mos =
      static_cast<std::size_t>(std::find(names.begin(), names.end(), "mean_mos") -
                               names.begin());
  ASSERT_LT(mos, names.size());
  SweepResult perturbed = result;
  perturbed.aggregates[1].stats[mos].mean *= 1.10;  // +10% vs 5% tolerance
  const auto regressions = compare_to_baseline(perturbed, result, tol);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].scenario, "dc-drain");
  EXPECT_EQ(regressions[0].metric, "mean_mos");
  EXPECT_EQ(regressions[0].stat, "mean");
  EXPECT_FALSE(regressions[0].describe().empty());

  // A perturbation inside the tolerance stays green.
  SweepResult nudged = result;
  nudged.aggregates[1].stats[mos].mean *= 1.01;  // +1%, within 5%
  EXPECT_TRUE(compare_to_baseline(nudged, result, tol).empty());
}

TEST(SweepBaselineTest, LeakedCallsHaveZeroSlack) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"steady-week"};
  const SweepResult result = SweepRunner(spec).run();
  const auto& names = metric_names();
  const std::size_t leaked =
      static_cast<std::size_t>(std::find(names.begin(), names.end(), "leaked_calls") -
                               names.begin());
  ASSERT_LT(leaked, names.size());
  EXPECT_DOUBLE_EQ(result.aggregates[0].stats[leaked].mean, 0.0);

  SweepResult leaky = result;
  leaky.aggregates[0].stats[leaked].mean = 0.5;  // even a fractional mean leak
  const auto regressions = compare_to_baseline(leaky, result, default_tolerances());
  ASSERT_FALSE(regressions.empty());
  EXPECT_EQ(regressions[0].metric, "leaked_calls");
}

TEST(SweepBaselineTest, IncomparableSpecsThrow) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"steady-week"};
  const SweepResult result = SweepRunner(spec).run();

  SweepResult other = result;
  other.spec.num_seeds = result.spec.num_seeds + 1;
  EXPECT_THROW((void)compare_to_baseline(result, other, default_tolerances()),
               std::invalid_argument);

  SweepResult different_peak = result;
  different_peak.spec.peak_slot_calls = 999.0;
  EXPECT_THROW((void)compare_to_baseline(result, different_peak, default_tolerances()),
               std::invalid_argument);
}

// --- worker protocol (sweep/protocol.h) ----------------------------------

// The message the thrown exception carried, for pinning exact error text —
// the dispatcher's fault log and the fault-injection tests both match on
// these strings verbatim.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "<no exception>";
}

WorkSpec sample_work_spec() {
  WorkSpec spec;
  spec.scenario = "steady-week";
  spec.seed = 18446744073709551615ULL;  // 2^64 - 1: must survive as a string
  spec.lp_mode = "dual";
  spec.spec = small_spec();
  spec.spec.scenarios = {"steady-week", "dc-drain"};
  spec.spec.sim_threads = {1, 2};
  return spec;
}

PartialResult sample_partial_result() {
  PartialResult partial;
  partial.scenario = "steady-week";
  partial.seed = 18446744073709551615ULL;
  partial.task_seconds = 1.25;
  for (int t : {1, 2}) {
    RunRecord run;
    run.scenario = partial.scenario;
    run.seed = partial.seed;
    run.threads = t;
    run.checksum = 0xdeadbeefcafef00dULL;
    // Doubles that are not exactly representable: %.17g must carry them.
    for (std::size_t m = 0; m < metric_names().size(); ++m)
      run.values.push_back(0.1 + static_cast<double>(m) / 3.0);
    partial.records.push_back(std::move(run));
  }
  partial.determinism_violations = {"steady-week seed 7: threads 1 vs 2 diverged"};
  return partial;
}

// encode -> decode -> encode is the identity on the wire bytes, and the
// decoded structs compare equal — for both message types. A line never
// embeds a newline (the framing delimiter).
TEST(SweepProtocolTest, MessagesRoundTripByteStable) {
  const WorkSpec spec = sample_work_spec();
  const std::string spec_line = to_json_line(spec);
  EXPECT_EQ(spec_line.find('\n'), std::string::npos);
  const WorkSpec spec_back = work_spec_from_text(spec_line);
  EXPECT_TRUE(spec_back == spec);
  EXPECT_EQ(to_json_line(spec_back), spec_line);
  EXPECT_EQ(spec_back.seed, 18446744073709551615ULL);

  const PartialResult partial = sample_partial_result();
  const std::string partial_line = to_json_line(partial);
  EXPECT_EQ(partial_line.find('\n'), std::string::npos);
  const PartialResult partial_back = partial_result_from_text(partial_line);
  EXPECT_TRUE(partial_back == partial);
  EXPECT_EQ(to_json_line(partial_back), partial_line);
}

// Version skew fails before anything else, with the version named; unknown
// fields — top-level or in the nested spec/record objects — are rejected
// with the exact offending key. A dispatcher must never merge an answer it
// only partially understood.
TEST(SweepProtocolTest, RejectsUnknownVersionsAndFieldsWithExactText) {
  const std::string spec_line = to_json_line(sample_work_spec());
  const std::string partial_line = to_json_line(sample_partial_result());

  {
    Json j = Json::parse(spec_line);
    j.set("protocol", Json::number(99));
    j.set("surprise", Json::number(1));  // version beats unknown-field
    EXPECT_EQ(thrown_message([&] { (void)work_spec_from_json(j); }),
              "work spec json: protocol version 99 (this binary speaks 1)");
  }
  {
    Json j = Json::parse(spec_line);
    j.set("surprise", Json::number(1));
    EXPECT_EQ(thrown_message([&] { (void)work_spec_from_json(j); }),
              "work spec json: unknown field 'surprise'");
  }
  {
    Json j = Json::parse(spec_line);
    j.set("lp_mode", Json::string("turbo"));
    EXPECT_EQ(thrown_message([&] { (void)work_spec_from_json(j); }),
              "work spec json: unknown lp_mode 'turbo'");
  }
  {
    Json j = Json::parse(spec_line);
    Json inner = j.at("spec");
    inner.set("future_knob", Json::number(3));
    j.set("spec", std::move(inner));
    EXPECT_EQ(thrown_message([&] { (void)work_spec_from_json(j); }),
              "sweep spec json: unknown field 'future_knob'");
  }
  {
    Json j = Json::parse(partial_line);
    j.set("protocol", Json::number(2));
    EXPECT_EQ(thrown_message([&] { (void)partial_result_from_json(j); }),
              "partial result json: protocol version 2 (this binary speaks 1)");
  }
  {
    Json j = Json::parse(partial_line);
    j.set("elapsed", Json::number(1.0));
    EXPECT_EQ(thrown_message([&] { (void)partial_result_from_json(j); }),
              "partial result json: unknown field 'elapsed'");
  }
  {
    Json j = Json::parse(partial_line);
    Json records = j.at("records");
    Json first = records.at(0);
    first.set("notes", Json::string("hi"));
    Json rebuilt = Json::array();
    rebuilt.push_back(std::move(first));
    rebuilt.push_back(records.at(1));
    j.set("records", std::move(rebuilt));
    EXPECT_EQ(thrown_message([&] { (void)partial_result_from_json(j); }),
              "run record json: unknown field 'notes'");
  }
  // Truncated / non-JSON lines fail in the parser, loudly.
  EXPECT_THROW((void)work_spec_from_text(spec_line.substr(0, spec_line.size() / 2)),
               std::invalid_argument);
  EXPECT_THROW((void)partial_result_from_text("not json at all"), std::invalid_argument);
}

// The committed-baseline document reader stays tolerant (additive fields do
// not break old binaries), while the same object parsed strictly rejects:
// the strictness boundary is the wire, not the file format.
TEST(SweepProtocolTest, StrictnessAppliesToWireNotBaselineDocuments) {
  Json spec_json = sweep_spec_to_json(small_spec());
  spec_json.set("added_in_v9", Json::number(1));
  EXPECT_NO_THROW((void)sweep_spec_from_json(spec_json));
  EXPECT_THROW((void)sweep_spec_from_json(spec_json, /*strict=*/true),
               std::invalid_argument);
}

// --- assignment-latency budget gate (bench_assign_latency --check) ------

// A minimal budget / report pair in the shapes latency_budget_check
// documents; each case perturbs one aspect and states the verdict.
class LatencyBudgetTest : public ::testing::Test {
 protected:
  static Json budget_json() {
    return Json::parse(R"({
      "schema_version": 1,
      "config": {"rate_per_sec": 50000, "measure_seconds": 2},
      "budget": {"p99_us": 40.0, "min_samples": 1000}
    })");
  }
  static Json report_json(double p99, double count = 100000.0) {
    char buf[512];
    std::snprintf(buf, sizeof buf, R"({
      "schema_version": 1,
      "config": {"rate_per_sec": 50000, "measure_seconds": 2, "seed": 2024},
      "scenarios": [{"scenario": "assign-open-loop",
                     "assign_latency_us": {"count": %.1f, "p99": %.4f}}]
    })",
                  count, p99);
    return Json::parse(buf);
  }
};

TEST_F(LatencyBudgetTest, PassesWithinBudgetFailsAbove) {
  const auto ok = latency_budget_check(budget_json(), report_json(12.5));
  EXPECT_TRUE(ok.ok) << ok.text;
  EXPECT_NE(ok.text.find("OK"), std::string::npos);

  const auto over = latency_budget_check(budget_json(), report_json(41.0));
  EXPECT_FALSE(over.ok);
  EXPECT_NE(over.text.find("exceeds"), std::string::npos) << over.text;
  // Exactly at the budget is within it (<= semantics).
  EXPECT_TRUE(latency_budget_check(budget_json(), report_json(40.0)).ok);
}

TEST_F(LatencyBudgetTest, PinnedConfigKeysMustMatch) {
  // The report may carry EXTRA config (seed above): only pinned keys bind.
  EXPECT_TRUE(latency_budget_check(budget_json(), report_json(1.0)).ok);

  Json report = report_json(1.0);
  Json wrong_rate = Json::object();
  wrong_rate.set("rate_per_sec", Json::number(10000));
  wrong_rate.set("measure_seconds", Json::number(2));
  report.set("config", std::move(wrong_rate));
  const auto mismatch = latency_budget_check(budget_json(), report);
  EXPECT_FALSE(mismatch.ok);
  EXPECT_NE(mismatch.text.find("rate_per_sec"), std::string::npos) << mismatch.text;

  Json missing = report_json(1.0);
  Json cfg = Json::object();
  cfg.set("rate_per_sec", Json::number(50000));  // measure_seconds absent
  missing.set("config", std::move(cfg));
  EXPECT_FALSE(latency_budget_check(budget_json(), missing).ok);
}

TEST_F(LatencyBudgetTest, EnforcingFailureModesAreStrict) {
  // Too few measured samples cannot vacuously pass the budget.
  EXPECT_FALSE(latency_budget_check(budget_json(), report_json(1.0, 10.0)).ok);
  // A budget without budget.p99_us enforces nothing -> refuse loudly.
  EXPECT_FALSE(latency_budget_check(Json::parse(R"({"budget": {}})"), report_json(1.0)).ok);
  // Schema drift between budget and report is a failure, not a note.
  Json old_schema = report_json(1.0);
  old_schema.set("schema_version", Json::number(0));
  EXPECT_FALSE(latency_budget_check(budget_json(), old_schema).ok);
  // A report with no scenarios or no p99 fails.
  Json empty = report_json(1.0);
  empty.set("scenarios", Json::array());
  EXPECT_FALSE(latency_budget_check(budget_json(), empty).ok);
}

}  // namespace
}  // namespace titan::sweep
