// Focused coverage of the online controller (§6.4): route-quality failover
// threshold edges, the never-WAN->Internet capacity-safety invariant,
// migration / out-of-plan accounting against hand-crafted plans, and the
// drained-DC fallback. Plans are built directly from LpPlanResult weights
// so every decision path is pinned down exactly.
#include <gtest/gtest.h>

#include "titannext/controller.h"
#include "titannext/pipeline.h"

namespace titan::titannext {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new geo::World(geo::World::make());
    db_ = new net::NetworkDb(*world_);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete world_;
    db_ = nullptr;
    world_ = nullptr;
  }

  void SetUp() override {
    fr_ = world_->find_country("france");
    uk_ = world_->find_country("uk");
    ASSERT_TRUE(fr_.valid());
    ASSERT_TRUE(uk_.valid());

    PlanScope scope;
    scope.timeslots = 4;
    scope.max_reduced_configs = 10;
    std::map<std::pair<int, int>, double> fractions;
    for (const auto c : world_->countries_in(geo::Continent::kEurope))
      for (const auto d : world_->dcs_in(geo::Continent::kEurope))
        fractions[{c.value(), d.value()}] = 0.2;
    inputs_ = std::make_unique<PlanInputs>(*db_, scope, fractions);

    // Three shapes: the France intra-country audio singleton (the default
    // first-joiner guess), its video sibling, and a FR+UK international.
    fr_audio_.participants = {{fr_, 1}};
    fr_audio_.media = media::MediaType::kAudio;
    fr_video_.participants = {{fr_, 1}};
    fr_video_.media = media::MediaType::kVideo;
    fr_uk_.participants = {{fr_, 1}, {uk_, 1}};
    fr_uk_.canonicalize();
    fr_uk_.media = media::MediaType::kAudio;

    workload::ConfigRegistry registry;
    const auto a = registry.intern(fr_audio_);
    const auto v = registry.intern(fr_video_);
    const auto i = registry.intern(fr_uk_);
    std::vector<std::vector<double>> counts(registry.size(),
                                            std::vector<double>(4, 0.0));
    counts[static_cast<std::size_t>(a.value())] = {10, 10, 10, 10};
    counts[static_cast<std::size_t>(v.value())] = {5, 5, 5, 5};
    counts[static_cast<std::size_t>(i.value())] = {3, 3, 3, 3};
    inputs_->set_demand(registry, counts, /*use_reduction=*/true);

    dc0_ = inputs_->dcs().at(0);
    dc1_ = inputs_->dcs().at(1);
  }

  // A solved-looking plan: audio singleton -> dc0/WAN, international ->
  // dc1/WAN only. The video singleton is deliberately left out of the plan.
  OfflinePlan make_plan() {
    LpPlanResult result;
    result.status = lp::SolveStatus::kOptimal;
    result.weights.assign(4, std::vector<AssignmentWeights>(inputs_->demands().size()));
    const int a_idx = inputs_->demand_index(fr_audio_);
    const int i_idx = inputs_->demand_index(fr_uk_);
    EXPECT_GE(a_idx, 0);
    EXPECT_GE(i_idx, 0);
    for (int t = 0; t < 4; ++t) {
      result.weights[t][static_cast<std::size_t>(a_idx)].entries = {
          {dc0_, net::PathType::kWan, 10.0}};
      result.weights[t][static_cast<std::size_t>(i_idx)].entries = {
          {dc1_, net::PathType::kWan, 3.0}};
    }
    return OfflinePlan(inputs_.get(), std::move(result));
  }

  static geo::World* world_;
  static net::NetworkDb* db_;
  std::unique_ptr<PlanInputs> inputs_;
  core::CountryId fr_, uk_;
  core::DcId dc0_, dc1_;
  workload::CallConfig fr_audio_, fr_video_, fr_uk_;
};

geo::World* ControllerTest::world_ = nullptr;
net::NetworkDb* ControllerTest::db_ = nullptr;

// --- route-quality failover thresholds (§6.4) ---------------------------

TEST_F(ControllerTest, FailoverLossThresholdEdges) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  const double wan_rtt = db_->latency().base_rtt_ms(fr_, dc0_, net::PathType::kWan);

  // Exactly at the 1% loss threshold: fail over (>= semantics).
  EXPECT_TRUE(controller.should_route_failover(fr_, dc0_, 0.01, wan_rtt));
  // Just below the loss threshold with healthy RTT: stay.
  EXPECT_FALSE(controller.should_route_failover(fr_, dc0_, 0.0099, wan_rtt));
  // Zero loss, healthy RTT: stay.
  EXPECT_FALSE(controller.should_route_failover(fr_, dc0_, 0.0, wan_rtt));
}

TEST_F(ControllerTest, FailoverRttFactorEdges) {
  const auto plan = make_plan();
  ControllerOptions opts;
  OnlineController controller(*inputs_, plan, opts);
  const double wan_rtt = db_->latency().base_rtt_ms(fr_, dc0_, net::PathType::kWan);
  const double bound = wan_rtt * opts.route_failover_rtt_factor;

  // Exactly at the bound: stay (strict > semantics).
  EXPECT_FALSE(controller.should_route_failover(fr_, dc0_, 0.0, bound));
  // Just above: fail over.
  EXPECT_TRUE(controller.should_route_failover(fr_, dc0_, 0.0, bound * 1.001));
}

// --- initial assignment + convergence accounting ------------------------

TEST_F(ControllerTest, InitialAssignmentFollowsPlan) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  core::Rng rng(1);
  const auto initial = controller.assign_initial(fr_, media::MediaType::kAudio, 0, rng);
  EXPECT_TRUE(initial.from_plan);
  EXPECT_EQ(initial.assignment.dc, dc0_);
  EXPECT_EQ(initial.assignment.path, net::PathType::kWan);
}

TEST_F(ControllerTest, ConvergenceStaysWhenPlanSupportsCurrentDc) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  core::Rng rng(1);
  const auto initial = controller.assign_initial(fr_, media::MediaType::kAudio, 0, rng);
  const auto conv = controller.converge(initial, fr_audio_, 0, rng);
  EXPECT_FALSE(conv.dc_migration);
  EXPECT_FALSE(conv.out_of_plan);
  EXPECT_EQ(conv.final_assignment.dc, initial.assignment.dc);
  // Capacity safety: a call that stays put never silently changes route
  // (in particular never WAN -> Internet mid-flight).
  EXPECT_EQ(conv.final_assignment.path, initial.assignment.path);
}

TEST_F(ControllerTest, ConvergenceMigratesToPlannedDcAndCounts) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  core::Rng rng(1);
  // Initial guess is the audio singleton -> dc0; the true config is the
  // international shape, planned only at dc1: an inter-DC migration.
  const auto initial = controller.assign_initial(fr_, media::MediaType::kAudio, 0, rng);
  ASSERT_EQ(initial.assignment.dc, dc0_);
  const auto conv = controller.converge(initial, fr_uk_, 0, rng);
  EXPECT_TRUE(conv.dc_migration);
  EXPECT_FALSE(conv.out_of_plan);
  EXPECT_FALSE(conv.route_change);
  EXPECT_EQ(conv.final_assignment.dc, dc1_);
}

TEST_F(ControllerTest, OutOfPlanConfigKeepsCallInPlaceAndCounts) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  core::Rng rng(1);
  const auto initial = controller.assign_initial(fr_, media::MediaType::kVideo, 0, rng);
  // The video singleton has no planned units anywhere: the true config is
  // out of plan; the call must stay exactly where it started.
  const auto conv = controller.converge(initial, fr_video_, 0, rng);
  EXPECT_TRUE(conv.out_of_plan);
  EXPECT_FALSE(conv.dc_migration);
  EXPECT_EQ(conv.final_assignment.dc, initial.assignment.dc);
  EXPECT_EQ(conv.final_assignment.path, initial.assignment.path);
}

TEST_F(ControllerTest, RecentConfigGuidesNextGuess) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  core::Rng rng(1);
  // First France audio call converges to the international shape at dc1;
  // the next first-joiner guess for (France, audio) follows it there.
  const auto first = controller.assign_initial(fr_, media::MediaType::kAudio, 0, rng);
  (void)controller.converge(first, fr_uk_, 0, rng);
  const auto second = controller.assign_initial(fr_, media::MediaType::kAudio, 1, rng);
  EXPECT_TRUE(second.from_plan);
  EXPECT_EQ(second.assignment.dc, dc1_);
}

// --- fallback -----------------------------------------------------------

TEST_F(ControllerTest, FallbackPicksNearestDcOverWan) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  const auto fb = controller.fallback(fr_);
  EXPECT_EQ(fb.path, net::PathType::kWan);
  double best = 1e18;
  core::DcId nearest;
  for (const auto dc : inputs_->dcs()) {
    const double rtt = db_->latency().base_rtt_ms(fr_, dc, net::PathType::kWan);
    if (rtt < best) {
      best = rtt;
      nearest = dc;
    }
  }
  EXPECT_EQ(fb.dc, nearest);
}

TEST_F(ControllerTest, FallbackSkipsDrainedDc) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  const auto nearest = controller.fallback(fr_).dc;
  db_->set_dc_compute_scale(nearest, 0.0);
  const auto fb = controller.fallback(fr_);
  EXPECT_NE(fb.dc, nearest);
  EXPECT_EQ(fb.path, net::PathType::kWan);
  db_->set_dc_compute_scale(nearest, 1.0);
}

// Table-driven coverage of the fallback preference order: pass 1 wants a
// LIVE DC that is not `exclude`; pass 2 admits the excluded DC if it is
// live (a partially drained DC beats a fully drained one); when every
// in-scope DC is fully drained the result carries an invalid DC — an
// explicit reject — rather than silently landing on dead capacity.
TEST_F(ControllerTest, FallbackThreePassPreferenceOrder) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  const auto& dcs = inputs_->dcs();
  ASSERT_GE(dcs.size(), 2u);

  // Nearest and second-nearest in-scope DCs for France, by WAN RTT.
  const auto nearest = controller.fallback(fr_).dc;
  core::DcId second;
  double best = 1e18;
  for (const auto dc : dcs) {
    if (dc == nearest) continue;
    const double rtt = db_->latency().base_rtt_ms(fr_, dc, net::PathType::kWan);
    if (rtt < best) {
      best = rtt;
      second = dc;
    }
  }
  ASSERT_TRUE(second.valid());

  enum class Drain { kNone, kAllButExcluded, kAll };
  struct Case {
    const char* name;
    Drain drain;
    core::DcId exclude;
    core::DcId expected;
  };
  const Case cases[] = {
      // Exclude beats proximity: the nearest DC is live but excluded, so
      // pass 1 lands on the second-nearest live DC.
      {"exclude beats staying", Drain::kNone, nearest, second},
      // Every alternative is fully drained: pass 1 finds nothing, pass 2
      // returns to the live-but-excluded DC (partial drain beats full).
      {"partially drained beats fully drained", Drain::kAllButExcluded, nearest, nearest},
      // Everything is drained: no pass may land the call on dead capacity —
      // the result is the explicit-reject invalid DC.
      {"everything drained rejects explicitly", Drain::kAll, nearest, core::DcId::invalid()},
  };

  for (const auto& c : cases) {
    for (const auto dc : dcs) {
      const bool drained = c.drain == Drain::kAll ||
                           (c.drain == Drain::kAllButExcluded && dc != c.exclude);
      db_->set_dc_compute_scale(dc, drained ? 0.0 : 1.0);
    }
    const auto fb = controller.fallback(fr_, c.exclude);
    EXPECT_EQ(fb.dc, c.expected) << c.name;
    EXPECT_EQ(fb.path, net::PathType::kWan) << c.name;
    for (const auto dc : dcs) db_->set_dc_compute_scale(dc, 1.0);
  }
}

// --- rebind (closed-loop replan hook) -----------------------------------

TEST_F(ControllerTest, RebindPreservesRecentConfigState) {
  const auto plan = make_plan();
  OnlineController controller(*inputs_, plan, {});
  core::Rng rng(1);
  const auto first = controller.assign_initial(fr_, media::MediaType::kAudio, 0, rng);
  (void)controller.converge(first, fr_uk_, 0, rng);

  // A fresh plan generation arrives; the learned guess must survive.
  const auto plan2 = make_plan();
  controller.rebind(*inputs_, plan2);
  const auto guess = controller.assign_initial(fr_, media::MediaType::kAudio, 1, rng);
  EXPECT_TRUE(guess.from_plan);
  EXPECT_EQ(guess.assignment.dc, dc1_);
}

// --- admission control (overload load shedding) --------------------------

// Table-driven walk of the admission state machine: below the degrade
// threshold calls pass untouched, inside the degrade band they step down
// (one rung, two past the band midpoint, capped by the media ladder's
// headroom), and only past the reject threshold does the shed coin engage —
// proportionally to the overshoot and capped at max_shed.
TEST_F(ControllerTest, AdmissionVerdictsFollowLoadRatioTable) {
  const auto plan = make_plan();
  ControllerOptions opts;
  opts.admission.enabled = true;
  OnlineController controller(*inputs_, plan, opts);
  const auto region = geo::Continent::kEurope;
  const auto ridx = static_cast<std::size_t>(region);
  constexpr int kCalls = 2000;

  // No state pushed yet: everything is admitted at full quality.
  const auto cold = controller.admit(region, core::CallId(7), media::MediaType::kVideo);
  EXPECT_TRUE(cold.admit);
  EXPECT_EQ(cold.degrade_steps, 0);

  struct Case {
    const char* name;
    double rho;
    int video_steps;   // expected step-down for admitted video calls
    int audio_steps;   // audio has zero headroom: never degraded
    double shed_p;     // expected shed probability (0 = no shedding)
  };
  const Case cases[] = {
      {"well under capacity", 0.50, 0, 0, 0.0},
      {"exactly at degrade threshold", 0.85, 0, 0, 0.0},
      {"lower degrade band", 0.90, 1, 0, 0.0},
      {"upper degrade band", 0.99, 2, 0, 0.0},
      {"mild overload", 1.25, 2, 0, 0.25 / 1.25},
      {"extreme overload caps at max_shed", 100.0, 2, 0, 0.95},
  };

  std::vector<double> load(geo::kNumContinents, 0.0);
  for (const auto& c : cases) {
    load[ridx] = c.rho;
    controller.set_admission_state(load);
    int sheds = 0;
    for (int i = 0; i < kCalls; ++i) {
      const core::CallId id(i);
      const auto video = controller.admit(region, id, media::MediaType::kVideo);
      // The verdict is a pure function of (seed, call id, load): re-asking
      // must reproduce it bit-for-bit.
      const auto again = controller.admit(region, id, media::MediaType::kVideo);
      ASSERT_EQ(video.admit, again.admit) << c.name;
      ASSERT_EQ(video.degrade_steps, again.degrade_steps) << c.name;
      if (!video.admit) {
        ++sheds;
        continue;
      }
      EXPECT_EQ(video.degrade_steps, c.video_steps) << c.name << " call " << i;
      const auto audio = controller.admit(region, id, media::MediaType::kAudio);
      EXPECT_TRUE(audio.admit == video.admit) << c.name;
      EXPECT_EQ(audio.degrade_steps, c.audio_steps) << c.name;
    }
    if (c.shed_p == 0.0) {
      EXPECT_EQ(sheds, 0) << c.name;
    } else {
      EXPECT_GT(sheds, 0) << c.name;
      // Even at absurd overload the fairness floor admits 1 - max_shed.
      EXPECT_LT(sheds, kCalls) << c.name;
      EXPECT_NEAR(static_cast<double>(sheds) / kCalls, c.shed_p, 0.04) << c.name;
    }
    // Per-region fairness: a clean region never sheds or degrades no matter
    // how overloaded its neighbours are.
    const auto other =
        controller.admit(geo::Continent::kNorthAmerica, core::CallId(3), media::MediaType::kVideo);
    EXPECT_TRUE(other.admit) << c.name;
    EXPECT_EQ(other.degrade_steps, 0) << c.name;
  }

  // A disabled policy is a no-op even with overload state pushed.
  OnlineController off(*inputs_, plan, {});
  off.set_admission_state(load);
  const auto d = off.admit(region, core::CallId(1), media::MediaType::kVideo);
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(d.degrade_steps, 0);
}

}  // namespace
}  // namespace titan::titannext
